//! Packet-level scenario benches: the cost of simulating whole networks —
//! plain OLSR convergence, and the full detection stack under attack.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trustlink_attacks::prelude::*;
use trustlink_core::prelude::*;
use trustlink_core::DetectorConfig;
use trustlink_ids::investigation::InvestigationConfig;
use trustlink_olsr::{OlsrConfig, OlsrNode};
use trustlink_sim::topologies;

fn bench_olsr_convergence(c: &mut Criterion) {
    c.bench_function("olsr_grid9_converge_15s", |b| {
        b.iter(|| {
            let mut sim = SimulatorBuilder::new(1)
                .arena(Arena::new(100_000.0, 100_000.0))
                .radio(RadioConfig::unit_disk(150.0))
                .build();
            for p in trustlink_sim::topologies::grid(9, 3, 100.0) {
                sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), p);
            }
            sim.run_for(SimDuration::from_secs(15));
            black_box(sim.stats().total_sent())
        })
    });
}

fn bench_detection_scenario(c: &mut Criterion) {
    let detector = DetectorConfig {
        analysis_interval: SimDuration::from_millis(500),
        investigation: InvestigationConfig {
            timeout: SimDuration::from_secs(3),
            max_witnesses: 16,
        },
        warmup: SimDuration::from_secs(10),
        trust_slot_interval: SimDuration::from_secs(3),
        ..DetectorConfig::default()
    };
    c.bench_function("detection_grid9_spoofer_60s", |b| {
        b.iter(|| {
            let report = ScenarioBuilder::new(11, 9)
                .topology(Topology::Grid { cols: 3, spacing: 100.0 })
                .detector(detector.clone())
                .attacker(
                    4,
                    LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent {
                        fake: vec![NodeId(55)],
                    }),
                )
                .duration(SimDuration::from_secs(60))
                .run();
            black_box(report.total_sent())
        })
    });
}

/// Large-network OLSR convergence on the spatial-grid radio: random
/// geometric placements at mean degree 10, HELLO-driven neighborhood
/// convergence (TCs mostly silenced — full TC flooding is O(n²) messages
/// by design and would measure the protocol, not the simulator).
fn bench_olsr_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("olsr_scale");
    group.sample_size(2);
    for n in [256usize, 1024, 4096] {
        let range = 150.0;
        let arena = topologies::arena_for_mean_degree(n, range, 10.0);
        let mut rng = StdRng::seed_from_u64(7);
        let positions = topologies::random_geometric(n, &arena, &mut rng);
        let cfg = OlsrConfig {
            // TC timers start at a random offset inside the interval, so
            // the interval must dwarf the measured window to keep the
            // O(n²) flood out of it.
            tc_interval: SimDuration::from_secs(600),
            refresh_interval: SimDuration::from_secs(1),
            ..OlsrConfig::fast()
        };
        group.bench_function(format!("{n}_nodes_grid_converge_2s"), |b| {
            b.iter(|| {
                let mut sim = SimulatorBuilder::new(7)
                    .arena(arena)
                    .radio(RadioConfig::unit_disk(range))
                    .scan_mode(ScanMode::Grid)
                    .build();
                for &p in &positions {
                    sim.add_node(Box::new(OlsrNode::new(cfg.clone())), p);
                }
                sim.run_for(SimDuration::from_secs(2));
                black_box(sim.stats().total_sent())
            })
        });
    }
    group.finish();
}

fn bench_round_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_engine_scaling");
    for n in [16usize, 32, 64] {
        group.bench_function(format!("{n}_nodes_25_rounds"), |b| {
            b.iter(|| {
                let cfg = RoundConfig { n_nodes: n, n_liars: n / 4, ..RoundConfig::default() };
                black_box(RoundEngine::new(cfg).run(25))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = scenario;
    config = Criterion::default().sample_size(10);
    targets = bench_olsr_convergence, bench_detection_scenario, bench_olsr_scale,
              bench_round_engine_scaling
}
criterion_main!(scenario);
