//! Criterion benches: one group per paper figure, timing the full
//! regeneration of each experiment (what `EXPERIMENTS.md` indexes).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use trustlink_core::prelude::*;

fn paper_config() -> RoundConfig {
    RoundConfig::default()
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_trustworthiness_25_rounds", |b| {
        b.iter(|| black_box(fig1_trustworthiness(black_box(paper_config()), 25)))
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_forgetting_40_rounds", |b| {
        b.iter(|| black_box(fig2_forgetting(black_box(paper_config()), 40)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_liar_impact_3_fractions", |b| {
        b.iter(|| black_box(fig3_liar_impact(black_box(paper_config()), &paper_liar_counts(), 25)))
    });
}

fn bench_confidence(c: &mut Criterion) {
    c.bench_function("confidence_sweep_3_levels_40n", |b| {
        b.iter(|| black_box(confidence_sweep(&[0.90, 0.95, 0.99], 40)))
    });
}

fn bench_ablations(c: &mut Criterion) {
    c.bench_function("ablation_suite_25_rounds", |b| {
        b.iter(|| black_box(ablations(black_box(paper_config()), 25)))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = bench_fig1, bench_fig2, bench_fig3, bench_confidence, bench_ablations
}
criterion_main!(figures);
