//! Micro-benchmarks of the hot primitives: MPR selection, route
//! calculation, wire codec, log parsing, signature matching, trust update,
//! detection aggregation and the probit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use trustlink_olsr::logging::{from_rlog_line, parse_line, LogRecord};
use trustlink_olsr::message::{
    HelloMessage, LinkCode, LinkGroup, LinkType, Message, MessageBody, NeighborType, Packet,
    TcMessage,
};
use trustlink_olsr::mpr::{select_mprs, MprCandidate};
use trustlink_olsr::routing::RoutingTable;
use trustlink_olsr::state::{TopologySet, TwoHopSet};
use trustlink_olsr::types::{SequenceNumber, Willingness};
use trustlink_olsr::wire::{decode_packet, encode_packet};
use trustlink_sim::{NodeId, SimDuration, SimTime};
use trustlink_trust::prelude::*;

fn bench_mpr_selection(c: &mut Criterion) {
    // 20 candidates covering 60 two-hop targets with overlap.
    let candidates: Vec<MprCandidate> = (0..20u32)
        .map(|i| MprCandidate {
            addr: NodeId(i),
            willingness: Willingness::Default,
            covers: (0..6).map(|k| NodeId(100 + (i * 3 + k) % 60)).collect(),
            degree: 6,
        })
        .collect();
    let targets: Vec<NodeId> = (0..60u32).map(|i| NodeId(100 + i)).collect();
    c.bench_function("mpr_selection_20c_60t", |b| {
        b.iter(|| black_box(select_mprs(black_box(&candidates), black_box(&targets))))
    });
}

fn bench_routing(c: &mut Criterion) {
    // A 50-node topology ring with chords.
    let mut topo = TopologySet::default();
    let until = SimTime::from_secs(1_000);
    for i in 0..50u32 {
        let dests = vec![NodeId((i + 1) % 50), NodeId((i + 7) % 50)];
        topo.apply_tc(NodeId(i), 1, &dests, until, SimTime::ZERO);
    }
    let sym = vec![NodeId(1), NodeId(49), NodeId(7)];
    let two_hop = TwoHopSet::default();
    c.bench_function("routing_table_50_nodes", |b| {
        b.iter(|| {
            black_box(RoutingTable::compute(
                NodeId(0),
                black_box(&sym),
                &two_hop,
                black_box(&topo),
                SimTime::ZERO,
            ))
        })
    });
    c.bench_function("routing_table_50_nodes_avoiding", |b| {
        b.iter(|| {
            black_box(RoutingTable::compute_avoiding(
                NodeId(0),
                black_box(&sym),
                &two_hop,
                black_box(&topo),
                SimTime::ZERO,
                Some(NodeId(7)),
            ))
        })
    });
}

fn bench_wire(c: &mut Criterion) {
    let packet = Packet {
        seq: SequenceNumber(42),
        messages: vec![
            Message {
                vtime: SimDuration::from_secs(6),
                originator: NodeId(3),
                ttl: 1,
                hop_count: 0,
                seq: SequenceNumber(7),
                body: MessageBody::Hello(HelloMessage {
                    willingness: Willingness::Default,
                    groups: vec![LinkGroup {
                        code: LinkCode::new(LinkType::Sym, NeighborType::Sym),
                        addrs: (0..8).map(NodeId).collect(),
                    }],
                }),
            },
            Message {
                vtime: SimDuration::from_secs(15),
                originator: NodeId(3),
                ttl: 255,
                hop_count: 2,
                seq: SequenceNumber(8),
                body: MessageBody::Tc(TcMessage {
                    ansn: 100,
                    advertised: (0..8).map(NodeId).collect(),
                }),
            },
        ],
    };
    c.bench_function("wire_encode_hello_tc", |b| {
        b.iter(|| black_box(encode_packet(black_box(&packet))))
    });
    let bytes = encode_packet(&packet);
    c.bench_function("wire_decode_hello_tc", |b| {
        b.iter(|| black_box(decode_packet(black_box(bytes.clone()))).unwrap())
    });
}

fn bench_log_pipeline(c: &mut Criterion) {
    let record = LogRecord::HelloRx {
        from: NodeId(3),
        willingness: Willingness::Default,
        sym: (0..8).map(NodeId).collect(),
        asym: Box::from([NodeId(9)]),
    };
    c.bench_function("log_render", |b| b.iter(|| black_box(record.to_line())));
    let line = record.to_line();
    c.bench_function("log_parse", |b| b.iter(|| black_box(parse_line(black_box(&line))).unwrap()));
    // The framed flight-recorder form: `<micros> <node> <line>`.
    let at = SimTime::from_secs(17);
    c.bench_function("rlog_render", |b| {
        b.iter(|| black_box(record.to_rlog(black_box(at), black_box(NodeId(3)))))
    });
    let rlog = record.to_rlog(at, NodeId(3));
    c.bench_function("rlog_parse", |b| {
        b.iter(|| black_box(from_rlog_line(black_box(&rlog))).unwrap())
    });
}

fn bench_signature_engine(c: &mut Criterion) {
    use trustlink_ids::events::DetectionEvent;
    use trustlink_ids::SignatureEngine;
    c.bench_function("signature_trigger_confirm_pair", |b| {
        b.iter(|| {
            let mut engine = SignatureEngine::with_builtin(SimDuration::from_secs(60));
            let e1 = DetectionEvent::MprReplaced {
                replaced: vec![NodeId(9)],
                replacing: vec![NodeId(3)],
                at: SimTime::from_secs(1),
            };
            let e4 = DetectionEvent::NotCovering {
                mpr: NodeId(3),
                neighbor: NodeId(7),
                at: SimTime::from_secs(2),
            };
            engine.observe(&e1);
            black_box(engine.observe(&e4))
        })
    });
}

fn bench_trust_primitives(c: &mut Criterion) {
    let update = TrustUpdate::default();
    let evidences = [
        EvidenceKind::TruthfulTestimony,
        EvidenceKind::NormalRelaying,
        EvidenceKind::FalseTestimony,
    ];
    c.bench_function("trust_update_step", |b| {
        b.iter(|| black_box(update.step(black_box(TrustValue::DEFAULT), black_box(&evidences))))
    });

    let answers: Vec<(TrustValue, Answer)> = (0..14)
        .map(|i| {
            let t = TrustValue::new(0.1 + (i as f64) * 0.05);
            let a = if i < 4 { Answer::Confirm } else { Answer::Deny };
            (t, a)
        })
        .collect();
    c.bench_function("detection_value_14_witnesses", |b| {
        b.iter(|| black_box(detection_value(black_box(answers.iter().copied()))))
    });

    let samples: Vec<f64> = (0..14).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
    c.bench_function("margin_of_error_14", |b| {
        b.iter(|| black_box(margin_of_error(black_box(&samples), 0.95)))
    });

    c.bench_function("probit", |b| b.iter(|| black_box(probit(black_box(0.975)))));

    c.bench_function("entropy_trust_roundtrip", |b| {
        b.iter(|| {
            let t = trustlink_trust::entropy::trust_from_probability(black_box(0.8));
            black_box(trustlink_trust::entropy::probability_from_trust(t))
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(50);
    targets = bench_mpr_selection, bench_routing, bench_wire, bench_log_pipeline,
              bench_signature_engine, bench_trust_primitives
}
criterion_main!(micro);
