//! # trustlink-bench
//!
//! The benchmark harness of the `trustlink` reproduction. Two kinds of
//! targets live here:
//!
//! * **Figure binaries** (`cargo run -p trustlink-bench --bin fig1|fig2|
//!   fig3|sweep [-- --csv]`) — regenerate every figure of the paper's
//!   evaluation section as an ASCII chart and, with `--csv`, as CSV on
//!   stdout. See `EXPERIMENTS.md` for the paper-vs-measured record.
//! * **Criterion benches** (`cargo bench -p trustlink-bench`) — timing of
//!   each experiment (`benches/figures.rs`), of the hot protocol and trust
//!   primitives (`benches/micro.rs`), and of full packet-level scenarios
//!   (`benches/scenario.rs`).
//!
//! This library crate holds the handful of helpers both share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use trustlink_core::prelude::*;

/// The paper's evaluation configuration (§V): 16 nodes, 1 attacker, 4
/// liars, random initial trust, mildly unreliable answers.
pub fn paper_config() -> RoundConfig {
    RoundConfig::default()
}

/// Render a figure to stdout — ASCII chart by default, CSV when the
/// `--csv` flag was passed to the binary.
pub fn emit(figure: &Figure, args: &[String]) {
    if args.iter().any(|a| a == "--csv") {
        print!("{}", trustlink_core::csv::to_csv(figure));
    } else {
        println!("{}", trustlink_core::chart::render(figure, 72, 20));
    }
}

/// Shape-checks shared by the figure binaries: panic loudly if a binary is
/// about to print something that contradicts the paper (used as a last
/// defence so regressions cannot slip out unnoticed through the harness).
pub fn assert_fig3_shape(figure: &Figure) {
    for s in &figure.series {
        let r10 = s.y_at_round(10).expect("10 rounds");
        assert!(r10 < -0.4, "{} at round 10 is {r10}, paper expects < -0.4", s.label);
        let last = s.last_y().expect("non-empty");
        assert!(last < -0.7, "{} converged to {last}, paper expects ≈ -0.8", s.label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_evaluation_section() {
        let cfg = paper_config();
        assert_eq!(cfg.n_nodes, 16);
        assert_eq!(cfg.n_liars, 4);
    }

    #[test]
    fn fig3_shape_gate_accepts_reference_run() {
        let fig = fig3_liar_impact(paper_config(), &paper_liar_counts(), 25);
        assert_fig3_shape(&fig);
    }
}
