//! Regenerates **Figure 3 — Impact of liars on the detection**: the
//! trust-weighted investigation result `Detect(A, I)` per round, one curve
//! per liar fraction (≈14 %, ≈29 % and ≈43 % of the witnesses — the paper
//! quotes 26.3 % and 43.2 %).
//!
//! Usage: `cargo run -p trustlink-bench --bin fig3 [-- --csv]`

use trustlink_bench::{assert_fig3_shape, emit, paper_config};
use trustlink_core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fig = fig3_liar_impact(paper_config(), &paper_liar_counts(), 25);
    emit(&fig, &args);

    eprintln!("round-10 and final Detect per liar fraction:");
    for s in &fig.series {
        eprintln!(
            "  {:>12}: round 10 = {:+.3}, round 25 = {:+.3}",
            s.label,
            s.y_at_round(10).unwrap(),
            s.last_y().unwrap()
        );
    }
    eprintln!("paper claims: < -0.4 by round 10 at every fraction; ≈ -0.8 at round 25");
    assert_fig3_shape(&fig);
}
