//! Regenerates **Figure 3 — Impact of liars on the detection**: the
//! trust-weighted investigation result `Detect(A, I)` per round, one curve
//! per liar fraction (≈14 %, ≈29 % and ≈43 % of the witnesses — the paper
//! quotes 26.3 % and 43.2 %), with mean ± min/max bands over several seeds
//! (the `(liar count, seed)` runs fan out across threads).
//!
//! Usage: `cargo run -p trustlink-bench --bin fig3 [-- --csv] [-- --single]`
//! (`--single` reproduces the historical one-seed figure.)

use trustlink_bench::{assert_fig3_shape, emit, paper_config};
use trustlink_core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--single") {
        let fig = fig3_liar_impact(paper_config(), &paper_liar_counts(), 25);
        emit(&fig, &args);
        assert_fig3_shape(&fig);
        return;
    }
    let seeds: Vec<u64> = (1..=7).collect();
    let fig = fig3_liar_impact_banded(paper_config(), &paper_liar_counts(), 25, &seeds);
    emit(&fig, &args);

    eprintln!("round-10 and final Detect per liar fraction (mean [min, max] over 7 seeds):");
    for triple in fig.series.chunks(3) {
        let (mean, min, max) = (&triple[0], &triple[1], &triple[2]);
        eprintln!(
            "  {:>20}: round 10 = {:+.3} [{:+.3}, {:+.3}], round 25 = {:+.3} [{:+.3}, {:+.3}]",
            mean.label,
            mean.y_at_round(10).unwrap(),
            min.y_at_round(10).unwrap(),
            max.y_at_round(10).unwrap(),
            mean.last_y().unwrap(),
            min.last_y().unwrap(),
            max.last_y().unwrap(),
        );
    }
    eprintln!("paper claims: < -0.4 by round 10 at every fraction; ≈ -0.8 at round 25");
    // The paper's shape must hold for every band — including the max
    // (worst-seed) series, which is the strongest form of the claim.
    assert_fig3_shape(&fig);
}
