//! The churn×loss×burstiness fault-injection harness: how the full
//! detection stack degrades as the environment turns hostile, recorded as
//! `BENCH_robustness.json` at the repository root.
//!
//! The sweep crosses three axes:
//!
//! * **churn** — stationary, slow pedestrians (0.5–2 m/s) and brisk
//!   walkers (2–8 m/s) under random-waypoint mobility;
//! * **loss** — uniform per-frame loss of 0%, 5% and 10%;
//! * **burstiness** — the uniform channel vs a per-link Gilbert–Elliott
//!   fading overlay (correlated loss bursts, deterministically seeded per
//!   link).
//!
//! Every cell runs the 9-node phantom-link scenario over several seeds
//! with the stability-weighted detector (the mobility-robust
//! configuration) and reports **detection rate**, **mean detection
//! latency**, **conviction accuracy** (convictions naming the attacker /
//! all convictions) and the **false-positive count** of a matching
//! all-honest run — the four numbers that tell you whether the detector
//! still works, how fast, and at what collateral cost.
//!
//! Usage:
//!   `cargo run --release -p trustlink-bench --bin robustness`             — full sweep, writes BENCH_robustness.json
//!   `cargo run --release -p trustlink-bench --bin robustness -- --smoke`  — reduced grid, stdout only (CI)
//!   `... -- --out <path>`                                                 — alternative output path

use trustlink_attacks::prelude::*;
use trustlink_core::prelude::*;
use trustlink_core::DetectorConfig;
use trustlink_ids::investigation::InvestigationConfig;
use trustlink_sim::{ChannelModel, FadingConfig};

/// One churn level of the sweep.
#[derive(Clone, Copy)]
struct Churn {
    name: &'static str,
    speed: Option<(f64, f64)>,
}

/// One burstiness level: `None` is the uniform channel, `Some` overlays
/// per-link Gilbert–Elliott fading on top of the uniform loss.
#[derive(Clone, Copy)]
struct Burst {
    name: &'static str,
    fading: Option<FadingConfig>,
}

/// One measured cell of the sweep.
struct Cell {
    churn: &'static str,
    loss: f64,
    burst: &'static str,
    seeds: usize,
    detected: usize,
    mean_latency_secs: Option<f64>,
    true_convictions: usize,
    false_convictions: usize,
    honest_false_positives: usize,
}

/// The mobility-tuned detector with stability weighting on: the
/// configuration this harness characterizes.
fn robust_detector() -> DetectorConfig {
    DetectorConfig {
        analysis_interval: SimDuration::from_millis(500),
        investigation: InvestigationConfig {
            timeout: SimDuration::from_secs(3),
            max_witnesses: 16,
        },
        warmup: SimDuration::from_secs(10),
        trust_slot_interval: SimDuration::from_secs(3),
        stability_weighting: true,
        ..DetectorConfig::default()
    }
}

fn build(seed: u64, churn: Churn, loss: f64, burst: Burst, secs: u64) -> ScenarioBuilder {
    let mut radio = RadioConfig::unit_disk(170.0);
    if loss > 0.0 {
        radio = radio.with_loss(loss);
    }
    let mut b = ScenarioBuilder::new(seed, 9)
        .topology(Topology::Grid { cols: 3, spacing: 100.0 })
        .arena_size(320.0, 320.0)
        .radio(radio)
        .detector(robust_detector())
        .duration(SimDuration::from_secs(secs));
    if let Some((lo, hi)) = churn.speed {
        b = b
            .mobility(MobilityModel::RandomWaypoint {
                speed_min: lo,
                speed_max: hi,
                pause: SimDuration::from_secs(2),
            })
            .mobility_tick(SimDuration::from_millis(250));
    }
    if let Some(f) = burst.fading {
        b = b.channel(ChannelModel::new().with_fading(f));
    }
    b
}

fn measure(churn: Churn, loss: f64, burst: Burst, seeds: &[u64], secs: u64) -> Cell {
    let attacker = NodeId(4);
    let mut detected = 0;
    let mut latency_sum = 0.0;
    let mut true_convictions = 0;
    let mut false_convictions = 0;
    for &seed in seeds {
        let report = build(seed, churn, loss, burst, secs)
            .attacker(
                4,
                LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent {
                    fake: vec![NodeId(55)],
                }),
            )
            .run();
        if let Some(at) = report.first_detection(attacker) {
            detected += 1;
            latency_sum += at.as_secs_f64();
        }
        for (_, v) in &report.verdicts {
            if v.verdict == Verdict::Intruder {
                if v.suspect == attacker {
                    true_convictions += 1;
                } else {
                    false_convictions += 1;
                }
            }
        }
    }
    // One matching all-honest run prices the false-positive cost of the
    // cell without an attacker to blame.
    let honest = build(seeds[0] ^ 0xbeef, churn, loss, burst, secs).run();
    Cell {
        churn: churn.name,
        loss,
        burst: burst.name,
        seeds: seeds.len(),
        detected,
        mean_latency_secs: (detected > 0).then(|| latency_sum / detected as f64),
        true_convictions,
        false_convictions,
        honest_false_positives: honest.false_positives().len(),
    }
}

fn render_json(cells: &[Cell], seeds: &[u64], secs: u64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"benchmark\": \"detection robustness under churn x loss x burstiness fault injection\",\n",
    );
    s.push_str("  \"command\": \"cargo run --release -p trustlink-bench --bin robustness\",\n");
    s.push_str(&format!(
        "  \"config\": {{ \"nodes\": 9, \"radio_range_m\": 170.0, \"sim_secs\": {secs}, \"seeds\": {}, \"detector\": \"stability_weighting on, 500ms analysis, 10s warmup\", \"fading\": \"gilbert-elliott p_enter=0.02 p_exit=0.2 loss_bad=0.9\" }},\n",
        seeds.len()
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let latency = match c.mean_latency_secs {
            Some(l) => format!("{l:.1}"),
            None => "null".to_string(),
        };
        let accuracy = match c.true_convictions + c.false_convictions {
            0 => "null".to_string(),
            total => format!("{:.3}", c.true_convictions as f64 / total as f64),
        };
        s.push_str(&format!(
            "    {{ \"churn\": \"{churn}\", \"loss\": {loss:.2}, \"burstiness\": \"{burst}\", \"detection_rate\": {rate:.2}, \"mean_detection_latency_secs\": {latency}, \"conviction_accuracy\": {accuracy}, \"true_convictions\": {tc}, \"false_convictions\": {fc}, \"honest_run_false_positives\": {hfp} }}{sep}\n",
            churn = c.churn,
            loss = c.loss,
            burst = c.burst,
            rate = c.detected as f64 / c.seeds as f64,
            tc = c.true_convictions,
            fc = c.false_convictions,
            hfp = c.honest_false_positives,
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_robustness.json", env!("CARGO_MANIFEST_DIR")));

    let stationary = Churn { name: "stationary", speed: None };
    let slow = Churn { name: "slow", speed: Some((0.5, 2.0)) };
    let brisk = Churn { name: "brisk", speed: Some((2.0, 8.0)) };
    let uniform = Burst { name: "uniform", fading: None };
    let bursty = Burst { name: "bursty", fading: Some(FadingConfig::bursty(0.02, 0.2, 0.9)) };

    // The smoke slice keeps the corners that guard the headline claims:
    // the clean baseline, the lossy-bursty stationary cell and the brisk
    // mobile cell.
    let (churns, losses, bursts, seeds, secs): (&[Churn], &[f64], &[Burst], &[u64], u64) = if smoke
    {
        (&[stationary, brisk], &[0.0, 0.05], &[uniform, bursty], &[401], 120)
    } else {
        (&[stationary, slow, brisk], &[0.0, 0.05, 0.10], &[uniform, bursty], &[401, 402, 403], 150)
    };

    let mut cells = Vec::new();
    for &churn in churns {
        for &loss in losses {
            for &burst in bursts {
                let cell = measure(churn, loss, burst, seeds, secs);
                eprintln!(
                    "{:>10} loss={:.2} {:>7}: detect {}/{} latency {} acc {}/{} honest-fp {}",
                    cell.churn,
                    cell.loss,
                    cell.burst,
                    cell.detected,
                    cell.seeds,
                    cell.mean_latency_secs.map_or("-".into(), |l| format!("{l:.1}s")),
                    cell.true_convictions,
                    cell.true_convictions + cell.false_convictions,
                    cell.honest_false_positives,
                );
                cells.push(cell);
            }
        }
    }

    let json = render_json(&cells, seeds, secs);
    if smoke {
        println!("{json}");
        eprintln!("smoke mode: not writing {out_path}");
    } else {
        std::fs::write(&out_path, &json).expect("write BENCH_robustness.json");
        eprintln!("wrote {out_path}");
    }

    // Guard the robustness claims in every mode.
    let baseline = cells
        .iter()
        .find(|c| c.churn == "stationary" && c.loss == 0.0 && c.burst == "uniform")
        .expect("baseline cell");
    assert_eq!(
        baseline.detected, baseline.seeds,
        "the clean stationary cell must detect the spoofer on every seed"
    );
    assert_eq!(
        baseline.false_convictions + baseline.honest_false_positives,
        0,
        "the clean stationary cell must convict nobody but the attacker"
    );
    // Stability weighting keeps honest runs clean up to pedestrian churn;
    // brisk churn leaves a residual false-positive tail (the acceptance
    // scenario pins ≤1 on its own seed; across arbitrary bench seeds the
    // honest-run count stays below half the network but is noisy).
    for c in &cells {
        let bound = if c.churn == "brisk" { 4 } else { 0 };
        assert!(
            c.honest_false_positives <= bound,
            "{} loss={:.2} {}: honest run convicted {} nodes (> {bound})",
            c.churn,
            c.loss,
            c.burst,
            c.honest_false_positives
        );
    }
    let detected_cells = cells.iter().filter(|c| c.detected == c.seeds).count();
    assert!(
        detected_cells * 2 >= cells.len(),
        "the spoofer escaped in over half the sweep ({detected_cells}/{} full-detection cells)",
        cells.len()
    );
}
