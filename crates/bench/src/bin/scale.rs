//! The scaling benchmark: baseline (linear scan) vs spatial-grid radio,
//! eager vs incremental OLSR recompute, and classic vs fisheye TC
//! flooding, at 10²–10⁴ nodes, recorded as `BENCH_scale.json` at the
//! repository root.
//!
//! Five measurements per network size:
//!
//! * **broadcast fan-out** — the radio-layer cost PR 2 attacked: time per
//!   `inject_broadcast` into a network of no-op applications (scheduling
//!   excluded deliveries drained outside the timed region). This is where
//!   the O(n) → O(neighborhood) change shows directly.
//! * **OLSR convergence (TC-silenced)** — wall time of a short HELLO-driven
//!   convergence window over the same placement: the radio-layer speedup
//!   as seen by the whole stack.
//! * **full-stack recompute** — wall time of a HELLO + TC convergence
//!   window with `RecomputeMode::Eager` (the pre-incremental *cadence*:
//!   recompute after every state-changing packet) vs
//!   `RecomputeMode::Incremental` (change-aware, debounced). The 10k eager
//!   oracle is skipped on wall-time grounds and says so in the JSON.
//! * **fisheye flood** — wall time, total frames and *forwarded TC frames*
//!   of the same full-stack window under `FloodScope::Classic` (every TC
//!   floods network-wide: the O(n²) wall PR 3 exposed) vs
//!   `FloodScope::Fisheye` (graded per-ring scoping). At 256–4096 nodes
//!   the window covers a full ring cycle and the rows include the cost
//!   side: mean/max route stretch and the fraction of classic's
//!   destinations fisheye still reaches. The 10k row keeps the 6 s window
//!   (one classic interval — a full classic cycle there is an hour-class
//!   measurement), so its stretch columns are skipped and its reduction
//!   reflects the scoped bootstrap.
//! * **frame pipeline** — wall time of the same full-stack window under
//!   `DeliveryMode::Batched` (coalesced per-(receiver, instant) delivery
//!   through the decode arena — the default) vs `DeliveryMode::PerFrame`
//!   (the one-event-per-frame oracle). The two modes are byte-identical
//!   by contract (`tests/batch_equivalence.rs`), which also bounds the
//!   coalescing win: only *consecutive* same-instant deliveries may merge,
//!   so the row is a parity guard plus a frames/s throughput figure, not
//!   a speedup claim. The 10k row is batched-only (the oracle doubles an
//!   already hour-class sweep) and demonstrates the pipeline completing
//!   at the scale the ISSUE targets.
//! * **sharded event loop** — wall time of a TC-silenced HELLO window
//!   under `ExecutionMode::Serial` vs `ExecutionMode::Sharded` at 1, 2,
//!   4 and 8 workers (median of 3 runs per cell), plus a 100k-node
//!   bootstrap-window row. The two modes are byte-identical by contract
//!   (`tests/shard_equivalence.rs`); every row asserts identical frame
//!   counts. The section records `host_cpus`: on a single-core host a
//!   parallel speedup is physically unobtainable, so there the rows
//!   price the coordination overhead (loan/replay channels, outcome
//!   buffers) rather than claim a win — rerun on a multi-core host for
//!   the scaling curve.
//!
//! Usage:
//!   `cargo run --release -p trustlink-bench --bin scale`                  — full sweep, writes BENCH_scale.json
//!   `cargo run --release -p trustlink-bench --bin scale -- --smoke`       — small sizes, stdout only (CI)
//!   `... -- --out <path>`                                                 — alternative output path
//!   `... -- --sharded-only`                                               — run just the sharded section and
//!                                                                           splice it into the existing JSON
//!                                                                           (the full sweep is hour-class)

use std::time::{Duration, Instant};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trustlink_olsr::{FisheyeRings, FloodScope, OlsrConfig, OlsrNode, RecomputeMode};
use trustlink_sim::prelude::*;
use trustlink_sim::topologies;
use trustlink_sim::FloodStats;

/// Radio range shared by every measurement, metres.
const RANGE: f64 = 150.0;
/// Target mean 1-hop degree of the random geometric placements.
const MEAN_DEGREE: f64 = 10.0;
/// Observers sampled for the route-stretch comparison.
const STRETCH_SAMPLE: usize = 64;

/// A node that hears everything and does nothing: isolates the radio
/// layer from protocol processing.
struct Sink;
impl Application for Sink {}

fn placed_sim(
    n: usize,
    seed: u64,
    mode: ScanMode,
    delivery: DeliveryMode,
    app: impl Fn() -> Box<dyn Application>,
) -> Simulator {
    let arena = topologies::arena_for_mean_degree(n, RANGE, MEAN_DEGREE);
    let mut rng = StdRng::seed_from_u64(seed);
    let positions = topologies::random_geometric(n, &arena, &mut rng);
    let mut sim = SimulatorBuilder::new(seed)
        .arena(arena)
        .radio(RadioConfig::unit_disk(RANGE))
        .scan_mode(mode)
        .delivery_mode(delivery)
        .expected_nodes(n)
        .build();
    for &p in &positions {
        sim.add_node(app(), p);
    }
    sim
}

/// Microseconds per broadcast fan-out: the receiver scan plus delivery
/// scheduling. Injections are timed in chunks of 100 with the delivery
/// events drained *outside* the timed regions, so the event heap stays at
/// its steady-state size and the measurement isolates the fan-out
/// itself. The best chunk is reported — minimum-of-samples is the
/// standard defence against scheduler and interrupt noise.
fn fan_out_us(n: usize, mode: ScanMode, broadcasts: usize) -> f64 {
    const CHUNK: usize = 100;
    let mut sim = placed_sim(n, 1, mode, DeliveryMode::Batched, || Box::new(Sink));
    sim.run_for(SimDuration::from_millis(1)); // consume Start events
    let payload = Bytes::from_static(b"BENCH_FANOUT");
    // Warm up caches and the scratch buffers.
    for k in 0..broadcasts / 4 {
        sim.inject_broadcast(NodeId((k % n) as u32), payload.clone());
    }
    sim.run_for(SimDuration::from_millis(100));
    let mut best = Duration::MAX;
    let mut k = 0;
    while k < broadcasts {
        let t0 = Instant::now();
        for _ in 0..CHUNK {
            sim.inject_broadcast(NodeId((k % n) as u32), payload.clone());
            k += 1;
        }
        best = best.min(t0.elapsed());
        sim.run_for(SimDuration::from_millis(50)); // drain, untimed
    }
    best.as_secs_f64() * 1e6 / CHUNK as f64
}

/// Wall milliseconds to simulate a `sim_secs`-second HELLO-driven
/// convergence window (TCs mostly silenced so the measurement stays
/// neighborhood-scale instead of O(n²) flooding).
fn convergence_ms(n: usize, mode: ScanMode, sim_secs: u64) -> (f64, u64) {
    let cfg = OlsrConfig {
        // TC timers start at a random offset inside the interval, so the
        // interval must dwarf the measured window to keep the O(n²)
        // flood out of it.
        tc_interval: SimDuration::from_secs(600),
        refresh_interval: SimDuration::from_secs(1),
        ..OlsrConfig::fast()
    };
    let t0 = Instant::now();
    let mut sim =
        placed_sim(n, 1, mode, DeliveryMode::Batched, || Box::new(OlsrNode::new(cfg.clone())));
    sim.run_for(SimDuration::from_secs(sim_secs));
    (t0.elapsed().as_secs_f64() * 1e3, sim.stats().total_sent())
}

/// Per-observer `(dest, hops)` routing snapshots sampled over ≤
/// [`STRETCH_SAMPLE`] evenly spaced nodes.
type RouteSnapshot = Vec<(u32, Vec<(u32, u32)>)>;

/// Everything one full-stack run yields.
struct FullStackRun {
    wall_ms: f64,
    frames: u64,
    delivered: u64,
    route_runs: u64,
    flood: FloodStats,
    routes: RouteSnapshot,
}

/// Wall milliseconds to simulate a `sim_secs`-second *full-stack*
/// convergence window — HELLOs and TCs both flowing — under the given
/// recompute mode, flood scope and delivery mode, plus the
/// frame/recompute/flood accounting and a sampled routing snapshot.
fn full_stack(
    n: usize,
    mode: RecomputeMode,
    scope: FloodScope,
    delivery: DeliveryMode,
    sim_secs: u64,
) -> FullStackRun {
    // RFC 3626 §18 default timing (hello 2 s, TC 5 s): the representative
    // deployment cadence. The `fast()` timing used by quick tests drives
    // 16× the TC traffic and makes the eager oracle a multi-hour
    // measurement at 4096 nodes without changing the speedup story.
    let cfg = OlsrConfig { recompute: mode, flood_scope: scope, ..OlsrConfig::rfc_default() };
    let t0 = Instant::now();
    let mut sim =
        placed_sim(n, 1, ScanMode::Grid, delivery, || Box::new(OlsrNode::new(cfg.clone())));
    sim.run_for(SimDuration::from_secs(sim_secs));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let frames = sim.stats().total_sent();
    let delivered = sim.stats().total_received();
    let mut route_runs = 0u64;
    let mut flood = FloodStats::default();
    for id in sim.node_ids().collect::<Vec<_>>() {
        let node = sim.app_as::<OlsrNode>(id).expect("olsr node");
        route_runs += node.recompute_stats().route_runs;
        flood.merge(node.flood_stats());
    }
    let step = (n / STRETCH_SAMPLE).max(1);
    let routes: RouteSnapshot = (0..n)
        .step_by(step)
        .map(|i| {
            let id = NodeId(i as u32);
            let table = sim.app_as::<OlsrNode>(id).expect("olsr node").routing_table();
            (id.0, table.iter().map(|r| (r.dest.0, r.hops)).collect())
        })
        .collect();
    FullStackRun { wall_ms, frames, delivered, route_runs, flood, routes }
}

/// Route stretch of `scoped` relative to `classic`: mean and max
/// `hops_scoped / hops_classic` over the destinations both reach, plus
/// the fraction of classic's destinations scoped still reaches.
fn route_stretch(classic: &RouteSnapshot, scoped: &RouteSnapshot) -> (f64, f64, f64) {
    let (mut sum, mut max, mut count, mut unreached) = (0.0f64, 0.0f64, 0u64, 0u64);
    for ((obs_c, routes_c), (obs_s, routes_s)) in classic.iter().zip(scoped) {
        assert_eq!(obs_c, obs_s, "snapshots sampled different observers");
        // Snapshots come from `RoutingTable::iter`, ascending by dest.
        for &(dest, hops_c) in routes_c {
            match routes_s.binary_search_by_key(&dest, |&(d, _)| d) {
                Ok(i) => {
                    let ratio = f64::from(routes_s[i].1) / f64::from(hops_c);
                    sum += ratio;
                    max = max.max(ratio);
                    count += 1;
                }
                Err(_) => unreached += 1,
            }
        }
    }
    if count == 0 {
        return (f64::NAN, f64::NAN, 0.0);
    }
    let reached = count as f64 / (count + unreached) as f64;
    (sum / count as f64, max, reached)
}

/// What the sharded rows run. `OlsrHello` is the TC-silenced HELLO
/// window the convergence section uses — the representative protocol
/// load. `Beacon` is a protocol-free periodic broadcaster exercising the
/// engine alone: OLSR's per-node routing scratch is dense in global-id
/// space (O(n) per node, O(n²) aggregate — ~300 GB at 100k nodes), so
/// the 100k row measures the event loop, which is what this section is
/// about, rather than OOM on protocol state.
#[derive(Clone, Copy, PartialEq)]
enum ShardWorkload {
    OlsrHello,
    Beacon,
}

impl ShardWorkload {
    fn label(self) -> &'static str {
        match self {
            ShardWorkload::OlsrHello => "olsr_hello",
            ShardWorkload::Beacon => "beacon",
        }
    }
}

/// Broadcasts a fixed frame every 100 ms from a staggered start; every
/// callback is RNG-free, so the sharded loop can loan the whole
/// population to workers.
struct ShardBeacon {
    payload: Bytes,
}

const BEACON_TICK: TimerToken = TimerToken(1);

impl Application for ShardBeacon {
    fn rng_free(&self, _class: CallbackClass) -> bool {
        true
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let off = SimDuration::from_micros(u64::from(ctx.id().0) * 397 % 100_000);
        ctx.set_timer(off, BEACON_TICK);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if timer == BEACON_TICK {
            ctx.broadcast(self.payload.clone());
            ctx.set_timer(SimDuration::from_millis(100), BEACON_TICK);
        }
    }
}

/// One convergence window under the given execution mode and workload:
/// wall ms, frames sent, frames delivered.
fn sharded_window(
    n: usize,
    mode: ExecutionMode,
    workload: ShardWorkload,
    sim_secs: u64,
) -> (f64, u64, u64) {
    let cfg = OlsrConfig {
        tc_interval: SimDuration::from_secs(600),
        refresh_interval: SimDuration::from_secs(1),
        ..OlsrConfig::fast()
    };
    let payload = Bytes::from_static(&[0u8; 64]);
    let arena = topologies::arena_for_mean_degree(n, RANGE, MEAN_DEGREE);
    let mut rng = StdRng::seed_from_u64(1);
    let positions = topologies::random_geometric(n, &arena, &mut rng);
    let t0 = Instant::now();
    let mut sim = SimulatorBuilder::new(1)
        .arena(arena)
        .radio(RadioConfig::unit_disk(RANGE))
        .scan_mode(ScanMode::Grid)
        .delivery_mode(DeliveryMode::Batched)
        .execution_mode(mode)
        .expected_nodes(n)
        .build();
    for &p in &positions {
        let app: Box<dyn Application> = match workload {
            ShardWorkload::OlsrHello => Box::new(OlsrNode::new(cfg.clone())),
            ShardWorkload::Beacon => Box::new(ShardBeacon { payload: payload.clone() }),
        };
        sim.add_node(app, p);
    }
    sim.run_for(SimDuration::from_secs(sim_secs));
    (t0.elapsed().as_secs_f64() * 1e3, sim.stats().total_sent(), sim.stats().total_received())
}

/// Median-of-3 wall time for one (size, mode) cell. The runs are
/// deterministic, so the frame counts must agree across repeats.
fn sharded_median3(
    n: usize,
    mode: ExecutionMode,
    workload: ShardWorkload,
    sim_secs: u64,
) -> (f64, u64, u64) {
    let mut walls = [0.0f64; 3];
    let (mut frames, mut delivered) = (0u64, 0u64);
    for (i, wall) in walls.iter_mut().enumerate() {
        let (w, f, d) = sharded_window(n, mode, workload, sim_secs);
        *wall = w;
        if i == 0 {
            frames = f;
            delivered = d;
        } else {
            assert_eq!((f, d), (frames, delivered), "non-deterministic repeat at n={n}");
        }
    }
    walls.sort_by(f64::total_cmp);
    (walls[1], frames, delivered)
}

struct ShardRow {
    nodes: usize,
    sim_secs: u64,
    workload: ShardWorkload,
    frames: u64,
    delivered: u64,
    serial_ms: f64,
    /// `(workers, median wall ms)` per measured worker count.
    worker_ms: Vec<(usize, f64)>,
}

struct FanOutRow {
    nodes: usize,
    linear_us: f64,
    grid_us: f64,
}

struct ConvergenceRow {
    nodes: usize,
    sim_secs: u64,
    linear_ms: f64,
    grid_ms: f64,
    frames: u64,
}

struct RecomputeRow {
    nodes: usize,
    sim_secs: u64,
    /// `None` for sizes where the eager oracle is unaffordable (10k).
    eager_ms: Option<f64>,
    incremental_ms: f64,
    frames: u64,
    tc_frames_forwarded: u64,
    eager_bfs: Option<u64>,
    incremental_bfs: u64,
}

struct PipelineRow {
    nodes: usize,
    sim_secs: u64,
    frames: u64,
    delivered: u64,
    /// `None` for sizes where the per-frame oracle is skipped on
    /// wall-time grounds (10k).
    per_frame_ms: Option<f64>,
    batched_ms: f64,
}

struct FloodRow {
    nodes: usize,
    sim_secs: u64,
    classic_ms: f64,
    fisheye_ms: f64,
    classic_frames: u64,
    fisheye_frames: u64,
    classic_tc_forwarded: u64,
    fisheye_tc_forwarded: u64,
    fisheye_originated_per_ring: Vec<u64>,
    /// `None` when the window is below one ring cycle (10k): distant
    /// topology has not completed a scoped refresh, so stretch would
    /// measure the bootstrap, not the steady state.
    stretch: Option<(f64, f64, f64)>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let sharded_only = args.iter().any(|a| a == "--sharded-only");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_scale.json", env!("CARGO_MANIFEST_DIR")));

    let (fan_sizes, broadcasts): (&[usize], usize) =
        if smoke { (&[64, 256], 200) } else { (&[256, 1024, 4096, 10_000], 2_000) };
    let (conv_sizes, sim_secs): (&[usize], u64) =
        if smoke { (&[64], 1) } else { (&[256, 1024, 4096, 10_000], 2) };
    // (nodes, sim window, run the eager oracle too?). The 10k row is
    // incremental-only: the point of this pipeline is that the full stack
    // *completes* there, where per-packet recompute was unaffordable.
    let recompute_plan: &[(usize, u64, bool)] = if smoke {
        &[(64, 6, true), (256, 6, true)]
    } else {
        &[(256, 6, true), (1024, 6, true), (4096, 6, true), (10_000, 6, false)]
    };
    // (nodes, sim window, window covers a full ring cycle?). 26 s covers
    // the stride-4 outer ring of the default table (worst-case first
    // network-wide emission at ~25 s) so the classic-vs-fisheye rows at
    // 256–4096 measure the graded steady state and can price route
    // stretch. The 10k row reuses the 6 s recompute window: a full
    // classic cycle there is an hour-class run, so it measures the
    // scoped bootstrap instead and skips the stretch columns.
    let flood_plan: &[(usize, u64, bool)] = if smoke {
        &[(64, 26, true), (256, 26, true)]
    } else {
        &[(256, 26, true), (1024, 26, true), (4096, 26, true), (10_000, 6, false)]
    };
    // (nodes, sim window, run the per-frame oracle too?). The batched
    // side reuses the incremental runs above where the plans coincide,
    // so each row costs one extra (per-frame) run at most. The 10k row
    // is batched-only for the same wall-time reason as the eager oracle.
    let pipeline_plan: &[(usize, u64, bool)] = if smoke {
        &[(64, 6, true), (256, 6, true)]
    } else {
        &[(256, 6, true), (1024, 6, true), (4096, 6, true), (10_000, 6, false)]
    };
    // (nodes, sim window, workload, worker counts). The 100k row is a
    // bootstrap window (1 s, serial vs 4 workers only) on the engine-only
    // beacon workload: the point is that the sharded *loop* completes at
    // a scale an order beyond the rest of the sweep — OLSR itself cannot
    // get there yet (its per-node dense routing scratch is O(n²)
    // aggregate; see ShardWorkload).
    let shard_plan: &[(usize, u64, ShardWorkload, &[usize])] = if smoke {
        &[(64, 1, ShardWorkload::OlsrHello, &[2]), (256, 1, ShardWorkload::OlsrHello, &[2, 4])]
    } else {
        &[
            (1024, 2, ShardWorkload::OlsrHello, &[1, 2, 4, 8]),
            (4096, 2, ShardWorkload::OlsrHello, &[1, 2, 4, 8]),
            (10_000, 2, ShardWorkload::OlsrHello, &[1, 2, 4, 8]),
            (100_000, 1, ShardWorkload::Beacon, &[4]),
        ]
    };

    if sharded_only {
        let shard_rows = run_sharded_section(shard_plan);
        let section = render_sharded(&shard_rows);
        if smoke {
            println!("{{\n{section}}}");
            eprintln!("smoke mode: not writing {out_path}");
        } else {
            let existing =
                std::fs::read_to_string(&out_path).unwrap_or_else(|_| "{\n}\n".to_string());
            std::fs::write(&out_path, splice_sharded(&existing, &section))
                .expect("write BENCH_scale.json");
            eprintln!("spliced sharded_event_loop into {out_path}");
        }
        return;
    }

    let mut fan_rows = Vec::new();
    for &n in fan_sizes {
        let grid_us = fan_out_us(n, ScanMode::Grid, broadcasts);
        let linear_us = fan_out_us(n, ScanMode::Linear, broadcasts);
        eprintln!(
            "fan-out  n={n:>6}: linear {linear_us:>8.3} µs/bcast   grid {grid_us:>8.3} µs/bcast   {:>5.1}×",
            linear_us / grid_us
        );
        fan_rows.push(FanOutRow { nodes: n, linear_us, grid_us });
    }

    let mut conv_rows = Vec::new();
    for &n in conv_sizes {
        let (grid_ms, frames) = convergence_ms(n, ScanMode::Grid, sim_secs);
        let (linear_ms, _) = convergence_ms(n, ScanMode::Linear, sim_secs);
        eprintln!(
            "converge n={n:>6}: linear {linear_ms:>9.0} ms        grid {grid_ms:>9.0} ms        {:>5.2}×  ({frames} frames)",
            linear_ms / grid_ms
        );
        conv_rows.push(ConvergenceRow { nodes: n, sim_secs, linear_ms, grid_ms, frames });
    }

    let mut rec_rows = Vec::new();
    // Incremental+classic runs, kept for reuse as the flood section's
    // classic baseline where the plans share (nodes, window).
    let mut classic_runs: Vec<(usize, u64, FullStackRun)> = Vec::new();
    for &(n, secs, with_eager) in recompute_plan {
        let incr = full_stack(
            n,
            RecomputeMode::Incremental,
            FloodScope::Classic,
            DeliveryMode::Batched,
            secs,
        );
        let (eager_ms, eager_bfs) = if with_eager {
            let eager = full_stack(
                n,
                RecomputeMode::Eager,
                FloodScope::Classic,
                DeliveryMode::Batched,
                secs,
            );
            assert_eq!(
                eager.frames, incr.frames,
                "recompute modes transmitted different frame counts at n={n}"
            );
            (Some(eager.wall_ms), Some(eager.route_runs))
        } else {
            (None, None)
        };
        match eager_ms {
            Some(e) => eprintln!(
                "recompute n={n:>6}: eager {e:>9.0} ms   incremental {:>9.0} ms   {:>5.2}×  ({} frames, {} TC fwd, BFS {} -> {})",
                incr.wall_ms,
                e / incr.wall_ms,
                incr.frames,
                incr.flood.forwarded,
                eager_bfs.unwrap_or(0),
                incr.route_runs,
            ),
            None => eprintln!(
                "recompute n={n:>6}: eager   (skipped: wall time)   incremental {:>9.0} ms          ({} frames, {} TC fwd, BFS {})",
                incr.wall_ms, incr.frames, incr.flood.forwarded, incr.route_runs
            ),
        }
        rec_rows.push(RecomputeRow {
            nodes: n,
            sim_secs: secs,
            eager_ms,
            incremental_ms: incr.wall_ms,
            frames: incr.frames,
            tc_frames_forwarded: incr.flood.forwarded,
            eager_bfs,
            incremental_bfs: incr.route_runs,
        });
        classic_runs.push((n, secs, incr));
    }

    let mut pipe_rows = Vec::new();
    for &(n, secs, with_oracle) in pipeline_plan {
        // The batched side is exactly the incremental+classic run the
        // recompute section already measured; reuse it where the plans
        // share (nodes, window) rather than paying the run twice.
        let (batched_ms, frames, delivered) =
            match classic_runs.iter().find(|&&(rn, rs, _)| rn == n && rs == secs) {
                Some((_, _, run)) => (run.wall_ms, run.frames, run.delivered),
                None => {
                    let run = full_stack(
                        n,
                        RecomputeMode::Incremental,
                        FloodScope::Classic,
                        DeliveryMode::Batched,
                        secs,
                    );
                    (run.wall_ms, run.frames, run.delivered)
                }
            };
        let per_frame_ms = if with_oracle {
            let oracle = full_stack(
                n,
                RecomputeMode::Incremental,
                FloodScope::Classic,
                DeliveryMode::PerFrame,
                secs,
            );
            assert_eq!(
                oracle.frames, frames,
                "delivery modes transmitted different frame counts at n={n}"
            );
            assert_eq!(
                oracle.delivered, delivered,
                "delivery modes delivered different frame counts at n={n}"
            );
            Some(oracle.wall_ms)
        } else {
            None
        };
        let frames_per_sec = delivered as f64 / (batched_ms / 1e3);
        match per_frame_ms {
            Some(p) => eprintln!(
                "pipeline n={n:>6}: per-frame {p:>9.0} ms   batched {batched_ms:>9.0} ms   {:>5.2}×  ({delivered} delivered, {frames_per_sec:.0}/s batched)",
                p / batched_ms
            ),
            None => eprintln!(
                "pipeline n={n:>6}: per-frame (skipped: wall time)   batched {batched_ms:>9.0} ms          ({delivered} delivered, {frames_per_sec:.0}/s batched)"
            ),
        }
        pipe_rows.push(PipelineRow {
            nodes: n,
            sim_secs: secs,
            frames,
            delivered,
            per_frame_ms,
            batched_ms,
        });
    }

    let mut flood_rows = Vec::new();
    for &(n, secs, full_cycle) in flood_plan {
        let classic = match classic_runs.iter().position(|&(rn, rs, _)| rn == n && rs == secs) {
            Some(i) => classic_runs.swap_remove(i).2,
            None => full_stack(
                n,
                RecomputeMode::Incremental,
                FloodScope::Classic,
                DeliveryMode::Batched,
                secs,
            ),
        };
        let fisheye = full_stack(
            n,
            RecomputeMode::Incremental,
            FloodScope::Fisheye(FisheyeRings::default()),
            DeliveryMode::Batched,
            secs,
        );
        let stretch = full_cycle.then(|| route_stretch(&classic.routes, &fisheye.routes));
        let stretch_note = match stretch {
            Some((mean, max, reached)) => {
                format!("stretch mean {mean:.3} max {max:.2} reached {:.1}%", reached * 100.0)
            }
            None => "stretch skipped (window < ring cycle)".to_string(),
        };
        eprintln!(
            "flood    n={n:>6}: classic {:>9.0} ms   fisheye {:>9.0} ms   {:>5.2}×  (TC fwd {} -> {}, {:.2}× fewer; {stretch_note})",
            classic.wall_ms,
            fisheye.wall_ms,
            classic.wall_ms / fisheye.wall_ms,
            classic.flood.forwarded,
            fisheye.flood.forwarded,
            classic.flood.forwarded as f64 / fisheye.flood.forwarded.max(1) as f64,
        );
        flood_rows.push(FloodRow {
            nodes: n,
            sim_secs: secs,
            classic_ms: classic.wall_ms,
            fisheye_ms: fisheye.wall_ms,
            classic_frames: classic.frames,
            fisheye_frames: fisheye.frames,
            classic_tc_forwarded: classic.flood.forwarded,
            fisheye_tc_forwarded: fisheye.flood.forwarded,
            fisheye_originated_per_ring: fisheye.flood.originated_per_ring.clone(),
            stretch,
        });
    }

    let shard_rows = run_sharded_section(shard_plan);

    let json = splice_sharded(
        &render_json(&fan_rows, &conv_rows, &rec_rows, &pipe_rows, &flood_rows, broadcasts),
        &render_sharded(&shard_rows),
    );
    if smoke {
        println!("{json}");
        eprintln!("smoke mode: not writing {out_path}");
    } else {
        std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
        eprintln!("wrote {out_path}");
    }

    // Guard the headline claims. Smoke sizes are small (the 64-node mesh
    // is barely wider than the inner rings), so only the largest smoke
    // row carries the flood assert.
    let flood_assert_at = if smoke { 256 } else { 4096 };
    let row = flood_rows.iter().find(|r| r.nodes == flood_assert_at).expect("flood assert row");
    let reduction = row.classic_tc_forwarded as f64 / row.fisheye_tc_forwarded.max(1) as f64;
    let min_reduction = if smoke { 2.0 } else { 3.0 };
    assert!(
        reduction >= min_reduction,
        "fisheye TC-forward reduction at {flood_assert_at} nodes regressed to {reduction:.2}× (< {min_reduction}×)"
    );
    if !smoke {
        let at_1k = fan_rows.iter().find(|r| r.nodes == 1024).expect("1k row");
        let speedup = at_1k.linear_us / at_1k.grid_us;
        assert!(
            speedup >= 5.0,
            "grid fan-out speedup at 1k nodes regressed to {speedup:.1}× (< 5×)"
        );
        let at_4k = rec_rows.iter().find(|r| r.nodes == 4096).expect("4k recompute row");
        let speedup = at_4k.eager_ms.expect("eager measured at 4k") / at_4k.incremental_ms;
        assert!(
            speedup >= 5.0,
            "incremental recompute speedup at 4096 nodes regressed to {speedup:.1}× (< 5×)"
        );
        let at_10k = rec_rows.iter().find(|r| r.nodes == 10_000).expect("10k recompute row");
        assert!(at_10k.frames > 0, "the 10k-node full-stack convergence run transmitted nothing");
        let wall = row.classic_ms / row.fisheye_ms;
        assert!(
            wall >= 2.0,
            "fisheye wall-clock speedup at 4096 nodes regressed to {wall:.2}× (< 2×)"
        );
        let (mean, _, reached) = row.stretch.expect("stretch measured at 4096");
        assert!(
            mean <= 1.25 && reached >= 0.90,
            "fisheye route quality at 4096 nodes regressed (stretch {mean:.3}, reached {:.1}%)",
            reached * 100.0
        );
        let flood_10k = flood_rows.iter().find(|r| r.nodes == 10_000).expect("10k flood row");
        assert!(
            flood_10k.fisheye_ms < flood_10k.classic_ms,
            "the 10k fisheye run must beat the classic flood wall"
        );
    }

    // Frame-pipeline guard. Byte-identity constrains batching to runs of
    // *consecutive* same-instant deliveries, so the honest contract is
    // parity, not a speedup multiple: the batched default must never cost
    // meaningfully more than the per-frame oracle. The 1.5× ceiling is
    // noise headroom — interleaved repeats of this window swing ±40%
    // wall-to-wall on shared hardware — not an expected cost.
    let pipe_assert_at = if smoke { 256 } else { 4096 };
    let prow = pipe_rows.iter().find(|r| r.nodes == pipe_assert_at).expect("pipeline assert row");
    let per = prow.per_frame_ms.expect("per-frame oracle measured at the assert size");
    assert!(
        prow.batched_ms <= per * 1.5,
        "batched delivery at {pipe_assert_at} nodes cost {:.0} ms vs {per:.0} ms per-frame \
         (> 1.5× even with noise headroom)",
        prow.batched_ms
    );
    if !smoke {
        let p10k = pipe_rows.iter().find(|r| r.nodes == 10_000).expect("10k pipeline row");
        assert!(
            p10k.frames > 0 && p10k.delivered > 0,
            "the 10k-node batched pipeline window moved no traffic"
        );
    }
}

/// Measures every cell of the sharded plan: serial baseline first, then
/// each worker count, asserting byte-identity's visible half (identical
/// frame counts) per cell.
fn run_sharded_section(plan: &[(usize, u64, ShardWorkload, &[usize])]) -> Vec<ShardRow> {
    let mut rows = Vec::new();
    for &(n, secs, workload, counts) in plan {
        let (serial_ms, frames, delivered) =
            sharded_median3(n, ExecutionMode::Serial, workload, secs);
        let mut worker_ms = Vec::new();
        for &w in counts {
            let (ms, f, d) =
                sharded_median3(n, ExecutionMode::Sharded { workers: w }, workload, secs);
            assert_eq!(
                (f, d),
                (frames, delivered),
                "sharded run at n={n} workers={w} moved different frame counts than serial"
            );
            worker_ms.push((w, ms));
        }
        let sweep = worker_ms
            .iter()
            .map(|(w, ms)| format!("{w}w {ms:.0} ms ({:.2}x)", serial_ms / ms))
            .collect::<Vec<_>>()
            .join("   ");
        eprintln!(
            "sharded  n={n:>6} [{}]: serial {serial_ms:>9.0} ms   {sweep}   ({frames} frames)",
            workload.label()
        );
        rows.push(ShardRow {
            nodes: n,
            sim_secs: secs,
            workload,
            frames,
            delivered,
            serial_ms,
            worker_ms,
        });
    }
    rows
}

/// The `sharded_event_loop` JSON section (no outer braces, trailing
/// newline) — appended by the full sweep and spliced over any previous
/// section by `--sharded-only`.
fn render_sharded(rows: &[ShardRow]) -> String {
    let cpus = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let mut s = String::new();
    s.push_str("  \"sharded_event_loop\": {\n");
    s.push_str(&format!("    \"host_cpus\": {cpus},\n"));
    s.push_str(
        "    \"note\": \"conservative-lookahead sharded loop vs the serial oracle, median of 3 runs per cell; byte-identical by contract (tests/shard_equivalence.rs), frame counts asserted per row. Workload olsr_hello = TC-silenced HELLO window; beacon = engine-only periodic broadcast (the 100k row: OLSR per-node routing scratch is O(n^2) aggregate and OOMs at that scale, an open protocol item unrelated to execution mode). On a 1-CPU host a parallel speedup is physically unobtainable, so there these rows price the coordination overhead (loan/replay channels, outcome buffers); rerun on a multi-core host for the scaling curve.\",\n",
    );
    s.push_str("    \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let workers = r
            .worker_ms
            .iter()
            .map(|(w, ms)| {
                format!(
                    "{{ \"workers\": {w}, \"wall_ms\": {ms:.0}, \"serial_over_sharded\": {:.2} }}",
                    r.serial_ms / ms
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let fps = r.delivered as f64 / (r.serial_ms / 1e3);
        s.push_str(&format!(
            "      {{ \"nodes\": {nodes}, \"sim_secs\": {secs}, \"workload\": \"{workload}\", \"frames\": {frames}, \"delivered\": {delivered}, \"serial_wall_ms\": {serial:.0}, \"serial_deliveries_per_sec\": {fps:.0}, \"sharded\": [{workers}] }}{sep}\n",
            nodes = r.nodes,
            secs = r.sim_secs,
            workload = r.workload.label(),
            frames = r.frames,
            delivered = r.delivered,
            serial = r.serial_ms,
        ));
    }
    s.push_str("    ]\n  }\n");
    s
}

/// Splices the sharded section into an existing BENCH document, replacing
/// any previous `sharded_event_loop` (always the last section).
fn splice_sharded(existing: &str, section: &str) -> String {
    let base = match existing.find(",\n  \"sharded_event_loop\"") {
        Some(i) => existing[..i].to_string(),
        None => {
            let t = existing.trim_end();
            let t = t.strip_suffix('}').expect("BENCH json must end with }");
            t.trim_end().to_string()
        }
    };
    let sep = if base.trim_end().ends_with('{') { "" } else { "," };
    format!("{base}{sep}\n{section}}}\n")
}

fn render_json(
    fan: &[FanOutRow],
    conv: &[ConvergenceRow],
    rec: &[RecomputeRow],
    pipe: &[PipelineRow],
    flood: &[FloodRow],
    broadcasts: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"benchmark\": \"spatial-grid radio vs linear scan; incremental vs eager OLSR recompute; fisheye vs classic TC flooding\",\n",
    );
    s.push_str("  \"command\": \"cargo run --release -p trustlink-bench --bin scale\",\n");
    s.push_str(&format!(
        "  \"config\": {{ \"radio_range_m\": {RANGE}, \"mean_degree\": {MEAN_DEGREE}, \"placement\": \"random_geometric\", \"broadcasts_timed\": {broadcasts}, \"fisheye_rings\": [[2, 1], [8, 2], [255, 4]] }},\n"
    ));
    s.push_str("  \"broadcast_fan_out\": [\n");
    for (i, r) in fan.iter().enumerate() {
        let sep = if i + 1 == fan.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{ \"nodes\": {}, \"linear_us_per_broadcast\": {:.3}, \"grid_us_per_broadcast\": {:.3}, \"speedup\": {:.2} }}{sep}\n",
            r.nodes,
            r.linear_us,
            r.grid_us,
            r.linear_us / r.grid_us
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"olsr_convergence\": [\n");
    for (i, r) in conv.iter().enumerate() {
        let sep = if i + 1 == conv.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{ \"nodes\": {}, \"sim_secs\": {}, \"frames\": {}, \"linear_wall_ms\": {:.0}, \"grid_wall_ms\": {:.0}, \"speedup\": {:.2} }}{sep}\n",
            r.nodes,
            r.sim_secs,
            r.frames,
            r.linear_ms,
            r.grid_ms,
            r.linear_ms / r.grid_ms
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"full_stack_recompute\": [\n");
    for (i, r) in rec.iter().enumerate() {
        let sep = if i + 1 == rec.len() { "" } else { "," };
        let (eager, speedup, eager_bfs, skipped) = match (r.eager_ms, r.eager_bfs) {
            (Some(e), Some(b)) => {
                (format!("{e:.0}"), format!("{:.2}", e / r.incremental_ms), b.to_string(), "")
            }
            _ => (
                "null".to_string(),
                "null".to_string(),
                "null".to_string(),
                ", \"skipped_reason\": \"wall_time\"",
            ),
        };
        s.push_str(&format!(
            "    {{ \"nodes\": {nodes}, \"sim_secs\": {secs}, \"frames\": {frames}, \"tc_frames_forwarded\": {tc_fwd}, \"eager_wall_ms\": {eager}, \"incremental_wall_ms\": {incr:.0}, \"speedup\": {speedup}, \"eager_bfs_runs\": {eager_bfs}, \"incremental_bfs_runs\": {incr_bfs}{skipped} }}{sep}\n",
            nodes = r.nodes,
            secs = r.sim_secs,
            frames = r.frames,
            tc_fwd = r.tc_frames_forwarded,
            incr = r.incremental_ms,
            incr_bfs = r.incremental_bfs,
        ));
    }
    s.push_str("  ],\n");
    // Parity rows, not speedup rows: batched-vs-per-frame is byte-identical
    // by contract, which bounds coalescing to consecutive same-instant
    // deliveries; wall ratios here sit inside run-to-run noise.
    s.push_str("  \"frame_pipeline\": [\n");
    for (i, r) in pipe.iter().enumerate() {
        let sep = if i + 1 == pipe.len() { "" } else { "," };
        let frames_per_sec = r.delivered as f64 / (r.batched_ms / 1e3);
        let (per, ratio, skipped) = match r.per_frame_ms {
            Some(p) => (format!("{p:.0}"), format!("{:.2}", p / r.batched_ms), ""),
            None => ("null".to_string(), "null".to_string(), ", \"skipped_reason\": \"wall_time\""),
        };
        s.push_str(&format!(
            "    {{ \"nodes\": {nodes}, \"sim_secs\": {secs}, \"frames_sent\": {frames}, \"frames_delivered\": {delivered}, \"per_frame_wall_ms\": {per}, \"batched_wall_ms\": {b_ms:.0}, \"per_frame_over_batched\": {ratio}, \"batched_deliveries_per_sec\": {frames_per_sec:.0}{skipped} }}{sep}\n",
            nodes = r.nodes,
            secs = r.sim_secs,
            frames = r.frames,
            delivered = r.delivered,
            b_ms = r.batched_ms,
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"fisheye_flood\": [\n");
    for (i, r) in flood.iter().enumerate() {
        let sep = if i + 1 == flood.len() { "" } else { "," };
        let rings =
            r.fisheye_originated_per_ring.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        let stretch = match r.stretch {
            Some((mean, max, reached)) => format!(
                "\"route_stretch_mean\": {mean:.3}, \"route_stretch_max\": {max:.2}, \"route_reached_fraction\": {reached:.3}"
            ),
            None => "\"route_stretch_mean\": null, \"route_stretch_max\": null, \"route_reached_fraction\": null, \"stretch_skipped_reason\": \"window_below_ring_cycle\"".to_string(),
        };
        s.push_str(&format!(
            "    {{ \"nodes\": {nodes}, \"sim_secs\": {secs}, \"classic_wall_ms\": {c_ms:.0}, \"fisheye_wall_ms\": {f_ms:.0}, \"wall_speedup\": {wall:.2}, \"classic_frames\": {c_fr}, \"fisheye_frames\": {f_fr}, \"classic_tc_forwarded\": {c_fwd}, \"fisheye_tc_forwarded\": {f_fwd}, \"tc_forward_reduction\": {red:.2}, \"fisheye_originated_per_ring\": [{rings}], {stretch} }}{sep}\n",
            nodes = r.nodes,
            secs = r.sim_secs,
            c_ms = r.classic_ms,
            f_ms = r.fisheye_ms,
            wall = r.classic_ms / r.fisheye_ms,
            c_fr = r.classic_frames,
            f_fr = r.fisheye_frames,
            c_fwd = r.classic_tc_forwarded,
            f_fwd = r.fisheye_tc_forwarded,
            red = r.classic_tc_forwarded as f64 / r.fisheye_tc_forwarded.max(1) as f64,
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
