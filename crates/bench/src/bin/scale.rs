//! The scaling benchmark: baseline (linear scan) vs spatial-grid radio at
//! 10²–10⁴ nodes, recorded as `BENCH_scale.json` at the repository root.
//!
//! Two measurements per network size:
//!
//! * **broadcast fan-out** — the radio-layer cost this PR attacks: time
//!   per `inject_broadcast` into a network of no-op applications
//!   (scheduling excluded deliveries drained outside the timed region).
//!   This is where the O(n) → O(neighborhood) change shows directly.
//! * **OLSR convergence** — wall time of a short HELLO-driven convergence
//!   window over the same placement, showing what the whole stack costs
//!   end-to-end (protocol processing dominates at scale, so the speedup
//!   here is structurally smaller).
//!
//! Usage:
//!   `cargo run --release -p trustlink-bench --bin scale`             — full sweep, writes BENCH_scale.json
//!   `cargo run --release -p trustlink-bench --bin scale -- --smoke`  — small sizes, stdout only (CI)
//!   `... -- --out <path>`                                            — alternative output path

use std::time::{Duration, Instant};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trustlink_olsr::{OlsrConfig, OlsrNode};
use trustlink_sim::prelude::*;
use trustlink_sim::topologies;

/// Radio range shared by every measurement, metres.
const RANGE: f64 = 150.0;
/// Target mean 1-hop degree of the random geometric placements.
const MEAN_DEGREE: f64 = 10.0;

/// A node that hears everything and does nothing: isolates the radio
/// layer from protocol processing.
struct Sink;
impl Application for Sink {}

fn placed_sim(
    n: usize,
    seed: u64,
    mode: ScanMode,
    app: impl Fn() -> Box<dyn Application>,
) -> Simulator {
    let arena = topologies::arena_for_mean_degree(n, RANGE, MEAN_DEGREE);
    let mut rng = StdRng::seed_from_u64(seed);
    let positions = topologies::random_geometric(n, &arena, &mut rng);
    let mut sim = SimulatorBuilder::new(seed)
        .arena(arena)
        .radio(RadioConfig::unit_disk(RANGE))
        .scan_mode(mode)
        .build();
    for &p in &positions {
        sim.add_node(app(), p);
    }
    sim
}

/// Microseconds per broadcast fan-out: the receiver scan plus delivery
/// scheduling. Injections are timed in chunks of 100 with the delivery
/// events drained *outside* the timed regions, so the event heap stays at
/// its steady-state size and the measurement isolates the fan-out
/// itself. The best chunk is reported — minimum-of-samples is the
/// standard defence against scheduler and interrupt noise.
fn fan_out_us(n: usize, mode: ScanMode, broadcasts: usize) -> f64 {
    const CHUNK: usize = 100;
    let mut sim = placed_sim(n, 1, mode, || Box::new(Sink));
    sim.run_for(SimDuration::from_millis(1)); // consume Start events
    let payload = Bytes::from_static(b"BENCH_FANOUT");
    // Warm up caches and the scratch buffers.
    for k in 0..broadcasts / 4 {
        sim.inject_broadcast(NodeId((k % n) as u16), payload.clone());
    }
    sim.run_for(SimDuration::from_millis(100));
    let mut best = Duration::MAX;
    let mut k = 0;
    while k < broadcasts {
        let t0 = Instant::now();
        for _ in 0..CHUNK {
            sim.inject_broadcast(NodeId((k % n) as u16), payload.clone());
            k += 1;
        }
        best = best.min(t0.elapsed());
        sim.run_for(SimDuration::from_millis(50)); // drain, untimed
    }
    best.as_secs_f64() * 1e6 / CHUNK as f64
}

/// Wall milliseconds to simulate a `sim_secs`-second HELLO-driven
/// convergence window (TCs mostly silenced so the measurement stays
/// neighborhood-scale instead of O(n²) flooding).
fn convergence_ms(n: usize, mode: ScanMode, sim_secs: u64) -> (f64, u64) {
    let cfg = OlsrConfig {
        // TC timers start at a random offset inside the interval, so the
        // interval must dwarf the measured window to keep the O(n²)
        // flood out of it.
        tc_interval: SimDuration::from_secs(600),
        refresh_interval: SimDuration::from_secs(1),
        ..OlsrConfig::fast()
    };
    let t0 = Instant::now();
    let mut sim = placed_sim(n, 1, mode, || Box::new(OlsrNode::new(cfg.clone())));
    sim.run_for(SimDuration::from_secs(sim_secs));
    (t0.elapsed().as_secs_f64() * 1e3, sim.stats().total_sent())
}

struct FanOutRow {
    nodes: usize,
    linear_us: f64,
    grid_us: f64,
}

struct ConvergenceRow {
    nodes: usize,
    sim_secs: u64,
    linear_ms: f64,
    grid_ms: f64,
    frames: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_scale.json", env!("CARGO_MANIFEST_DIR")));

    let (fan_sizes, broadcasts): (&[usize], usize) =
        if smoke { (&[64, 256], 200) } else { (&[256, 1024, 4096, 10_000], 2_000) };
    let (conv_sizes, sim_secs): (&[usize], u64) =
        if smoke { (&[64], 1) } else { (&[256, 1024, 4096], 2) };

    let mut fan_rows = Vec::new();
    for &n in fan_sizes {
        let grid_us = fan_out_us(n, ScanMode::Grid, broadcasts);
        let linear_us = fan_out_us(n, ScanMode::Linear, broadcasts);
        eprintln!(
            "fan-out  n={n:>6}: linear {linear_us:>8.3} µs/bcast   grid {grid_us:>8.3} µs/bcast   {:>5.1}×",
            linear_us / grid_us
        );
        fan_rows.push(FanOutRow { nodes: n, linear_us, grid_us });
    }

    let mut conv_rows = Vec::new();
    for &n in conv_sizes {
        let (grid_ms, frames) = convergence_ms(n, ScanMode::Grid, sim_secs);
        let (linear_ms, _) = convergence_ms(n, ScanMode::Linear, sim_secs);
        eprintln!(
            "converge n={n:>6}: linear {linear_ms:>9.0} ms        grid {grid_ms:>9.0} ms        {:>5.2}×  ({frames} frames)",
            linear_ms / grid_ms
        );
        conv_rows.push(ConvergenceRow { nodes: n, sim_secs, linear_ms, grid_ms, frames });
    }

    let json = render_json(&fan_rows, &conv_rows, broadcasts);
    if smoke {
        println!("{json}");
        eprintln!("smoke mode: not writing {out_path}");
    } else {
        std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
        eprintln!("wrote {out_path}");
    }

    // Guard the headline claim: the grid must beat the linear scan by a
    // wide margin on fan-out at ≥1k nodes (CI smoke skips — sizes differ).
    if !smoke {
        let at_1k = fan_rows.iter().find(|r| r.nodes == 1024).expect("1k row");
        let speedup = at_1k.linear_us / at_1k.grid_us;
        assert!(
            speedup >= 5.0,
            "grid fan-out speedup at 1k nodes regressed to {speedup:.1}× (< 5×)"
        );
    }
}

fn render_json(fan: &[FanOutRow], conv: &[ConvergenceRow], broadcasts: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"spatial-grid radio index vs linear scan\",\n");
    s.push_str("  \"command\": \"cargo run --release -p trustlink-bench --bin scale\",\n");
    s.push_str(&format!(
        "  \"config\": {{ \"radio_range_m\": {RANGE}, \"mean_degree\": {MEAN_DEGREE}, \"placement\": \"random_geometric\", \"broadcasts_timed\": {broadcasts} }},\n"
    ));
    s.push_str("  \"broadcast_fan_out\": [\n");
    for (i, r) in fan.iter().enumerate() {
        let sep = if i + 1 == fan.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{ \"nodes\": {}, \"linear_us_per_broadcast\": {:.3}, \"grid_us_per_broadcast\": {:.3}, \"speedup\": {:.2} }}{sep}\n",
            r.nodes,
            r.linear_us,
            r.grid_us,
            r.linear_us / r.grid_us
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"olsr_convergence\": [\n");
    for (i, r) in conv.iter().enumerate() {
        let sep = if i + 1 == conv.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{ \"nodes\": {}, \"sim_secs\": {}, \"frames\": {}, \"linear_wall_ms\": {:.0}, \"grid_wall_ms\": {:.0}, \"speedup\": {:.2} }}{sep}\n",
            r.nodes,
            r.sim_secs,
            r.frames,
            r.linear_ms,
            r.grid_ms,
            r.linear_ms / r.grid_ms
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
