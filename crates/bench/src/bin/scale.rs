//! The scaling benchmark: baseline (linear scan) vs spatial-grid radio,
//! and eager vs incremental OLSR recompute, at 10²–10⁴ nodes, recorded as
//! `BENCH_scale.json` at the repository root.
//!
//! Three measurements per network size:
//!
//! * **broadcast fan-out** — the radio-layer cost PR 2 attacked: time per
//!   `inject_broadcast` into a network of no-op applications (scheduling
//!   excluded deliveries drained outside the timed region). This is where
//!   the O(n) → O(neighborhood) change shows directly.
//! * **OLSR convergence (TC-silenced)** — wall time of a short HELLO-driven
//!   convergence window over the same placement: the radio-layer speedup
//!   as seen by the whole stack.
//! * **full-stack recompute** — wall time of a HELLO + TC convergence
//!   window with `RecomputeMode::Eager` (the pre-incremental *cadence*:
//!   recompute after every state-changing packet; it shares the
//!   pipeline's change gating and scratch reuse, so the measured speedup
//!   conservatively isolates scheduling) vs `RecomputeMode::Incremental`
//!   (change-aware, debounced). This is the control-plane cost this PR
//!   attacks; the 10k row runs incrementally only — the eager oracle is
//!   measured up to 4096 where it is still affordable.
//!
//! Usage:
//!   `cargo run --release -p trustlink-bench --bin scale`             — full sweep, writes BENCH_scale.json
//!   `cargo run --release -p trustlink-bench --bin scale -- --smoke`  — small sizes, stdout only (CI)
//!   `... -- --out <path>`                                            — alternative output path

use std::time::{Duration, Instant};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trustlink_olsr::{OlsrConfig, OlsrNode, RecomputeMode};
use trustlink_sim::prelude::*;
use trustlink_sim::topologies;

/// Radio range shared by every measurement, metres.
const RANGE: f64 = 150.0;
/// Target mean 1-hop degree of the random geometric placements.
const MEAN_DEGREE: f64 = 10.0;

/// A node that hears everything and does nothing: isolates the radio
/// layer from protocol processing.
struct Sink;
impl Application for Sink {}

fn placed_sim(
    n: usize,
    seed: u64,
    mode: ScanMode,
    app: impl Fn() -> Box<dyn Application>,
) -> Simulator {
    let arena = topologies::arena_for_mean_degree(n, RANGE, MEAN_DEGREE);
    let mut rng = StdRng::seed_from_u64(seed);
    let positions = topologies::random_geometric(n, &arena, &mut rng);
    let mut sim = SimulatorBuilder::new(seed)
        .arena(arena)
        .radio(RadioConfig::unit_disk(RANGE))
        .scan_mode(mode)
        .build();
    for &p in &positions {
        sim.add_node(app(), p);
    }
    sim
}

/// Microseconds per broadcast fan-out: the receiver scan plus delivery
/// scheduling. Injections are timed in chunks of 100 with the delivery
/// events drained *outside* the timed regions, so the event heap stays at
/// its steady-state size and the measurement isolates the fan-out
/// itself. The best chunk is reported — minimum-of-samples is the
/// standard defence against scheduler and interrupt noise.
fn fan_out_us(n: usize, mode: ScanMode, broadcasts: usize) -> f64 {
    const CHUNK: usize = 100;
    let mut sim = placed_sim(n, 1, mode, || Box::new(Sink));
    sim.run_for(SimDuration::from_millis(1)); // consume Start events
    let payload = Bytes::from_static(b"BENCH_FANOUT");
    // Warm up caches and the scratch buffers.
    for k in 0..broadcasts / 4 {
        sim.inject_broadcast(NodeId((k % n) as u16), payload.clone());
    }
    sim.run_for(SimDuration::from_millis(100));
    let mut best = Duration::MAX;
    let mut k = 0;
    while k < broadcasts {
        let t0 = Instant::now();
        for _ in 0..CHUNK {
            sim.inject_broadcast(NodeId((k % n) as u16), payload.clone());
            k += 1;
        }
        best = best.min(t0.elapsed());
        sim.run_for(SimDuration::from_millis(50)); // drain, untimed
    }
    best.as_secs_f64() * 1e6 / CHUNK as f64
}

/// Wall milliseconds to simulate a `sim_secs`-second HELLO-driven
/// convergence window (TCs mostly silenced so the measurement stays
/// neighborhood-scale instead of O(n²) flooding).
fn convergence_ms(n: usize, mode: ScanMode, sim_secs: u64) -> (f64, u64) {
    let cfg = OlsrConfig {
        // TC timers start at a random offset inside the interval, so the
        // interval must dwarf the measured window to keep the O(n²)
        // flood out of it.
        tc_interval: SimDuration::from_secs(600),
        refresh_interval: SimDuration::from_secs(1),
        ..OlsrConfig::fast()
    };
    let t0 = Instant::now();
    let mut sim = placed_sim(n, 1, mode, || Box::new(OlsrNode::new(cfg.clone())));
    sim.run_for(SimDuration::from_secs(sim_secs));
    (t0.elapsed().as_secs_f64() * 1e3, sim.stats().total_sent())
}

/// Wall milliseconds to simulate a `sim_secs`-second *full-stack*
/// convergence window — HELLOs and TCs both flowing — under the given
/// recompute mode. Also reports total frames and the summed MPR/BFS
/// execution counts across all nodes (the work the incremental pipeline
/// avoids).
fn full_stack_ms(n: usize, mode: RecomputeMode, sim_secs: u64) -> (f64, u64, u64, u64) {
    // RFC 3626 §18 default timing (hello 2 s, TC 5 s): the representative
    // deployment cadence. The `fast()` timing used by quick tests drives
    // 16× the TC traffic and makes the eager oracle a multi-hour
    // measurement at 4096 nodes without changing the speedup story; the
    // window below covers a full TC interval so every node originates.
    let cfg = OlsrConfig { recompute: mode, ..OlsrConfig::rfc_default() };
    let t0 = Instant::now();
    let mut sim = placed_sim(n, 1, ScanMode::Grid, || Box::new(OlsrNode::new(cfg.clone())));
    sim.run_for(SimDuration::from_secs(sim_secs));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let frames = sim.stats().total_sent();
    let (mut mpr_runs, mut route_runs) = (0u64, 0u64);
    for id in sim.node_ids().collect::<Vec<_>>() {
        let s = sim.app_as::<OlsrNode>(id).expect("olsr node").recompute_stats();
        mpr_runs += s.mpr_runs;
        route_runs += s.route_runs;
    }
    (wall_ms, frames, mpr_runs, route_runs)
}

struct FanOutRow {
    nodes: usize,
    linear_us: f64,
    grid_us: f64,
}

struct ConvergenceRow {
    nodes: usize,
    sim_secs: u64,
    linear_ms: f64,
    grid_ms: f64,
    frames: u64,
}

struct RecomputeRow {
    nodes: usize,
    sim_secs: u64,
    /// `None` for sizes where the eager oracle is unaffordable (10k).
    eager_ms: Option<f64>,
    incremental_ms: f64,
    frames: u64,
    eager_bfs: Option<u64>,
    incremental_bfs: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_scale.json", env!("CARGO_MANIFEST_DIR")));

    let (fan_sizes, broadcasts): (&[usize], usize) =
        if smoke { (&[64, 256], 200) } else { (&[256, 1024, 4096, 10_000], 2_000) };
    let (conv_sizes, sim_secs): (&[usize], u64) =
        if smoke { (&[64], 1) } else { (&[256, 1024, 4096], 2) };
    // (nodes, sim window, run the eager oracle too?). The 10k row is
    // incremental-only: the point of this pipeline is that the full stack
    // *completes* there, where per-packet recompute was unaffordable.
    let recompute_plan: &[(usize, u64, bool)] = if smoke {
        &[(64, 6, true), (256, 6, true)]
    } else {
        &[(256, 6, true), (1024, 6, true), (4096, 6, true), (10_000, 6, false)]
    };

    let mut fan_rows = Vec::new();
    for &n in fan_sizes {
        let grid_us = fan_out_us(n, ScanMode::Grid, broadcasts);
        let linear_us = fan_out_us(n, ScanMode::Linear, broadcasts);
        eprintln!(
            "fan-out  n={n:>6}: linear {linear_us:>8.3} µs/bcast   grid {grid_us:>8.3} µs/bcast   {:>5.1}×",
            linear_us / grid_us
        );
        fan_rows.push(FanOutRow { nodes: n, linear_us, grid_us });
    }

    let mut conv_rows = Vec::new();
    for &n in conv_sizes {
        let (grid_ms, frames) = convergence_ms(n, ScanMode::Grid, sim_secs);
        let (linear_ms, _) = convergence_ms(n, ScanMode::Linear, sim_secs);
        eprintln!(
            "converge n={n:>6}: linear {linear_ms:>9.0} ms        grid {grid_ms:>9.0} ms        {:>5.2}×  ({frames} frames)",
            linear_ms / grid_ms
        );
        conv_rows.push(ConvergenceRow { nodes: n, sim_secs, linear_ms, grid_ms, frames });
    }

    let mut rec_rows = Vec::new();
    for &(n, secs, with_eager) in recompute_plan {
        let (incr_ms, frames, _, incr_bfs) = full_stack_ms(n, RecomputeMode::Incremental, secs);
        let (eager_ms, eager_bfs) = if with_eager {
            let (ms, eager_frames, _, bfs) = full_stack_ms(n, RecomputeMode::Eager, secs);
            assert_eq!(
                eager_frames, frames,
                "recompute modes transmitted different frame counts at n={n}"
            );
            (Some(ms), Some(bfs))
        } else {
            (None, None)
        };
        match eager_ms {
            Some(e) => eprintln!(
                "recompute n={n:>6}: eager {e:>9.0} ms   incremental {incr_ms:>9.0} ms   {:>5.2}×  ({frames} frames, BFS {} -> {})",
                e / incr_ms,
                eager_bfs.unwrap_or(0),
                incr_bfs,
            ),
            None => eprintln!(
                "recompute n={n:>6}: eager   (skipped)   incremental {incr_ms:>9.0} ms          ({frames} frames, BFS {incr_bfs})"
            ),
        }
        rec_rows.push(RecomputeRow {
            nodes: n,
            sim_secs: secs,
            eager_ms,
            incremental_ms: incr_ms,
            frames,
            eager_bfs,
            incremental_bfs: incr_bfs,
        });
    }

    let json = render_json(&fan_rows, &conv_rows, &rec_rows, broadcasts);
    if smoke {
        println!("{json}");
        eprintln!("smoke mode: not writing {out_path}");
    } else {
        std::fs::write(&out_path, &json).expect("write BENCH_scale.json");
        eprintln!("wrote {out_path}");
    }

    // Guard the headline claims (CI smoke skips — sizes differ):
    // the grid must beat the linear scan by a wide margin on fan-out at
    // ≥1k nodes, and incremental recompute must beat the eager oracle by
    // ≥5× on full-stack convergence at 4096 nodes.
    if !smoke {
        let at_1k = fan_rows.iter().find(|r| r.nodes == 1024).expect("1k row");
        let speedup = at_1k.linear_us / at_1k.grid_us;
        assert!(
            speedup >= 5.0,
            "grid fan-out speedup at 1k nodes regressed to {speedup:.1}× (< 5×)"
        );
        let at_4k = rec_rows.iter().find(|r| r.nodes == 4096).expect("4k recompute row");
        let speedup = at_4k.eager_ms.expect("eager measured at 4k") / at_4k.incremental_ms;
        assert!(
            speedup >= 5.0,
            "incremental recompute speedup at 4096 nodes regressed to {speedup:.1}× (< 5×)"
        );
        let at_10k = rec_rows.iter().find(|r| r.nodes == 10_000).expect("10k recompute row");
        assert!(at_10k.frames > 0, "the 10k-node full-stack convergence run transmitted nothing");
    }
}

fn render_json(
    fan: &[FanOutRow],
    conv: &[ConvergenceRow],
    rec: &[RecomputeRow],
    broadcasts: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"benchmark\": \"spatial-grid radio index vs linear scan; incremental vs eager OLSR recompute\",\n",
    );
    s.push_str("  \"command\": \"cargo run --release -p trustlink-bench --bin scale\",\n");
    s.push_str(&format!(
        "  \"config\": {{ \"radio_range_m\": {RANGE}, \"mean_degree\": {MEAN_DEGREE}, \"placement\": \"random_geometric\", \"broadcasts_timed\": {broadcasts} }},\n"
    ));
    s.push_str("  \"broadcast_fan_out\": [\n");
    for (i, r) in fan.iter().enumerate() {
        let sep = if i + 1 == fan.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{ \"nodes\": {}, \"linear_us_per_broadcast\": {:.3}, \"grid_us_per_broadcast\": {:.3}, \"speedup\": {:.2} }}{sep}\n",
            r.nodes,
            r.linear_us,
            r.grid_us,
            r.linear_us / r.grid_us
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"olsr_convergence\": [\n");
    for (i, r) in conv.iter().enumerate() {
        let sep = if i + 1 == conv.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{ \"nodes\": {}, \"sim_secs\": {}, \"frames\": {}, \"linear_wall_ms\": {:.0}, \"grid_wall_ms\": {:.0}, \"speedup\": {:.2} }}{sep}\n",
            r.nodes,
            r.sim_secs,
            r.frames,
            r.linear_ms,
            r.grid_ms,
            r.linear_ms / r.grid_ms
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"full_stack_recompute\": [\n");
    for (i, r) in rec.iter().enumerate() {
        let sep = if i + 1 == rec.len() { "" } else { "," };
        let (eager, speedup, eager_bfs) = match (r.eager_ms, r.eager_bfs) {
            (Some(e), Some(b)) => {
                (format!("{e:.0}"), format!("{:.2}", e / r.incremental_ms), b.to_string())
            }
            _ => ("null".to_string(), "null".to_string(), "null".to_string()),
        };
        s.push_str(&format!(
            "    {{ \"nodes\": {nodes}, \"sim_secs\": {secs}, \"frames\": {frames}, \"eager_wall_ms\": {eager}, \"incremental_wall_ms\": {incr:.0}, \"speedup\": {speedup}, \"eager_bfs_runs\": {eager_bfs}, \"incremental_bfs_runs\": {incr_bfs} }}{sep}\n",
            nodes = r.nodes,
            secs = r.sim_secs,
            frames = r.frames,
            incr = r.incremental_ms,
            incr_bfs = r.incremental_bfs,
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
