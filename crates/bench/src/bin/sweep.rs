//! The extension experiments: the §IV-C confidence-interval sweep, the
//! ablation suite (`--ablation`), detection latency vs liar fraction
//! (`--latency`) and message overhead (`--overhead`).
//!
//! Usage:
//!   `cargo run -p trustlink-bench --bin sweep [-- --csv]`
//!   `cargo run -p trustlink-bench --bin sweep -- --ablation [--csv]`
//!   `cargo run -p trustlink-bench --bin sweep -- --latency [--csv]`
//!   `cargo run -p trustlink-bench --bin sweep -- --overhead [--csv]`

use trustlink_bench::{emit, paper_config};
use trustlink_core::experiments::{conviction_latency, overhead_comparison};
use trustlink_core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--latency") {
        let fig = conviction_latency(paper_config(), &[0, 1, 2, 3, 4, 5, 6], 25);
        emit(&fig, &args);
        eprintln!("first conviction round per liar fraction:");
        for (x, y) in &fig.series[0].points {
            eprintln!("  {x:>5.1}% liars -> round {y:.0}");
        }
    } else if args.iter().any(|a| a == "--overhead") {
        let fig = overhead_comparison(77, 60);
        emit(&fig, &args);
        let plain = fig.series[0].points[0].1;
        let benign = fig.series[0].points[1].1;
        let attacked = fig.series[0].points[2].1;
        eprintln!("frames per node-second:");
        eprintln!("  plain OLSR           {plain:.2}");
        eprintln!("  detectors, benign    {benign:.2}  (+{:.1}%)", 100.0 * (benign / plain - 1.0));
        eprintln!(
            "  detectors + attacker {attacked:.2}  (+{:.1}%)",
            100.0 * (attacked / plain - 1.0)
        );
    } else if args.iter().any(|a| a == "--ablation") {
        let fig = ablations(paper_config(), 25);
        emit(&fig, &args);
        eprintln!("final Detect per variant:");
        for s in &fig.series {
            eprintln!("  {:>20}: {:+.3}", s.label, s.last_y().unwrap());
        }
    } else {
        let fig = confidence_sweep(&[0.90, 0.95, 0.99], 40);
        emit(&fig, &args);
        eprintln!("margin of error at n=14 witnesses (the paper's roster):");
        for s in &fig.series {
            let at14 =
                s.points.iter().find(|(x, _)| (*x - 14.0).abs() < 1e-9).map(|(_, y)| *y).unwrap();
            eprintln!("  {}: ε = {at14:.3}", s.label);
        }
    }
}
