//! Regenerates **Figure 2 — Impact of the Forgetting Factor**: the attack
//! ceases at round 0, every node behaves well, and trust relaxes toward
//! the default value 0.4 — quickly from above, slowly from below.
//!
//! Usage: `cargo run -p trustlink-bench --bin fig2 [-- --csv]`

use trustlink_bench::{emit, paper_config};
use trustlink_core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Seed contrasting initial values, including formerly-punished liars.
    let cfg = RoundConfig {
        initial_trust: InitialTrust::PerNode(vec![
            -0.8, -0.3, 0.1, 0.25, // former liars (low/negative)
            0.9, 0.75, 0.6, 0.5, 0.45, 0.4, 0.35, 0.3, 0.2, 0.15, // honest
        ]),
        ..paper_config()
    };
    let fig = fig2_forgetting(cfg, 40);
    emit(&fig, &args);

    let mut reached_default_from_above = 0;
    let mut still_below_after_25 = 0;
    for s in &fig.series {
        let start = s.points[0].1;
        let at25 = s.y_at_round(25).unwrap();
        if start > 0.45 && (at25 - 0.4).abs() < 0.06 {
            reached_default_from_above += 1;
        }
        if start < 0.0 && at25 < 0.35 {
            still_below_after_25 += 1;
        }
    }
    eprintln!(
        "paper claim: high/medium initial trust reaches the default 0.4 within 25 rounds -> {reached_default_from_above} series"
    );
    eprintln!(
        "paper claim: deeply-punished nodes have not recovered after 25 rounds -> {still_below_after_25} series"
    );
    assert!(reached_default_from_above >= 3 && still_below_after_25 >= 1);
}
