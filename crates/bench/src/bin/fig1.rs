//! Regenerates **Figure 1 — Trustworthiness**: trust values as seen by the
//! attacked node over 25 investigation rounds (16 nodes, 1 link-spoofing
//! attacker, 4 colluding liars, random initial trust).
//!
//! Usage: `cargo run -p trustlink-bench --bin fig1 [-- --csv]`

use trustlink_bench::{emit, paper_config};
use trustlink_core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fig = fig1_trustworthiness(paper_config(), 25);
    emit(&fig, &args);

    // Tabular summary of the paper's claims.
    let mut liars_monotone = true;
    let mut max_liar = f64::NEG_INFINITY;
    let mut min_honest = f64::INFINITY;
    for s in &fig.series {
        let last = s.last_y().unwrap();
        if s.label.starts_with("liar") {
            max_liar = max_liar.max(last);
            for w in s.points.windows(2) {
                if w[1].1 > w[0].1 + 1e-12 {
                    liars_monotone = false;
                }
            }
        } else {
            min_honest = min_honest.min(last);
        }
    }
    eprintln!("paper claim: liars descend monotonically           -> {liars_monotone}");
    eprintln!(
        "paper claim: liars end distrusted (max liar {max_liar:+.2}), honest stay trusted (min honest {min_honest:+.2})"
    );
    assert!(liars_monotone && max_liar < 0.0 && min_honest > 0.0);
}
