//! # trustlink-core
//!
//! The complete system of *"Trust-enabled Link Spoofing Detection in
//! MANET"* (Alattar, Sailhan, Bourgeois — ICDCS WWASN 2012): a distributed,
//! log- and signature-based intrusion detector for OLSR ad hoc networks,
//! secured by an entropy-based trust system and a confidence-interval
//! indicator.
//!
//! This crate composes the substrates into the paper's agent and its
//! evaluation:
//!
//! * [`detector`] — [`detector::DetectorNode`], one node running OLSR +
//!   log analysis + signatures + cooperative investigation + trust;
//! * [`scenario`] — packet-level networks of detectors with attackers and
//!   liars, and the measurements taken from them;
//! * [`rounds`] — the paper's §V evaluation protocol (abstract
//!   investigation rounds over 16 nodes / 1 attacker / 4 liars);
//! * [`experiments`] — one function per paper figure (1, 2, 3) plus the
//!   confidence-interval sweep and ablations;
//! * [`chart`] / [`csv`] — terminal rendering and CSV export of figures.
//!
//! ## Quickstart
//!
//! ```
//! use trustlink_core::prelude::*;
//!
//! // Reproduce Figure 3 at the paper's scale (16 nodes, liars sweeping).
//! let fig = fig3_liar_impact(RoundConfig::default(), &paper_liar_counts(), 25);
//! for series in &fig.series {
//!     let last = series.last_y().unwrap();
//!     assert!(last < -0.7, "{} should converge below -0.7", series.label);
//! }
//! println!("{}", trustlink_core::chart::render(&fig, 64, 16));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod csv;
pub mod detector;
pub mod experiments;
pub mod gossip;
pub mod replay;
pub mod rounds;
pub mod scenario;

/// Glob-import of the system's main types and experiment entry points.
pub mod prelude {
    pub use crate::detector::{DetectorConfig, DetectorNode, VerdictRecord, TIMER_ANALYSIS};
    pub use crate::experiments::{
        ablations, confidence_sweep, fig1_trustworthiness, fig2_forgetting, fig3_liar_impact,
        fig3_liar_impact_banded, liar_coalition_sweep, paper_liar_counts, Figure, Series,
    };
    pub use crate::gossip::TrustGossip;
    pub use crate::replay::{record_scenario, replay_recording, ReplayReport};
    pub use crate::rounds::{
        InitialTrust, RoleKind, RoundConfig, RoundEngine, RoundTrace, WitnessTrace,
    };
    pub use crate::scenario::{ScenarioBuilder, ScenarioReport, Topology};
    pub use trustlink_attacks::prelude::*;
    pub use trustlink_olsr::prelude::*;
    pub use trustlink_sim::prelude::*;
    pub use trustlink_trust::prelude::*;
}

pub use detector::{DetectorConfig, DetectorNode, VerdictRecord};
pub use experiments::{Figure, Series};
pub use replay::{record_scenario, replay_recording, ReplayReport};
pub use rounds::{RoundConfig, RoundEngine, RoundTrace};
pub use scenario::{ScenarioBuilder, ScenarioReport, Topology};
