//! A small ASCII line-chart renderer for [`Figure`]s, so the figure
//! binaries can show the paper's plots directly in a terminal.

use crate::experiments::Figure;

/// Renders `figure` as an ASCII chart of roughly `width` × `height`
/// characters (plus axes and legend).
///
/// Each series is drawn with its own glyph; later series overwrite earlier
/// ones where they collide (collisions show `*`).
pub fn render(figure: &Figure, width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let glyphs = ['o', '+', 'x', '#', '@', '%', '&', '=', '~', '^'];

    // Bounds.
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for s in &figure.series {
        for &(x, y) in &s.points {
            if !y.is_finite() {
                continue;
            }
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
    }
    if !min_x.is_finite() {
        return format!("{}\n(no finite data)\n", figure.title);
    }
    if (max_y - min_y).abs() < 1e-12 {
        max_y = min_y + 1.0;
    }
    if (max_x - min_x).abs() < 1e-12 {
        max_x = min_x + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in figure.series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in &s.points {
            if !y.is_finite() {
                continue;
            }
            let cx = ((x - min_x) / (max_x - min_x) * (width - 1) as f64).round() as usize;
            let cy = ((y - min_y) / (max_y - min_y) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            let cell = &mut grid[row][cx.min(width - 1)];
            *cell = if *cell == ' ' || *cell == glyph { glyph } else { '*' };
        }
    }

    let mut out = String::new();
    out.push_str(&figure.title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_here = max_y - (max_y - min_y) * i as f64 / (height - 1) as f64;
        let line: String = row.iter().collect();
        out.push_str(&format!("{y_here:>8.2} |{line}\n"));
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>8}  {:<w$.2}{:>r$.2}\n",
        figure.y_label,
        min_x,
        max_x,
        w = width / 2,
        r = width - width / 2
    ));
    out.push_str(&format!("x: {}\n", figure.x_label));
    for (si, s) in figure.series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", glyphs[si % glyphs.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Series;

    fn figure() -> Figure {
        Figure {
            title: "Test".into(),
            x_label: "round".into(),
            y_label: "trust".into(),
            series: vec![
                Series { label: "up".into(), points: vec![(1.0, 0.0), (2.0, 0.5), (3.0, 1.0)] },
                Series { label: "down".into(), points: vec![(1.0, 1.0), (2.0, 0.5), (3.0, 0.0)] },
            ],
        }
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let out = render(&figure(), 40, 10);
        assert!(out.contains("Test"));
        assert!(out.contains("x: round"));
        assert!(out.contains("o up"));
        assert!(out.contains("+ down"));
        // Collision where the lines cross.
        assert!(out.contains('*'), "no collision marker:\n{out}");
    }

    #[test]
    fn handles_empty_and_flat_data() {
        let empty =
            Figure { title: "E".into(), x_label: "x".into(), y_label: "y".into(), series: vec![] };
        assert!(render(&empty, 40, 10).contains("no finite data"));

        let flat = Figure {
            title: "F".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series { label: "c".into(), points: vec![(1.0, 0.4), (2.0, 0.4)] }],
        };
        let out = render(&flat, 40, 10);
        assert!(out.contains('o'));
    }

    #[test]
    fn infinite_values_skipped() {
        let fig = Figure {
            title: "I".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series {
                label: "s".into(),
                points: vec![(1.0, f64::INFINITY), (2.0, 1.0), (3.0, 2.0)],
            }],
        };
        let out = render(&fig, 30, 8);
        assert!(out.contains('o'));
    }

    #[test]
    fn minimum_dimensions_enforced() {
        let out = render(&figure(), 1, 1);
        assert!(out.lines().count() >= 6);
    }
}
