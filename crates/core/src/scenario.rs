//! Packet-level scenarios: full networks of detector nodes with attackers
//! and liars, on the `trustlink-sim` radio.
//!
//! Where [`crate::rounds`] reproduces the paper's abstract evaluation
//! protocol, a [`Scenario`] validates the whole stack end-to-end: OLSR
//! converges, the attacker's forged HELLOs really trigger E1/E2 in other
//! nodes' *logs*, investigations really ride the data plane around the
//! suspect, and verdicts come out of rule (10).

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use trustlink_attacks::liar::LiarPolicy;
use trustlink_attacks::spoof::LinkSpoofing;
use trustlink_olsr::types::{FloodScope, OlsrConfig, RecomputeMode};
use trustlink_sim::{
    topologies, Arena, ChannelModel, DeliveryMode, ExecutionMode, MobilityModel, NodeId, Position,
    RadioConfig, ScanMode, SimDuration, Simulator, SimulatorBuilder,
};

use crate::detector::{DetectorConfig, DetectorNode, VerdictRecord};
use trustlink_trust::decision::Verdict;

/// Node placement for a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// A line with the given spacing in metres.
    Line {
        /// Distance between consecutive nodes.
        spacing: f64,
    },
    /// A grid with `cols` columns and the given spacing.
    Grid {
        /// Number of columns.
        cols: usize,
        /// Spacing in metres.
        spacing: f64,
    },
    /// A circle of the given radius.
    Ring {
        /// Circle radius in metres.
        radius: f64,
    },
    /// Random positions in an arena, re-sampled until connected at the
    /// radio's maximum range.
    RandomConnected {
        /// Arena width and height in metres.
        arena: (f64, f64),
    },
    /// Uniformly random positions with no connectivity re-sampling — the
    /// placement for large (10³–10⁴ node) scenarios, where the O(n²)
    /// connectivity check is unaffordable. The arena is sized for the
    /// requested mean 1-hop degree at the radio's maximum range (see
    /// [`topologies::arena_for_mean_degree`]), which makes connectivity
    /// overwhelmingly likely without ever checking it.
    RandomGeometric {
        /// Target mean number of 1-hop neighbors per node.
        mean_degree: f64,
    },
}

/// Builder for a packet-level scenario.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    seed: u64,
    n: usize,
    topology: Topology,
    radio: RadioConfig,
    olsr: OlsrConfig,
    detector: DetectorConfig,
    attackers: BTreeMap<usize, LinkSpoofing>,
    liars: BTreeMap<usize, LiarPolicy>,
    duration: SimDuration,
    scan_mode: ScanMode,
    delivery_mode: DeliveryMode,
    execution_mode: ExecutionMode,
    arena_override: Option<(f64, f64)>,
    mobility: MobilityModel,
    mobility_tick: Option<SimDuration>,
    channel: Option<ChannelModel>,
}

impl ScenarioBuilder {
    /// Starts a scenario of `n` nodes with the given seed.
    pub fn new(seed: u64, n: usize) -> Self {
        ScenarioBuilder {
            seed,
            n,
            topology: Topology::Grid { cols: 4, spacing: 100.0 },
            radio: RadioConfig::unit_disk(150.0),
            olsr: OlsrConfig::fast(),
            detector: DetectorConfig::default(),
            attackers: BTreeMap::new(),
            liars: BTreeMap::new(),
            duration: SimDuration::from_secs(60),
            scan_mode: ScanMode::default(),
            delivery_mode: DeliveryMode::default(),
            execution_mode: ExecutionMode::default(),
            arena_override: None,
            mobility: MobilityModel::Stationary,
            mobility_tick: None,
            channel: None,
        }
    }

    /// Sets the placement.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Sets the radio.
    pub fn radio(mut self, r: RadioConfig) -> Self {
        self.radio = r;
        self
    }

    /// Sets the OLSR configuration used by every node.
    pub fn olsr(mut self, c: OlsrConfig) -> Self {
        self.olsr = c;
        self
    }

    /// Sets the detector configuration used by every node.
    pub fn detector(mut self, c: DetectorConfig) -> Self {
        self.detector = c;
        self
    }

    /// Makes node `index` a link-spoofing attacker.
    pub fn attacker(mut self, index: usize, spoofing: LinkSpoofing) -> Self {
        self.attackers.insert(index, spoofing);
        self
    }

    /// Makes node `index` answer investigations per `policy`.
    pub fn liar(mut self, index: usize, policy: LiarPolicy) -> Self {
        self.liars.insert(index, policy);
        self
    }

    /// Sets the simulated duration.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.duration = d;
        self
    }

    /// Selects the radio's receiver-scan mode ([`ScanMode::Grid`] by
    /// default). [`ScanMode::Linear`] is the O(n) reference path kept for
    /// equivalence testing and baseline benchmarking; both replay
    /// byte-identically per seed.
    pub fn scan_mode(mut self, mode: ScanMode) -> Self {
        self.scan_mode = mode;
        self
    }

    /// Selects how the radio hands received frames to the stack
    /// ([`DeliveryMode::Batched`] by default). [`DeliveryMode::PerFrame`]
    /// is the one-event-per-frame oracle kept for equivalence testing and
    /// baseline benchmarking; both replay byte-identically per seed.
    pub fn delivery_mode(mut self, mode: DeliveryMode) -> Self {
        self.delivery_mode = mode;
        self
    }

    /// Selects how the event loop executes ([`ExecutionMode::Serial`] by
    /// default). [`ExecutionMode::Sharded`] partitions nodes across worker
    /// shards along spatial-grid cells and runs bounded time epochs in
    /// parallel; both replay byte-identically per seed at any worker count
    /// (see `tests/shard_equivalence.rs`).
    pub fn execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.execution_mode = mode;
        self
    }

    /// Selects the OLSR recompute scheduling used by every node
    /// ([`RecomputeMode::Incremental`] by default). [`RecomputeMode::Eager`]
    /// is the per-packet-recompute oracle kept for equivalence testing and
    /// baseline benchmarking; both transmit byte-identical frames per seed.
    pub fn recompute_mode(mut self, mode: RecomputeMode) -> Self {
        self.olsr.recompute = mode;
        self
    }

    /// Selects how far every node's TCs flood ([`FloodScope::Classic`] by
    /// default). [`FloodScope::Fisheye`] is the graded-scope fast path;
    /// unlike the other oracle pairs it is *not* byte-identical to
    /// classic — the pinned contract is quantitative (identical
    /// convictions, bounded route stretch, fewer forwarded TC frames; see
    /// `tests/fisheye_equivalence.rs`).
    pub fn flood_scope(mut self, scope: FloodScope) -> Self {
        self.olsr.flood_scope = scope;
        self
    }

    /// Attaches a per-link [`ChannelModel`] (edge latency/loss overrides,
    /// Gilbert–Elliott burst fading). Off by default; channel-model-off
    /// runs stay byte-identical to builds without the channel layer.
    pub fn channel(mut self, model: ChannelModel) -> Self {
        self.channel = Some(model);
        self
    }

    /// Applies a mobility model to every node (topologies give the initial
    /// placement). Opens the churn scenarios the paper leaves out: the
    /// mobile detection-latency suite rides on this knob.
    pub fn mobility(mut self, model: MobilityModel) -> Self {
        self.mobility = model;
        self
    }

    /// Overrides the mobility tick granularity (default 500 ms).
    pub fn mobility_tick(mut self, tick: SimDuration) -> Self {
        self.mobility_tick = Some(tick);
        self
    }

    /// Overrides the simulation arena dimensions.
    ///
    /// By default the arena is derived from the topology (random
    /// placements use their own sampling arena; fixed placements get a
    /// generous fixed arena). Large topologies should size the arena —
    /// it bounds the spatial index — to the region the nodes actually
    /// occupy.
    pub fn arena_size(mut self, width: f64, height: f64) -> Self {
        self.arena_override = Some((width, height));
        self
    }

    fn sampling_arena(&self) -> Option<Arena> {
        match &self.topology {
            Topology::RandomConnected { arena } => Some(Arena::new(arena.0, arena.1)),
            Topology::RandomGeometric { mean_degree } => Some(topologies::arena_for_mean_degree(
                self.n,
                self.radio.propagation.max_range(),
                *mean_degree,
            )),
            _ => None,
        }
    }

    fn positions(&self, rng: &mut StdRng) -> Vec<Position> {
        match &self.topology {
            Topology::Line { spacing } => topologies::line(self.n, *spacing),
            Topology::Grid { cols, spacing } => topologies::grid(self.n, *cols, *spacing),
            Topology::Ring { radius } => topologies::ring(self.n, *radius),
            Topology::RandomConnected { .. } => {
                let arena = self.sampling_arena().expect("random topology has an arena");
                let range = self.radio.propagation.max_range();
                topologies::random_connected(self.n, &arena, range, rng, 10_000)
            }
            Topology::RandomGeometric { .. } => {
                let arena = self.sampling_arena().expect("random topology has an arena");
                topologies::random_geometric(self.n, &arena, rng)
            }
        }
    }

    /// Builds and runs the scenario to completion.
    pub fn run(self) -> ScenarioReport {
        let mut placement_rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x9E37));
        let positions = self.positions(&mut placement_rng);
        let arena = match self.arena_override {
            Some((w, h)) => Arena::new(w, h),
            None => self.sampling_arena().unwrap_or_else(|| Arena::new(100_000.0, 100_000.0)),
        };
        let mut builder = SimulatorBuilder::new(self.seed)
            .radio(self.radio.clone())
            .arena(arena)
            .scan_mode(self.scan_mode)
            .delivery_mode(self.delivery_mode)
            .execution_mode(self.execution_mode)
            .expected_nodes(self.n);
        if let Some(tick) = self.mobility_tick {
            builder = builder.mobility_tick(tick);
        }
        if let Some(model) = self.channel.clone() {
            builder = builder.channel_model(model);
        }
        let mut sim = builder.build();
        for (i, pos) in positions.iter().enumerate() {
            if let Some(spoofing) = self.attackers.get(&i) {
                // Attackers run the detector stack too (every node hosts the
                // IDS), but their OLSR substrate misbehaves.
                let node = DetectorNode::with_hooks(
                    self.olsr.clone(),
                    self.detector.clone(),
                    spoofing.clone(),
                );
                sim.add_mobile_node(Box::new(node), *pos, self.mobility.clone());
            } else {
                let mut cfg = self.detector.clone();
                if let Some(policy) = self.liars.get(&i) {
                    cfg.liar_policy = policy.clone();
                }
                let node = DetectorNode::new(self.olsr.clone(), cfg);
                sim.add_mobile_node(Box::new(node), *pos, self.mobility.clone());
            }
        }
        sim.run_for(self.duration);
        ScenarioReport::collect(
            sim,
            self.attackers.keys().map(|&i| NodeId(i as u32)).collect(),
            self.liars.keys().map(|&i| NodeId(i as u32)).collect(),
            self.duration,
        )
    }
}

/// Everything measured in one scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// The simulator in its final state (for custom inspection).
    pub sim: Simulator,
    /// The configured attackers.
    pub attackers: Vec<NodeId>,
    /// The configured liars.
    pub liars: Vec<NodeId>,
    /// `(observer, verdict)` pairs from every detector.
    pub verdicts: Vec<(NodeId, VerdictRecord)>,
    /// Simulated duration.
    pub duration: SimDuration,
}

impl ScenarioReport {
    fn collect(
        sim: Simulator,
        attackers: Vec<NodeId>,
        liars: Vec<NodeId>,
        duration: SimDuration,
    ) -> Self {
        let mut verdicts = Vec::new();
        for id in sim.node_ids().collect::<Vec<_>>() {
            let records: Option<Vec<VerdictRecord>> =
                if let Some(d) = sim.app_as::<DetectorNode>(id) {
                    Some(d.verdicts().to_vec())
                } else {
                    sim.app_as::<DetectorNode<LinkSpoofing>>(id).map(|d| d.verdicts().to_vec())
                };
            if let Some(records) = records {
                for r in records {
                    verdicts.push((id, r));
                }
            }
        }
        ScenarioReport { sim, attackers, liars, verdicts, duration }
    }

    /// Intruder verdicts against `suspect`, as `(observer, record)` pairs.
    pub fn convictions_of(&self, suspect: NodeId) -> Vec<&(NodeId, VerdictRecord)> {
        self.verdicts
            .iter()
            .filter(|(_, r)| r.suspect == suspect && r.verdict == Verdict::Intruder)
            .collect()
    }

    /// `true` when at least one node condemned `attacker`.
    pub fn detected(&self, attacker: NodeId) -> bool {
        !self.convictions_of(attacker).is_empty()
    }

    /// Earliest conviction time of `attacker`, if any.
    pub fn first_detection(&self, attacker: NodeId) -> Option<trustlink_sim::SimTime> {
        self.convictions_of(attacker).iter().map(|(_, r)| r.at).min()
    }

    /// Intruder verdicts against nodes that are *not* configured attackers
    /// (false positives).
    pub fn false_positives(&self) -> Vec<&(NodeId, VerdictRecord)> {
        self.verdicts
            .iter()
            .filter(|(_, r)| r.verdict == Verdict::Intruder && !self.attackers.contains(&r.suspect))
            .collect()
    }

    /// Total frames transmitted during the run (control + data + attack).
    pub fn total_sent(&self) -> u64 {
        self.sim.stats().total_sent()
    }

    /// Total payload bytes transmitted.
    pub fn total_bytes(&self) -> u64 {
        self.sim.stats().total_bytes_sent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_attacks::spoof::SpoofVariant;

    fn test_detector() -> DetectorConfig {
        DetectorConfig {
            analysis_interval: SimDuration::from_millis(500),
            investigation: trustlink_ids::investigation::InvestigationConfig {
                timeout: SimDuration::from_secs(3),
                max_witnesses: 16,
            },
            warmup: SimDuration::from_secs(10),
            trust_slot_interval: SimDuration::from_secs(3),
            ..DetectorConfig::default()
        }
    }

    #[test]
    fn benign_grid_produces_no_convictions() {
        let report = ScenarioBuilder::new(7, 9)
            .topology(Topology::Grid { cols: 3, spacing: 100.0 })
            .detector(test_detector())
            .duration(SimDuration::from_secs(40))
            .run();
        assert!(report.false_positives().is_empty(), "{:?}", report.false_positives());
        assert!(report.verdicts.iter().all(|(_, r)| r.verdict != Verdict::Intruder));
    }

    #[test]
    fn random_geometric_scenario_runs_at_scale() {
        let report = ScenarioBuilder::new(21, 64)
            .topology(Topology::RandomGeometric { mean_degree: 10.0 })
            .detector(test_detector())
            .duration(SimDuration::from_secs(12))
            .run();
        assert_eq!(report.sim.node_count(), 64);
        assert!(report.total_sent() > 0, "a 64-node network must produce traffic");
        // The derived arena must actually contain every node.
        let ids: Vec<NodeId> = report.sim.node_ids().collect();
        assert!(ids.iter().all(|&id| {
            let p = report.sim.position(id);
            p.x.is_finite() && p.y.is_finite()
        }));
    }

    #[test]
    fn scan_modes_share_one_determinism_contract() {
        let run = |mode: ScanMode| {
            ScenarioBuilder::new(33, 9)
                .topology(Topology::Grid { cols: 3, spacing: 100.0 })
                .detector(test_detector())
                .scan_mode(mode)
                .duration(SimDuration::from_secs(20))
                .run()
        };
        let grid = run(ScanMode::Grid);
        let linear = run(ScanMode::Linear);
        assert_eq!(grid.verdicts, linear.verdicts);
        assert_eq!(grid.total_sent(), linear.total_sent());
        assert_eq!(grid.total_bytes(), linear.total_bytes());
    }

    #[test]
    fn spoofing_attacker_is_detected_in_packets() {
        // 3x3 grid, attacker in a corner advertising a phantom node.
        let report = ScenarioBuilder::new(11, 9)
            .topology(Topology::Grid { cols: 3, spacing: 100.0 })
            .detector(test_detector())
            .attacker(
                8,
                LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent {
                    fake: vec![NodeId(99)],
                }),
            )
            .duration(SimDuration::from_secs(90))
            .run();
        assert!(
            report.detected(NodeId(8)),
            "attacker escaped detection; verdicts: {:?}",
            report.verdicts
        );
        assert!(report.false_positives().is_empty());
    }

    #[test]
    fn detection_survives_liars() {
        let report = ScenarioBuilder::new(13, 9)
            .topology(Topology::Grid { cols: 3, spacing: 100.0 })
            .detector(test_detector())
            .attacker(
                4, // center node: everyone's MPR candidate
                LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent {
                    fake: vec![NodeId(55)],
                }),
            )
            .liar(1, LiarPolicy::CoverFor { accomplices: vec![NodeId(4)] })
            .liar(3, LiarPolicy::CoverFor { accomplices: vec![NodeId(4)] })
            .duration(SimDuration::from_secs(120))
            .run();
        assert!(report.detected(NodeId(4)), "verdicts: {:?}", report.verdicts);
    }
}
