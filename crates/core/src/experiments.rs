//! The paper's experiments, one function per figure, plus the ablations.
//!
//! Every function returns a [`Figure`] — labelled series ready for the
//! ASCII chart renderer, the CSV writer and the benchmark harness. The
//! mapping to the paper:
//!
//! | Function | Paper | Shape being reproduced |
//! |----------|-------|------------------------|
//! | [`fig1_trustworthiness`] | Figure 1 | liars' trust decreases monotonically regardless of initial value; honest nodes drift up |
//! | [`fig2_forgetting`] | Figure 2 | after the attack ceases, trust relaxes to the default 0.4; recovery from below is slow |
//! | [`fig3_liar_impact`] | Figure 3 | more liars ⇒ slower descent of `Detect`; ≤ −0.4 by round 10 even at ≈43% liars; ≈ −0.8 for all by round 25 |
//! | [`confidence_sweep`] | §IV-C | margin shrinks with √n, grows with confidence level |
//! | [`ablations`] | §V discussion | what breaks without each mechanism |

use trustlink_trust::confidence::margin_of_error;
use trustlink_trust::Verdict;

use crate::rounds::{RoleKind, RoundConfig, RoundEngine, RoundTrace};

/// Runs the configurations across a `std::thread::scope` worker pool (one
/// worker per available core, pulling work from a shared index so a slow
/// run never idles the other cores) and returns the traces in input
/// order. Each run is a pure function of its configuration (seed
/// included), so the parallel sweep is bit-identical to the serial one —
/// only wall time changes.
fn run_rounds_parallel(cfgs: Vec<RoundConfig>, rounds: u32) -> Vec<RoundTrace> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    if cfgs.is_empty() {
        return Vec::new();
    }
    let width = std::thread::available_parallelism().map_or(4, |n| n.get()).min(cfgs.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RoundTrace>>> = cfgs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..width {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cfg) = cfgs.get(i) else { break };
                let trace = RoundEngine::new(cfg.clone()).run(rounds);
                *slots[i].lock().expect("result slot poisoned") = Some(trace);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("worker filled every slot"))
        .collect()
}

/// One labelled line of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from y-values indexed by round (x = 1-based round).
    pub fn from_rounds(label: impl Into<String>, ys: &[f64]) -> Self {
        Series {
            label: label.into(),
            points: ys.iter().enumerate().map(|(i, &y)| ((i + 1) as f64, y)).collect(),
        }
    }

    /// The final y value.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// The y value at 1-based round `r`.
    pub fn y_at_round(&self, r: usize) -> Option<f64> {
        self.points.get(r - 1).map(|&(_, y)| y)
    }
}

/// A complete figure: titled, labelled series.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Title (includes the paper figure number).
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Looks a series up by label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// **Figure 1 — Trustworthiness.** Trust values, as seen by the attacked
/// node, for every witness over `rounds` investigation rounds (16 nodes,
/// 1 attacker, 4 liars, random initial trust).
pub fn fig1_trustworthiness(cfg: RoundConfig, rounds: u32) -> Figure {
    let trace = RoundEngine::new(cfg).run(rounds);
    let mut series = Vec::new();
    for w in &trace.witnesses {
        let role = match w.role {
            RoleKind::Liar => "liar",
            RoleKind::Honest => "honest",
        };
        series.push(Series::from_rounds(
            format!("{role} S{} (t0={:.2})", w.index, w.initial_trust),
            &w.trust,
        ));
    }
    Figure {
        title: "Figure 1: Trustworthiness".to_string(),
        x_label: "investigation round".to_string(),
        y_label: "trust value".to_string(),
        series,
    }
}

/// **Figure 2 — Impact of the forgetting factor.** The attack ceases at
/// round 0; trust of nodes with varied initial values relaxes toward the
/// default 0.4 under the forgetting factor.
pub fn fig2_forgetting(cfg: RoundConfig, rounds: u32) -> Figure {
    let cfg = RoundConfig {
        attack_rounds: 0..0, // the attack has ceased
        ..cfg
    };
    let trace = RoundEngine::new(cfg).run(rounds);
    let mut series = Vec::new();
    for w in &trace.witnesses {
        let role = match w.role {
            RoleKind::Liar => "former liar",
            RoleKind::Honest => "well-behaving",
        };
        series.push(Series::from_rounds(
            format!("{role} S{} (t0={:.2})", w.index, w.initial_trust),
            &w.trust,
        ));
    }
    Figure {
        title: "Figure 2: Impact of the Forgetting Factor on the Trustworthiness".to_string(),
        x_label: "round".to_string(),
        y_label: "trust value".to_string(),
        series,
    }
}

/// **Figure 3 — Impact of liars on the detection.** The investigation
/// result `Detect(A, I)` per round for several liar counts; labels carry
/// the liar percentage among the witnesses.
pub fn fig3_liar_impact(base: RoundConfig, liar_counts: &[usize], rounds: u32) -> Figure {
    let witnesses = base.n_nodes - 2;
    let cfgs: Vec<RoundConfig> =
        liar_counts.iter().map(|&n_liars| RoundConfig { n_liars, ..base.clone() }).collect();
    let traces = run_rounds_parallel(cfgs, rounds);
    let series = liar_counts
        .iter()
        .zip(&traces)
        .map(|(&n_liars, trace)| {
            let pct = 100.0 * n_liars as f64 / witnesses as f64;
            Series::from_rounds(format!("{pct:.1}% liars"), &trace.detect)
        })
        .collect();
    Figure {
        title: "Figure 3: Impact of liars on the detection".to_string(),
        x_label: "investigation round".to_string(),
        y_label: "Detect(A,I)".to_string(),
        series,
    }
}

/// **Figure 3 with confidence bands**: the liar-impact sweep repeated over
/// `seeds` (≥ 5 recommended) instead of a single RNG draw, every
/// `(liar count, seed)` run fanned out across `std::thread::scope`
/// threads. Per liar count, three series are emitted — `… (mean)`,
/// `… (min)` and `… (max)` of `Detect(A, I)` per round — so the paper's
/// Figure 3 shape claims can be read against run-to-run spread rather
/// than one trajectory.
pub fn fig3_liar_impact_banded(
    base: RoundConfig,
    liar_counts: &[usize],
    rounds: u32,
    seeds: &[u64],
) -> Figure {
    assert!(!seeds.is_empty(), "banded sweep needs at least one seed");
    let witnesses = base.n_nodes - 2;
    // One run per (liar count, seed), flattened in deterministic order.
    let cfgs: Vec<RoundConfig> = liar_counts
        .iter()
        .flat_map(|&n_liars| seeds.iter().map(move |&seed| (n_liars, seed)).collect::<Vec<_>>())
        .map(|(n_liars, seed)| RoundConfig { n_liars, seed, ..base.clone() })
        .collect();
    let traces = run_rounds_parallel(cfgs, rounds);
    let mut series = Vec::new();
    for (li, &n_liars) in liar_counts.iter().enumerate() {
        let pct = 100.0 * n_liars as f64 / witnesses as f64;
        let group = &traces[li * seeds.len()..(li + 1) * seeds.len()];
        let n_rounds = group[0].detect.len();
        let mut mean = vec![0.0; n_rounds];
        let mut min = vec![f64::INFINITY; n_rounds];
        let mut max = vec![f64::NEG_INFINITY; n_rounds];
        for trace in group {
            for (r, &d) in trace.detect.iter().enumerate() {
                mean[r] += d / seeds.len() as f64;
                min[r] = min[r].min(d);
                max[r] = max[r].max(d);
            }
        }
        series.push(Series::from_rounds(format!("{pct:.1}% liars (mean)"), &mean));
        series.push(Series::from_rounds(format!("{pct:.1}% liars (min)"), &min));
        series.push(Series::from_rounds(format!("{pct:.1}% liars (max)"), &max));
    }
    Figure {
        title: format!(
            "Figure 3: Impact of liars on the detection (bands over {} seeds)",
            seeds.len()
        ),
        x_label: "investigation round".to_string(),
        y_label: "Detect(A,I)".to_string(),
        series,
    }
}

/// **Liar-coalition sweep** — how large must a colluding coalition grow
/// before it defeats detection? Every coalition size `0..=max_coalition`
/// is run over all `seeds` (fig3's banding idiom applied to the *outcome*
/// rather than the trajectory); x is the coalition size. Four series:
///
/// * `conviction rate` — fraction of seeds whose run reaches an
///   `Intruder` verdict at any round;
/// * `mean rounds to conviction` — first convicting round averaged over
///   seeds, never-convicting seeds counted at the `rounds` horizon;
/// * `final Detect (mean)` / `(min)` / `(max)` — the last round's
///   `Detect(A, I)` banded over seeds.
pub fn liar_coalition_sweep(
    base: RoundConfig,
    max_coalition: usize,
    rounds: u32,
    seeds: &[u64],
) -> Figure {
    assert!(!seeds.is_empty(), "coalition sweep needs at least one seed");
    assert!(
        max_coalition <= base.n_nodes.saturating_sub(2),
        "coalition of {max_coalition} liars cannot fit among {} witnesses",
        base.n_nodes.saturating_sub(2)
    );
    let cfgs: Vec<RoundConfig> = (0..=max_coalition)
        .flat_map(|n_liars| seeds.iter().map(move |&seed| (n_liars, seed)).collect::<Vec<_>>())
        .map(|(n_liars, seed)| RoundConfig { n_liars, seed, ..base.clone() })
        .collect();
    let traces = run_rounds_parallel(cfgs, rounds);
    let sizes = max_coalition + 1;
    let mut rate = Vec::with_capacity(sizes);
    let mut latency = Vec::with_capacity(sizes);
    let (mut mean, mut min, mut max) =
        (Vec::with_capacity(sizes), Vec::with_capacity(sizes), Vec::with_capacity(sizes));
    for group in traces.chunks(seeds.len()) {
        let mut convicted = 0usize;
        let mut rounds_sum = 0.0;
        let (mut m, mut lo, mut hi) = (0.0, f64::INFINITY, f64::NEG_INFINITY);
        for trace in group {
            match trace.verdicts.iter().position(|v| *v == Verdict::Intruder) {
                Some(r) => {
                    convicted += 1;
                    rounds_sum += (r + 1) as f64;
                }
                None => rounds_sum += f64::from(rounds),
            }
            let last = trace.detect.last().copied().unwrap_or(0.0);
            m += last / seeds.len() as f64;
            lo = lo.min(last);
            hi = hi.max(last);
        }
        rate.push(convicted as f64 / seeds.len() as f64);
        latency.push(rounds_sum / seeds.len() as f64);
        mean.push(m);
        min.push(lo);
        max.push(hi);
    }
    // x = coalition size (0-based, so shift from `from_rounds`' 1-based x).
    let sized = |label: &str, ys: &[f64]| {
        let mut s = Series::from_rounds(label, ys);
        for (x, _) in &mut s.points {
            *x -= 1.0;
        }
        s
    };
    Figure {
        title: format!(
            "Liar-coalition sweep: outcome vs coalition size (bands over {} seeds)",
            seeds.len()
        ),
        x_label: "coalition size (colluding liars)".to_string(),
        y_label: "outcome".to_string(),
        series: vec![
            sized("conviction rate", &rate),
            sized("mean rounds to conviction", &latency),
            sized("final Detect (mean)", &mean),
            sized("final Detect (min)", &min),
            sized("final Detect (max)", &max),
        ],
    }
}

/// **§IV-C — Confidence interval behaviour.** Margin of error as a
/// function of sample size, one series per confidence level, over a
/// worst-case-spread evidence sample (alternating ±1).
pub fn confidence_sweep(confidence_levels: &[f64], max_n: usize) -> Figure {
    let mut series = Vec::new();
    for &cl in confidence_levels {
        let mut points = Vec::new();
        for n in 2..=max_n {
            let samples: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
            points.push((n as f64, margin_of_error(&samples, cl)));
        }
        series.push(Series { label: format!("cl={cl:.2}"), points });
    }
    Figure {
        title: "Confidence interval: margin of error vs evidence count".to_string(),
        x_label: "number of evidences n".to_string(),
        y_label: "margin of error ε".to_string(),
        series,
    }
}

/// The ablation suite: each series is the `Detect` trajectory of the
/// default configuration with one mechanism changed.
pub fn ablations(base: RoundConfig, rounds: u32) -> Figure {
    let mut labelled: Vec<(String, RoundConfig)> = vec![
        ("full system".to_string(), base.clone()),
        ("no trust weighting".to_string(), RoundConfig { trust_weighting: false, ..base.clone() }),
    ];
    for beta in [0.5, 0.99] {
        labelled.push((format!("beta={beta}"), RoundConfig { beta, ..base.clone() }));
    }
    for p in [1.0, 0.6] {
        labelled.push((
            format!("answer_prob={p}"),
            RoundConfig { answer_probability: p, ..base.clone() },
        ));
    }
    labelled.push((
        "flat gravity".to_string(),
        RoundConfig { gravity: trustlink_trust::value::GravityCatalogue::flat(0.1), ..base },
    ));

    let (labels, cfgs): (Vec<String>, Vec<RoundConfig>) = labelled.into_iter().unzip();
    let traces = run_rounds_parallel(cfgs, rounds);
    let series = labels
        .into_iter()
        .zip(&traces)
        .map(|(label, trace)| Series::from_rounds(label, &trace.detect))
        .collect();

    Figure {
        title: "Ablations: Detect(A,I) trajectories".to_string(),
        x_label: "investigation round".to_string(),
        y_label: "Detect(A,I)".to_string(),
        series,
    }
}

/// The liar fractions the paper quotes (≈26.3% and ≈43.2%) mapped onto our
/// 14-witness roster, bracketed by a low fraction.
pub fn paper_liar_counts() -> Vec<usize> {
    // 14 witnesses: 2/14 ≈ 14.3%, 4/14 ≈ 28.6% (paper: 26.3%),
    // 6/14 ≈ 42.9% (paper: 43.2%).
    vec![2, 4, 6]
}

/// **Detection latency vs. liar fraction** (our addition): the first round
/// at which rule (10) convicts the attacker, per liar count. Quantifies
/// the paper's "the greatest is the number of liars the slowest gets the
/// detection" as a single curve. Unconvicted runs are reported as
/// `rounds + 1`.
pub fn conviction_latency(base: RoundConfig, liar_counts: &[usize], rounds: u32) -> Figure {
    let mut points = Vec::new();
    for &n_liars in liar_counts {
        let cfg = RoundConfig { n_liars, ..base.clone() };
        let witnesses = cfg.n_nodes - 2;
        let pct = 100.0 * n_liars as f64 / witnesses as f64;
        let trace = RoundEngine::new(cfg).run(rounds);
        let latency =
            trace.first_conviction().map(|r| r as f64 + 1.0).unwrap_or(f64::from(rounds) + 1.0);
        points.push((pct, latency));
    }
    Figure {
        title: "Detection latency vs liar fraction".to_string(),
        x_label: "liars among witnesses (%)".to_string(),
        y_label: "first conviction (round)".to_string(),
        series: vec![Series { label: "conviction round".to_string(), points }],
    }
}

/// **Message overhead of the detection system** (the paper's future-work
/// item on resource consumption): frames transmitted per node per second
/// in a 3×3 grid, for (0) plain OLSR with no detector, (1) detectors on a
/// benign network and (2) detectors with a link-spoofing attacker. The
/// deltas are the standing cost of the IDS and the marginal cost of
/// investigations.
pub fn overhead_comparison(seed: u64, duration_secs: u64) -> Figure {
    use crate::detector::{DetectorConfig, DetectorNode};
    use crate::scenario::{ScenarioBuilder, Topology};
    use trustlink_attacks::spoof::{LinkSpoofing, SpoofVariant};
    use trustlink_olsr::{OlsrConfig, OlsrNode};
    use trustlink_sim::{NodeId, RadioConfig, SimDuration, SimulatorBuilder};

    let detector = DetectorConfig {
        analysis_interval: SimDuration::from_millis(500),
        warmup: SimDuration::from_secs(10),
        trust_slot_interval: SimDuration::from_secs(3),
        investigation: trustlink_ids::investigation::InvestigationConfig {
            timeout: SimDuration::from_secs(3),
            max_witnesses: 16,
        },
        ..DetectorConfig::default()
    };

    // (0) plain OLSR, no detection at all.
    let plain = {
        let mut sim = SimulatorBuilder::new(seed)
            .arena(trustlink_sim::Arena::new(100_000.0, 100_000.0))
            .radio(RadioConfig::unit_disk(150.0))
            .build();
        for p in trustlink_sim::topologies::grid(9, 3, 100.0) {
            sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), p);
        }
        sim.run_for(SimDuration::from_secs(duration_secs));
        sim.stats().total_sent() as f64 / (9.0 * duration_secs as f64)
    };
    let _ = DetectorNode::with_defaults; // referenced for doc purposes

    let run = |attack: bool| {
        let mut b = ScenarioBuilder::new(seed, 9)
            .topology(Topology::Grid { cols: 3, spacing: 100.0 })
            .detector(detector.clone())
            .duration(SimDuration::from_secs(duration_secs));
        if attack {
            b = b.attacker(
                4,
                LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent {
                    fake: vec![NodeId(55)],
                }),
            );
        }
        let report = b.run();
        report.total_sent() as f64 / (9.0 * duration_secs as f64)
    };
    let benign = run(false);
    let attacked = run(true);
    Figure {
        title: "Message overhead: frames per node per second".to_string(),
        x_label: "0 = plain OLSR, 1 = detectors benign, 2 = detectors + attacker".to_string(),
        y_label: "frames / node / s".to_string(),
        series: vec![Series {
            label: "frames per node-second".to_string(),
            points: vec![(0.0, plain), (1.0, benign), (2.0, attacked)],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rounds::InitialTrust;

    fn base() -> RoundConfig {
        RoundConfig::default()
    }

    #[test]
    fn fig1_shape_holds() {
        let fig = fig1_trustworthiness(base(), 25);
        assert_eq!(fig.series.len(), 14);
        for s in &fig.series {
            assert_eq!(s.points.len(), 25);
            let first = s.points[0].1;
            let last = s.last_y().unwrap();
            if s.label.starts_with("liar") {
                assert!(last < first, "liar trust did not fall: {}", s.label);
            } else {
                assert!(last >= first - 1e-9, "honest trust fell: {}", s.label);
            }
        }
    }

    #[test]
    fn fig2_converges_to_default() {
        let cfg =
            RoundConfig { initial_trust: InitialTrust::PerNode(vec![0.9, 0.5, 0.15]), ..base() };
        let fig = fig2_forgetting(cfg, 80);
        for s in &fig.series {
            let last = s.last_y().unwrap();
            assert!((last - 0.4).abs() < 0.05, "{} ended at {last}", s.label);
        }
    }

    #[test]
    fn fig3_ordering_and_convergence() {
        // Noise-free answers make the liar-count ordering deterministic.
        let cfg = RoundConfig {
            initial_trust: InitialTrust::Fixed(0.5),
            answer_probability: 1.0,
            ..base()
        };
        let fig = fig3_liar_impact(cfg, &paper_liar_counts(), 25);
        assert_eq!(fig.series.len(), 3);
        // Early rounds: more liars ⇒ higher (less negative) Detect.
        let r3: Vec<f64> = fig.series.iter().map(|s| s.y_at_round(3).unwrap()).collect();
        assert!(r3[0] <= r3[1] + 1e-9 && r3[1] <= r3[2] + 1e-9, "round-3 ordering: {r3:?}");
        // Paper: below -0.4 by round 10 even for the worst case.
        for s in &fig.series {
            assert!(
                s.y_at_round(10).unwrap() < -0.4,
                "{} at round 10: {}",
                s.label,
                s.y_at_round(10).unwrap()
            );
            // And near -0.8 at the end.
            assert!(s.last_y().unwrap() < -0.7, "{} ended at {}", s.label, s.last_y().unwrap());
        }
    }

    #[test]
    fn fig3_banded_bands_bracket_the_mean() {
        let cfg = RoundConfig {
            initial_trust: InitialTrust::Fixed(0.5),
            answer_probability: 1.0,
            ..base()
        };
        let fig = fig3_liar_impact_banded(cfg.clone(), &[2, 6], 15, &[1, 2, 3, 4, 5]);
        assert_eq!(fig.series.len(), 6); // (mean, min, max) per liar count
        for triple in fig.series.chunks(3) {
            let (mean, min, max) = (&triple[0], &triple[1], &triple[2]);
            assert!(mean.label.ends_with("(mean)") && min.label.ends_with("(min)"));
            for r in 1..=15 {
                let (m, lo, hi) = (
                    mean.y_at_round(r).unwrap(),
                    min.y_at_round(r).unwrap(),
                    max.y_at_round(r).unwrap(),
                );
                assert!(lo <= m + 1e-12 && m <= hi + 1e-12, "round {r}: {lo} {m} {hi}");
            }
            // The paper's shape must hold for the *worst* draw too.
            assert!(max.y_at_round(10).unwrap() < -0.4, "{}", max.label);
        }
        // The single-seed sweep must agree with the band run for its seed.
        let single = fig3_liar_impact(RoundConfig { seed: 1, ..cfg.clone() }, &[2], 15);
        let banded = fig3_liar_impact_banded(RoundConfig { seed: 9, ..cfg }, &[2], 15, &[1]);
        assert_eq!(single.series[0].points, banded.series[0].points, "mean of one seed == run");
    }

    #[test]
    fn coalition_sweep_maps_outcome_to_coalition_size() {
        let cfg = RoundConfig {
            initial_trust: InitialTrust::Fixed(0.5),
            answer_probability: 1.0,
            ..base()
        };
        let fig = liar_coalition_sweep(cfg, 6, 25, &[1, 2, 3]);
        let rate = fig.series_named("conviction rate").expect("rate series");
        let latency = fig.series_named("mean rounds to conviction").expect("latency series");
        let mean = fig.series_named("final Detect (mean)").expect("mean series");
        let min = fig.series_named("final Detect (min)").expect("min series");
        let max = fig.series_named("final Detect (max)").expect("max series");
        for s in [rate, latency, mean, min, max] {
            assert_eq!(s.points.len(), 7, "{}: one point per coalition size 0..=6", s.label);
            assert_eq!(s.points[0].0, 0.0, "{}: x starts at coalition size 0", s.label);
        }
        // Paper claim: detection holds through ≈43% liars (6 of 14
        // witnesses) — every coalition size in the sweep still convicts on
        // every seed, just later.
        for (x, r) in &rate.points {
            assert_eq!(*r, 1.0, "coalition of {x} escaped conviction on some seed");
        }
        for i in 0..7 {
            let (m, lo, hi) = (mean.points[i].1, min.points[i].1, max.points[i].1);
            assert!(lo <= m + 1e-12 && m <= hi + 1e-12, "size {i}: {lo} {m} {hi}");
            assert!(m < -0.7, "size {i}: final Detect {m} should sit near -0.8");
        }
        // A larger coalition never speeds conviction up: rounds-to-convict
        // is non-decreasing in coalition size for the liar-free prefix.
        assert!(
            latency.points[0].1 <= latency.points[6].1,
            "a 6-liar coalition convicted faster than no liars at all: {} vs {}",
            latency.points[0].1,
            latency.points[6].1
        );
    }

    #[test]
    fn parallel_sweeps_match_serial_results() {
        // `ablations`/`fig3_liar_impact` fan across threads; each run is a
        // pure function of its config, so repeating must be bit-identical.
        let cfg = RoundConfig {
            n_liars: 4,
            initial_trust: InitialTrust::Fixed(0.5),
            answer_probability: 1.0,
            ..base()
        };
        let a = fig3_liar_impact(cfg.clone(), &paper_liar_counts(), 10);
        let b = fig3_liar_impact(cfg.clone(), &paper_liar_counts(), 10);
        assert_eq!(a, b);
        let x = ablations(cfg.clone(), 10);
        let y = ablations(cfg, 10);
        assert_eq!(x, y);
    }

    #[test]
    fn confidence_margin_monotone() {
        let fig = confidence_sweep(&[0.90, 0.95, 0.99], 30);
        assert_eq!(fig.series.len(), 3);
        // Higher cl ⇒ wider margin at equal n.
        for n_idx in 0..5 {
            let m90 = fig.series[0].points[n_idx].1;
            let m99 = fig.series[2].points[n_idx].1;
            assert!(m99 > m90);
        }
        // Margin shrinks in n along each series (for this alternating
        // sample, up to the odd/even parity wiggle — compare same-parity).
        for s in &fig.series {
            let early = s.points[2].1;
            let late = s.points[s.points.len() - 2].1;
            assert!(late < early, "{}: {early} -> {late}", s.label);
        }
    }

    #[test]
    fn ablations_have_expected_relationships() {
        let fig = ablations(
            RoundConfig {
                n_liars: 6,
                initial_trust: InitialTrust::Fixed(0.5),
                answer_probability: 1.0,
                ..base()
            },
            25,
        );
        let full = fig.series_named("full system").unwrap().last_y().unwrap();
        let unweighted = fig.series_named("no trust weighting").unwrap().last_y().unwrap();
        assert!(
            full < unweighted - 0.3,
            "trust weighting should dominate: full={full} unweighted={unweighted}"
        );
    }

    #[test]
    fn conviction_latency_monotone_in_liars() {
        let base = RoundConfig {
            initial_trust: InitialTrust::Fixed(0.5),
            answer_probability: 1.0,
            ..base()
        };
        let fig = conviction_latency(base, &[0, 2, 4, 6], 25);
        let latencies: Vec<f64> = fig.series[0].points.iter().map(|&(_, y)| y).collect();
        // Every configuration converges within the horizon...
        for l in &latencies {
            assert!(*l <= 25.0, "no conviction: {latencies:?}");
        }
        // ... and more liars never convict *faster*.
        for w in latencies.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "latency not monotone: {latencies:?}");
        }
    }

    #[test]
    fn overhead_detection_costs_more_than_plain_olsr() {
        let fig = overhead_comparison(77, 40);
        let plain = fig.series[0].points[0].1;
        let benign = fig.series[0].points[1].1;
        let attacked = fig.series[0].points[2].1;
        assert!(plain > 0.0);
        assert!(
            benign > plain && attacked > plain,
            "the IDS must cost traffic: plain {plain}, benign {benign}, attacked {attacked}"
        );
    }

    #[test]
    fn series_accessors() {
        let s = Series::from_rounds("x", &[1.0, 2.0, 3.0]);
        assert_eq!(s.points[0], (1.0, 1.0));
        assert_eq!(s.y_at_round(2), Some(2.0));
        assert_eq!(s.last_y(), Some(3.0));
        let fig =
            Figure { title: "t".into(), x_label: "x".into(), y_label: "y".into(), series: vec![s] };
        assert!(fig.series_named("x").is_some());
        assert!(fig.series_named("nope").is_none());
    }
}
