//! The abstract *investigation round* engine — the paper's §V evaluation
//! protocol, reproduced exactly.
//!
//! §V: "We consider 16 nodes including 1 attacker which performs a link
//! spoofing attack and 4 colluding misbehaving nodes (liars) … Initially,
//! we randomly set the trust that is assigned to each node." Each round,
//! the attacked node interrogates the witnesses about the spoofed link;
//! honest nodes deny it, liars confirm it, some answers go missing; the
//! trust-weighted `Detect` value (formula 8) is computed and every
//! participant's trust is updated (formula 5).
//!
//! The investigation is *cumulative*: every answer ever collected stays in
//! the evidence set, and each round formula (8) re-aggregates the whole set
//! under the witnesses' **current** trust. As liars lose trust their past
//! confirmations lose weight retroactively, the detection value settles
//! near −(answer rate) ≈ −0.8, and the formula (9) sample grows round by
//! round so the confidence interval narrows until rule (10) can convict —
//! exactly the convergence the paper's Figure 3 shows.
//!
//! This module runs that loop without the packet simulator, which is what
//! Figures 1–3 plot; the packet-level path (see [`crate::scenario`])
//! validates that the same dynamics emerge end-to-end.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trustlink_trust::aggregate::{
    answered_samples, detection_value, unweighted_detection_value, weighted_evidence_samples,
    Answer,
};
use trustlink_trust::confidence::margin_of_error;
use trustlink_trust::decision::{DecisionRule, Verdict};
use trustlink_trust::store::TrustStore;
use trustlink_trust::update::TrustUpdate;
use trustlink_trust::value::{EvidenceKind, GravityCatalogue, TrustValue};

/// How witnesses' initial trust is seeded.
#[derive(Debug, Clone, PartialEq)]
pub enum InitialTrust {
    /// Uniformly random in `[lo, hi]` (the paper's "randomly set").
    Random {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// The same fixed value for everyone.
    Fixed(f64),
    /// Explicit per-witness values (cycled if shorter than the roster).
    PerNode(Vec<f64>),
}

impl Default for InitialTrust {
    fn default() -> Self {
        InitialTrust::Random { lo: 0.1, hi: 0.9 }
    }
}

/// Configuration of a round-based experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundConfig {
    /// Total nodes including the investigator and the attacker (paper: 16).
    pub n_nodes: usize,
    /// Number of colluding liars among the witnesses (paper: 4).
    pub n_liars: usize,
    /// RNG seed.
    pub seed: u64,
    /// Initial witness trust.
    pub initial_trust: InitialTrust,
    /// Forgetting factor β.
    pub beta: f64,
    /// Gravity catalogue.
    pub gravity: GravityCatalogue,
    /// Probability an honest witness's answer arrives (the unreliable
    /// environment; liars are assumed reliable — they want to be heard).
    pub answer_probability: f64,
    /// Rounds during which the attack is active (liars cover, honest deny).
    /// Outside this range all nodes simply behave well.
    pub attack_rounds: std::ops::Range<u32>,
    /// Decision threshold γ.
    pub gamma: f64,
    /// Confidence level for the margin of error.
    pub confidence_level: f64,
    /// Ablation: `false` disables trust weighting in formula (8).
    pub trust_weighting: bool,
    /// Record background relaying evidence every round.
    pub relaying_evidence: bool,
}

impl Default for RoundConfig {
    /// The paper's headline setting: 16 nodes, 1 attacker, 4 liars,
    /// random initial trust, mildly unreliable answers.
    fn default() -> Self {
        RoundConfig {
            n_nodes: 16,
            n_liars: 4,
            seed: 42,
            initial_trust: InitialTrust::default(),
            beta: 0.9,
            gravity: GravityCatalogue::default(),
            answer_probability: 0.85,
            attack_rounds: 0..u32::MAX,
            gamma: 0.6,
            confidence_level: 0.95,
            trust_weighting: true,
            relaying_evidence: true,
        }
    }
}

/// The role a witness plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoleKind {
    /// Answers truthfully.
    Honest,
    /// Colludes with the attacker: answers falsely while the attack runs.
    Liar,
}

/// One witness's full trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessTrace {
    /// Index within the witness roster.
    pub index: usize,
    /// Role.
    pub role: RoleKind,
    /// Trust seeded at round 0.
    pub initial_trust: f64,
    /// Trust after each round (`trust[r]` = after round `r`).
    pub trust: Vec<f64>,
}

/// The result of a round-based experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundTrace {
    /// Per-witness trust trajectories.
    pub witnesses: Vec<WitnessTrace>,
    /// The `Detect(A, I)` value of each round (0.0 when no investigation
    /// ran because the attack was inactive).
    pub detect: Vec<f64>,
    /// The rule (10) verdict of each round.
    pub verdicts: Vec<Verdict>,
    /// The margin of error of each round.
    pub margins: Vec<f64>,
}

impl RoundTrace {
    /// The first round (0-based) whose verdict condemned the attacker.
    pub fn first_conviction(&self) -> Option<usize> {
        self.verdicts.iter().position(|v| *v == Verdict::Intruder)
    }

    /// Trust trajectory of the witness at `index`.
    pub fn trust_of(&self, index: usize) -> &[f64] {
        &self.witnesses[index].trust
    }

    /// Indices of liars.
    pub fn liars(&self) -> Vec<usize> {
        self.witnesses.iter().filter(|w| w.role == RoleKind::Liar).map(|w| w.index).collect()
    }

    /// Indices of honest witnesses.
    pub fn honest(&self) -> Vec<usize> {
        self.witnesses.iter().filter(|w| w.role == RoleKind::Honest).map(|w| w.index).collect()
    }
}

/// The round engine: the attacked node `A`, the suspect `I` and the
/// witness roster (everyone else).
#[derive(Debug)]
pub struct RoundEngine {
    cfg: RoundConfig,
    rng: StdRng,
    trust: TrustStore<usize>,
    roles: Vec<RoleKind>,
    rule: DecisionRule,
    round: u32,
    /// Every `(witness, answer)` collected since the investigation opened;
    /// cleared when the attack window closes (the investigation ends).
    history: Vec<(usize, Answer)>,
}

impl RoundEngine {
    /// Builds the engine: `n_nodes - 2` witnesses (investigator and
    /// attacker excluded), the first `n_liars` of which are liars.
    ///
    /// # Panics
    ///
    /// Panics unless `n_nodes ≥ 3` and `n_liars ≤ n_nodes - 2`.
    pub fn new(cfg: RoundConfig) -> Self {
        assert!(cfg.n_nodes >= 3, "need at least investigator, attacker and one witness");
        let n_witnesses = cfg.n_nodes - 2;
        assert!(cfg.n_liars <= n_witnesses, "more liars than witnesses");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let update = TrustUpdate::with_catalogue(cfg.beta, cfg.gravity.clone());
        let mut trust = TrustStore::with_update(TrustValue::DEFAULT, update);
        let mut roles = Vec::with_capacity(n_witnesses);
        for i in 0..n_witnesses {
            let value = match &cfg.initial_trust {
                InitialTrust::Random { lo, hi } => rng.random_range(*lo..=*hi),
                InitialTrust::Fixed(v) => *v,
                InitialTrust::PerNode(values) => values[i % values.len()],
            };
            trust.set_trust(i, TrustValue::new(value));
            roles.push(if i < cfg.n_liars { RoleKind::Liar } else { RoleKind::Honest });
        }
        let rule = DecisionRule::new(cfg.gamma);
        RoundEngine { cfg, rng, trust, roles, rule, round: 0, history: Vec::new() }
    }

    /// Number of witnesses.
    pub fn witness_count(&self) -> usize {
        self.roles.len()
    }

    /// Current trust of witness `i`.
    pub fn trust_of(&self, i: usize) -> f64 {
        self.trust.trust_of(&i).get()
    }

    /// Runs one investigation round; returns `(detect, margin, verdict)`.
    ///
    /// While the attack is active: the contested link is spoofed, so the
    /// truthful answer is *deny*; honest witnesses deny (when their answer
    /// arrives), liars confirm. Outside the attack window no investigation
    /// happens and every witness merely behaves well.
    pub fn step(&mut self) -> (f64, f64, Verdict) {
        let active = self.cfg.attack_rounds.contains(&self.round);
        self.round += 1;
        if !active {
            // Peace: background good behaviour only (Figure 2's regime).
            // Any open investigation is over; its evidence set is dropped.
            self.history.clear();
            for i in 0..self.roles.len() {
                self.trust.record(i, EvidenceKind::NormalRelaying);
            }
            self.trust.end_slot();
            return (0.0, f64::INFINITY, Verdict::Unrecognized);
        }

        // Collect answers.
        let mut pairs: Vec<(usize, Answer)> = Vec::with_capacity(self.roles.len());
        for (i, role) in self.roles.iter().enumerate() {
            let answer = match role {
                RoleKind::Liar => Answer::Confirm, // cover the attacker
                RoleKind::Honest => {
                    if self.rng.random_bool(self.cfg.answer_probability) {
                        Answer::Deny
                    } else {
                        Answer::NoAnswer
                    }
                }
            };
            pairs.push((i, answer));
        }

        // Formula (8) (or the unweighted ablation) over the whole
        // investigation so far, re-weighted by the witnesses' current trust:
        // once a liar is distrusted, its earlier confirmations stop counting.
        self.history.extend(pairs.iter().copied());
        let detect = if self.cfg.trust_weighting {
            detection_value(self.history.iter().map(|&(i, a)| (self.trust.trust_of(&i), a)))
        } else {
            unweighted_detection_value(self.history.iter().map(|&(_, a)| a))
        };
        let samples: Vec<f64> = if self.cfg.trust_weighting {
            weighted_evidence_samples(
                self.history.iter().map(|&(i, a)| (self.trust.trust_of(&i), a)),
            )
        } else {
            answered_samples(self.history.iter().map(|&(_, a)| a))
        };
        let margin = margin_of_error(&samples, self.cfg.confidence_level);
        let verdict = self.rule.decide(detect, margin);

        // Formula (5) evidence assignment. The investigator is the attacked
        // node and the contested link is its own, so it knows the ground
        // truth: denying the spoofed link is truthful, confirming it covers
        // the attacker. (Keying this to the aggregate's sign instead is
        // unstable: with ~43% well-trusted liars a slightly positive first
        // round rewards the liars, and the feedback loop convicts the honest
        // majority — the opposite of the paper's Figure 3. The packet-level
        // detector deliberately keeps threshold-gated sign keying: it
        // investigates *third-party* links, where no local ground truth
        // exists.)
        for (i, a) in &pairs {
            let kind = match a {
                Answer::NoAnswer => EvidenceKind::Unresponsive,
                Answer::Deny => EvidenceKind::TruthfulTestimony,
                Answer::Confirm => EvidenceKind::FalseTestimony,
            };
            self.trust.record(*i, kind);
            if self.cfg.relaying_evidence {
                self.trust.record(*i, EvidenceKind::NormalRelaying);
            }
        }
        self.trust.end_slot();
        (detect, margin, verdict)
    }

    /// Runs `rounds` rounds and returns the full trace.
    pub fn run(mut self, rounds: u32) -> RoundTrace {
        let initial: Vec<f64> = (0..self.roles.len()).map(|i| self.trust_of(i)).collect();
        let mut witnesses: Vec<WitnessTrace> = self
            .roles
            .iter()
            .enumerate()
            .map(|(i, role)| WitnessTrace {
                index: i,
                role: *role,
                initial_trust: initial[i],
                trust: Vec::with_capacity(rounds as usize),
            })
            .collect();
        let mut detect = Vec::with_capacity(rounds as usize);
        let mut verdicts = Vec::with_capacity(rounds as usize);
        let mut margins = Vec::with_capacity(rounds as usize);
        for _ in 0..rounds {
            let (d, m, v) = self.step();
            detect.push(d);
            margins.push(m);
            verdicts.push(v);
            for w in witnesses.iter_mut() {
                let t = self.trust_of(w.index);
                w.trust.push(t);
            }
        }
        RoundTrace { witnesses, detect, verdicts, margins }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cfg: RoundConfig, rounds: u32) -> RoundTrace {
        RoundEngine::new(cfg).run(rounds)
    }

    #[test]
    fn liars_trust_descends_honest_ascends() {
        // The core of Figure 1.
        let trace = quick(RoundConfig::default(), 25);
        for w in &trace.witnesses {
            let last = *w.trust.last().unwrap();
            match w.role {
                RoleKind::Liar => assert!(
                    last < w.initial_trust && last < 0.0,
                    "liar {} ended at {last} from {}",
                    w.index,
                    w.initial_trust
                ),
                RoleKind::Honest => assert!(
                    last >= w.initial_trust - 1e-9,
                    "honest {} fell from {} to {last}",
                    w.index,
                    w.initial_trust
                ),
            }
        }
    }

    #[test]
    fn liar_descent_is_monotone() {
        let trace = quick(RoundConfig::default(), 25);
        for idx in trace.liars() {
            let t = trace.trust_of(idx);
            for w in t.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "liar trust rose: {w:?}");
            }
        }
    }

    #[test]
    fn detect_converges_negative() {
        // Figure 3's end state: Detect ≈ -(answer rate) regardless of liars.
        let trace = quick(RoundConfig::default(), 25);
        let last = *trace.detect.last().unwrap();
        assert!(last < -0.7, "Detect did not converge: {last}");
    }

    #[test]
    fn more_liars_slow_the_descent() {
        // Figure 3's ordering.
        let mut few = RoundConfig { n_liars: 2, answer_probability: 1.0, ..RoundConfig::default() };
        few.initial_trust = InitialTrust::Fixed(0.5);
        let mut many = few.clone();
        many.n_liars = 6;
        let d_few = quick(few, 10).detect;
        let d_many = quick(many, 10).detect;
        for r in 0..5 {
            assert!(
                d_few[r] <= d_many[r] + 1e-9,
                "round {r}: few-liars {} vs many-liars {}",
                d_few[r],
                d_many[r]
            );
        }
    }

    #[test]
    fn attacker_eventually_convicted() {
        let trace = quick(RoundConfig::default(), 25);
        let conviction = trace.first_conviction().expect("never convicted");
        assert!(conviction < 25);
        // After conviction the verdict stays intruder (trust only falls).
        for v in &trace.verdicts[conviction..] {
            assert_eq!(*v, Verdict::Intruder);
        }
    }

    #[test]
    fn peace_regime_relaxes_toward_default() {
        // Figure 2: attack ceased from round 0; high initial trust decays
        // toward the default 0.4.
        let cfg = RoundConfig {
            attack_rounds: 0..0, // never active
            initial_trust: InitialTrust::PerNode(vec![0.9, 0.6, 0.2, -0.5]),
            n_nodes: 6,
            n_liars: 0,
            ..RoundConfig::default()
        };
        let trace = quick(cfg, 60);
        for w in &trace.witnesses {
            let last = *w.trust.last().unwrap();
            assert!(
                (last - 0.4).abs() < 0.05,
                "witness {} ended at {last}, expected ≈0.4 (from {})",
                w.index,
                w.initial_trust
            );
        }
        // And the recovery from below is slower than the decay from above.
        let from_above = trace.trust_of(0); // 0.9
        let from_below = trace.trust_of(3); // -0.5
        let rounds_above = from_above.iter().position(|t| (t - 0.4).abs() < 0.05).unwrap();
        let rounds_below = from_below.iter().position(|t| (t - 0.4).abs() < 0.05).unwrap();
        assert!(
            rounds_below > rounds_above,
            "recovery ({rounds_below}) should be slower than decay ({rounds_above})"
        );
    }

    #[test]
    fn unweighted_ablation_stalls_with_many_liars() {
        // Without trust weighting, liars keep full influence forever.
        let cfg = RoundConfig {
            n_liars: 6,
            answer_probability: 1.0,
            trust_weighting: false,
            initial_trust: InitialTrust::Fixed(0.5),
            ..RoundConfig::default()
        };
        let ablated = quick(cfg.clone(), 25);
        let weighted = quick(RoundConfig { trust_weighting: true, ..cfg }, 25);
        let d_ablated = *ablated.detect.last().unwrap();
        let d_weighted = *weighted.detect.last().unwrap();
        // 6 liars vs 8 honest, unweighted: detect = (6-8)/14 ≈ -0.14 forever.
        assert!(d_ablated > -0.2, "ablated detect {d_ablated}");
        assert!(d_weighted < -0.9, "weighted detect {d_weighted}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = quick(RoundConfig::default(), 10);
        let b = quick(RoundConfig::default(), 10);
        assert_eq!(a, b);
        let c = quick(RoundConfig { seed: 43, ..RoundConfig::default() }, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "witnesses")]
    fn too_many_liars_rejected() {
        let _ = RoundEngine::new(RoundConfig { n_nodes: 4, n_liars: 3, ..RoundConfig::default() });
    }

    #[test]
    fn roster_accessors() {
        let trace = quick(RoundConfig::default(), 5);
        assert_eq!(trace.witnesses.len(), 14);
        assert_eq!(trace.liars().len(), 4);
        assert_eq!(trace.honest().len(), 10);
        assert_eq!(trace.detect.len(), 5);
        assert_eq!(trace.margins.len(), 5);
    }
}
