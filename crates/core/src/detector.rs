//! The trust-enabled detector node — the paper's complete agent.
//!
//! A [`DetectorNode`] runs, in one simulated node:
//!
//! 1. the OLSR routing daemon (`trustlink-olsr`), untouched;
//! 2. a periodic **log analysis** pass that tails the node's own audit log
//!    (nothing else — the paper's architectural constraint), extracts
//!    detection events and feeds the signature engine;
//! 3. the **cooperative investigation** of Algorithm 1 when a suspicious
//!    event (E1/E2) incriminates an MPR: witnesses are interrogated over
//!    the data plane, routing around the suspect;
//! 4. the **trust system** of §IV: answers are aggregated with formula (8),
//!    bounded by the confidence interval of formula (9), decided with rule
//!    (10), and every outcome feeds the formula (5) trust update;
//! 5. the **answering side**: every node (honest or lying, per
//!    [`LiarPolicy`]) answers link-verification requests about its own
//!    links.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use rand::RngExt;
use trustlink_attacks::liar::LiarPolicy;
use trustlink_ids::events::{DetectionEvent, EventExtractor, MisbehaviourReason};
use trustlink_ids::investigation::{
    plan_witnesses, Investigation, InvestigationConfig, InvestigationMessage, WitnessAnswer,
};
use trustlink_ids::signature::{SignatureEngine, SignatureMatch};
use trustlink_olsr::hooks::{NoHooks, OlsrHooks};
use trustlink_olsr::node::OlsrNode;
use trustlink_olsr::types::OlsrConfig;
use trustlink_sim::record::LogRecord;
use trustlink_sim::{
    Application, CallbackClass, Context, NodeId, SimDuration, SimTime, TimerToken,
};
use trustlink_trust::aggregate::{
    answered_samples, detection_value, stability_weighted_detection_value,
    stability_weighted_evidence_samples, unweighted_detection_value, weighted_evidence_samples,
    Answer,
};
use trustlink_trust::confidence::margin_of_error;
use trustlink_trust::decision::{DecisionRule, Verdict};
use trustlink_trust::propagation::{multipath, Recommendation};
use trustlink_trust::stability::{stability_weight, StabilityParams};
use trustlink_trust::store::TrustStore;
use trustlink_trust::update::TrustUpdate;
use trustlink_trust::value::{EvidenceKind, GravityCatalogue, TrustValue};

/// Timer token for the periodic log-analysis pass.
pub const TIMER_ANALYSIS: TimerToken = TimerToken(2000);
/// Timer token for the periodic trust-recommendation exchange.
pub const TIMER_GOSSIP: TimerToken = TimerToken(2001);

/// Tunables of the detector agent.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Period of the log-analysis pass (one *time slot* `Δt` of the trust
    /// system).
    pub analysis_interval: SimDuration,
    /// Investigation protocol parameters.
    pub investigation: InvestigationConfig,
    /// Forgetting factor β of formula (5).
    pub beta: f64,
    /// Gravity catalogue (the `α_j`).
    pub gravity: GravityCatalogue,
    /// Trust assigned to never-seen nodes.
    pub initial_trust: TrustValue,
    /// Decision threshold γ of rule (10).
    pub gamma: f64,
    /// Confidence level for the formula (9) margin.
    pub confidence_level: f64,
    /// Signature window for the partially-ordered matcher.
    pub signature_window: SimDuration,
    /// How this node answers link-verification requests.
    pub liar_policy: LiarPolicy,
    /// Probability an answer is actually produced (models application-level
    /// unreliability on top of radio loss; the paper's missing evidence).
    pub answer_probability: f64,
    /// Maximum investigation rounds per suspect before giving up.
    pub max_rounds_per_suspect: u32,
    /// |Detect| needed before testimony evidence is assigned to witnesses
    /// (below it the round is too ambiguous to blame anyone). Keep this
    /// small: with ~43 % liars among the answerers the first rounds sit
    /// near `-(h-l)/n`, and evidence must still flow for the trust system
    /// to bootstrap (Figure 3's worst case).
    pub testimony_threshold: f64,
    /// Record background `NormalRelaying` evidence for current symmetric
    /// neighbors every slot (Property 1's beneficial activity).
    pub relaying_evidence: bool,
    /// Ablation: when `false`, formula (8) is replaced by an unweighted
    /// average (the "no trust system" baseline).
    pub trust_weighting: bool,
    /// When `true`, every piece of evidence is additionally scaled by the
    /// *stability* of the link it was sourced over — the symmetric-link age
    /// and flap history the extractor reads from the typed audit log.
    /// Young or flapping links dilute their evidence toward zero (like
    /// partial non-answers), so mobility churn degrades detection
    /// gracefully instead of convicting honest nodes whose links dissolved
    /// mid-advertisement. Mature stable links weigh exactly `1.0`: a
    /// flap-free run is bit-identical with the knob on or off (pinned by
    /// `tests/stability_equivalence.rs`), which is why the mobile suites
    /// can enable it while the stationary golden digests stay untouched.
    /// Off by default, like the other behaviour-changing knob
    /// (`FloodScope::Fisheye`); only meaningful while `trust_weighting` is
    /// on — the unweighted ablation baseline ignores it.
    pub stability_weighting: bool,
    /// Knobs of the stability weight (maturity age, flap memory, down-link
    /// cap); see [`StabilityParams`].
    pub stability: StabilityParams,
    /// Grace period after start-up during which no investigation is opened
    /// and no "never heard of it" denial is issued: the routing protocol
    /// needs time to converge before absence of knowledge means anything.
    pub warmup: SimDuration,
    /// Fallback cadence of the formula (5) time slot when no investigation
    /// is concluding. While cases finalize, slots align with investigation
    /// rounds (the paper's Δt *is* the round); this interval only paces
    /// background relaying evidence in quiet periods.
    pub trust_slot_interval: SimDuration,
    /// When set, this node periodically sends its trust ledger to its
    /// symmetric neighbors and merges theirs as *recommendations*
    /// (formulas 6/7; see [`DetectorNode::indirect_trust_of`]). `None`
    /// disables the exchange.
    pub gossip_interval: Option<SimDuration>,
    /// Keep flight-recorder side history: when each analysis pass sampled
    /// the log ([`DetectorNode::analysis_ticks`]) and every detection event
    /// it extracted ([`DetectorNode::extracted_events`]). Off by default —
    /// long large-network runs would hold the whole event history in
    /// memory; replay/audit scenarios switch it on.
    pub flight_recording: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            analysis_interval: SimDuration::from_secs(1),
            investigation: InvestigationConfig::default(),
            beta: 0.9,
            gravity: GravityCatalogue::default(),
            initial_trust: TrustValue::DEFAULT,
            gamma: 0.6,
            confidence_level: 0.95,
            signature_window: SimDuration::from_secs(120),
            liar_policy: LiarPolicy::Honest,
            answer_probability: 1.0,
            max_rounds_per_suspect: 25,
            testimony_threshold: 0.05,
            relaying_evidence: true,
            trust_weighting: true,
            stability_weighting: false,
            stability: StabilityParams::default(),
            warmup: SimDuration::from_secs(15),
            trust_slot_interval: SimDuration::from_secs(10),
            gossip_interval: None,
            flight_recording: false,
        }
    }
}

/// One recorded decision about a suspect.
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictRecord {
    /// Case identifier.
    pub case: u64,
    /// The judged node.
    pub suspect: NodeId,
    /// The rule (10) verdict.
    pub verdict: Verdict,
    /// The formula (8) detection value.
    pub detect: f64,
    /// The formula (9) margin of error.
    pub margin: f64,
    /// Witnesses interrogated.
    pub witnesses: usize,
    /// Witnesses that answered before the deadline.
    pub answered: usize,
    /// When the verdict was reached.
    pub at: SimTime,
}

/// The trust-enabled intrusion-detecting OLSR node.
///
/// Generic over [`OlsrHooks`] so an *attacker* can also run a detector
/// (defaults to the faithful [`NoHooks`]).
pub struct DetectorNode<H: OlsrHooks = NoHooks> {
    olsr: OlsrNode<H>,
    cfg: DetectorConfig,
    extractor: EventExtractor,
    engine: SignatureEngine,
    trust: TrustStore<NodeId>,
    rule: DecisionRule,
    cursor: usize,
    cases: Vec<Investigation>,
    /// Replaced MPRs remembered per suspect (narrows witness selection).
    old_mprs: BTreeMap<NodeId, Vec<NodeId>>,
    rounds: BTreeMap<NodeId, u32>,
    condemned: BTreeSet<NodeId>,
    verdicts: Vec<VerdictRecord>,
    matches: Vec<SignatureMatch>,
    next_case: u64,
    /// Per-round Detect history: `(time, suspect, detect)`.
    detect_history: Vec<(SimTime, NodeId, f64)>,
    started_at: SimTime,
    last_slot: SimTime,
    /// Latest trust digest received from each recommender.
    recommendations: BTreeMap<NodeId, Vec<(NodeId, TrustValue)>>,
    /// Suspicious triggers observed during warmup, investigated once the
    /// routing view has converged. Maps suspect to the contested-link hint.
    pending_suspects: BTreeMap<NodeId, Option<NodeId>>,
    /// `(when, log cursor after the pass)` per analysis pass; only kept
    /// when [`DetectorConfig::flight_recording`] is on.
    analysis_ticks: Vec<(SimTime, usize)>,
    /// Every detection event extracted, in extraction order; only kept
    /// when [`DetectorConfig::flight_recording`] is on.
    extracted_events: Vec<DetectionEvent>,
}

impl DetectorNode<NoHooks> {
    /// A faithful detector with the given OLSR and detector configs.
    pub fn new(olsr: OlsrConfig, cfg: DetectorConfig) -> Self {
        DetectorNode::with_hooks(olsr, cfg, NoHooks)
    }

    /// A faithful detector with default configs.
    pub fn with_defaults() -> Self {
        DetectorNode::new(OlsrConfig::default(), DetectorConfig::default())
    }
}

impl<H: OlsrHooks> DetectorNode<H> {
    /// A detector whose OLSR substrate misbehaves per `hooks` (an attacker
    /// that also runs the detection software, as in the paper's setting
    /// where every node hosts the IDS).
    pub fn with_hooks(olsr: OlsrConfig, cfg: DetectorConfig, hooks: H) -> Self {
        let trust = TrustStore::with_update(
            cfg.initial_trust,
            TrustUpdate::with_catalogue(cfg.beta, cfg.gravity.clone()),
        );
        DetectorNode {
            olsr: OlsrNode::with_hooks(olsr, hooks),
            engine: SignatureEngine::with_builtin(cfg.signature_window),
            rule: DecisionRule::new(cfg.gamma),
            trust,
            cfg,
            extractor: EventExtractor::new(),
            cursor: 0,
            cases: Vec::new(),
            old_mprs: BTreeMap::new(),
            rounds: BTreeMap::new(),
            condemned: BTreeSet::new(),
            verdicts: Vec::new(),
            matches: Vec::new(),
            next_case: 0,
            detect_history: Vec::new(),
            started_at: SimTime::ZERO,
            last_slot: SimTime::ZERO,
            recommendations: BTreeMap::new(),
            pending_suspects: BTreeMap::new(),
            analysis_ticks: Vec::new(),
            extracted_events: Vec::new(),
        }
    }

    // ---- inspection -------------------------------------------------------

    /// The underlying OLSR node.
    pub fn olsr(&self) -> &OlsrNode<H> {
        &self.olsr
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// All verdicts reached so far.
    pub fn verdicts(&self) -> &[VerdictRecord] {
        &self.verdicts
    }

    /// All completed signature matches (the paper's rule (4) detections).
    pub fn signature_matches(&self) -> &[SignatureMatch] {
        &self.matches
    }

    /// Current trust in `node`.
    pub fn trust_of(&self, node: NodeId) -> TrustValue {
        self.trust.trust_of(&node)
    }

    /// Snapshot of every tracked peer's trust, ascending by node.
    pub fn trust_snapshot(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = self.trust.peers().map(|(n, t)| (*n, t.get())).collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// Nodes this detector has condemned as intruders.
    pub fn condemned(&self) -> Vec<NodeId> {
        self.condemned.iter().copied().collect()
    }

    /// The per-round `(time, suspect, Detect)` history (Figure 3's series).
    pub fn detect_history(&self) -> &[(SimTime, NodeId, f64)] {
        &self.detect_history
    }

    /// The log-derived view (for tests and tooling).
    pub fn extractor(&self) -> &EventExtractor {
        &self.extractor
    }

    /// Number of investigations still waiting for answers.
    pub fn open_cases(&self) -> usize {
        self.cases.len()
    }

    /// When each analysis pass sampled the log, with the log cursor after
    /// the pass. Empty unless [`DetectorConfig::flight_recording`] is on.
    pub fn analysis_ticks(&self) -> &[(SimTime, usize)] {
        &self.analysis_ticks
    }

    /// Every detection event extracted from the audit log, in extraction
    /// order. Empty unless [`DetectorConfig::flight_recording`] is on.
    pub fn extracted_events(&self) -> &[DetectionEvent] {
        &self.extracted_events
    }

    /// Trust in `target` propagated from the neighbors' recommendations:
    /// formula (7) multipath merge, each recommendation discounted by the
    /// recommender's own trustworthiness (formula 6 via
    /// [`Recommendation::from_trust`]). Returns [`TrustValue::ZERO`]
    /// (maximal uncertainty) when no usable recommendation exists.
    ///
    /// Requires [`DetectorConfig::gossip_interval`] to be set on the
    /// recommending neighbors.
    pub fn indirect_trust_of(&self, target: NodeId) -> TrustValue {
        let pairs = self.recommendations.iter().filter_map(|(source, entries)| {
            let t_source_target = entries.iter().find(|(n, _)| *n == target).map(|(_, t)| *t)?;
            Some((Recommendation::from_trust(self.trust.trust_of(source)), t_source_target))
        });
        multipath(pairs)
    }

    /// Number of neighbors whose recommendations are currently held.
    pub fn recommender_count(&self) -> usize {
        self.recommendations.len()
    }

    // ---- analysis pass ----------------------------------------------------

    fn run_analysis(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        // 0. Bring the routing substrate's derived state (and therefore its
        // audit log) up to date before tailing it. With the incremental
        // recompute mode this is what guarantees every state transition is
        // logged within the analysis batch containing its moment — the
        // eager oracle and the incremental mode then feed this detector
        // identical per-batch evidence.
        self.olsr.refresh(ctx);
        // 1. Tail our own audit log — typed records straight into the
        // extractor, no text round-trip.
        let new_records: Vec<(SimTime, LogRecord)> = {
            let (records, next) = ctx.log_buffer().read_from(self.cursor);
            let owned = records.to_vec();
            self.cursor = next;
            owned
        };
        let mut events: Vec<DetectionEvent> = Vec::new();
        for (at, record) in &new_records {
            events.extend(self.extractor.ingest_record(*at, record));
        }
        // 2. Periodic checks (E3, TC silence). The silence allowance keys
        // off the scoped emission schedule: under fisheye flooding an MPR
        // legitimately skips 1-hop-audible TC slots when no ring is due
        // (sparse tables), so the allowance stretches by the worst-case
        // gap between emissions a 1-hop neighbor hears. Every MPR of ours
        // is 1 hop away, so `near_stride` is the right bound — with the
        // default ring table it is 1 and detection behaves exactly as in
        // classic flooding.
        let olsr_cfg = self.olsr.config();
        let silence = olsr_cfg.tc_interval * (4 * u64::from(olsr_cfg.flood_scope.near_stride()));
        events.extend(self.extractor.tick(now, silence));

        // Flight-recorder side history: where this pass sampled the log and
        // what it extracted, so a saved recording replays with the exact
        // live batching.
        if self.cfg.flight_recording {
            self.analysis_ticks.push((now, self.cursor));
            self.extracted_events.extend(events.iter().cloned());
        }

        // 3. Feed the signature engine; open investigations on suspicion.
        let me = ctx.id();
        for ev in &events {
            for m in self.engine.observe(ev) {
                self.matches.push(m);
            }
            if ev.criticality() == trustlink_ids::events::Criticality::Suspicious {
                if let DetectionEvent::MprReplaced { replaced, replacing, .. } = ev {
                    for s in replacing {
                        self.old_mprs.insert(*s, replaced.clone());
                    }
                }
                // An unknown-claim event names the disputed link directly.
                let hint = match ev {
                    DetectionEvent::MprMisbehaving {
                        reason: MisbehaviourReason::UnknownClaimedNeighbor(x),
                        ..
                    } => Some(*x),
                    _ => None,
                };
                for suspect in ev.suspects() {
                    if suspect == me {
                        continue;
                    }
                    if self.warmed_up(ctx.now()) {
                        self.maybe_open_case(ctx, suspect, hint);
                    } else {
                        // Remember the trigger; investigate after warmup.
                        let entry = self.pending_suspects.entry(suspect).or_insert(hint);
                        if entry.is_none() {
                            *entry = hint;
                        }
                    }
                }
            }
        }
        // Triggers held back during warmup become cases now.
        if self.warmed_up(ctx.now()) && !self.pending_suspects.is_empty() {
            let pending = std::mem::take(&mut self.pending_suspects);
            for (suspect, hint) in pending {
                self.maybe_open_case(ctx, suspect, hint);
            }
        }

        // 4. Finalize due cases.
        let now = ctx.now();
        let due: Vec<Investigation> = {
            let (done, open): (Vec<_>, Vec<_>) =
                std::mem::take(&mut self.cases).into_iter().partition(|c| c.is_complete(now));
            self.cases = open;
            done
        };
        let finalized_any = !due.is_empty();
        for case in due {
            self.finalize_case(ctx, case);
        }

        // 5. Close the trust slot. The slot is the investigation round when
        // rounds are concluding (the paper's Δt); otherwise a slow periodic
        // tick paces background relaying evidence.
        let slot_due = now.saturating_since(self.last_slot) >= self.cfg.trust_slot_interval;
        if finalized_any || slot_due {
            if self.cfg.relaying_evidence {
                for n in self.olsr.symmetric_neighbors(now) {
                    if !self.condemned.contains(&n) {
                        self.trust.record(n, EvidenceKind::NormalRelaying);
                    }
                }
            }
            self.trust.end_slot();
            self.last_slot = now;
        }
    }

    /// Picks the advertised link of `suspect` worth disputing: a claimed
    /// neighbor that no independent source corroborates (reachable only via
    /// the suspect, not our own neighbor). A benign MPR change has none,
    /// which is what keeps honest churn from triggering investigations.
    fn pick_contested(&self, me: NodeId, suspect: NodeId) -> Option<NodeId> {
        let claimed = self.extractor.claimed_neighbors_of(suspect)?;
        claimed.iter().copied().filter(|&x| x != me && x != suspect).find(|&x| {
            let vias = self.extractor.vias_for(x);
            vias.iter().all(|v| *v == suspect) && !self.extractor.neighbors().contains(&x)
        })
    }

    fn warmed_up(&self, now: SimTime) -> bool {
        now.saturating_since(self.started_at) >= self.cfg.warmup
    }

    /// The stability weight of the evidence channel toward `peer` as of
    /// `now`, from the extractor's symmetric-link history.
    fn stability_of(&self, peer: NodeId, now: SimTime) -> f64 {
        let ls = self.extractor.link_stability(peer);
        stability_weight(&self.cfg.stability, ls.age_secs(now), ls.secs_since_flap(now))
    }

    /// Whether this node's own adjacency to `peer` flapped within the
    /// configured flap memory. Only meaningful with stability weighting on;
    /// always `false` otherwise so the legacy answer path is untouched.
    fn recently_flapped(&self, peer: NodeId, now: SimTime) -> bool {
        self.cfg.stability_weighting
            && self
                .extractor
                .link_stability(peer)
                .secs_since_flap(now)
                .is_some_and(|s| s < self.cfg.stability.flap_memory_secs)
    }

    /// Whether this node logged the 2-hop pair `addr`-via-`via` as lost
    /// within the flap memory. Gated like [`Self::recently_flapped`].
    fn recently_lost_two_hop(&self, via: NodeId, addr: NodeId, now: SimTime) -> bool {
        self.cfg.stability_weighting
            && self.extractor.last_two_hop_loss(via, addr).is_some_and(|at| {
                now.saturating_since(at).as_secs_f64() < self.cfg.stability.flap_memory_secs
            })
    }

    fn maybe_open_case(&mut self, ctx: &mut Context<'_>, suspect: NodeId, hint: Option<NodeId>) {
        if !self.warmed_up(ctx.now()) {
            return; // the routing view is still converging
        }
        if self.condemned.contains(&suspect) {
            return;
        }
        if self.cases.iter().any(|c| c.suspect == suspect) {
            return;
        }
        let me = ctx.id();
        // A hint names the link that looked wrong when the trigger fired
        // (an uncorroborated claim, or the contested link of a reopened
        // dispute) and is honoured as-is: even if the *node* has since been
        // corroborated, the *claim* was the anomaly, and a baseless dispute
        // resolves harmlessly as well-behaving. Without a hint, pick the
        // least-corroborated advertised link now.
        let hint = hint.filter(|&x| x != me && x != suspect);
        let Some(contested) = hint.or_else(|| self.pick_contested(me, suspect)) else {
            return; // every advertised link is corroborated: nothing to dispute
        };
        let rounds = self.rounds.entry(suspect).or_insert(0);
        if *rounds >= self.cfg.max_rounds_per_suspect {
            return;
        }
        let old = self.old_mprs.get(&suspect).cloned().unwrap_or_default();
        let witnesses = plan_witnesses(
            &self.extractor,
            me,
            suspect,
            &old,
            self.cfg.investigation.max_witnesses,
        );
        if witnesses.len() < 2 {
            return; // a single witness can never clear the margin of error
        }
        *rounds += 1;
        self.next_case += 1;
        let mut case = Investigation::open(
            self.next_case,
            suspect,
            contested,
            witnesses.iter().copied(),
            ctx.now(),
            self.cfg.investigation.timeout,
        );
        if self.cfg.stability_weighting {
            // Snapshot how stable each witness link looks *now*: churn
            // false positives are triggered by a link dissolving, and the
            // instability is most visible at trigger time.
            let snapshot =
                witnesses.iter().map(|&w| self.stability_of(w, ctx.now())).collect::<Vec<_>>();
            case = case.with_witness_stability(snapshot);
        }
        let req = InvestigationMessage::VerifyLinkRequest { case: case.case, suspect, contested };
        for &w in &witnesses {
            // Route around the suspect, per Algorithm 1.
            self.olsr.send_data(ctx, w, req.encode(), Some(suspect));
        }
        self.cases.push(case);
    }

    fn finalize_case(&mut self, ctx: &mut Context<'_>, case: Investigation) {
        let now = ctx.now();
        let suspect = case.suspect;
        let mut pairs: Vec<(NodeId, Answer)> = Vec::new();
        for (w, a) in case.answers() {
            let answer = match a {
                WitnessAnswer::Pending => Answer::NoAnswer,
                WitnessAnswer::Confirmed => Answer::Confirm,
                WitnessAnswer::Denied => Answer::Deny,
            };
            pairs.push((*w, answer));
        }
        // Property 5: the investigator's own first-hand observation of the
        // contested link joins the evidence pool. It carries the weight of
        // one default-trust witness — privileged in that it cannot lie to
        // us, but not strong enough to overrule several trusted witnesses
        // (a full-weight self-vote can start a false-positive spiral when
        // the investigator simply lacks corroborating state).
        let self_evidence =
            self.verify_link(suspect, case.contested, now).map(Answer::from_verification);
        let self_weight = self.cfg.initial_trust;
        let weighted_pool = |this: &Self| -> Vec<(TrustValue, Answer)> {
            let mut v: Vec<(TrustValue, Answer)> =
                pairs.iter().map(|&(w, a)| (this.trust.trust_of(&w), a)).collect();
            if let Some(a) = self_evidence {
                v.push((self_weight, a));
            }
            v
        };
        // Stability-weighted pool: each witness's evidence is scaled by the
        // *least* stable view of its link — the case-open snapshot or the
        // current one. A link that flapped right before the trigger, or
        // that dissolved while the case ran, counts for less either way.
        let stability_pool = |this: &Self| -> Vec<(TrustValue, f64, Answer)> {
            let mut v: Vec<(TrustValue, f64, Answer)> = pairs
                .iter()
                .map(|&(w, a)| {
                    let s = case.witness_stability(w).min(this.stability_of(w, now));
                    (this.trust.trust_of(&w), s, a)
                })
                .collect();
            if let Some(a) = self_evidence {
                // First-hand observation of the contested link is only as
                // fresh as our links to the two nodes it connects.
                let s = this.stability_of(suspect, now).min(this.stability_of(case.contested, now));
                v.push((self_weight, s, a));
            }
            v
        };
        let detect = if self.cfg.trust_weighting {
            if self.cfg.stability_weighting {
                stability_weighted_detection_value(stability_pool(self))
            } else {
                detection_value(weighted_pool(self))
            }
        } else {
            unweighted_detection_value(pairs.iter().map(|&(_, a)| a).chain(self_evidence))
        };
        let samples: Vec<f64> = if self.cfg.trust_weighting {
            if self.cfg.stability_weighting {
                stability_weighted_evidence_samples(stability_pool(self))
            } else {
                weighted_evidence_samples(weighted_pool(self))
            }
        } else {
            answered_samples(pairs.iter().map(|&(_, a)| a).chain(self_evidence))
        };
        let margin = margin_of_error(&samples, self.cfg.confidence_level);
        let verdict = self.rule.decide(detect, margin);
        self.detect_history.push((now, suspect, detect));

        // Testimony evidence, keyed to the sign of the aggregate (§IV-B:
        // "this result is used to update the trust related to I and S_i").
        // Condemned nodes can no longer earn beneficial evidence.
        if detect <= -self.cfg.testimony_threshold {
            for (w, a) in &pairs {
                if self.condemned.contains(w) {
                    continue;
                }
                match a {
                    Answer::Deny => self.trust.record(*w, EvidenceKind::TruthfulTestimony),
                    Answer::Confirm => self.trust.record(*w, EvidenceKind::FalseTestimony),
                    Answer::NoAnswer => self.trust.record(*w, EvidenceKind::Unresponsive),
                }
            }
        } else if detect >= self.cfg.testimony_threshold {
            for (w, a) in &pairs {
                if self.condemned.contains(w) {
                    continue;
                }
                match a {
                    Answer::Confirm => self.trust.record(*w, EvidenceKind::TruthfulTestimony),
                    Answer::Deny => self.trust.record(*w, EvidenceKind::FalseTestimony),
                    Answer::NoAnswer => self.trust.record(*w, EvidenceKind::Unresponsive),
                }
            }
        }

        let answered = pairs.iter().filter(|(_, a)| *a != Answer::NoAnswer).count();
        match verdict {
            Verdict::Intruder => {
                self.condemned.insert(suspect);
                // Property 3: a confirmed intrusion collapses trust outright.
                self.trust.record(suspect, EvidenceKind::ForgedRouting);
                self.trust.set_trust(suspect, TrustValue::MIN);
                // Response: never select a convicted intruder as MPR again
                // (the CAP-OLSR-style exclusion of the paper's related work).
                self.olsr.exclude_from_mprs(suspect);
                // E4/E5 evidence completes the link-spoofing signature.
                for (w, a) in &pairs {
                    let ev = match a {
                        Answer::Deny => {
                            DetectionEvent::NotCovering { mpr: suspect, neighbor: *w, at: now }
                        }
                        Answer::NoAnswer => DetectionEvent::CoveringNonNeighbor {
                            mpr: suspect,
                            claimed: *w,
                            at: now,
                        },
                        Answer::Confirm => continue,
                    };
                    for m in self.engine.observe(&ev) {
                        self.matches.push(m);
                    }
                }
            }
            Verdict::WellBehaving => {
                self.engine.clear_suspect(suspect);
            }
            Verdict::Unrecognized => {
                // "more evidences should be collected": reopen immediately,
                // bounded by max_rounds_per_suspect. The contested link is
                // an open dispute and carries over verbatim.
                let contested = case.contested;
                self.maybe_open_case(ctx, suspect, Some(contested));
            }
        }
        self.verdicts.push(VerdictRecord {
            case: case.case,
            suspect,
            verdict,
            detect,
            margin,
            witnesses: case.witness_count(),
            answered,
            at: now,
        });
    }

    fn send_gossip(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let entries: Vec<(NodeId, TrustValue)> = self.trust.peers().map(|(n, t)| (*n, t)).collect();
        if entries.is_empty() {
            return;
        }
        let payload = crate::gossip::TrustGossip { entries }.encode();
        for n in self.olsr.symmetric_neighbors(now) {
            self.olsr.send_data(ctx, n, payload.clone(), None);
        }
    }

    fn handle_data(&mut self, ctx: &mut Context<'_>, src: NodeId, payload: Bytes) {
        if let Ok(gossip) = crate::gossip::TrustGossip::decode(payload.clone()) {
            // Recommendations about the recommender itself are ignored.
            let me = ctx.id();
            let entries: Vec<(NodeId, TrustValue)> =
                gossip.entries.into_iter().filter(|(n, _)| *n != src && *n != me).collect();
            self.recommendations.insert(src, entries);
            return;
        }
        let Ok(msg) = InvestigationMessage::decode(payload) else {
            return; // neither investigation traffic nor gossip
        };
        let now = ctx.now();
        match msg {
            InvestigationMessage::VerifyLinkRequest { case, suspect, contested } => {
                let truthful = self.verify_link(suspect, contested, now);
                // Rng-free liar policies must not touch the engine stream:
                // the sharded engine runs this callback without RNG access
                // whenever `rng_free` below declares it draw-free.
                let rng = self.cfg.liar_policy.draws_rng().then(|| ctx.rng());
                let answer = self.cfg.liar_policy.answer_opt(truthful, suspect, rng);
                let Some(answer) = answer else {
                    return; // honest abstention: no knowledge of the link
                };
                if self.cfg.answer_probability < 1.0
                    && !ctx.rng().random_bool(self.cfg.answer_probability)
                {
                    return; // answer withheld (unreliable environment)
                }
                let resp = InvestigationMessage::VerifyLinkResponse {
                    case,
                    suspect,
                    witness: ctx.id(),
                    link_exists: answer,
                };
                self.olsr.send_data(ctx, src, resp.encode(), Some(suspect));
            }
            InvestigationMessage::VerifyLinkResponse { case, witness, link_exists, .. } => {
                if let Some(c) = self.cases.iter_mut().find(|c| c.case == case) {
                    c.record_answer(witness, link_exists);
                }
            }
        }
    }

    /// What this node truthfully knows about the link `suspect`–`contested`
    /// (the E4/E5 checks a witness performs on its own state):
    ///
    /// * `Some(true)` — I corroborate the link (I *am* the contested peer
    ///   and hold the link, or I hear the contested peer claim it);
    /// * `Some(false)` — I affirmatively contradict it (I am the contested
    ///   peer and hold no such link — E4 — or nobody but the suspect has
    ///   ever mentioned the contested node — E5's non-existent neighbor);
    /// * `None` — I know the contested node exists but cannot see the link:
    ///   abstain rather than guess.
    ///
    /// With stability weighting on, a *denial* from either direct-knowledge
    /// branch additionally requires the denied link not to have been seen
    /// alive within the flap memory: a link the witness watched dissolve
    /// moments ago is indistinguishable from benign churn, so it abstains
    /// rather than feeding rule (10) a truthful-but-misleading `Deny`. A
    /// phantom link was never seen alive, so spoof denials stay crisp.
    fn verify_link(&self, suspect: NodeId, contested: NodeId, now: SimTime) -> Option<bool> {
        let me = self.olsr.id();
        if contested == me {
            let holds = self.olsr.symmetric_neighbors(now).contains(&suspect);
            if !holds && self.recently_flapped(suspect, now) {
                return None; // I just lost that link myself: churn, not spoofing
            }
            return Some(holds);
        }
        if self.olsr.symmetric_neighbors(now).contains(&contested) {
            // I hear the contested node's own HELLOs: does *it* claim the
            // suspect as a symmetric neighbor?
            let claims = self.olsr.two_hop_set().reachable_via(contested, now).contains(&suspect);
            if !claims
                && (self.recently_lost_two_hop(contested, suspect, now)
                    || self.recently_flapped(contested, now))
            {
                return None; // I saw that link (or my view of it) die moments ago
            }
            return Some(claims);
        }
        // Corroboration through anyone other than the suspect?
        let via_other =
            self.olsr.two_hop_set().vias_for(contested, now).into_iter().any(|v| v != suspect);
        let in_topology = self
            .olsr
            .topology_set()
            .iter(now)
            .any(|t| (t.dest == contested && t.last_hop != suspect) || t.last_hop == contested);
        if !via_other && !in_topology {
            if self.warmed_up(now) {
                Some(false) // nobody but the suspect has ever heard of it
            } else {
                None // my own view is too young to testify to absence
            }
        } else {
            None // it exists somewhere, but I cannot see this link
        }
    }
}

impl<H: OlsrHooks> Application for DetectorNode<H> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.started_at = ctx.now();
        self.olsr.on_start(ctx);
        let stagger = trustlink_sim::SimDuration::from_micros(
            ctx.rng().random_range(0..self.cfg.analysis_interval.as_micros().max(1)),
        );
        ctx.set_timer(self.cfg.analysis_interval + stagger, TIMER_ANALYSIS);
        if let Some(interval) = self.cfg.gossip_interval {
            ctx.set_timer(interval + stagger, TIMER_GOSSIP);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if timer == TIMER_ANALYSIS {
            self.run_analysis(ctx);
            ctx.set_timer(self.cfg.analysis_interval, TIMER_ANALYSIS);
        } else if timer == TIMER_GOSSIP {
            self.send_gossip(ctx);
            if let Some(interval) = self.cfg.gossip_interval {
                ctx.set_timer(interval, TIMER_GOSSIP);
            }
        } else {
            self.olsr.on_timer(ctx, timer);
        }
    }

    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        self.olsr.on_receive(ctx, from, payload);
        for data in self.olsr.take_inbox() {
            self.handle_data(ctx, data.src, data.payload);
        }
    }

    fn rng_free(&self, class: CallbackClass) -> bool {
        match class {
            // `on_start` staggers the analysis/gossip timers from the
            // engine stream.
            CallbackClass::Start => false,
            // Analysis, gossip and the inner OLSR timers never draw.
            CallbackClass::Timer => true,
            // The receive path draws only when answering a verification
            // request: a probabilistic liar rolls its lie, and an
            // unreliable witness (answer_probability < 1) rolls whether to
            // answer at all. Every other configuration is draw-free.
            CallbackClass::Receive => {
                !self.cfg.liar_policy.draws_rng() && self.cfg.answer_probability >= 1.0
            }
        }
    }
}

impl<H: OlsrHooks> std::fmt::Debug for DetectorNode<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorNode")
            .field("olsr", &self.olsr)
            .field("open_cases", &self.cases.len())
            .field("verdicts", &self.verdicts.len())
            .field("condemned", &self.condemned)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_olsr::logging::LogRecord;
    use trustlink_olsr::types::Willingness;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn detector() -> DetectorNode {
        DetectorNode::with_defaults()
    }

    fn hello(d: &mut DetectorNode, from: u32, sym: &[u32], at: SimTime) {
        d.extractor.ingest_record(
            at,
            &LogRecord::HelloRx {
                from: NodeId(from),
                willingness: Willingness::Default,
                sym: sym.iter().map(|&n| NodeId(n)).collect(),
                asym: Box::from([]),
            },
        );
    }

    #[test]
    fn pick_contested_selects_uncorroborated_claim() {
        let mut d = detector();
        // Suspect N4 claims N1 (corroborated) and N8 (only via N4).
        hello(&mut d, 4, &[1, 8], t(1));
        d.extractor
            .ingest_record(t(1), &LogRecord::TwoHopAdded { via: NodeId(4), addr: NodeId(8) });
        d.extractor
            .ingest_record(t(1), &LogRecord::TwoHopAdded { via: NodeId(4), addr: NodeId(1) });
        d.extractor
            .ingest_record(t(1), &LogRecord::TwoHopAdded { via: NodeId(2), addr: NodeId(1) });
        assert_eq!(d.pick_contested(NodeId(0), NodeId(4)), Some(NodeId(8)));
    }

    #[test]
    fn pick_contested_none_when_all_claims_corroborated() {
        let mut d = detector();
        hello(&mut d, 4, &[1, 8], t(1));
        for via in [2u32, 4] {
            d.extractor
                .ingest_record(t(1), &LogRecord::TwoHopAdded { via: NodeId(via), addr: NodeId(8) });
            d.extractor
                .ingest_record(t(1), &LogRecord::TwoHopAdded { via: NodeId(via), addr: NodeId(1) });
        }
        assert_eq!(d.pick_contested(NodeId(0), NodeId(4)), None);
    }

    #[test]
    fn pick_contested_skips_own_neighbors_and_self() {
        let mut d = detector();
        // Suspect claims me (N0) and my direct neighbor N1: neither is a
        // plausible phantom.
        hello(&mut d, 4, &[0, 1], t(1));
        d.extractor.ingest_record(t(1), &LogRecord::NeighborAdded { addr: NodeId(1) });
        assert_eq!(d.pick_contested(NodeId(0), NodeId(4)), None);
    }

    #[test]
    fn warmup_gate_follows_config() {
        let d = detector(); // default warmup 15 s
        assert!(!d.warmed_up(t(1)));
        assert!(!d.warmed_up(t(14)));
        assert!(d.warmed_up(t(15)));
    }

    #[test]
    fn indirect_trust_merges_recommendations() {
        let mut d = detector();
        // Two neighbors recommend about N9: one trusted, one distrusted.
        d.trust.set_trust(NodeId(1), TrustValue::new(0.8));
        d.trust.set_trust(NodeId(2), TrustValue::new(-0.5)); // ignored: weight 0
        d.recommendations.insert(NodeId(1), vec![(NodeId(9), TrustValue::new(-0.9))]);
        d.recommendations.insert(NodeId(2), vec![(NodeId(9), TrustValue::new(1.0))]);
        let indirect = d.indirect_trust_of(NodeId(9));
        assert!(
            (indirect.get() - (-0.9)).abs() < 1e-9,
            "distrusted recommender must not count: {indirect}"
        );
        // Unknown target: maximal uncertainty.
        assert_eq!(d.indirect_trust_of(NodeId(42)), TrustValue::ZERO);
        assert_eq!(d.recommender_count(), 2);
    }

    #[test]
    fn default_config_is_coherent() {
        let cfg = DetectorConfig::default();
        assert!(cfg.gamma > 0.0 && cfg.gamma <= 1.0);
        assert!((0.0..=1.0).contains(&cfg.answer_probability));
        assert!(cfg.testimony_threshold < cfg.gamma);
        assert!(cfg.warmup > cfg.analysis_interval);
        assert!(cfg.gossip_interval.is_none());
    }
}
