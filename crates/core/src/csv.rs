//! CSV rendering of [`Figure`]s (hand-rolled — no extra dependency), for
//! piping experiment output into external plotting tools.

use crate::experiments::Figure;

/// Renders a figure as CSV: first column `x`, one column per series.
///
/// Rows are the union of all x values (sorted); series without a point at
/// some x leave the cell empty. Non-finite values render empty too. Labels
/// containing commas or quotes are quoted per RFC 4180.
pub fn to_csv(figure: &Figure) -> String {
    let mut xs: Vec<f64> =
        figure.series.iter().flat_map(|s| s.points.iter().map(|&(x, _)| x)).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("x values must not be NaN"));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut out = String::new();
    out.push('x');
    for s in &figure.series {
        out.push(',');
        out.push_str(&escape(&s.label));
    }
    out.push('\n');
    for &x in &xs {
        out.push_str(&trim_float(x));
        for s in &figure.series {
            out.push(',');
            let y = s.points.iter().find(|&&(px, _)| (px - x).abs() < 1e-12).map(|&(_, y)| y);
            if let Some(y) = y {
                if y.is_finite() {
                    out.push_str(&trim_float(y));
                }
            }
        }
        out.push('\n');
    }
    out
}

fn escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-12 && v.abs() < 1e15 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Figure, Series};

    fn fig() -> Figure {
        Figure {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series { label: "a".into(), points: vec![(1.0, 0.5), (2.0, 0.25)] },
                Series { label: "b,c".into(), points: vec![(1.0, -1.0)] },
            ],
        }
    }

    #[test]
    fn header_and_rows() {
        let csv = to_csv(&fig());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,\"b,c\"");
        assert_eq!(lines[1], "1,0.500000,-1");
        assert_eq!(lines[2], "2,0.250000,");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn quotes_escaped() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("with \"q\""), "\"with \"\"q\"\"\"");
    }

    #[test]
    fn integers_render_clean() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(-0.8), "-0.800000");
    }

    #[test]
    fn infinite_cells_left_empty() {
        let f = Figure {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series { label: "a".into(), points: vec![(1.0, f64::INFINITY)] }],
        };
        let csv = to_csv(&f);
        assert_eq!(csv.lines().nth(1).unwrap(), "1,");
    }

    #[test]
    fn empty_figure_is_header_only() {
        let f =
            Figure { title: "t".into(), x_label: "x".into(), y_label: "y".into(), series: vec![] };
        assert_eq!(to_csv(&f), "x\n");
    }
}
