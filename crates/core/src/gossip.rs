//! Trust-recommendation exchange: the live use of formulas (6) and (7).
//!
//! §IV-A: "When the observations of A are not sufficient, additional
//! evidences provided by other nodes are gleaned." Detectors periodically
//! send their neighbors a digest of their own trust ledger; the receiver
//! stores it as *recommendations* and can evaluate nodes it has never
//! interacted with by multipath propagation (formula 7), discounting each
//! recommender by its own trustworthiness (formula 6).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use trustlink_sim::NodeId;
use trustlink_trust::value::TrustValue;

/// The gossip payload: a digest of the sender's trust ledger.
///
/// Serialized trust values are quantized to 1/10000 — far below any
/// behavioural threshold in the system.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustGossip {
    /// `(peer, trust)` entries from the sender's ledger.
    pub entries: Vec<(NodeId, TrustValue)>,
}

/// Wire tag distinguishing gossip from investigation messages (tags 1, 2).
const TAG: u8 = 3;

/// Decoding error for [`TrustGossip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadGossip;

impl std::fmt::Display for BadGossip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("malformed trust gossip")
    }
}

impl std::error::Error for BadGossip {}

impl TrustGossip {
    /// Serializes to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(3 + self.entries.len() * 4);
        buf.put_u8(TAG);
        buf.put_u16(u16::try_from(self.entries.len()).expect("gossip too large"));
        for (node, trust) in &self.entries {
            node.put(&mut buf);
            buf.put_i16((trust.get() * 10_000.0).round() as i16);
        }
        buf.freeze()
    }

    /// Deserializes from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BadGossip`] on a wrong tag, truncation or trailing bytes.
    pub fn decode(mut bytes: Bytes) -> Result<Self, BadGossip> {
        if bytes.len() < 3 || bytes[0] != TAG {
            return Err(BadGossip);
        }
        bytes.advance(1);
        let count = bytes.get_u16() as usize;
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let node = NodeId::get(&mut bytes).ok_or(BadGossip)?;
            if bytes.remaining() < 2 {
                return Err(BadGossip);
            }
            let trust = TrustValue::new(f64::from(bytes.get_i16()) / 10_000.0);
            entries.push((node, trust));
        }
        if bytes.has_remaining() {
            return Err(BadGossip);
        }
        Ok(TrustGossip { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = TrustGossip {
            entries: vec![
                (NodeId(1), TrustValue::new(0.4)),
                (NodeId(2), TrustValue::new(-1.0)),
                (NodeId(65_000), TrustValue::new(1.0)),
            ],
        };
        let decoded = TrustGossip::decode(g.encode()).unwrap();
        assert_eq!(decoded.entries.len(), 3);
        for ((n1, t1), (n2, t2)) in g.entries.iter().zip(&decoded.entries) {
            assert_eq!(n1, n2);
            assert!((t1.get() - t2.get()).abs() < 1e-3, "{t1} vs {t2}");
        }
    }

    #[test]
    fn empty_roundtrip() {
        let g = TrustGossip { entries: vec![] };
        assert_eq!(TrustGossip::decode(g.encode()).unwrap(), g);
    }

    #[test]
    fn rejects_garbage() {
        assert!(TrustGossip::decode(Bytes::from_static(b"")).is_err());
        assert!(TrustGossip::decode(Bytes::from_static(b"\x01\x00\x00")).is_err());
        // Wrong length for the declared count:
        assert!(TrustGossip::decode(Bytes::from_static(b"\x03\x00\x02\x00\x01\x10\x00")).is_err());
        // Trailing garbage:
        let mut buf = BytesMut::new();
        buf.put_u8(TAG);
        buf.put_u16(0);
        buf.put_u8(9);
        assert!(TrustGossip::decode(buf.freeze()).is_err());
    }

    #[test]
    fn quantization_error_bounded() {
        for i in -10..=10 {
            let t = TrustValue::new(f64::from(i) / 10.0 + 0.00007);
            let g = TrustGossip { entries: vec![(NodeId(0), t)] };
            let d = TrustGossip::decode(g.encode()).unwrap();
            assert!((d.entries[0].1.get() - t.get()).abs() < 1e-4);
        }
    }
}
