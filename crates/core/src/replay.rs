//! Flight-recorder capture and replay of whole scenario runs.
//!
//! [`record_scenario`] turns a finished [`ScenarioReport`] into one
//! [`FlightRecorder`]: every node's typed audit log, each detector's
//! analysis-slot boundaries (as [`LogRecord::AnalysisTick`] markers placed
//! exactly where the live pass sampled the log) and every rule (10) verdict
//! (as [`LogRecord::Verdict`] records). The recording serializes to rlog
//! text and is self-contained: [`replay_recording`] re-ingests it through
//! *fresh* [`EventExtractor`]s — no simulator, no network — and reproduces
//! the live run's detection-event stream and verdict stream exactly.
//!
//! That exactness rests on two facts the tests pin:
//!
//! * the extractor's record ingest is a pure function of the record
//!   sequence, and its periodic sweep runs at the recorded tick times, so
//!   replay batching equals live batching by construction;
//! * the detector-plane records are added only here, at capture time —
//!   routing nodes never write them to their own buffers, which keeps
//!   [`trustlink_sim::LogBuffer::render_lines`] byte-identical to the
//!   pre-typed text logs.
//!
//! Capture requires [`DetectorConfig::flight_recording`] to have been on
//! during the run (otherwise the tick/verdict side history is empty and the
//! recording degrades to the bare routing log).
//!
//! [`DetectorConfig::flight_recording`]: crate::detector::DetectorConfig::flight_recording

use trustlink_attacks::spoof::LinkSpoofing;
use trustlink_ids::events::{DetectionEvent, EventExtractor};
use trustlink_sim::record::{FlightRecord, FlightRecorder, LogRecord, VerdictKind};
use trustlink_sim::{NodeId, SimDuration, SimTime, Simulator};
use trustlink_trust::decision::Verdict;

use crate::detector::{DetectorNode, VerdictRecord};
use crate::scenario::ScenarioReport;

fn kind_of(v: Verdict) -> VerdictKind {
    match v {
        Verdict::WellBehaving => VerdictKind::WellBehaving,
        Verdict::Intruder => VerdictKind::Intruder,
        Verdict::Unrecognized => VerdictKind::Unrecognized,
    }
}

fn verdict_of(k: VerdictKind) -> Verdict {
    match k {
        VerdictKind::WellBehaving => Verdict::WellBehaving,
        VerdictKind::Intruder => Verdict::Intruder,
        VerdictKind::Unrecognized => Verdict::Unrecognized,
    }
}

/// The `(when, cursor)` analysis-slot history of the detector on `id`, for
/// either the faithful or the attacker-hooked variant.
fn analysis_ticks_of(sim: &Simulator, id: NodeId) -> Vec<(SimTime, usize)> {
    if let Some(d) = sim.app_as::<DetectorNode>(id) {
        d.analysis_ticks().to_vec()
    } else if let Some(d) = sim.app_as::<DetectorNode<LinkSpoofing>>(id) {
        d.analysis_ticks().to_vec()
    } else {
        Vec::new()
    }
}

/// The live extracted-event history of the detector on `id` (empty unless
/// flight recording was on).
pub fn extracted_events_of(sim: &Simulator, id: NodeId) -> Vec<DetectionEvent> {
    if let Some(d) = sim.app_as::<DetectorNode>(id) {
        d.extracted_events().to_vec()
    } else if let Some(d) = sim.app_as::<DetectorNode<LinkSpoofing>>(id) {
        d.extracted_events().to_vec()
    } else {
        Vec::new()
    }
}

/// Captures a finished scenario into one replayable [`FlightRecorder`].
///
/// Per node, the stream is its audit log in log order with an
/// [`LogRecord::AnalysisTick`] inserted at every recorded cursor boundary
/// (so a replayer samples the log exactly where the live detector did),
/// followed by the node's own [`LogRecord::Verdict`] records.
pub fn record_scenario(report: &ScenarioReport) -> FlightRecorder {
    let sim = &report.sim;
    let mut records = Vec::new();
    for id in sim.node_ids().collect::<Vec<_>>() {
        let entries = sim.log(id).entries();
        let mut ticks = analysis_ticks_of(sim, id).into_iter().peekable();
        for (pos, (at, record)) in entries.iter().enumerate() {
            while ticks.peek().is_some_and(|(_, cursor)| *cursor <= pos) {
                let (tick_at, _) = ticks.next().expect("peeked");
                records.push(FlightRecord {
                    at: tick_at,
                    node: id,
                    record: LogRecord::AnalysisTick,
                });
            }
            records.push(FlightRecord { at: *at, node: id, record: record.clone() });
        }
        for (tick_at, _) in ticks {
            records.push(FlightRecord { at: tick_at, node: id, record: LogRecord::AnalysisTick });
        }
        for (observer, v) in &report.verdicts {
            if *observer != id {
                continue;
            }
            records.push(FlightRecord {
                at: v.at,
                node: id,
                record: LogRecord::Verdict {
                    case: v.case,
                    suspect: v.suspect,
                    verdict: kind_of(v.verdict),
                    detect: v.detect,
                    margin: v.margin,
                    witnesses: v.witnesses as u32,
                    answered: v.answered as u32,
                },
            });
        }
    }
    FlightRecorder::from_records(records)
}

/// What [`replay_recording`] reconstructs from a recording.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReplayReport {
    /// Per replayed node: every detection event a fresh extractor produces
    /// from that node's recorded stream, in extraction order. Nodes that
    /// produced no events are omitted.
    pub node_events: Vec<(NodeId, Vec<DetectionEvent>)>,
    /// The recorded verdict stream, as `(observer, record)` pairs in
    /// recording order.
    pub verdicts: Vec<(NodeId, VerdictRecord)>,
}

/// Replays a recording through fresh [`EventExtractor`]s.
///
/// For each node, records are fed in stream order: routing records via
/// [`EventExtractor::ingest_record`], each [`LogRecord::AnalysisTick`]
/// triggering the periodic sweep with `tc_silence_after` (pass the same
/// allowance the live detector used: `tc_interval × 4 × near_stride`).
/// Ingest stops at the node's last tick — trailing records were never seen
/// by the live analysis either. [`LogRecord::Verdict`] records are
/// collected, not ingested.
pub fn replay_recording(recorder: &FlightRecorder, tc_silence_after: SimDuration) -> ReplayReport {
    let mut nodes: Vec<NodeId> = recorder.records().iter().map(|r| r.node).collect();
    nodes.sort_unstable();
    nodes.dedup();

    let mut report = ReplayReport::default();
    for node in nodes {
        let stream: Vec<&FlightRecord> = recorder.records_of(node).collect();
        let last_tick = stream
            .iter()
            .rposition(|r| matches!(r.record, LogRecord::AnalysisTick))
            .map_or(0, |i| i + 1);
        let mut extractor = EventExtractor::new();
        let mut events = Vec::new();
        for r in &stream[..last_tick] {
            match &r.record {
                LogRecord::AnalysisTick => {
                    events.extend(extractor.tick(r.at, tc_silence_after));
                }
                LogRecord::Verdict { .. } => {}
                record => events.extend(extractor.ingest_record(r.at, record)),
            }
        }
        if !events.is_empty() {
            report.node_events.push((node, events));
        }
        for r in &stream {
            if let LogRecord::Verdict {
                case,
                suspect,
                verdict,
                detect,
                margin,
                witnesses,
                answered,
            } = r.record
            {
                report.verdicts.push((
                    node,
                    VerdictRecord {
                        case,
                        suspect,
                        verdict: verdict_of(verdict),
                        detect,
                        margin,
                        witnesses: witnesses as usize,
                        answered: answered as usize,
                        at: r.at,
                    },
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_sim::record::Willingness;

    #[test]
    fn verdict_kind_conversion_is_a_bijection() {
        for v in [Verdict::WellBehaving, Verdict::Intruder, Verdict::Unrecognized] {
            assert_eq!(verdict_of(kind_of(v)), v);
        }
    }

    #[test]
    fn replay_batches_at_tick_markers_and_skips_trailing_records() {
        let mut rec = FlightRecorder::new();
        let n = NodeId(0);
        // An unknown-neighbor claim before the first tick must be extracted;
        // one after the last tick must not (live analysis never saw it).
        rec.push(
            SimTime::from_secs(1),
            n,
            LogRecord::HelloRx {
                from: NodeId(1),
                willingness: Willingness::Default,
                sym: Box::from([NodeId(99)]),
                asym: Box::from([]),
            },
        );
        rec.push(SimTime::from_secs(2), n, LogRecord::AnalysisTick);
        rec.push(
            SimTime::from_secs(3),
            n,
            LogRecord::HelloRx {
                from: NodeId(1),
                willingness: Willingness::Default,
                sym: Box::from([NodeId(98)]),
                asym: Box::from([]),
            },
        );
        let replay = replay_recording(&rec, SimDuration::from_secs(1000));
        assert_eq!(replay.node_events.len(), 1);
        let (node, events) = &replay.node_events[0];
        assert_eq!(*node, n);
        assert_eq!(events.len(), 1, "only the pre-tick claim is extracted: {events:?}");
        assert!(replay.verdicts.is_empty());
    }

    #[test]
    fn replay_collects_verdicts_verbatim() {
        let mut rec = FlightRecorder::new();
        rec.push(SimTime::from_secs(5), NodeId(2), LogRecord::AnalysisTick);
        rec.push(
            SimTime::from_secs(5),
            NodeId(2),
            LogRecord::Verdict {
                case: 7,
                suspect: NodeId(8),
                verdict: VerdictKind::Intruder,
                detect: -0.8125,
                margin: 0.25,
                witnesses: 3,
                answered: 2,
            },
        );
        let replay = replay_recording(&rec, SimDuration::from_secs(1000));
        assert_eq!(
            replay.verdicts,
            vec![(
                NodeId(2),
                VerdictRecord {
                    case: 7,
                    suspect: NodeId(8),
                    verdict: Verdict::Intruder,
                    detect: -0.8125,
                    margin: 0.25,
                    witnesses: 3,
                    answered: 2,
                    at: SimTime::from_secs(5),
                }
            )]
        );
    }
}
