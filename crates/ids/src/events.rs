//! Detection events and their extraction from audit logs.
//!
//! §III-B of the paper enumerates the observations relevant to a link
//! spoofing attack:
//!
//! * **E1** — an MPR is replaced;
//! * **E2** — a previously-selected MPR is detected misbehaving (drops,
//!   forges or misrelays messages);
//! * **E3** — an MPR is the only provider of connectivity to some node
//!   (suspicious but never sufficient on its own);
//! * **E4** — an MPR does not cover its adjacent neighbors (established by
//!   interrogating them);
//! * **E5** — an MPR provides connectivity to a non-neighbor (same).
//!
//! E1–E3 are extracted *locally* from the node's own log lines by
//! [`EventExtractor`]; E4/E5 arrive as answers during the cooperative
//! investigation and are produced by
//! [`crate::investigation::Investigation`].

use std::collections::{BTreeMap, BTreeSet};

use trustlink_olsr::logging::LogRecord;
use trustlink_olsr::logging::ParseLogError;
use trustlink_sim::{NodeId, SimTime};

/// How urgently an event calls for action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Criticality {
    /// Bookkeeping only.
    Informational,
    /// Warrants a cooperative investigation (the paper's E1/E2 triggers).
    Suspicious,
    /// Direct evidence of an attack (confirmed E4/E5).
    Critical,
}

/// A detection-relevant observation about one suspect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectionEvent {
    /// E1: the MPR set changed such that `replaced` lost MPR status while
    /// `replacing` gained it. The *replacing* MPR is the prime suspect
    /// (Expression (1): inserting a fake neighbor guarantees selection).
    MprReplaced {
        /// MPRs that lost their status.
        replaced: Vec<NodeId>,
        /// MPRs that gained status — the suspects.
        replacing: Vec<NodeId>,
        /// When the replacement was observed.
        at: SimTime,
    },
    /// E2: a currently- or previously-selected MPR shows misbehaviour.
    MprMisbehaving {
        /// The suspect MPR.
        mpr: NodeId,
        /// What was observed.
        reason: MisbehaviourReason,
        /// When.
        at: SimTime,
    },
    /// E3: `mpr` is the sole provider of connectivity to `only_via` —
    /// suspicious but not actionable alone (sparse networks look the same).
    SoleConnectivity {
        /// The MPR in question.
        mpr: NodeId,
        /// Nodes reachable only through it.
        only_via: Vec<NodeId>,
        /// When.
        at: SimTime,
    },
    /// E4: a witness denied being covered by the suspect (investigation
    /// answer).
    NotCovering {
        /// The suspect MPR.
        mpr: NodeId,
        /// The adjacent neighbor it fails to cover.
        neighbor: NodeId,
        /// When the answer arrived.
        at: SimTime,
    },
    /// E5: the suspect advertises connectivity to a node that is not its
    /// neighbor (or does not exist).
    CoveringNonNeighbor {
        /// The suspect MPR.
        mpr: NodeId,
        /// The claimed-but-false neighbor.
        claimed: NodeId,
        /// When established.
        at: SimTime,
    },
}

/// The concrete misbehaviour behind an E2 event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MisbehaviourReason {
    /// The MPR's HELLO claims a symmetric neighbor entirely unknown to the
    /// local view of the network (candidate non-existent node,
    /// Expression (1)).
    UnknownClaimedNeighbor(NodeId),
    /// The MPR stopped originating TCs while still holding selectors.
    TcSilence,
    /// A frame from the MPR failed to decode (forged/corrupt).
    MalformedTraffic,
    /// The MPR's advertised neighbor set never changes although the
    /// neighborhood around it does (the paper's "continues to advertise
    /// identical 1-hop neighbors despite recent changes").
    StaleAdvertisement,
    /// A MID claimed an alias that is another known node's main address
    /// (MID spoofing, §II: "a node that holds several interfaces ...
    /// should be distinguished" from identity theft).
    HijackedAlias(NodeId),
}

impl DetectionEvent {
    /// The node this event incriminates (the first suspect for compound
    /// events).
    pub fn suspect(&self) -> Option<NodeId> {
        match self {
            DetectionEvent::MprReplaced { replacing, .. } => replacing.first().copied(),
            DetectionEvent::MprMisbehaving { mpr, .. }
            | DetectionEvent::SoleConnectivity { mpr, .. }
            | DetectionEvent::NotCovering { mpr, .. }
            | DetectionEvent::CoveringNonNeighbor { mpr, .. } => Some(*mpr),
        }
    }

    /// All suspects named by the event.
    pub fn suspects(&self) -> Vec<NodeId> {
        match self {
            DetectionEvent::MprReplaced { replacing, .. } => replacing.clone(),
            other => other.suspect().into_iter().collect(),
        }
    }

    /// When the event was observed.
    pub fn at(&self) -> SimTime {
        match self {
            DetectionEvent::MprReplaced { at, .. }
            | DetectionEvent::MprMisbehaving { at, .. }
            | DetectionEvent::SoleConnectivity { at, .. }
            | DetectionEvent::NotCovering { at, .. }
            | DetectionEvent::CoveringNonNeighbor { at, .. } => *at,
        }
    }

    /// The criticality class of the event (drives whether an investigation
    /// is launched — the paper's "depending on their level of criticality").
    pub fn criticality(&self) -> Criticality {
        match self {
            DetectionEvent::MprReplaced { .. } | DetectionEvent::MprMisbehaving { .. } => {
                Criticality::Suspicious
            }
            DetectionEvent::SoleConnectivity { .. } => Criticality::Informational,
            DetectionEvent::NotCovering { .. } | DetectionEvent::CoveringNonNeighbor { .. } => {
                Criticality::Critical
            }
        }
    }
}

/// Incrementally rebuilds a routing view from audit-log lines and emits
/// E1–E3 (plus E2 heuristics) as they become visible.
///
/// The extractor sees **only what the log says** — it deliberately has no
/// access to protocol internals, mirroring the paper's architecture.
#[derive(Debug, Clone, Default)]
pub struct EventExtractor {
    /// Current MPR set as last logged.
    mprs: Vec<NodeId>,
    /// The MPR set at the end of the previous analysis slot — the
    /// baseline E1 replacement is judged against (see [`tick`]).
    ///
    /// [`tick`]: EventExtractor::tick
    slot_mprs: Vec<NodeId>,
    /// Per-neighbor claimed symmetric neighbor sets from their HELLOs.
    claims: BTreeMap<NodeId, Vec<NodeId>>,
    /// When each neighbor's claim last *changed* (not merely refreshed).
    claim_changed_at: BTreeMap<NodeId, SimTime>,
    /// Every address ever seen in any log line: the local estimate of the
    /// network's node population `N`.
    known: BTreeSet<NodeId>,
    /// 2-hop reachability as logged: target -> vias.
    vias: BTreeMap<NodeId, BTreeSet<NodeId>>,
    /// Last time a TC from each originator was logged.
    last_tc: BTreeMap<NodeId, SimTime>,
    /// Symmetric 1-hop neighborhood as logged.
    neighbors: BTreeSet<NodeId>,
    /// Per-neighbor link history: when the current symmetric adjacency was
    /// established and how often it has flapped. Fed from the same
    /// `NeighborAdded` / `NeighborLost` records as `neighbors`, never from
    /// protocol internals.
    stability: BTreeMap<NodeId, LinkStability>,
    /// When each `(via, two_hop)` pair was last logged as lost. A denial
    /// of a link the witness saw alive moments ago is indistinguishable
    /// from benign churn, so witnesses consult this before testifying.
    two_hop_losses: BTreeMap<(NodeId, NodeId), SimTime>,
}

/// The stability history of one symmetric link, as visible in the typed
/// audit log: the age of the current adjacency plus its flap count.
///
/// The trust layer turns this into an evidence weight (see
/// `trustlink_trust::stability_weight`): testimony carried over a young or
/// recently flapping link counts for less, so mobility churn degrades
/// detection gracefully instead of producing false convictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStability {
    /// When the current symmetric adjacency was established; `None` while
    /// the link is down (or was never seen).
    pub up_since: Option<SimTime>,
    /// How many times the link has been lost (`NeighborLost`) in total.
    pub flaps: u32,
    /// When the link last flapped, if ever.
    pub last_flap: Option<SimTime>,
}

impl LinkStability {
    /// Age of the current adjacency in seconds, `None` while down.
    pub fn age_secs(&self, now: SimTime) -> Option<f64> {
        self.up_since.map(|since| now.saturating_since(since).as_secs_f64())
    }

    /// Seconds since the last flap, `None` if the link never flapped.
    pub fn secs_since_flap(&self, now: SimTime) -> Option<f64> {
        self.last_flap.map(|at| now.saturating_since(at).as_secs_f64())
    }
}

impl EventExtractor {
    /// A fresh extractor with an empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one typed log record; returns any detection events it
    /// triggers. This is the primary ingest path — the detector tails its
    /// node's typed audit log directly, with no text round-trip.
    pub fn ingest_record(&mut self, at: SimTime, record: &LogRecord) -> Vec<DetectionEvent> {
        let mut events = Vec::new();
        // Every address mentioned anywhere enters the known-population set.
        self.absorb_addresses(record);
        match record {
            LogRecord::MprSet { mprs } => {
                // Only the view updates here. E1 (MPR replacement) is
                // judged per analysis slot in [`EventExtractor::tick`]:
                // the detector samples its log every Δt, and sub-slot MPR
                // flaps are churn noise — chasing each intermediate set
                // would also make detection depend on how eagerly the
                // router schedules its recomputations, which is exactly
                // what the recompute-mode equivalence contract forbids.
                self.mprs = mprs.to_vec();
            }
            LogRecord::HelloRx { from, sym, .. } => {
                // E2 heuristic: claiming a node nobody has ever heard of.
                for claimed in sym {
                    if *claimed != *from && !self.known.contains(claimed) {
                        events.push(DetectionEvent::MprMisbehaving {
                            mpr: *from,
                            reason: MisbehaviourReason::UnknownClaimedNeighbor(*claimed),
                            at,
                        });
                        self.known.insert(*claimed);
                    }
                }
                let changed = self.claims.get(from).is_none_or(|prev| prev[..] != sym[..]);
                if changed {
                    self.claim_changed_at.insert(*from, at);
                }
                self.claims.insert(*from, sym.to_vec());
            }
            LogRecord::TcRx { originator, advertised, .. } => {
                // TC-spoofing heuristic (§III-A: "detection strategy [is]
                // quite identical" for TC tampering): advertising a
                // selector nobody has ever been heard of.
                for sel in advertised {
                    if *sel != *originator && !self.known.contains(sel) {
                        events.push(DetectionEvent::MprMisbehaving {
                            mpr: *originator,
                            reason: MisbehaviourReason::UnknownClaimedNeighbor(*sel),
                            at,
                        });
                        self.known.insert(*sel);
                    }
                }
                self.last_tc.insert(*originator, at);
            }
            LogRecord::MidRx { originator, aliases } => {
                // MID-spoofing heuristic: claiming an alias that is already
                // a known node's main address hijacks that identity.
                for alias in aliases {
                    if self.known.contains(alias) && *alias != *originator {
                        events.push(DetectionEvent::MprMisbehaving {
                            mpr: *originator,
                            reason: MisbehaviourReason::HijackedAlias(*alias),
                            at,
                        });
                    }
                }
            }
            LogRecord::NeighborAdded { addr } => {
                self.neighbors.insert(*addr);
                let hist = self.stability.entry(*addr).or_default();
                if hist.up_since.is_none() {
                    hist.up_since = Some(at);
                }
            }
            LogRecord::NeighborLost { addr } => {
                self.neighbors.remove(addr);
                let hist = self.stability.entry(*addr).or_default();
                hist.up_since = None;
                hist.flaps += 1;
                hist.last_flap = Some(at);
            }
            LogRecord::TwoHopAdded { via, addr } => {
                self.vias.entry(*addr).or_default().insert(*via);
            }
            LogRecord::TwoHopLost { via, addr } => {
                if let Some(set) = self.vias.get_mut(addr) {
                    set.remove(via);
                    if set.is_empty() {
                        self.vias.remove(addr);
                    }
                }
                self.two_hop_losses.insert((*via, *addr), at);
            }
            LogRecord::DecodeError { from } => {
                events.push(DetectionEvent::MprMisbehaving {
                    mpr: *from,
                    reason: MisbehaviourReason::MalformedTraffic,
                    at,
                });
            }
            _ => {}
        }
        events
    }

    /// Convenience for externally captured text logs: parse a raw line and
    /// ingest it.
    ///
    /// # Errors
    ///
    /// Propagates [`ParseLogError`] from the log parser.
    pub fn ingest_line(
        &mut self,
        at: SimTime,
        line: &str,
    ) -> Result<Vec<DetectionEvent>, ParseLogError> {
        let record = trustlink_olsr::logging::parse_line(line)?;
        Ok(self.ingest_record(at, &record))
    }

    /// Periodic sweep for non-event-driven checks (the paper's
    /// "periodical/random checks"): E3 sole-connectivity and E2 TC-silence.
    ///
    /// `tc_silence_after`: how long an MPR may go without originating TCs
    /// before being flagged. Pass a few multiples of the *worst-case
    /// emission period as heard at 1 hop* — with classic flooding that is
    /// the TC interval, but under scoped (fisheye) dissemination a sparse
    /// ring table may legitimately skip emission slots, so the caller
    /// must stretch the allowance by the schedule's near stride
    /// (`trustlink_olsr::FloodScope::near_stride`; the detector passes
    /// `tc_interval × 4 × near_stride`).
    pub fn tick(
        &mut self,
        now: SimTime,
        tc_silence_after: trustlink_sim::SimDuration,
    ) -> Vec<DetectionEvent> {
        let mut events = Vec::new();

        // E1: MPR replacement, judged against the previous slot's set so
        // transient intra-slot churn is invisible (see the `MprSet` arm of
        // [`EventExtractor::ingest`]).
        if self.mprs != self.slot_mprs {
            let replaced: Vec<NodeId> =
                self.slot_mprs.iter().copied().filter(|m| !self.mprs.contains(m)).collect();
            let replacing: Vec<NodeId> =
                self.mprs.iter().copied().filter(|m| !self.slot_mprs.contains(m)).collect();
            if !replaced.is_empty() && !replacing.is_empty() {
                events.push(DetectionEvent::MprReplaced { replaced, replacing, at: now });
            }
            self.slot_mprs = self.mprs.clone();
        }

        // E3: MPRs that are the only via for some 2-hop target.
        for &mpr in &self.mprs {
            let only_via: Vec<NodeId> = self
                .vias
                .iter()
                .filter(|(_, vias)| vias.len() == 1 && vias.contains(&mpr))
                .map(|(&target, _)| target)
                .collect();
            if !only_via.is_empty() {
                events.push(DetectionEvent::SoleConnectivity { mpr, only_via, at: now });
            }
        }

        // E2: an MPR of ours that has stopped originating TCs entirely.
        for &mpr in &self.mprs {
            if let Some(&last) = self.last_tc.get(&mpr) {
                if now.saturating_since(last) > tc_silence_after {
                    events.push(DetectionEvent::MprMisbehaving {
                        mpr,
                        reason: MisbehaviourReason::TcSilence,
                        at: now,
                    });
                }
            }
        }
        events
    }

    fn absorb_addresses(&mut self, record: &LogRecord) {
        let mut add = |n: NodeId| {
            self.known.insert(n);
        };
        match record {
            LogRecord::HelloRx { from, sym, asym, .. } => {
                add(*from);
                // Claimed addresses are absorbed *after* the unknown-claim
                // check in `ingest`; only the sender is absorbed here.
                let _ = (sym, asym);
            }
            LogRecord::TcRx { originator, sender, .. } => {
                add(*originator);
                add(*sender);
                // Advertised selectors are absorbed *after* the
                // unknown-selector check in `ingest`.
            }
            LogRecord::NeighborAdded { addr } | LogRecord::NeighborLost { addr } => add(*addr),
            LogRecord::TwoHopAdded { via, addr } | LogRecord::TwoHopLost { via, addr } => {
                add(*via);
                add(*addr);
            }
            LogRecord::RouteAdded { dest, next_hop, .. }
            | LogRecord::RouteChanged { dest, next_hop, .. } => {
                add(*dest);
                add(*next_hop);
            }
            LogRecord::MprSet { mprs } => {
                for m in mprs {
                    add(*m);
                }
            }
            _ => {}
        }
    }

    // ---- views used by the investigation planner -------------------------

    /// The current MPR set as last logged.
    pub fn current_mprs(&self) -> &[NodeId] {
        &self.mprs
    }

    /// What `neighbor` last claimed as its symmetric neighbors.
    pub fn claimed_neighbors_of(&self, neighbor: NodeId) -> Option<&[NodeId]> {
        self.claims.get(&neighbor).map(Vec::as_slice)
    }

    /// When `neighbor`'s claims last changed.
    pub fn claim_changed_at(&self, neighbor: NodeId) -> Option<SimTime> {
        self.claim_changed_at.get(&neighbor).copied()
    }

    /// Every address this node has ever seen mentioned.
    pub fn known_nodes(&self) -> &BTreeSet<NodeId> {
        &self.known
    }

    /// The 1-hop vias through which `target` is reachable.
    pub fn vias_for(&self, target: NodeId) -> Vec<NodeId> {
        self.vias.get(&target).map(|s| s.iter().copied().collect()).unwrap_or_default()
    }

    /// The current symmetric neighborhood as logged.
    pub fn neighbors(&self) -> &BTreeSet<NodeId> {
        &self.neighbors
    }

    /// The stability history of the symmetric link toward `neighbor`.
    /// Nodes never seen as neighbors report a default (down, zero-flap)
    /// history.
    pub fn link_stability(&self, neighbor: NodeId) -> LinkStability {
        self.stability.get(&neighbor).copied().unwrap_or_default()
    }

    /// When the 2-hop pair `addr`-via-`via` was last logged lost, if ever.
    /// `None` means the pair was never seen to dissolve — either it never
    /// existed (a phantom link can be denied with confidence) or it is
    /// still alive.
    pub fn last_two_hop_loss(&self, via: NodeId, addr: NodeId) -> Option<SimTime> {
        self.two_hop_losses.get(&(via, addr)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_olsr::types::Willingness;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn hello(from: u32, sym: &[u32]) -> LogRecord {
        LogRecord::HelloRx {
            from: NodeId(from),
            willingness: Willingness::Default,
            sym: sym.iter().map(|&n| NodeId(n)).collect(),
            asym: Box::from([]),
        }
    }

    #[test]
    fn mpr_replacement_detected_per_slot() {
        let silence = trustlink_sim::SimDuration::from_secs(1_000);
        let mut ex = EventExtractor::new();
        assert!(ex
            .ingest_record(t(1), &LogRecord::MprSet { mprs: vec![NodeId(1)].into() })
            .is_empty());
        assert!(ex.tick(t(1), silence).is_empty()); // pure addition: no E1
                                                    // Pure addition is not a replacement.
        ex.ingest_record(t(2), &LogRecord::MprSet { mprs: vec![NodeId(1), NodeId(2)].into() });
        assert!(ex.tick(t(2), silence).is_empty());
        // 1 replaced by 3: E1 at the next slot boundary.
        ex.ingest_record(t(3), &LogRecord::MprSet { mprs: vec![NodeId(2), NodeId(3)].into() });
        let events = ex.tick(t(3), silence);
        assert_eq!(events.len(), 1);
        match &events[0] {
            DetectionEvent::MprReplaced { replaced, replacing, at } => {
                assert_eq!(replaced, &vec![NodeId(1)]);
                assert_eq!(replacing, &vec![NodeId(3)]);
                assert_eq!(*at, t(3));
            }
            other => panic!("wrong event {other:?}"),
        }
        assert_eq!(events[0].criticality(), Criticality::Suspicious);
        assert_eq!(events[0].suspect(), Some(NodeId(3)));
    }

    #[test]
    fn transient_intra_slot_mpr_flap_is_invisible() {
        // N1 momentarily swapped for N3 and back within one slot: the
        // slot-granular E1 judgement sees no net replacement — detection
        // must not depend on how many intermediate MPR sets the router
        // happened to materialize (the recompute-mode contract).
        let silence = trustlink_sim::SimDuration::from_secs(1_000);
        let mut ex = EventExtractor::new();
        ex.ingest_record(t(1), &LogRecord::MprSet { mprs: vec![NodeId(1)].into() });
        assert!(ex.tick(t(1), silence).is_empty());
        ex.ingest_record(t(2), &LogRecord::MprSet { mprs: vec![NodeId(3)].into() });
        ex.ingest_record(t(2), &LogRecord::MprSet { mprs: vec![NodeId(1)].into() });
        assert!(ex.tick(t(2), silence).is_empty());
    }

    #[test]
    fn unknown_claimed_neighbor_flagged_once() {
        let mut ex = EventExtractor::new();
        // Teach the extractor about nodes 1, 2 via normal traffic.
        ex.ingest_record(t(0), &LogRecord::NeighborAdded { addr: NodeId(1) });
        ex.ingest_record(t(0), &LogRecord::NeighborAdded { addr: NodeId(2) });
        // N1 claims the never-seen N99.
        let events = ex.ingest_record(t(1), &hello(1, &[2, 99]));
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            DetectionEvent::MprMisbehaving {
                mpr: NodeId(1),
                reason: MisbehaviourReason::UnknownClaimedNeighbor(NodeId(99)),
                ..
            }
        ));
        // Second identical claim: N99 is now "known", no re-flag.
        assert!(ex.ingest_record(t(2), &hello(1, &[2, 99])).is_empty());
    }

    #[test]
    fn sole_connectivity_on_tick() {
        let mut ex = EventExtractor::new();
        ex.ingest_record(t(0), &LogRecord::MprSet { mprs: vec![NodeId(1)].into() });
        ex.ingest_record(t(0), &LogRecord::TwoHopAdded { via: NodeId(1), addr: NodeId(10) });
        ex.ingest_record(t(0), &LogRecord::TwoHopAdded { via: NodeId(1), addr: NodeId(11) });
        ex.ingest_record(t(0), &LogRecord::TwoHopAdded { via: NodeId(2), addr: NodeId(11) });
        let events = ex.tick(t(5), trustlink_sim::SimDuration::from_secs(100));
        let e3: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                DetectionEvent::SoleConnectivity { mpr, only_via, .. } => {
                    Some((*mpr, only_via.clone()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(e3, vec![(NodeId(1), vec![NodeId(10)])]);
        assert_eq!(events[0].criticality(), Criticality::Informational);
    }

    #[test]
    fn tc_silence_flagged() {
        let mut ex = EventExtractor::new();
        ex.ingest_record(t(0), &LogRecord::MprSet { mprs: vec![NodeId(1)].into() });
        ex.ingest_record(
            t(1),
            &LogRecord::TcRx {
                originator: NodeId(1),
                sender: NodeId(1),
                ansn: 1,
                advertised: Box::from([NodeId(0)]),
            },
        );
        // Within the allowance: quiet.
        assert!(ex.tick(t(5), trustlink_sim::SimDuration::from_secs(10)).iter().all(
            |e| !matches!(
                e,
                DetectionEvent::MprMisbehaving { reason: MisbehaviourReason::TcSilence, .. }
            )
        ));
        // Long after: flagged.
        let events = ex.tick(t(30), trustlink_sim::SimDuration::from_secs(10));
        assert!(events.iter().any(|e| matches!(
            e,
            DetectionEvent::MprMisbehaving {
                mpr: NodeId(1),
                reason: MisbehaviourReason::TcSilence,
                ..
            }
        )));
    }

    #[test]
    fn tc_advertising_unknown_selector_flagged() {
        let mut ex = EventExtractor::new();
        ex.ingest_record(t(0), &LogRecord::NeighborAdded { addr: NodeId(1) });
        let events = ex.ingest_record(
            t(1),
            &LogRecord::TcRx {
                originator: NodeId(5),
                sender: NodeId(1),
                ansn: 1,
                advertised: Box::from([NodeId(1), NodeId(99)]), // N99 never seen
            },
        );
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            DetectionEvent::MprMisbehaving {
                mpr: NodeId(5),
                reason: MisbehaviourReason::UnknownClaimedNeighbor(NodeId(99)),
                ..
            }
        ));
        // Re-advertising the now-known selector does not re-flag.
        let again = ex.ingest_record(
            t(2),
            &LogRecord::TcRx {
                originator: NodeId(5),
                sender: NodeId(1),
                ansn: 2,
                advertised: Box::from([NodeId(99)]),
            },
        );
        assert!(again.is_empty());
    }

    #[test]
    fn mid_hijacking_known_address_flagged() {
        let mut ex = EventExtractor::new();
        ex.ingest_record(t(0), &LogRecord::NeighborAdded { addr: NodeId(7) });
        // N5 claims N7 (a known main address) as its alias: hijack.
        let events = ex.ingest_record(
            t(1),
            &LogRecord::MidRx { originator: NodeId(5), aliases: vec![NodeId(7)].into() },
        );
        assert!(matches!(
            events[0],
            DetectionEvent::MprMisbehaving {
                mpr: NodeId(5),
                reason: MisbehaviourReason::HijackedAlias(NodeId(7)),
                ..
            }
        ));
        // A fresh, unknown alias is legitimate MID usage: no event.
        let ok = ex.ingest_record(
            t(2),
            &LogRecord::MidRx { originator: NodeId(6), aliases: vec![NodeId(60)].into() },
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn decode_error_is_misbehaviour() {
        let mut ex = EventExtractor::new();
        let events = ex.ingest_record(t(2), &LogRecord::DecodeError { from: NodeId(4) });
        assert!(matches!(
            events[0],
            DetectionEvent::MprMisbehaving {
                mpr: NodeId(4),
                reason: MisbehaviourReason::MalformedTraffic,
                ..
            }
        ));
    }

    #[test]
    fn views_track_log_content() {
        let mut ex = EventExtractor::new();
        ex.ingest_record(t(0), &hello(1, &[2, 3]));
        ex.ingest_record(t(0), &LogRecord::TwoHopAdded { via: NodeId(1), addr: NodeId(3) });
        ex.ingest_record(t(0), &LogRecord::NeighborAdded { addr: NodeId(1) });
        assert_eq!(ex.claimed_neighbors_of(NodeId(1)), Some(&[NodeId(2), NodeId(3)][..]));
        assert_eq!(ex.vias_for(NodeId(3)), vec![NodeId(1)]);
        assert!(ex.neighbors().contains(&NodeId(1)));
        assert!(ex.known_nodes().contains(&NodeId(3)));
        assert_eq!(ex.claim_changed_at(NodeId(1)), Some(t(0)));
        // Refresh without change keeps the change timestamp.
        ex.ingest_record(t(5), &hello(1, &[2, 3]));
        assert_eq!(ex.claim_changed_at(NodeId(1)), Some(t(0)));
        // A real change updates it.
        ex.ingest_record(t(6), &hello(1, &[2]));
        assert_eq!(ex.claim_changed_at(NodeId(1)), Some(t(6)));
    }

    #[test]
    fn ingest_line_parses_and_extracts() {
        let silence = trustlink_sim::SimDuration::from_secs(1_000);
        let mut ex = EventExtractor::new();
        ex.ingest_line(t(0), "MPR_SET mprs=[N1]").unwrap();
        assert!(ex.tick(t(0), silence).is_empty());
        assert!(ex.ingest_line(t(1), "MPR_SET mprs=[N2]").unwrap().is_empty());
        // The replacement surfaces at the slot boundary following the line.
        let events = ex.tick(t(1), silence);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], DetectionEvent::MprReplaced { .. }));
        assert!(ex.ingest_line(t(2), "garbage line").is_err());
    }
}
