//! The signature engine.
//!
//! The paper defines a signature as "a partially ordered sequence of events
//! that characterizes a misbehaving activity" and matches log-derived
//! events against it, "possibly partially" — a partial match is what
//! triggers the cooperative investigation.
//!
//! A [`Signature`] here is a sequence of *stages*; each stage is a
//! disjunction of [`EventPattern`]s. A suspect advances through the stages
//! in order (events for other stages are ignored, which gives the partial
//! order), within a time window. Completing the final stage yields a
//! [`SignatureMatch`]; an incomplete suspect state can be queried to drive
//! investigations.

use std::collections::BTreeMap;

use trustlink_sim::{NodeId, SimDuration, SimTime};

use crate::events::{DetectionEvent, MisbehaviourReason};

/// A predicate over [`DetectionEvent`]s, the alphabet of signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventPattern {
    /// Matches E1 (MPR replaced; suspect = a replacing MPR).
    MprReplaced,
    /// Matches any E2 misbehaviour.
    MprMisbehaving,
    /// Matches E2 with a specific reason.
    MprMisbehavingBecause(MisbehaviourKind),
    /// Matches E3.
    SoleConnectivity,
    /// Matches E4 (investigation: witness denies coverage).
    NotCovering,
    /// Matches E5 (investigation: claimed neighbor is false).
    CoveringNonNeighbor,
}

/// A reason-class filter for [`EventPattern::MprMisbehavingBecause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MisbehaviourKind {
    /// Unknown claimed neighbor.
    UnknownClaim,
    /// TC silence.
    TcSilence,
    /// Malformed traffic.
    Malformed,
    /// Stale advertisement.
    Stale,
}

impl EventPattern {
    /// Does `event` satisfy this pattern?
    pub fn matches(&self, event: &DetectionEvent) -> bool {
        match (self, event) {
            (EventPattern::MprReplaced, DetectionEvent::MprReplaced { .. }) => true,
            (EventPattern::MprMisbehaving, DetectionEvent::MprMisbehaving { .. }) => true,
            (
                EventPattern::MprMisbehavingBecause(kind),
                DetectionEvent::MprMisbehaving { reason, .. },
            ) => {
                matches!(
                    (kind, reason),
                    (MisbehaviourKind::UnknownClaim, MisbehaviourReason::UnknownClaimedNeighbor(_))
                        | (MisbehaviourKind::TcSilence, MisbehaviourReason::TcSilence)
                        | (MisbehaviourKind::Malformed, MisbehaviourReason::MalformedTraffic)
                        | (MisbehaviourKind::Stale, MisbehaviourReason::StaleAdvertisement)
                )
            }
            (EventPattern::SoleConnectivity, DetectionEvent::SoleConnectivity { .. }) => true,
            (EventPattern::NotCovering, DetectionEvent::NotCovering { .. }) => true,
            (EventPattern::CoveringNonNeighbor, DetectionEvent::CoveringNonNeighbor { .. }) => true,
            _ => false,
        }
    }
}

/// One stage of a signature: a disjunction of patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Any one of these patterns satisfies the stage.
    pub any_of: Vec<EventPattern>,
}

impl Stage {
    /// Builds a stage from patterns.
    pub fn any(patterns: impl IntoIterator<Item = EventPattern>) -> Self {
        Stage { any_of: patterns.into_iter().collect() }
    }

    fn matches(&self, event: &DetectionEvent) -> bool {
        self.any_of.iter().any(|p| p.matches(event))
    }
}

/// A partially ordered attack signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Human-readable name (appears in matches and reports).
    pub name: String,
    /// The ordered stages a suspect must traverse.
    pub stages: Vec<Stage>,
    /// Maximum age of the oldest contributing event when the match
    /// completes.
    pub window: SimDuration,
}

impl Signature {
    /// The link-spoofing signature of §III: (E1 ∨ E2) then (E4 ∨ E5),
    /// i.e. a suspicious trigger confirmed by investigation evidence
    /// (decision rule (4) of the paper).
    pub fn link_spoofing(window: SimDuration) -> Self {
        Signature {
            name: "link-spoofing".to_string(),
            stages: vec![
                Stage::any([EventPattern::MprReplaced, EventPattern::MprMisbehaving]),
                Stage::any([EventPattern::NotCovering, EventPattern::CoveringNonNeighbor]),
            ],
            window,
        }
    }

    /// A drop-attack signature: an MPR going TC-silent, confirmed by
    /// witnesses denying coverage.
    pub fn drop_attack(window: SimDuration) -> Self {
        Signature {
            name: "drop-attack".to_string(),
            stages: vec![
                Stage::any([EventPattern::MprMisbehavingBecause(MisbehaviourKind::TcSilence)]),
                Stage::any([EventPattern::NotCovering]),
            ],
            window,
        }
    }

    /// A forgery signature: malformed or impossible routing claims alone
    /// (single-stage — the evidence is direct).
    pub fn forged_traffic() -> Self {
        Signature {
            name: "forged-traffic".to_string(),
            stages: vec![Stage::any([EventPattern::MprMisbehavingBecause(
                MisbehaviourKind::Malformed,
            )])],
            window: SimDuration::from_secs(1),
        }
    }
}

/// A completed signature match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureMatch {
    /// Name of the matched signature.
    pub signature: String,
    /// The incriminated node.
    pub suspect: NodeId,
    /// When each stage was satisfied.
    pub stage_times: Vec<SimTime>,
}

impl SignatureMatch {
    /// When the final stage completed.
    pub fn completed_at(&self) -> SimTime {
        *self.stage_times.last().expect("a match has at least one stage")
    }
}

#[derive(Debug, Clone)]
struct PartialMatch {
    stage: usize,
    stage_times: Vec<SimTime>,
}

/// The incremental matcher: feed it every [`DetectionEvent`]; it tracks
/// per-`(signature, suspect)` progress and reports completed matches.
#[derive(Debug, Clone)]
pub struct SignatureEngine {
    signatures: Vec<Signature>,
    partial: BTreeMap<(usize, NodeId), PartialMatch>,
}

impl SignatureEngine {
    /// An engine with the given signature set.
    pub fn new(signatures: Vec<Signature>) -> Self {
        SignatureEngine { signatures, partial: BTreeMap::new() }
    }

    /// An engine loaded with the paper's built-in signatures (link
    /// spoofing, drop, forged traffic) using a common window.
    pub fn with_builtin(window: SimDuration) -> Self {
        SignatureEngine::new(vec![
            Signature::link_spoofing(window),
            Signature::drop_attack(window),
            Signature::forged_traffic(),
        ])
    }

    /// The signatures loaded in this engine.
    pub fn signatures(&self) -> &[Signature] {
        &self.signatures
    }

    /// Feeds one event; returns all matches completed by it.
    pub fn observe(&mut self, event: &DetectionEvent) -> Vec<SignatureMatch> {
        let mut matches = Vec::new();
        let at = event.at();
        for suspect in event.suspects() {
            for (sig_idx, sig) in self.signatures.iter().enumerate() {
                let key = (sig_idx, suspect);
                let entry = self
                    .partial
                    .entry(key)
                    .or_insert(PartialMatch { stage: 0, stage_times: Vec::new() });

                // Window expiry: drop progress that has gone stale.
                if let Some(&first) = entry.stage_times.first() {
                    if at.saturating_since(first) > sig.window {
                        entry.stage = 0;
                        entry.stage_times.clear();
                    }
                }

                if sig.stages[entry.stage].matches(event) {
                    entry.stage += 1;
                    entry.stage_times.push(at);
                    if entry.stage == sig.stages.len() {
                        matches.push(SignatureMatch {
                            signature: sig.name.clone(),
                            suspect,
                            stage_times: entry.stage_times.clone(),
                        });
                        self.partial.remove(&key);
                    }
                }
            }
        }
        matches
    }

    /// Suspects currently holding a partial match of `signature_name` (the
    /// paper's "preliminary sign of suspicious activity" — these are the
    /// nodes worth investigating).
    pub fn partial_suspects(&self, signature_name: &str) -> Vec<NodeId> {
        self.signatures
            .iter()
            .enumerate()
            .filter(|(_, s)| s.name == signature_name)
            .flat_map(|(idx, _)| {
                self.partial
                    .iter()
                    .filter(move |((sig, _), pm)| *sig == idx && pm.stage > 0)
                    .map(|((_, suspect), _)| *suspect)
            })
            .collect()
    }

    /// Clears the partial progress of `suspect` on every signature (after
    /// an investigation exonerates it).
    pub fn clear_suspect(&mut self, suspect: NodeId) {
        self.partial.retain(|(_, s), _| *s != suspect);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn e1(suspect: u32, at: u64) -> DetectionEvent {
        DetectionEvent::MprReplaced {
            replaced: vec![NodeId(99)],
            replacing: vec![NodeId(suspect)],
            at: t(at),
        }
    }

    fn e4(suspect: u32, at: u64) -> DetectionEvent {
        DetectionEvent::NotCovering { mpr: NodeId(suspect), neighbor: NodeId(7), at: t(at) }
    }

    fn e5(suspect: u32, at: u64) -> DetectionEvent {
        DetectionEvent::CoveringNonNeighbor { mpr: NodeId(suspect), claimed: NodeId(42), at: t(at) }
    }

    fn engine() -> SignatureEngine {
        SignatureEngine::new(vec![Signature::link_spoofing(SimDuration::from_secs(60))])
    }

    #[test]
    fn two_stage_match_completes() {
        let mut eng = engine();
        assert!(eng.observe(&e1(3, 1)).is_empty());
        assert_eq!(eng.partial_suspects("link-spoofing"), vec![NodeId(3)]);
        let matches = eng.observe(&e4(3, 2));
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].suspect, NodeId(3));
        assert_eq!(matches[0].signature, "link-spoofing");
        assert_eq!(matches[0].stage_times, vec![t(1), t(2)]);
        assert_eq!(matches[0].completed_at(), t(2));
        // Progress consumed.
        assert!(eng.partial_suspects("link-spoofing").is_empty());
    }

    #[test]
    fn e5_also_confirms() {
        let mut eng = engine();
        eng.observe(&e1(3, 1));
        assert_eq!(eng.observe(&e5(3, 2)).len(), 1);
    }

    #[test]
    fn confirmation_without_trigger_is_ignored() {
        let mut eng = engine();
        assert!(eng.observe(&e4(3, 1)).is_empty());
        assert!(eng.partial_suspects("link-spoofing").is_empty());
    }

    #[test]
    fn suspects_are_tracked_independently() {
        let mut eng = engine();
        eng.observe(&e1(3, 1));
        eng.observe(&e1(4, 1));
        // Confirming 4 must not complete 3.
        let matches = eng.observe(&e4(4, 2));
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].suspect, NodeId(4));
        assert_eq!(eng.partial_suspects("link-spoofing"), vec![NodeId(3)]);
    }

    #[test]
    fn window_expiry_resets_progress() {
        let mut eng = engine();
        eng.observe(&e1(3, 1));
        // 120 s later the trigger has gone stale: E4 alone cannot complete,
        // and the stale progress is cleared.
        assert!(eng.observe(&e4(3, 121)).is_empty());
        assert!(eng.partial_suspects("link-spoofing").is_empty());
    }

    #[test]
    fn retrigger_within_window_works_after_expiry() {
        let mut eng = engine();
        eng.observe(&e1(3, 1));
        assert!(eng.observe(&e4(3, 200)).is_empty()); // expired
        eng.observe(&e1(3, 201));
        assert_eq!(eng.observe(&e4(3, 202)).len(), 1);
    }

    #[test]
    fn clear_suspect_erases_progress() {
        let mut eng = engine();
        eng.observe(&e1(3, 1));
        eng.clear_suspect(NodeId(3));
        assert!(eng.observe(&e4(3, 2)).is_empty());
    }

    #[test]
    fn single_stage_signature_fires_immediately() {
        let mut eng = SignatureEngine::new(vec![Signature::forged_traffic()]);
        let ev = DetectionEvent::MprMisbehaving {
            mpr: NodeId(2),
            reason: MisbehaviourReason::MalformedTraffic,
            at: t(1),
        };
        assert_eq!(eng.observe(&ev).len(), 1);
    }

    #[test]
    fn drop_signature_requires_tc_silence_kind() {
        let mut eng =
            SignatureEngine::new(vec![Signature::drop_attack(SimDuration::from_secs(60))]);
        // Malformed traffic is E2 but not TC-silence: stage 0 not satisfied.
        let ev = DetectionEvent::MprMisbehaving {
            mpr: NodeId(2),
            reason: MisbehaviourReason::MalformedTraffic,
            at: t(1),
        };
        eng.observe(&ev);
        assert!(eng.partial_suspects("drop-attack").is_empty());
        let silent = DetectionEvent::MprMisbehaving {
            mpr: NodeId(2),
            reason: MisbehaviourReason::TcSilence,
            at: t(2),
        };
        eng.observe(&silent);
        assert_eq!(eng.partial_suspects("drop-attack"), vec![NodeId(2)]);
        assert_eq!(eng.observe(&e4(2, 3)).len(), 1);
    }

    #[test]
    fn builtin_engine_has_three_signatures() {
        let eng = SignatureEngine::with_builtin(SimDuration::from_secs(30));
        let names: Vec<&str> = eng.signatures().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["link-spoofing", "drop-attack", "forged-traffic"]);
    }

    #[test]
    fn multi_suspect_e1_tracks_every_replacing_mpr() {
        let mut eng = engine();
        let ev = DetectionEvent::MprReplaced {
            replaced: vec![NodeId(9)],
            replacing: vec![NodeId(3), NodeId(4)],
            at: t(1),
        };
        eng.observe(&ev);
        let mut suspects = eng.partial_suspects("link-spoofing");
        suspects.sort_unstable();
        assert_eq!(suspects, vec![NodeId(3), NodeId(4)]);
    }
}
