//! The cooperative investigation of Algorithm 1.
//!
//! When a trigger event (E1/E2) incriminates a suspicious MPR `I`, the
//! investigator interrogates witnesses — the nodes `I` *claims* as
//! symmetric neighbors — asking each: *"is the link between you and `I`
//! real?"*. Requests and answers travel as unicast data that must route
//! **around** `I` (and, when that fails, the paper falls back to other
//! covering MPRs and finally any multi-hop path — our data plane's
//! avoidance option realizes the same policy).
//!
//! This module provides the pieces the detector composes:
//!
//! * [`InvestigationMessage`] — the request/answer wire format;
//! * [`Investigation`] — one open case: witnesses, answers, deadline;
//! * [`plan_witnesses`] — Algorithm 1 lines 2–4 (who to interrogate).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use trustlink_sim::{NodeId, SimDuration, SimTime};

use crate::events::EventExtractor;

/// Tunables for the investigation protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct InvestigationConfig {
    /// How long to wait for answers before tallying with `e = 0` for the
    /// silent witnesses.
    pub timeout: SimDuration,
    /// Upper bound on interrogated witnesses per case.
    pub max_witnesses: usize,
}

impl Default for InvestigationConfig {
    fn default() -> Self {
        InvestigationConfig { timeout: SimDuration::from_secs(10), max_witnesses: 16 }
    }
}

/// The investigation protocol messages, carried as data-plane payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvestigationMessage {
    /// "Witness, is the link `suspect`–`contested` real, as far as you can
    /// tell?" — the paper's contestation about one advertised link.
    VerifyLinkRequest {
        /// Case identifier (investigator-scoped).
        case: u64,
        /// The suspicious MPR.
        suspect: NodeId,
        /// The advertised link peer under dispute.
        contested: NodeId,
    },
    /// The witness's answer.
    VerifyLinkResponse {
        /// Case identifier copied from the request.
        case: u64,
        /// The suspicious MPR.
        suspect: NodeId,
        /// The answering node.
        witness: NodeId,
        /// `true` if the witness confirms the link exists.
        link_exists: bool,
    },
}

/// Decoding errors for [`InvestigationMessage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadInvestigationMessage;

impl std::fmt::Display for BadInvestigationMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("malformed investigation message")
    }
}

impl std::error::Error for BadInvestigationMessage {}

impl InvestigationMessage {
    /// Serializes to bytes (tag, case, suspect, witness[, answer]).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        match *self {
            InvestigationMessage::VerifyLinkRequest { case, suspect, contested } => {
                buf.put_u8(1);
                buf.put_u64(case);
                suspect.put(&mut buf);
                contested.put(&mut buf);
            }
            InvestigationMessage::VerifyLinkResponse { case, suspect, witness, link_exists } => {
                buf.put_u8(2);
                buf.put_u64(case);
                suspect.put(&mut buf);
                witness.put(&mut buf);
                buf.put_u8(u8::from(link_exists));
            }
        }
        buf.freeze()
    }

    /// Deserializes from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`BadInvestigationMessage`] on truncation, unknown tags or
    /// trailing garbage.
    pub fn decode(mut bytes: Bytes) -> Result<Self, BadInvestigationMessage> {
        if bytes.len() < 13 {
            return Err(BadInvestigationMessage);
        }
        let tag = bytes.get_u8();
        let case = bytes.get_u64();
        let suspect = NodeId::get(&mut bytes).ok_or(BadInvestigationMessage)?;
        let third = NodeId::get(&mut bytes).ok_or(BadInvestigationMessage)?;
        match tag {
            1 => {
                if bytes.has_remaining() {
                    return Err(BadInvestigationMessage);
                }
                Ok(InvestigationMessage::VerifyLinkRequest { case, suspect, contested: third })
            }
            2 => {
                if bytes.remaining() != 1 {
                    return Err(BadInvestigationMessage);
                }
                let link_exists = bytes.get_u8() != 0;
                Ok(InvestigationMessage::VerifyLinkResponse {
                    case,
                    suspect,
                    witness: third,
                    link_exists,
                })
            }
            _ => Err(BadInvestigationMessage),
        }
    }
}

/// The answer state of one witness in an open case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WitnessAnswer {
    /// No answer yet (becomes `e = 0` at the deadline).
    Pending,
    /// The witness confirmed the link (`e = +1` toward "no attack").
    Confirmed,
    /// The witness denied the link (`e = -1`: spoofing evidence).
    Denied,
}

/// One open investigation case: the link `suspect`–`contested` is disputed
/// and the witnesses are being polled about it.
#[derive(Debug, Clone, PartialEq)]
pub struct Investigation {
    /// Case identifier.
    pub case: u64,
    /// The suspicious MPR under investigation.
    pub suspect: NodeId,
    /// The advertised link peer under dispute.
    pub contested: NodeId,
    /// The witnesses polled, with their answers.
    witnesses: Vec<(NodeId, WitnessAnswer)>,
    /// Stability weight of the link each witness's evidence rides over,
    /// captured when the case opened (parallel to `witnesses`). Empty when
    /// the investigator does not weight by stability — every witness then
    /// reads as `1.0`.
    stability: Vec<f64>,
    /// When the case was opened.
    pub opened_at: SimTime,
    /// When pending answers are written off as `e = 0`.
    pub deadline: SimTime,
}

impl Investigation {
    /// Opens a case interrogating `witnesses` about the link
    /// `suspect`–`contested`.
    pub fn open(
        case: u64,
        suspect: NodeId,
        contested: NodeId,
        witnesses: impl IntoIterator<Item = NodeId>,
        opened_at: SimTime,
        timeout: SimDuration,
    ) -> Self {
        Investigation {
            case,
            suspect,
            contested,
            witnesses: witnesses.into_iter().map(|w| (w, WitnessAnswer::Pending)).collect(),
            stability: Vec::new(),
            opened_at,
            deadline: opened_at + timeout,
        }
    }

    /// Attaches the case-open stability snapshot: `weights[i]` is the
    /// stability weight of the link toward the `i`-th witness *at the
    /// moment the case opened*. Churn false positives are triggered by a
    /// link dissolving — capturing the weights here preserves how unstable
    /// the neighborhood looked at trigger time even if links settle before
    /// the deadline.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not parallel to the witness list.
    pub fn with_witness_stability(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            self.witnesses.len(),
            "stability snapshot must be parallel to the witness list"
        );
        self.stability = weights;
        self
    }

    /// The case-open stability weight recorded for `witness`; `1.0` for
    /// unknown witnesses or when no snapshot was attached.
    pub fn witness_stability(&self, witness: NodeId) -> f64 {
        self.witnesses
            .iter()
            .position(|(w, _)| *w == witness)
            .and_then(|i| self.stability.get(i))
            .copied()
            .unwrap_or(1.0)
    }

    /// Records an answer. Returns `false` for unknown witnesses or
    /// duplicate answers (first answer wins — later ones may be forged).
    pub fn record_answer(&mut self, witness: NodeId, link_exists: bool) -> bool {
        for (w, a) in &mut self.witnesses {
            if *w == witness && *a == WitnessAnswer::Pending {
                *a = if link_exists { WitnessAnswer::Confirmed } else { WitnessAnswer::Denied };
                return true;
            }
        }
        false
    }

    /// All `(witness, answer)` pairs.
    pub fn answers(&self) -> &[(NodeId, WitnessAnswer)] {
        &self.witnesses
    }

    /// Witnesses that have not answered yet.
    pub fn pending(&self) -> Vec<NodeId> {
        self.witnesses
            .iter()
            .filter(|(_, a)| *a == WitnessAnswer::Pending)
            .map(|(w, _)| *w)
            .collect()
    }

    /// Witnesses that confirmed the link (agree with the suspect).
    pub fn agreeing(&self) -> Vec<NodeId> {
        self.witnesses
            .iter()
            .filter(|(_, a)| *a == WitnessAnswer::Confirmed)
            .map(|(w, _)| *w)
            .collect()
    }

    /// Witnesses that denied the link (disagree with the suspect).
    pub fn disagreeing(&self) -> Vec<NodeId> {
        self.witnesses
            .iter()
            .filter(|(_, a)| *a == WitnessAnswer::Denied)
            .map(|(w, _)| *w)
            .collect()
    }

    /// `true` once every witness answered or the deadline passed.
    pub fn is_complete(&self, now: SimTime) -> bool {
        now >= self.deadline || self.pending().is_empty()
    }

    /// Number of interrogated witnesses.
    pub fn witness_count(&self) -> usize {
        self.witnesses.len()
    }
}

/// Algorithm 1 lines 2–4: choose the witnesses for a suspect.
///
/// The interrogation set is the suspect's *claimed* symmetric neighborhood
/// (`NS'_I` — exactly what a spoofed HELLO advertises), excluding the
/// investigator itself. When `old_mprs` is non-empty (an E1 trigger), the
/// witnesses are narrowed to the 2-hop neighbors the investigator shares
/// with the suspect via those replaced MPRs, when that intersection is
/// non-empty — "the 2-hops neighbours that have shown their MPR(s)
/// changed".
pub fn plan_witnesses(
    view: &EventExtractor,
    me: NodeId,
    suspect: NodeId,
    old_mprs: &[NodeId],
    max_witnesses: usize,
) -> Vec<NodeId> {
    let claimed: Vec<NodeId> = view
        .claimed_neighbors_of(suspect)
        .unwrap_or(&[])
        .iter()
        .copied()
        .filter(|&w| w != me && w != suspect)
        .collect();

    let mut witnesses = claimed.clone();
    if !old_mprs.is_empty() {
        // Narrow to common 2-hop neighbors: targets reachable via a
        // replaced MPR too.
        let common: Vec<NodeId> = claimed
            .iter()
            .copied()
            .filter(|w| view.vias_for(*w).iter().any(|v| old_mprs.contains(v)))
            .collect();
        if !common.is_empty() {
            witnesses = common;
        }
    }
    witnesses.truncate(max_witnesses);
    witnesses
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_olsr::logging::LogRecord;
    use trustlink_olsr::types::Willingness;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn message_roundtrip() {
        let msgs = [
            InvestigationMessage::VerifyLinkRequest {
                case: 42,
                suspect: NodeId(3),
                contested: NodeId(7),
            },
            InvestigationMessage::VerifyLinkResponse {
                case: 42,
                suspect: NodeId(3),
                witness: NodeId(7),
                link_exists: true,
            },
            InvestigationMessage::VerifyLinkResponse {
                case: u64::MAX,
                suspect: NodeId(0),
                witness: NodeId(65_000),
                link_exists: false,
            },
        ];
        for m in msgs {
            assert_eq!(InvestigationMessage::decode(m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn message_decode_rejects_garbage() {
        assert!(InvestigationMessage::decode(Bytes::from_static(b"")).is_err());
        assert!(InvestigationMessage::decode(Bytes::from_static(b"\x09123456789012")).is_err());
        // A request with trailing garbage:
        let mut bad = BytesMut::new();
        bad.put_u8(1);
        bad.put_u64(1);
        bad.put_u16(1);
        bad.put_u16(2);
        bad.put_u8(9);
        assert!(InvestigationMessage::decode(bad.freeze()).is_err());
    }

    #[test]
    fn case_lifecycle() {
        let mut inv = Investigation::open(
            1,
            NodeId(3),
            NodeId(99),
            [NodeId(5), NodeId(6), NodeId(7)],
            t(10),
            SimDuration::from_secs(5),
        );
        assert_eq!(inv.contested, NodeId(99));
        assert_eq!(inv.witness_count(), 3);
        assert!(!inv.is_complete(t(10)));
        assert!(inv.record_answer(NodeId(5), false));
        assert!(inv.record_answer(NodeId(6), true));
        // Unknown witness and duplicate answers rejected.
        assert!(!inv.record_answer(NodeId(99), true));
        assert!(!inv.record_answer(NodeId(5), true));
        assert_eq!(inv.disagreeing(), vec![NodeId(5)]);
        assert_eq!(inv.agreeing(), vec![NodeId(6)]);
        assert_eq!(inv.pending(), vec![NodeId(7)]);
        assert!(!inv.is_complete(t(12)));
        // Deadline forces completion with a pending witness.
        assert!(inv.is_complete(t(15)));
        // All-answered also completes, before the deadline.
        assert!(inv.record_answer(NodeId(7), false));
        assert!(inv.is_complete(t(12)));
    }

    fn view_with_claims() -> EventExtractor {
        let mut view = EventExtractor::new();
        // Suspect N3 claims N5, N6, N7, N0(me).
        view.ingest_record(
            t(0),
            &LogRecord::HelloRx {
                from: NodeId(3),
                willingness: Willingness::Default,
                sym: Box::from([NodeId(0), NodeId(5), NodeId(6), NodeId(7)]),
                asym: Box::from([]),
            },
        );
        // 2-hop: N5 and N6 reachable via old MPR N2; N7 only via N3.
        view.ingest_record(t(0), &LogRecord::TwoHopAdded { via: NodeId(2), addr: NodeId(5) });
        view.ingest_record(t(0), &LogRecord::TwoHopAdded { via: NodeId(2), addr: NodeId(6) });
        view.ingest_record(t(0), &LogRecord::TwoHopAdded { via: NodeId(3), addr: NodeId(7) });
        view
    }

    #[test]
    fn witness_planning_uses_claimed_neighbors() {
        let view = view_with_claims();
        let w = plan_witnesses(&view, NodeId(0), NodeId(3), &[], 16);
        assert_eq!(w, vec![NodeId(5), NodeId(6), NodeId(7)]);
    }

    #[test]
    fn witness_planning_narrows_to_common_two_hop() {
        let view = view_with_claims();
        let w = plan_witnesses(&view, NodeId(0), NodeId(3), &[NodeId(2)], 16);
        assert_eq!(w, vec![NodeId(5), NodeId(6)]);
    }

    #[test]
    fn witness_planning_falls_back_when_no_common() {
        let view = view_with_claims();
        // Old MPR N9 covers nothing the suspect claims: fall back to all.
        let w = plan_witnesses(&view, NodeId(0), NodeId(3), &[NodeId(9)], 16);
        assert_eq!(w, vec![NodeId(5), NodeId(6), NodeId(7)]);
    }

    #[test]
    fn witness_planning_respects_cap_and_unknown_suspect() {
        let view = view_with_claims();
        let w = plan_witnesses(&view, NodeId(0), NodeId(3), &[], 2);
        assert_eq!(w.len(), 2);
        let none = plan_witnesses(&view, NodeId(0), NodeId(55), &[], 16);
        assert!(none.is_empty());
    }
}
