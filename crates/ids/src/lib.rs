//! # trustlink-ids
//!
//! The log- and signature-based intrusion detection layer of
//! *"Trust-enabled Link Spoofing Detection in MANET"* (Alattar, Sailhan,
//! Bourgeois — ICDCS WWASN 2012).
//!
//! The detection pipeline, exactly as the paper structures it:
//!
//! 1. **Logs** — the OLSR daemon writes text audit lines
//!    ([`trustlink_olsr::logging`]); nothing else is observed, so "no
//!    change is requested in the implementation of the node".
//! 2. **Events** — [`events::EventExtractor`] parses the lines and emits
//!    the paper's detection events: E1 (MPR replaced), E2 (MPR
//!    misbehaving), E3 (sole connectivity) locally; E4/E5 arrive later from
//!    investigations.
//! 3. **Signatures** — [`signature::SignatureEngine`] matches events
//!    against partially ordered signatures; a *partial* match of the
//!    link-spoofing signature (a fresh E1/E2) is the trigger for
//!    cooperative investigation, and a *complete* match ((E1∨E2) then
//!    (E4∨E5)) is the detection itself (the paper's rule (4)).
//! 4. **Investigation** — [`investigation`] implements Algorithm 1:
//!    selecting witnesses from the suspect's claimed neighborhood,
//!    request/answer messages routed around the suspect, timeouts, and the
//!    agree/disagree tally the trust system (in `trustlink-trust`) weighs.
//!
//! ```
//! use trustlink_ids::prelude::*;
//! use trustlink_sim::{NodeId, SimTime, SimDuration};
//!
//! let mut extractor = EventExtractor::new();
//! let mut engine = SignatureEngine::with_builtin(SimDuration::from_secs(60));
//!
//! // The detector tails its own audit log, then closes the analysis slot
//! // (E1 replacement is judged per slot, so transient MPR flaps — and the
//! // router's recompute scheduling — cannot influence detection):
//! let t0 = SimTime::from_secs(1);
//! extractor.ingest_line(t0, "MPR_SET mprs=[N2]").unwrap();
//! extractor.tick(t0, SimDuration::from_secs(600));
//! extractor.ingest_line(SimTime::from_secs(2), "MPR_SET mprs=[N3]").unwrap();
//! for ev in extractor.tick(SimTime::from_secs(2), SimDuration::from_secs(600)) {
//!     engine.observe(&ev);
//! }
//! // The replacement leaves N3 as a partial link-spoofing suspect:
//! assert_eq!(engine.partial_suspects("link-spoofing"), vec![NodeId(3)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod investigation;
pub mod signature;

/// Glob-import of the detection pipeline types.
pub mod prelude {
    pub use crate::events::{
        Criticality, DetectionEvent, EventExtractor, LinkStability, MisbehaviourReason,
    };
    pub use crate::investigation::{
        plan_witnesses, Investigation, InvestigationConfig, InvestigationMessage, WitnessAnswer,
    };
    pub use crate::signature::{EventPattern, Signature, SignatureEngine, SignatureMatch, Stage};
}

pub use events::{Criticality, DetectionEvent, EventExtractor, LinkStability, MisbehaviourReason};
pub use investigation::{
    plan_witnesses, Investigation, InvestigationConfig, InvestigationMessage, WitnessAnswer,
};
pub use signature::{EventPattern, Signature, SignatureEngine, SignatureMatch};
