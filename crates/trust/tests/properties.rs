//! Property-based tests for the trust mathematics.
//!
//! These pin down the invariants the paper's formulas must satisfy for the
//! detection system to be sound, independent of any particular scenario.

use proptest::prelude::*;

use trustlink_trust::aggregate::unweighted_detection_value;
use trustlink_trust::confidence::{sample_std_dev, z_for_confidence_level};
use trustlink_trust::entropy::{binary_entropy, probability_from_trust, trust_from_probability};
use trustlink_trust::prelude::*;

fn trust_value() -> impl Strategy<Value = TrustValue> {
    (-1.0f64..=1.0).prop_map(TrustValue::new)
}

fn answer() -> impl Strategy<Value = Answer> {
    prop_oneof![Just(Answer::Confirm), Just(Answer::Deny), Just(Answer::NoAnswer)]
}

fn evidence_kind() -> impl Strategy<Value = EvidenceKind> {
    prop_oneof![
        Just(EvidenceKind::NormalRelaying),
        Just(EvidenceKind::TruthfulTestimony),
        Just(EvidenceKind::FalseTestimony),
        Just(EvidenceKind::DroppedTraffic),
        Just(EvidenceKind::ForgedRouting),
        Just(EvidenceKind::MisrelayedRouting),
        Just(EvidenceKind::Unresponsive),
    ]
}

proptest! {
    // ---- trust domain -------------------------------------------------

    #[test]
    fn trust_new_always_in_domain(v in -1e6f64..1e6) {
        let t = TrustValue::new(v);
        prop_assert!((-1.0..=1.0).contains(&t.get()));
    }

    #[test]
    fn trust_weight_nonnegative(t in trust_value()) {
        prop_assert!(t.weight() >= 0.0);
        prop_assert!(t.weight() <= 1.0);
    }

    // ---- formula (5) ---------------------------------------------------

    #[test]
    fn update_stays_in_domain(
        beta in 0.0f64..0.999,
        start in trust_value(),
        evidences in proptest::collection::vec(evidence_kind(), 0..20),
    ) {
        let up = TrustUpdate::new(beta);
        let t = up.step(start, &evidences);
        prop_assert!((-1.0..=1.0).contains(&t.get()));
    }

    #[test]
    fn harmful_evidence_never_raises_trust(
        start in trust_value(),
        n in 1usize..10,
    ) {
        let up = TrustUpdate::default();
        let evidences = vec![EvidenceKind::FalseTestimony; n];
        let t = up.step(start, &evidences);
        // β < 1 shrinks positive trust; harmful evidence subtracts more.
        prop_assert!(t.get() <= start.get().max(0.0));
    }

    #[test]
    fn beneficial_evidence_never_lowers_trust_below_decay(
        start in trust_value(),
        n in 1usize..10,
    ) {
        let up = TrustUpdate::default();
        let evidences = vec![EvidenceKind::TruthfulTestimony; n];
        let with = up.step(start, &evidences).get();
        let without = up.step(start, &[]).get();
        prop_assert!(with >= without);
    }

    #[test]
    fn more_lies_hurt_more(start in trust_value(), n in 1usize..8) {
        let up = TrustUpdate::default();
        let few = up.step(start, &vec![EvidenceKind::FalseTestimony; n]);
        let more = up.step(start, &vec![EvidenceKind::FalseTestimony; n + 1]);
        prop_assert!(more <= few);
    }

    // ---- entropy mapping ----------------------------------------------

    #[test]
    fn entropy_bounded(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn entropy_trust_roundtrip(p in 0.0f64..=1.0) {
        let t = trust_from_probability(p);
        prop_assert!((-1.0..=1.0).contains(&t.get()));
        let q = probability_from_trust(t);
        prop_assert!((p - q).abs() < 1e-8, "p={} roundtripped to {}", p, q);
    }

    #[test]
    fn entropy_trust_monotone(p1 in 0.0f64..=1.0, p2 in 0.0f64..=1.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(trust_from_probability(lo) <= trust_from_probability(hi));
    }

    // ---- propagation (6), (7) -----------------------------------------

    #[test]
    fn concatenated_bounded_and_discounting(
        r in 0.0f64..=1.0,
        t in trust_value(),
    ) {
        let out = concatenated(Recommendation::new(r), t);
        prop_assert!(out.get().abs() <= t.get().abs() + 1e-12);
        prop_assert!((-1.0..=1.0).contains(&out.get()));
    }

    #[test]
    fn multipath_bounded_by_extremes(
        recs in proptest::collection::vec((0.0f64..=1.0, -1.0f64..=1.0), 0..12),
    ) {
        let pairs: Vec<(Recommendation, TrustValue)> = recs
            .iter()
            .map(|&(r, t)| (Recommendation::new(r), TrustValue::new(t)))
            .collect();
        let out = multipath(pairs.clone()).get();
        prop_assert!((-1.0..=1.0).contains(&out));
        // Weighted average over inputs with positive mass stays within their range.
        let used: Vec<f64> = pairs
            .iter()
            .filter(|(r, _)| r.get() > 0.0)
            .map(|(_, t)| t.get())
            .collect();
        if !used.is_empty() {
            let lo = used.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = used.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(out >= lo - 1e-9 && out <= hi + 1e-9);
        } else {
            prop_assert_eq!(out, 0.0);
        }
    }

    // ---- aggregation (8) ------------------------------------------------

    #[test]
    fn detection_value_bounded(
        answers in proptest::collection::vec((-1.0f64..=1.0, answer()), 0..16),
    ) {
        let d = detection_value(
            answers.iter().map(|&(t, a)| (TrustValue::new(t), a)),
        );
        prop_assert!((-1.0..=1.0).contains(&d));
    }

    #[test]
    fn detection_ignores_distrusted(
        base in proptest::collection::vec((0.1f64..=1.0, answer()), 1..8),
        noise in proptest::collection::vec((-1.0f64..=-0.01, answer()), 0..8),
    ) {
        let with_noise: Vec<(TrustValue, Answer)> = base
            .iter()
            .map(|&(t, a)| (TrustValue::new(t), a))
            .chain(noise.iter().map(|&(t, a)| (TrustValue::new(t), a)))
            .collect();
        let without: Vec<(TrustValue, Answer)> =
            base.iter().map(|&(t, a)| (TrustValue::new(t), a)).collect();
        let d1 = detection_value(with_noise);
        let d2 = detection_value(without);
        prop_assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn unweighted_matches_weighted_at_equal_trust(
        answers in proptest::collection::vec(answer(), 1..16),
        t in 0.1f64..=1.0,
    ) {
        let weighted = detection_value(
            answers.iter().map(|&a| (TrustValue::new(t), a)),
        );
        let unweighted = unweighted_detection_value(answers.iter().copied());
        prop_assert!((weighted - unweighted).abs() < 1e-9);
    }

    // ---- confidence (9) -------------------------------------------------

    #[test]
    fn margin_nonnegative(
        samples in proptest::collection::vec(-1.0f64..=1.0, 0..32),
        cl in 0.5f64..0.999,
    ) {
        let m = margin_of_error(&samples, cl);
        prop_assert!(m >= 0.0);
    }

    #[test]
    fn margin_monotone_in_confidence_level(
        samples in proptest::collection::vec(-1.0f64..=1.0, 3..32),
        cl1 in 0.5f64..0.99,
        delta in 0.001f64..0.009,
    ) {
        let m1 = margin_of_error(&samples, cl1);
        let m2 = margin_of_error(&samples, cl1 + delta);
        prop_assert!(m2 >= m1 - 1e-12);
    }

    #[test]
    fn margin_shrinks_as_identical_data_grows(
        block in proptest::collection::vec(-1.0f64..=1.0, 2..8),
        reps in 2usize..6,
    ) {
        let small: Vec<f64> = block.clone();
        let large: Vec<f64> = block
            .iter()
            .cycle()
            .take(block.len() * reps)
            .copied()
            .collect();
        // Repeating the same data leaves σ (nearly) unchanged but grows n.
        let m_small = margin_of_error(&small, 0.95);
        let m_large = margin_of_error(&large, 0.95);
        prop_assert!(m_large <= m_small + 1e-9);
    }

    #[test]
    fn std_dev_nonnegative(samples in proptest::collection::vec(-10.0f64..=10.0, 0..64)) {
        prop_assert!(sample_std_dev(&samples) >= 0.0);
    }

    #[test]
    fn z_positive_above_half(cl in 0.01f64..0.999) {
        prop_assert!(z_for_confidence_level(cl) > 0.0 || cl < 0.02);
    }

    // ---- decision (10) ---------------------------------------------------

    #[test]
    fn decision_total_and_exclusive(
        detect in -1.0f64..=1.0,
        margin in 0.0f64..=2.0,
        gamma in 0.01f64..=1.0,
    ) {
        let rule = DecisionRule::new(gamma);
        match rule.decide(detect, margin) {
            Verdict::WellBehaving => prop_assert!(detect - margin >= gamma - 1e-12),
            Verdict::Intruder => prop_assert!(detect + margin <= -gamma + 1e-12),
            Verdict::Unrecognized => {
                prop_assert!(detect - margin < gamma || detect + margin > -gamma);
            }
        }
    }

    #[test]
    fn widening_the_interval_never_creates_judgement(
        detect in -1.0f64..=1.0,
        margin in 0.0f64..=1.0,
        extra in 0.0f64..=1.0,
    ) {
        let rule = DecisionRule::default();
        let narrow = rule.decide(detect, margin);
        let wide = rule.decide(detect, margin + extra);
        // A wider interval can only move toward Unrecognized.
        if narrow == Verdict::Unrecognized {
            prop_assert_eq!(wide, Verdict::Unrecognized);
        }
    }

    // ---- store ----------------------------------------------------------

    #[test]
    fn store_trust_always_in_domain(
        seed_trust in proptest::collection::vec((0u32..8, -1.0f64..=1.0), 0..8),
        events in proptest::collection::vec((0u32..8, evidence_kind()), 0..64),
    ) {
        let mut store: TrustStore<u32> = TrustStore::new(TrustValue::DEFAULT);
        for (k, t) in seed_trust {
            store.set_trust(k, TrustValue::new(t));
        }
        for (i, (k, e)) in events.iter().enumerate() {
            store.record(*k, *e);
            if i % 5 == 4 {
                store.end_slot();
            }
        }
        store.end_slot();
        for (_, t) in store.peers() {
            prop_assert!((-1.0..=1.0).contains(&t.get()));
        }
    }
}
