//! Edge-case tests for the trust mathematics: the exact boundary
//! behaviours that the property suite samples around but never pins.
//!
//! Covered here: [`TrustValue`] clamping at ±1, the formula (9) confidence
//! interval on empty and single-evidence samples, and rule (10) verdicts
//! exactly on the γ boundaries.

use trustlink_trust::confidence::{margin_of_error, sample_std_dev, ConfidenceInterval};
use trustlink_trust::prelude::*;

// ---- TrustValue clamping at the ±1 domain edges ------------------------

#[test]
fn trust_clamps_above_plus_one() {
    assert_eq!(TrustValue::new(1.0 + f64::EPSILON).get(), 1.0);
    assert_eq!(TrustValue::new(17.5).get(), 1.0);
    assert_eq!(TrustValue::new(f64::INFINITY).get(), 1.0);
}

#[test]
fn trust_clamps_below_minus_one() {
    assert_eq!(TrustValue::new(-1.0 - f64::EPSILON).get(), -1.0);
    assert_eq!(TrustValue::new(-1e9).get(), -1.0);
    assert_eq!(TrustValue::new(f64::NEG_INFINITY).get(), -1.0);
}

#[test]
fn trust_boundaries_are_exactly_representable() {
    assert_eq!(TrustValue::new(1.0), TrustValue::MAX);
    assert_eq!(TrustValue::new(-1.0), TrustValue::MIN);
    assert_eq!(TrustValue::new(0.0), TrustValue::ZERO);
    // The extremes survive a round-trip untouched.
    assert_eq!(TrustValue::new(TrustValue::MAX.get()), TrustValue::MAX);
    assert_eq!(TrustValue::new(TrustValue::MIN.get()), TrustValue::MIN);
}

#[test]
#[should_panic(expected = "NaN")]
fn trust_rejects_nan() {
    let _ = TrustValue::new(f64::NAN);
}

#[test]
fn weight_at_the_edges() {
    // Weight floors negative trust at zero and passes the positive edge.
    assert_eq!(TrustValue::MIN.weight(), 0.0);
    assert_eq!(TrustValue::ZERO.weight(), 0.0);
    assert_eq!(TrustValue::MAX.weight(), 1.0);
    assert!(!TrustValue::ZERO.is_trusted(), "zero is the uncertainty point, not trust");
}

// ---- Formula (9) with 0 and 1 samples ----------------------------------

#[test]
fn margin_of_error_with_no_samples_is_unbounded() {
    assert_eq!(margin_of_error(&[], 0.95), f64::INFINITY);
}

#[test]
fn margin_of_error_with_one_sample_is_unbounded() {
    // One evidence gives no spread estimate: σ is undefined (n-1 = 0), so
    // the interval must stay unbounded rather than collapsing to zero.
    assert_eq!(margin_of_error(&[0.8], 0.95), f64::INFINITY);
    assert_eq!(margin_of_error(&[-1.0], 0.99), f64::INFINITY);
}

#[test]
fn margin_of_error_becomes_finite_at_two_samples() {
    let m = margin_of_error(&[-1.0, 1.0], 0.95);
    assert!(m.is_finite() && m > 0.0, "two samples give a finite margin, got {m}");
    // Two identical samples: zero spread, zero margin.
    assert_eq!(margin_of_error(&[0.5, 0.5], 0.95), 0.0);
}

#[test]
fn std_dev_degenerate_sample_sizes() {
    assert_eq!(sample_std_dev(&[]), 0.0);
    assert_eq!(sample_std_dev(&[42.0]), 0.0);
}

#[test]
fn interval_from_degenerate_samples_never_decides() {
    // An unbounded interval must force rule (10) to withhold judgement,
    // whatever the point estimate says.
    let rule = DecisionRule::default();
    for samples in [&[][..], &[-1.0][..]] {
        let ci = ConfidenceInterval::from_samples(samples, 0.95);
        assert_eq!(ci.margin, f64::INFINITY);
        assert!(ci.contains(0.0) && ci.contains(-1.0) && ci.contains(1.0));
        assert_eq!(rule.decide(ci.center, ci.margin), Verdict::Unrecognized);
    }
}

// ---- Rule (10) on the γ boundaries -------------------------------------

#[test]
fn verdict_exactly_on_gamma_convicts_and_acquits() {
    // Rule (10) uses closed intervals: detect ∓ margin landing exactly on
    // ±γ is still a judgement.
    let rule = DecisionRule::new(0.6);
    assert_eq!(rule.decide(0.6, 0.0), Verdict::WellBehaving);
    assert_eq!(rule.decide(-0.6, 0.0), Verdict::Intruder);
    assert_eq!(rule.decide(0.7, 0.1), Verdict::WellBehaving); // 0.7 - 0.1 = 0.6
    assert_eq!(rule.decide(-0.7, 0.1), Verdict::Intruder); // -0.7 + 0.1 = -0.6
}

#[test]
fn verdict_just_inside_gamma_withholds() {
    let rule = DecisionRule::new(0.6);
    let eps = 1e-12;
    assert_eq!(rule.decide(0.6 - eps, 0.0), Verdict::Unrecognized);
    assert_eq!(rule.decide(-0.6 + eps, 0.0), Verdict::Unrecognized);
}

#[test]
fn verdict_at_the_domain_extremes() {
    // γ = 1 demands certainty: only exact ±1 with zero margin decides.
    let rule = DecisionRule::new(1.0);
    assert_eq!(rule.decide(1.0, 0.0), Verdict::WellBehaving);
    assert_eq!(rule.decide(-1.0, 0.0), Verdict::Intruder);
    assert_eq!(rule.decide(1.0, 1e-9), Verdict::Unrecognized);
    assert_eq!(rule.decide(-1.0, 1e-9), Verdict::Unrecognized);
}

#[test]
fn gamma_bounds_are_enforced() {
    // γ must sit in (0, 1]: 1.0 is legal, 0.0 and anything above 1 are not.
    let _ = DecisionRule::new(1.0);
    assert!(std::panic::catch_unwind(|| DecisionRule::new(0.0)).is_err());
    assert!(std::panic::catch_unwind(|| DecisionRule::new(1.0 + 1e-9)).is_err());
}
