//! Rule (10): the three-way detection verdict.
//!
//! Given the detection value `Detect(A,I)` of formula (8) and the margin of
//! error `Ci = ε` of formula (9):
//!
//! > `I` is **well-behaving** if `γ ≤ Detect − Ci ≤ 1`
//! > `I` is an **intruder**  if `−1 ≤ Detect + Ci ≤ −γ`
//! > `I` is **unrecognized** otherwise
//!
//! i.e. a node is only judged when the *pessimistic* end of its confidence
//! interval still clears the decision threshold `γ`. An `unrecognized`
//! verdict asks the investigator to collect more evidence.

use std::fmt;

/// The outcome of applying rule (10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The suspicious node's advertised links check out.
    WellBehaving,
    /// The suspicious node is judged to be spoofing.
    Intruder,
    /// Evidence is insufficient or too contradictory; keep investigating.
    Unrecognized,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::WellBehaving => "well-behaving",
            Verdict::Intruder => "intruder",
            Verdict::Unrecognized => "unrecognized",
        };
        f.write_str(s)
    }
}

/// Rule (10) with threshold `γ`.
///
/// ```
/// use trustlink_trust::{DecisionRule, Verdict};
/// let rule = DecisionRule::new(0.6);
/// assert_eq!(rule.decide(-0.9, 0.1), Verdict::Intruder);
/// assert_eq!(rule.decide(0.9, 0.1), Verdict::WellBehaving);
/// assert_eq!(rule.decide(-0.9, 0.5), Verdict::Unrecognized); // interval too wide
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRule {
    gamma: f64,
}

impl DecisionRule {
    /// Builds a rule with threshold `gamma`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < gamma ≤ 1`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1], got {gamma}");
        DecisionRule { gamma }
    }

    /// The decision threshold γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Applies rule (10) to a detection value and a margin of error.
    ///
    /// `margin` may be [`f64::INFINITY`] (unknowable spread), which always
    /// yields [`Verdict::Unrecognized`].
    pub fn decide(&self, detect: f64, margin: f64) -> Verdict {
        debug_assert!((-1.0..=1.0).contains(&detect), "detect out of range: {detect}");
        debug_assert!(margin >= 0.0, "negative margin: {margin}");
        let pessimistic_good = detect - margin;
        let pessimistic_bad = detect + margin;
        if (self.gamma..=1.0).contains(&pessimistic_good) {
            Verdict::WellBehaving
        } else if (-1.0..=-self.gamma).contains(&pessimistic_bad) {
            Verdict::Intruder
        } else {
            Verdict::Unrecognized
        }
    }
}

impl Default for DecisionRule {
    /// `γ = 0.6`, the example threshold the paper's §V suggests
    /// ("confirming (resp. denying) ... when the investigation result
    /// exceeds for instance −0.6 (resp. 0.6)").
    fn default() -> Self {
        DecisionRule::new(0.6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_intruder() {
        let rule = DecisionRule::default();
        assert_eq!(rule.decide(-0.8, 0.1), Verdict::Intruder);
        assert_eq!(rule.decide(-1.0, 0.0), Verdict::Intruder);
        // Boundary: Detect + Ci exactly -γ.
        assert_eq!(rule.decide(-0.7, 0.1), Verdict::Intruder);
    }

    #[test]
    fn clear_well_behaving() {
        let rule = DecisionRule::default();
        assert_eq!(rule.decide(0.8, 0.1), Verdict::WellBehaving);
        assert_eq!(rule.decide(1.0, 0.0), Verdict::WellBehaving);
        assert_eq!(rule.decide(0.7, 0.1), Verdict::WellBehaving);
    }

    #[test]
    fn wide_intervals_withhold_judgement() {
        let rule = DecisionRule::default();
        assert_eq!(rule.decide(-0.9, 0.5), Verdict::Unrecognized);
        assert_eq!(rule.decide(0.9, 0.5), Verdict::Unrecognized);
        assert_eq!(rule.decide(-0.9, f64::INFINITY), Verdict::Unrecognized);
    }

    #[test]
    fn middle_ground_is_unrecognized() {
        let rule = DecisionRule::default();
        assert_eq!(rule.decide(0.0, 0.0), Verdict::Unrecognized);
        assert_eq!(rule.decide(0.5, 0.0), Verdict::Unrecognized);
        assert_eq!(rule.decide(-0.5, 0.0), Verdict::Unrecognized);
    }

    #[test]
    fn trichotomy_is_total_and_exclusive() {
        let rule = DecisionRule::new(0.6);
        for i in -20..=20 {
            for j in 0..=10 {
                let detect = i as f64 / 20.0;
                let margin = j as f64 / 10.0;
                // decide() always returns exactly one verdict (no panic).
                let v = rule.decide(detect, margin);
                // The two decisive branches can never both hold: that would
                // need detect-margin >= γ and detect+margin <= -γ, i.e.
                // 2·detect <= -2γ + ... contradiction for γ>0, margin>=0.
                if v == Verdict::WellBehaving {
                    assert!(detect - margin >= 0.6);
                }
                if v == Verdict::Intruder {
                    assert!(detect + margin <= -0.6);
                }
            }
        }
    }

    #[test]
    fn stricter_gamma_judges_less() {
        let lenient = DecisionRule::new(0.5);
        let strict = DecisionRule::new(0.9);
        assert_eq!(lenient.decide(-0.7, 0.1), Verdict::Intruder);
        assert_eq!(strict.decide(-0.7, 0.1), Verdict::Unrecognized);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn zero_gamma_rejected() {
        let _ = DecisionRule::new(0.0);
    }

    #[test]
    fn display() {
        assert_eq!(Verdict::Intruder.to_string(), "intruder");
        assert_eq!(Verdict::WellBehaving.to_string(), "well-behaving");
        assert_eq!(Verdict::Unrecognized.to_string(), "unrecognized");
    }
}
