//! The trust domain and the evidence catalogue.
//!
//! §IV-A of the paper lists five properties a trust system must honour:
//!
//! 1. beneficial activity raises trust, harmful activity lowers it;
//! 2. the *gravity* (or reputability) of an activity scales its effect;
//! 3. imminent-intrusion risk drops trust drastically;
//! 4. fresh activities outweigh stale ones;
//! 5. first-hand evidence outweighs second-hand evidence.
//!
//! [`EvidenceKind`] + [`GravityCatalogue`] encode properties 1–3 and 5 (the
//! per-kind `α` weights); property 4 is the forgetting factor `β` of
//! [`crate::update::TrustUpdate`].

use std::fmt;

/// A trust value, clamped to `[-1, 1]`.
///
/// `+1` is complete trust, `-1` complete distrust, `0` maximal uncertainty
/// (the entropy view of Sun et al.). The paper's figures use a *default
/// initial trust* of `0.4` ([`TrustValue::DEFAULT`]).
///
/// ```
/// use trustlink_trust::TrustValue;
/// let t = TrustValue::new(1.7); // out-of-range inputs are clamped
/// assert_eq!(t.get(), 1.0);
/// assert!(TrustValue::DEFAULT > TrustValue::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct TrustValue(f64);

impl TrustValue {
    /// Complete distrust.
    pub const MIN: TrustValue = TrustValue(-1.0);
    /// Complete trust.
    pub const MAX: TrustValue = TrustValue(1.0);
    /// Total uncertainty.
    pub const ZERO: TrustValue = TrustValue(0.0);
    /// The paper's default initial trust (Figure 2 calls 0.4 "the default
    /// (initial) trust value").
    pub const DEFAULT: TrustValue = TrustValue(0.4);

    /// Builds a trust value, clamping into `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "trust value must not be NaN");
        TrustValue(v.clamp(-1.0, 1.0))
    }

    /// The raw value in `[-1, 1]`.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The value with negative trust floored to zero — the weight this node
    /// deserves in trust-weighted votes (see [`crate::aggregate`]).
    pub fn weight(self) -> f64 {
        self.0.max(0.0)
    }

    /// `true` when strictly above the uncertainty point.
    pub fn is_trusted(self) -> bool {
        self.0 > 0.0
    }
}

impl From<TrustValue> for f64 {
    fn from(t: TrustValue) -> f64 {
        t.get()
    }
}

impl fmt::Display for TrustValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.3}", self.0)
    }
}

/// The catalogue of observable activities that generate trust evidence
/// (Property 1: each is beneficial, harmful or neutral).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvidenceKind {
    /// The node relayed traffic normally during the slot (beneficial,
    /// low-gravity — the everyday signal).
    NormalRelaying,
    /// The node answered an investigation and its answer agreed with the
    /// final outcome (beneficial).
    TruthfulTestimony,
    /// The node answered an investigation and its answer contradicted the
    /// final outcome — it lied or was badly mistaken (harmful; the paper's
    /// *liars* accumulate these).
    FalseTestimony,
    /// The node dropped routing traffic it should have relayed (harmful).
    DroppedTraffic,
    /// The node forged routing information — e.g. a spoofed link confirmed
    /// by investigation (harmful, maximal gravity: Property 3's imminent
    /// risk).
    ForgedRouting,
    /// The node modified or replayed a message in transit (harmful).
    MisrelayedRouting,
    /// The node failed to answer an investigation before the timeout
    /// (neutral: e = 0 in the paper, but recorded for bookkeeping).
    Unresponsive,
}

impl EvidenceKind {
    /// The sign `e ∈ {-1, 0, +1}` of the evidence (Property 1).
    pub fn polarity(self) -> f64 {
        match self {
            EvidenceKind::NormalRelaying | EvidenceKind::TruthfulTestimony => 1.0,
            EvidenceKind::Unresponsive => 0.0,
            EvidenceKind::FalseTestimony
            | EvidenceKind::DroppedTraffic
            | EvidenceKind::ForgedRouting
            | EvidenceKind::MisrelayedRouting => -1.0,
        }
    }

    /// All catalogue entries, for iteration in tests and ablations.
    pub const ALL: [EvidenceKind; 7] = [
        EvidenceKind::NormalRelaying,
        EvidenceKind::TruthfulTestimony,
        EvidenceKind::FalseTestimony,
        EvidenceKind::DroppedTraffic,
        EvidenceKind::ForgedRouting,
        EvidenceKind::MisrelayedRouting,
        EvidenceKind::Unresponsive,
    ];
}

/// The gravity weights `α_j` of formula (5): how strongly each evidence kind
/// moves trust (Properties 2 and 3).
///
/// The defaults are calibrated so that, under the default forgetting
/// factor `β = 0.9`:
///
/// * a node showing only [`EvidenceKind::NormalRelaying`] converges to
///   exactly [`TrustValue::DEFAULT`]: the fixed point of `T ← βT + α` is
///   `α/(1-β) = 0.04/0.1 = 0.4`;
/// * a persistent liar (false testimony + background relaying each round)
///   converges to `(-0.12 + 0.04)/0.1 = -0.8` over roughly ten rounds —
///   the gradual monotone descent of the paper's Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct GravityCatalogue {
    /// α for [`EvidenceKind::NormalRelaying`].
    pub normal_relaying: f64,
    /// α for [`EvidenceKind::TruthfulTestimony`].
    pub truthful_testimony: f64,
    /// α for [`EvidenceKind::FalseTestimony`].
    pub false_testimony: f64,
    /// α for [`EvidenceKind::DroppedTraffic`].
    pub dropped_traffic: f64,
    /// α for [`EvidenceKind::ForgedRouting`].
    pub forged_routing: f64,
    /// α for [`EvidenceKind::MisrelayedRouting`].
    pub misrelayed_routing: f64,
    /// α for [`EvidenceKind::Unresponsive`] (polarity 0, so this only
    /// matters if a caller overrides polarities).
    pub unresponsive: f64,
}

impl GravityCatalogue {
    /// The gravity `α ≥ 0` assigned to `kind`.
    pub fn alpha(&self, kind: EvidenceKind) -> f64 {
        match kind {
            EvidenceKind::NormalRelaying => self.normal_relaying,
            EvidenceKind::TruthfulTestimony => self.truthful_testimony,
            EvidenceKind::FalseTestimony => self.false_testimony,
            EvidenceKind::DroppedTraffic => self.dropped_traffic,
            EvidenceKind::ForgedRouting => self.forged_routing,
            EvidenceKind::MisrelayedRouting => self.misrelayed_routing,
            EvidenceKind::Unresponsive => self.unresponsive,
        }
    }

    /// The signed contribution `α_j · e_j` of one evidence occurrence.
    pub fn contribution(&self, kind: EvidenceKind) -> f64 {
        self.alpha(kind) * kind.polarity()
    }

    /// A "flat" catalogue where every kind has the same gravity — the
    /// ablation baseline for the paper's future-work item on differentiated
    /// weighting.
    pub fn flat(alpha: f64) -> Self {
        GravityCatalogue {
            normal_relaying: alpha,
            truthful_testimony: alpha,
            false_testimony: alpha,
            dropped_traffic: alpha,
            forged_routing: alpha,
            misrelayed_routing: alpha,
            unresponsive: alpha,
        }
    }
}

impl Default for GravityCatalogue {
    fn default() -> Self {
        GravityCatalogue {
            normal_relaying: 0.04,
            truthful_testimony: 0.08,
            false_testimony: 0.12,
            dropped_traffic: 0.20,
            forged_routing: 0.50,
            misrelayed_routing: 0.20,
            unresponsive: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        assert_eq!(TrustValue::new(2.0).get(), 1.0);
        assert_eq!(TrustValue::new(-2.0).get(), -1.0);
        assert_eq!(TrustValue::new(0.25).get(), 0.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = TrustValue::new(f64::NAN);
    }

    #[test]
    fn weight_floors_negative_trust() {
        assert_eq!(TrustValue::new(-0.5).weight(), 0.0);
        assert_eq!(TrustValue::new(0.5).weight(), 0.5);
    }

    #[test]
    fn polarity_signs_match_property_one() {
        assert_eq!(EvidenceKind::NormalRelaying.polarity(), 1.0);
        assert_eq!(EvidenceKind::TruthfulTestimony.polarity(), 1.0);
        assert_eq!(EvidenceKind::FalseTestimony.polarity(), -1.0);
        assert_eq!(EvidenceKind::ForgedRouting.polarity(), -1.0);
        assert_eq!(EvidenceKind::DroppedTraffic.polarity(), -1.0);
        assert_eq!(EvidenceKind::MisrelayedRouting.polarity(), -1.0);
        assert_eq!(EvidenceKind::Unresponsive.polarity(), 0.0);
    }

    #[test]
    fn default_gravities_rank_by_severity() {
        // Property 2/3: forging (imminent intrusion) must be the gravest;
        // background relaying the lightest of the non-zero weights.
        let g = GravityCatalogue::default();
        assert!(g.forged_routing > g.false_testimony);
        assert!(g.false_testimony > g.truthful_testimony);
        assert!(g.truthful_testimony > g.normal_relaying);
        for kind in EvidenceKind::ALL {
            assert!(g.alpha(kind) >= 0.0);
        }
    }

    #[test]
    fn default_steady_state_is_default_trust() {
        // α_relay / (1 - β) with β = 0.9 must equal the default trust 0.4.
        let g = GravityCatalogue::default();
        let fixed_point = g.normal_relaying / (1.0 - 0.9);
        assert!((fixed_point - TrustValue::DEFAULT.get()).abs() < 1e-12);
    }

    #[test]
    fn contribution_is_signed() {
        let g = GravityCatalogue::default();
        assert!(g.contribution(EvidenceKind::NormalRelaying) > 0.0);
        assert!(g.contribution(EvidenceKind::ForgedRouting) < 0.0);
        assert_eq!(g.contribution(EvidenceKind::Unresponsive), 0.0);
    }

    #[test]
    fn flat_catalogue_is_uniform() {
        let g = GravityCatalogue::flat(0.1);
        for kind in EvidenceKind::ALL {
            assert_eq!(g.alpha(kind), 0.1);
        }
    }

    #[test]
    fn display_has_sign() {
        assert_eq!(TrustValue::new(0.4).to_string(), "+0.400");
        assert_eq!(TrustValue::new(-0.25).to_string(), "-0.250");
    }
}
