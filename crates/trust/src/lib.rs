//! # trustlink-trust
//!
//! The entropy-based trust system of *"Trust-enabled Link Spoofing Detection
//! in MANET"* (Alattar, Sailhan, Bourgeois — ICDCS WWASN 2012), as a pure,
//! simulator-independent library.
//!
//! The paper secures a distributed intrusion detector with five pieces of
//! mathematics, all implemented here:
//!
//! | Paper | Module | What it does |
//! |-------|--------|--------------|
//! | Formula (5) | [`update`] | evidence-weighted trust update with gravity factors `α` and forgetting factor `β` |
//! | §IV entropy | [`entropy`] | the information-theoretic trust ↔ probability mapping of Sun et al. |
//! | Formula (6) | [`propagation`] | concatenated trust propagation through a third party |
//! | Formula (7) | [`propagation`] | multipath propagation over several recommenders |
//! | Formula (8) | [`aggregate`] | trust-weighted aggregation of investigation answers into a detection value |
//! | Formula (9) | [`confidence`] | confidence interval over partial evidence (probit, margin of error) |
//! | Rule (10) | [`decision`] | the three-way verdict: well-behaving / intruder / unrecognized |
//!
//! [`store`] ties (5) into a per-neighbor bookkeeping structure with
//! time-slot semantics, and [`value`] defines the bounded [`TrustValue`]
//! domain and the evidence catalogue (Properties 1–5 of §IV-A).
//!
//! ## Example: one investigation round
//!
//! ```
//! use trustlink_trust::prelude::*;
//!
//! // Three witnesses answer "is the link advertised by the suspect real?".
//! // Two honest nodes deny it (-1); a liar confirms it (+1).
//! let answers = [
//!     (TrustValue::new(0.7), Answer::Deny),
//!     (TrustValue::new(0.6), Answer::Deny),
//!     (TrustValue::new(0.2), Answer::Confirm),
//! ];
//! let detect = detection_value(answers.iter().copied());
//! assert!(detect < 0.0, "the spoofed link should look suspicious");
//!
//! // Margin of error over the raw answers at 95% confidence:
//! let samples: Vec<f64> = answers.iter().map(|(_, a)| a.as_f64()).collect();
//! let margin = margin_of_error(&samples, 0.95);
//! let verdict = DecisionRule::default().decide(detect, margin);
//! println!("detect={detect:.2} ± {margin:.2} → {verdict:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod confidence;
pub mod decision;
pub mod entropy;
pub mod propagation;
pub mod stability;
pub mod store;
pub mod update;
pub mod value;

/// Glob-import of the commonly used types and functions.
pub mod prelude {
    pub use crate::aggregate::{detection_value, stability_weighted_detection_value, Answer};
    pub use crate::confidence::{margin_of_error, probit, ConfidenceInterval};
    pub use crate::decision::{DecisionRule, Verdict};
    pub use crate::entropy::{binary_entropy, probability_from_trust, trust_from_probability};
    pub use crate::propagation::{concatenated, multipath, Recommendation};
    pub use crate::stability::{stability_weight, StabilityParams};
    pub use crate::store::TrustStore;
    pub use crate::update::TrustUpdate;
    pub use crate::value::{EvidenceKind, GravityCatalogue, TrustValue};
}

pub use aggregate::{detection_value, stability_weighted_detection_value, Answer};
pub use confidence::{margin_of_error, probit, ConfidenceInterval};
pub use decision::{DecisionRule, Verdict};
pub use propagation::Recommendation;
pub use stability::{stability_weight, StabilityParams};
pub use store::TrustStore;
pub use update::TrustUpdate;
pub use value::{EvidenceKind, GravityCatalogue, TrustValue};
