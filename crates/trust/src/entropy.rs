//! The entropy-based trust mapping.
//!
//! The paper computes uncertainty with "the entropy, a measure of
//! uncertainty stated in information theory" and cites the framework of
//! Sun et al. (IEEE JSAC 2006). There, trust is a function of the
//! probability `p` that a node behaves well:
//!
//! > `T = 1 − H(p)` for `p ≥ 0.5`, and `T = H(p) − 1` for `p < 0.5`,
//!
//! where `H` is the binary entropy. Complete certainty of good behaviour
//! (`p = 1`) gives `T = +1`; complete certainty of misbehaviour (`p = 0`)
//! gives `T = -1`; maximal uncertainty (`p = 0.5`) gives `T = 0`.

use crate::value::TrustValue;

/// Binary entropy `H(p) = -p·log2(p) - (1-p)·log2(1-p)`, with the
/// convention `0·log2(0) = 0`.
///
/// # Panics
///
/// Panics unless `p ∈ [0, 1]`.
///
/// ```
/// use trustlink_trust::entropy::binary_entropy;
/// assert_eq!(binary_entropy(0.5), 1.0);
/// assert_eq!(binary_entropy(0.0), 0.0);
/// assert_eq!(binary_entropy(1.0), 0.0);
/// ```
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1], got {p}");
    let term = |x: f64| if x <= 0.0 { 0.0 } else { -x * x.log2() };
    term(p) + term(1.0 - p)
}

/// The entropy-based trust of a node whose probability of behaving well is
/// `p` (Sun et al., as adopted by the paper's §IV).
///
/// Monotone increasing in `p`, antisymmetric around `p = 0.5`.
///
/// # Panics
///
/// Panics unless `p ∈ [0, 1]`.
pub fn trust_from_probability(p: f64) -> TrustValue {
    let h = binary_entropy(p);
    if p >= 0.5 {
        TrustValue::new(1.0 - h)
    } else {
        TrustValue::new(h - 1.0)
    }
}

/// Inverse of [`trust_from_probability`]: the behaviour probability that
/// yields trust `t`. Computed by bisection (the entropy map has no
/// closed-form inverse); accurate to ~1e-12.
pub fn probability_from_trust(t: TrustValue) -> f64 {
    let target = t.get();
    if target == 0.0 {
        return 0.5;
    }
    // Search the monotone half [0.5, 1] for |t|, then mirror.
    let want = target.abs();
    let (mut lo, mut hi) = (0.5_f64, 1.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let got = 1.0 - binary_entropy(mid);
        if got < want {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let p = 0.5 * (lo + hi);
    if target >= 0.0 {
        p
    } else {
        1.0 - p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_endpoints_and_peak() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert_eq!(binary_entropy(0.5), 1.0);
        assert!((binary_entropy(0.25) - 0.811278).abs() < 1e-6);
    }

    #[test]
    fn entropy_is_symmetric() {
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn entropy_rejects_out_of_range() {
        let _ = binary_entropy(1.5);
    }

    #[test]
    fn trust_endpoints() {
        assert_eq!(trust_from_probability(1.0), TrustValue::MAX);
        assert_eq!(trust_from_probability(0.0), TrustValue::MIN);
        assert_eq!(trust_from_probability(0.5), TrustValue::ZERO);
    }

    #[test]
    fn trust_is_monotone_in_probability() {
        let mut prev = TrustValue::MIN;
        for i in 0..=1000 {
            let p = i as f64 / 1000.0;
            let t = trust_from_probability(p);
            assert!(t >= prev, "not monotone at p={p}");
            prev = t;
        }
    }

    #[test]
    fn trust_is_antisymmetric() {
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let a = trust_from_probability(p).get();
            let b = trust_from_probability(1.0 - p).get();
            assert!((a + b).abs() < 1e-12, "not antisymmetric at p={p}");
        }
    }

    #[test]
    fn inverse_roundtrips() {
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let t = trust_from_probability(p);
            let q = probability_from_trust(t);
            assert!((p - q).abs() < 1e-9, "roundtrip failed at p={p}: got {q}");
        }
    }

    #[test]
    fn slight_majority_is_low_trust() {
        // p = 0.6 is still very uncertain: trust must be well below 0.4.
        let t = trust_from_probability(0.6);
        assert!(t.get() > 0.0 && t.get() < 0.1, "t = {t}");
    }
}
