//! Link-stability weighting of investigation evidence.
//!
//! The paper evaluates on stationary meshes, where a witness's answer is as
//! reliable as the witness itself — trust alone weights evidence. Under
//! mobility that breaks down: a perfectly honest witness answering over a
//! link that formed two seconds ago (or that keeps flapping) reports a view
//! that may already be stale, and the pinned brisk-churn scenario shows the
//! consequence — honest nodes get convicted when a true link dissolves while
//! its advertisement is still in flight.
//!
//! This module scores the *channel* the evidence rode over, not the witness:
//! a weight in `[0, 1]` derived from the symmetric-link age and flap history
//! that the IDS extracts from the typed audit log. The aggregation layer
//! (see [`crate::aggregate::stability_weighted_detection_value`]) multiplies
//! each evidence value by its stability weight while keeping the witness's
//! full trust in the normalizer, so unstable evidence *dilutes* the
//! detection value toward zero exactly like a missing answer does. Churn
//! noise therefore degrades detection gracefully — it can delay a verdict,
//! never manufacture one — while mature stable links carry weight `1.0`
//! and reproduce the stationary results bit for bit.

/// Tunable knobs of the stability weighting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityParams {
    /// A link must have been continuously up for this long to carry full
    /// weight; younger links ramp up linearly from zero.
    pub mature_age_secs: f64,
    /// A flap within this window still taints the link: the weight also
    /// ramps linearly with the time since the last flap.
    pub flap_memory_secs: f64,
    /// Hard cap on the weight of evidence from a link that is currently
    /// *down* (the adjacency dissolved and has not re-formed) — precisely
    /// the situation that produces churn false positives.
    pub down_cap: f64,
}

impl Default for StabilityParams {
    /// Full weight after 8 s of uninterrupted adjacency, a 25 s flap
    /// memory, and a 0.25 cap on currently-down links. The maturity age is
    /// deliberately shorter than any investigation warmup in the workspace
    /// so stationary scenarios reach weight `1.0` before their first
    /// verdict.
    fn default() -> Self {
        StabilityParams { mature_age_secs: 8.0, flap_memory_secs: 25.0, down_cap: 0.25 }
    }
}

fn ramp(x: f64, full_at: f64) -> f64 {
    if full_at <= 0.0 {
        1.0
    } else {
        (x / full_at).clamp(0.0, 1.0)
    }
}

/// The stability weight of one observed link.
///
/// Argument convention (both observations are "as of now"):
///
/// - `age_secs`: seconds the symmetric adjacency has been continuously up,
///   or `None` if it is currently down.
/// - `secs_since_flap`: seconds since the adjacency was last lost, or
///   `None` if it never flapped.
///
/// A link that was **never observed** (`None`, `None`) carries weight
/// `1.0`: no history is not evidence of instability — testimony from
/// witnesses we only reach over multi-hop routes is weighted by trust
/// alone, exactly as before stability weighting existed.
///
/// A link that is **up** weighs `min(ramp(age), ramp(since_flap))`, both
/// ramps linear and saturating at 1. A stationary link never flaps and only
/// ages, so after `mature_age_secs` its weight is exactly `1.0`.
///
/// A link that is **down after flapping** (`None`, `Some`) is capped at
/// [`StabilityParams::down_cap`] and further reduced the more recent the
/// flap.
pub fn stability_weight(
    params: &StabilityParams,
    age_secs: Option<f64>,
    secs_since_flap: Option<f64>,
) -> f64 {
    match (age_secs, secs_since_flap) {
        (None, None) => 1.0,
        (Some(age), since) => {
            let age_w = ramp(age, params.mature_age_secs);
            let flap_w = since.map_or(1.0, |s| ramp(s, params.flap_memory_secs));
            age_w.min(flap_w)
        }
        (None, Some(since)) => params.down_cap.min(ramp(since, params.flap_memory_secs)).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> StabilityParams {
        StabilityParams::default()
    }

    #[test]
    fn unobserved_links_are_neutral() {
        assert_eq!(stability_weight(&p(), None, None), 1.0);
    }

    #[test]
    fn mature_stable_links_weigh_exactly_one() {
        // Bit-exactness matters: this is what keeps stationary conviction
        // sets identical with stability weighting enabled.
        assert_eq!(stability_weight(&p(), Some(8.0), None), 1.0);
        assert_eq!(stability_weight(&p(), Some(500.0), None), 1.0);
        assert_eq!(stability_weight(&p(), Some(100.0), Some(1000.0)), 1.0);
    }

    #[test]
    fn young_links_ramp_up() {
        let w = stability_weight(&p(), Some(2.0), None);
        assert!((w - 0.25).abs() < 1e-12, "w={w}");
        assert_eq!(stability_weight(&p(), Some(0.0), None), 0.0);
    }

    #[test]
    fn recent_flaps_taint_even_mature_links() {
        // Up for 10 s (past maturity) but flapped 10 s ago: the flap ramp
        // dominates.
        let w = stability_weight(&p(), Some(10.0), Some(10.0));
        assert!((w - 10.0 / 25.0).abs() < 1e-12, "w={w}");
    }

    #[test]
    fn down_links_are_capped() {
        let w = stability_weight(&p(), None, Some(1000.0));
        assert_eq!(w, 0.25);
        // ... and a just-flapped down link is worth almost nothing.
        let w = stability_weight(&p(), None, Some(1.0));
        assert!((w - 1.0 / 25.0).abs() < 1e-12, "w={w}");
    }

    #[test]
    fn degenerate_params_never_divide_by_zero() {
        let z = StabilityParams { mature_age_secs: 0.0, flap_memory_secs: 0.0, down_cap: 0.5 };
        assert_eq!(stability_weight(&z, Some(0.0), None), 1.0);
        assert_eq!(stability_weight(&z, None, Some(0.0)), 0.5);
    }

    #[test]
    fn weights_stay_in_unit_interval() {
        for age in [None, Some(0.0), Some(3.0), Some(50.0)] {
            for flap in [None, Some(0.0), Some(3.0), Some(50.0)] {
                let w = stability_weight(&p(), age, flap);
                assert!((0.0..=1.0).contains(&w), "w={w} for {age:?}/{flap:?}");
            }
        }
    }
}
