//! Formula (9): the confidence interval over partial evidence.
//!
//! §IV-C: from a *sample* of evidences `e_1..e_n` the investigator estimates
//! the range the whole evidence population would fall in. The margin of
//! error is
//!
//! > `ε = z · σ / √n`
//!
//! with `σ` the sample standard deviation and `z` the standard-normal
//! quantile for the configured confidence level (e.g. `z ≈ 1.96` at 95 %).
//! A wide interval says "collect more evidence before deciding".

use std::fmt;

/// The inverse standard-normal CDF (the *probit* function), computed with
/// Acklam's rational approximation (absolute error < 1.15e-9 over the whole
/// domain).
///
/// # Panics
///
/// Panics unless `p ∈ (0, 1)`.
///
/// ```
/// use trustlink_trust::probit;
/// assert!((probit(0.975) - 1.959964).abs() < 1e-5);
/// assert_eq!(probit(0.5), 0.0);
/// ```
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit requires p in (0,1), got {p}");
    if p == 0.5 {
        return 0.0;
    }

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The two-sided `z` value for a confidence level, e.g. `0.95 → 1.96`.
///
/// # Panics
///
/// Panics unless `confidence_level ∈ (0, 1)`.
pub fn z_for_confidence_level(confidence_level: f64) -> f64 {
    assert!(
        confidence_level > 0.0 && confidence_level < 1.0,
        "confidence level must be in (0,1), got {confidence_level}"
    );
    probit(1.0 - (1.0 - confidence_level) / 2.0)
}

/// Sample standard deviation (the `n-1` denominator of the paper's σ).
///
/// Returns `0.0` for samples of size < 2.
pub fn sample_std_dev(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    var.sqrt()
}

/// Formula (9): the margin of error `ε = z·σ/√n` of the evidence sample at
/// the given confidence level.
///
/// Returns [`f64::INFINITY`] for samples of fewer than two evidences: with
/// nothing to estimate spread from, the interval is unbounded and rule (10)
/// will answer *unrecognized* — exactly the paper's "more evidences should
/// be provided".
pub fn margin_of_error(samples: &[f64], confidence_level: f64) -> f64 {
    if samples.len() < 2 {
        return f64::INFINITY;
    }
    let z = z_for_confidence_level(confidence_level);
    z * sample_std_dev(samples) / (samples.len() as f64).sqrt()
}

/// A confidence interval `[center - margin, center + margin]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate (the mean detection value).
    pub center: f64,
    /// The margin of error ε.
    pub margin: f64,
}

impl ConfidenceInterval {
    /// Builds the interval around the sample mean of `samples`.
    pub fn from_samples(samples: &[f64], confidence_level: f64) -> Self {
        let center = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<f64>() / samples.len() as f64
        };
        ConfidenceInterval { center, margin: margin_of_error(samples, confidence_level) }
    }

    /// Lower bound of the interval.
    pub fn lower(&self) -> f64 {
        self.center - self.margin
    }

    /// Upper bound of the interval.
    pub fn upper(&self) -> f64 {
        self.center + self.margin
    }

    /// Interval width `2ε`.
    pub fn width(&self) -> f64 {
        2.0 * self.margin
    }

    /// `true` when `x` lies inside the interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower() && x <= self.upper()
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.center, self.margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_standard_values() {
        // Classic z-table rows.
        assert!((probit(0.975) - 1.95996).abs() < 1e-4);
        assert!((probit(0.995) - 2.57583).abs() < 1e-4);
        assert!((probit(0.95) - 1.64485).abs() < 1e-4);
        assert!((probit(0.9) - 1.28155).abs() < 1e-4);
        assert_eq!(probit(0.5), 0.0);
    }

    #[test]
    fn probit_is_antisymmetric() {
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert!((probit(p) + probit(1.0 - p)).abs() < 1e-8, "p={p}");
        }
    }

    #[test]
    fn probit_tails() {
        assert!((probit(1e-6) + 4.75342).abs() < 1e-3);
        assert!(probit(1.0 - 1e-9) > 5.9);
    }

    #[test]
    #[should_panic(expected = "probit requires")]
    fn probit_rejects_zero() {
        let _ = probit(0.0);
    }

    #[test]
    fn z_values_match_convention() {
        assert!((z_for_confidence_level(0.95) - 1.95996).abs() < 1e-4);
        assert!((z_for_confidence_level(0.99) - 2.57583).abs() < 1e-4);
        assert!((z_for_confidence_level(0.90) - 1.64485).abs() < 1e-4);
    }

    #[test]
    fn std_dev_known_sample() {
        let s = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // population σ = 2; sample σ = sqrt(32/7)
        assert!((sample_std_dev(&s) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(sample_std_dev(&[1.0]), 0.0);
        assert_eq!(sample_std_dev(&[]), 0.0);
    }

    #[test]
    fn margin_shrinks_with_sample_size() {
        // Same spread, more evidence → narrower interval.
        let small: Vec<f64> = [1.0, -1.0].repeat(2);
        let large: Vec<f64> = [1.0, -1.0].repeat(50);
        let e_small = margin_of_error(&small, 0.95);
        let e_large = margin_of_error(&large, 0.95);
        assert!(e_large < e_small, "{e_large} !< {e_small}");
    }

    #[test]
    fn margin_grows_with_confidence_level() {
        let s: Vec<f64> = [1.0, -1.0, 1.0, -1.0, 1.0, 1.0].to_vec();
        let e90 = margin_of_error(&s, 0.90);
        let e99 = margin_of_error(&s, 0.99);
        assert!(e99 > e90);
    }

    #[test]
    fn margin_grows_with_spread() {
        let tight = [0.9, 1.0, 0.95, 1.0, 0.9];
        let wide = [1.0, -1.0, 1.0, -1.0, 0.0];
        assert!(margin_of_error(&wide, 0.95) > margin_of_error(&tight, 0.95));
    }

    #[test]
    fn tiny_samples_are_unbounded() {
        assert_eq!(margin_of_error(&[], 0.95), f64::INFINITY);
        assert_eq!(margin_of_error(&[1.0], 0.95), f64::INFINITY);
    }

    #[test]
    fn unanimous_sample_has_zero_margin() {
        // σ = 0: everyone agrees, so the interval collapses to a point.
        assert_eq!(margin_of_error(&[-1.0, -1.0, -1.0, -1.0], 0.95), 0.0);
    }

    #[test]
    fn interval_accessors() {
        let ci = ConfidenceInterval { center: -0.6, margin: 0.2 };
        assert!((ci.lower() - (-0.8)).abs() < 1e-12);
        assert!((ci.upper() - (-0.4)).abs() < 1e-12);
        assert!((ci.width() - 0.4).abs() < 1e-12);
        assert!(ci.contains(-0.6));
        assert!(ci.contains(-0.8));
        assert!(!ci.contains(-0.39));
        assert_eq!(ci.to_string(), "-0.600 ± 0.200");
    }

    #[test]
    fn interval_from_samples() {
        let ci = ConfidenceInterval::from_samples(&[-1.0, -1.0, -1.0, 1.0], 0.95);
        assert_eq!(ci.center, -0.5);
        assert!(ci.margin > 0.0 && ci.margin.is_finite());
        let empty = ConfidenceInterval::from_samples(&[], 0.95);
        assert_eq!(empty.center, 0.0);
        assert_eq!(empty.margin, f64::INFINITY);
    }
}
