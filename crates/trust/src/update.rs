//! Formula (5): the per-time-slot trust update.
//!
//! > `T(A,I)_Δt = Σ_j α_j · e_j + β · T(A,I)_Δ(t-1)`
//!
//! The forgetting factor `β ∈ [0, 1)` privileges fresh evidence (Property 4);
//! the gravity weights `α_j` come from
//! [`GravityCatalogue`](crate::value::GravityCatalogue). The result is
//! clamped into the trust domain `[-1, 1]`.

use crate::value::{EvidenceKind, GravityCatalogue, TrustValue};

/// The trust-update operator of formula (5).
///
/// ```
/// use trustlink_trust::{TrustUpdate, TrustValue, EvidenceKind};
///
/// let up = TrustUpdate::default(); // β = 0.9, default gravity catalogue
/// let before = TrustValue::DEFAULT;
/// // One slot in which the node lied to an investigation:
/// let after = up.step(before, &[EvidenceKind::FalseTestimony]);
/// assert!(after < before);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrustUpdate {
    beta: f64,
    catalogue: GravityCatalogue,
}

impl TrustUpdate {
    /// Builds an update operator with forgetting factor `beta` and the
    /// default gravity catalogue.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ beta < 1` (at `beta = 1` nothing is ever
    /// forgotten and trust can pin at the clamp bounds forever).
    pub fn new(beta: f64) -> Self {
        TrustUpdate::with_catalogue(beta, GravityCatalogue::default())
    }

    /// Builds an update operator with an explicit gravity catalogue.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ beta < 1`.
    pub fn with_catalogue(beta: f64, catalogue: GravityCatalogue) -> Self {
        assert!((0.0..1.0).contains(&beta), "forgetting factor must be in [0, 1)");
        TrustUpdate { beta, catalogue }
    }

    /// The forgetting factor β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The gravity catalogue in force.
    pub fn catalogue(&self) -> &GravityCatalogue {
        &self.catalogue
    }

    /// Applies formula (5) for one time slot: combines the previous trust
    /// with the evidence collected during the slot.
    pub fn step(&self, previous: TrustValue, evidences: &[EvidenceKind]) -> TrustValue {
        let fresh: f64 = evidences.iter().map(|&k| self.catalogue.contribution(k)).sum();
        TrustValue::new(self.beta * previous.get() + fresh)
    }

    /// The trust value a node converges to if it produces exactly
    /// `evidences` every slot, ignoring clamping:
    /// `Σ α e / (1 - β)` (the fixed point of the affine map).
    pub fn fixed_point(&self, evidences: &[EvidenceKind]) -> TrustValue {
        let fresh: f64 = evidences.iter().map(|&k| self.catalogue.contribution(k)).sum();
        TrustValue::new(fresh / (1.0 - self.beta))
    }
}

impl Default for TrustUpdate {
    /// `β = 0.9` with the default catalogue, so steady-state benign
    /// behaviour sits at the paper's default trust `0.4`.
    fn default() -> Self {
        TrustUpdate::new(0.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_behaviour_converges_to_default_trust() {
        let up = TrustUpdate::default();
        let mut t = TrustValue::new(0.0);
        for _ in 0..200 {
            t = up.step(t, &[EvidenceKind::NormalRelaying]);
        }
        assert!((t.get() - TrustValue::DEFAULT.get()).abs() < 1e-6, "t = {t}");
        assert!((up.fixed_point(&[EvidenceKind::NormalRelaying]).get() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lying_decreases_monotonically() {
        // Figure 1: "the (monotonous) descending rate of the trust assigned
        // to [misbehaving] nodes".
        let up = TrustUpdate::default();
        let mut t = TrustValue::new(0.8);
        let mut prev = t;
        for _ in 0..50 {
            t = up.step(t, &[EvidenceKind::FalseTestimony, EvidenceKind::NormalRelaying]);
            assert!(t <= prev, "not monotone: {t} > {prev}");
            prev = t;
        }
        assert!(t.get() < 0.0, "a persistent liar must end distrusted, got {t}");
    }

    #[test]
    fn forged_routing_outweighs_everything() {
        // Property 3: intrusion evidence collapses trust fast.
        let up = TrustUpdate::default();
        let after = up.step(TrustValue::new(0.9), &[EvidenceKind::ForgedRouting]);
        assert!(after.get() < 0.4, "0.9·0.9 - 0.5 = 0.31");
    }

    #[test]
    fn no_evidence_is_pure_decay() {
        let up = TrustUpdate::default();
        let t = up.step(TrustValue::new(0.5), &[]);
        assert!((t.get() - 0.45).abs() < 1e-12);
    }

    #[test]
    fn clamping_applies() {
        let up = TrustUpdate::default();
        let t =
            up.step(TrustValue::MIN, &[EvidenceKind::ForgedRouting, EvidenceKind::FalseTestimony]);
        assert_eq!(t, TrustValue::MIN);
        let t = up.step(TrustValue::MAX, &[EvidenceKind::TruthfulTestimony; 20]);
        assert_eq!(t, TrustValue::MAX);
    }

    #[test]
    fn beta_zero_forgets_everything() {
        let up = TrustUpdate::new(0.0);
        let t = up.step(TrustValue::new(0.9), &[EvidenceKind::TruthfulTestimony]);
        // Only the fresh evidence remains.
        assert!((t.get() - 0.08).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn beta_one_rejected() {
        let _ = TrustUpdate::new(1.0);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn negative_beta_rejected() {
        let _ = TrustUpdate::new(-0.1);
    }

    #[test]
    fn recovery_from_negative_is_slow() {
        // The "defensive nature" of §V: a former liar at -1 takes many
        // benign rounds to climb back to the default 0.4.
        let up = TrustUpdate::default();
        let mut t = TrustValue::MIN;
        let mut rounds_to_default = None;
        for round in 1..=200 {
            t = up.step(t, &[EvidenceKind::NormalRelaying]);
            if rounds_to_default.is_none() && t.get() >= 0.35 {
                rounds_to_default = Some(round);
            }
        }
        let r = rounds_to_default.expect("never recovered");
        assert!(r > 25, "recovery should outlast the 25-round horizon, took {r}");

        // ... while decay from above reaches the default quickly.
        let mut t = TrustValue::new(0.9);
        let mut rounds_down = 0;
        while t.get() > 0.45 {
            t = up.step(t, &[EvidenceKind::NormalRelaying]);
            rounds_down += 1;
        }
        assert!(rounds_down < 25, "decay took {rounds_down} rounds");
    }
}
