//! Per-neighbor trust bookkeeping with time-slot semantics.
//!
//! A [`TrustStore`] is what one node `A` carries: the current trust value
//! for every peer it has formed an opinion about, plus the evidence
//! collected during the *current* time slot `Δt`. Calling
//! [`TrustStore::end_slot`] closes the slot and applies formula (5) to every
//! peer with pending evidence.
//!
//! The store is generic over the peer key so the trust crate stays
//! independent of the simulator's node type.

use std::collections::HashMap;
use std::hash::Hash;

use crate::update::TrustUpdate;
use crate::value::{EvidenceKind, TrustValue};

/// The trust ledger one node keeps about its peers.
///
/// ```
/// use trustlink_trust::{TrustStore, TrustValue, EvidenceKind};
///
/// let mut store: TrustStore<&str> = TrustStore::new(TrustValue::DEFAULT);
/// store.record("mallory", EvidenceKind::FalseTestimony);
/// store.record("alice", EvidenceKind::TruthfulTestimony);
/// store.end_slot();
/// assert!(store.trust_of(&"mallory") < store.trust_of(&"alice"));
/// ```
#[derive(Debug, Clone)]
pub struct TrustStore<K> {
    update: TrustUpdate,
    initial: TrustValue,
    trust: HashMap<K, TrustValue>,
    pending: HashMap<K, Vec<EvidenceKind>>,
    /// When `true`, peers with *no* evidence in a slot still undergo the
    /// `β`-decay of formula (5) (drifting toward zero). The default `false`
    /// freezes unobserved peers, which matches the paper's evaluation where
    /// trust only moves when evidence arrives. Exposed for ablations.
    pub decay_unobserved: bool,
    slots_elapsed: u64,
}

impl<K: Eq + Hash + Clone> TrustStore<K> {
    /// Builds a store where unknown peers start at `initial` trust, using
    /// the default update operator (β = 0.9, default gravities).
    pub fn new(initial: TrustValue) -> Self {
        TrustStore::with_update(initial, TrustUpdate::default())
    }

    /// Builds a store with an explicit update operator.
    pub fn with_update(initial: TrustValue, update: TrustUpdate) -> Self {
        TrustStore {
            update,
            initial,
            trust: HashMap::new(),
            pending: HashMap::new(),
            decay_unobserved: false,
            slots_elapsed: 0,
        }
    }

    /// The update operator in force.
    pub fn update_rule(&self) -> &TrustUpdate {
        &self.update
    }

    /// Current trust in `peer` (the initial value if never observed).
    pub fn trust_of(&self, peer: &K) -> TrustValue {
        self.trust.get(peer).copied().unwrap_or(self.initial)
    }

    /// Overrides the trust of `peer` — used to seed the random initial
    /// trust of the paper's experiments.
    pub fn set_trust(&mut self, peer: K, value: TrustValue) {
        self.trust.insert(peer, value);
    }

    /// Records one piece of evidence about `peer` in the current slot.
    pub fn record(&mut self, peer: K, evidence: EvidenceKind) {
        self.trust.entry(peer.clone()).or_insert(self.initial);
        self.pending.entry(peer).or_default().push(evidence);
    }

    /// Evidence recorded for `peer` in the still-open slot.
    pub fn pending_for(&self, peer: &K) -> &[EvidenceKind] {
        self.pending.get(peer).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Closes the current time slot: applies formula (5) to every peer.
    ///
    /// Peers without pending evidence are left untouched unless
    /// [`decay_unobserved`](Self::decay_unobserved) is set.
    pub fn end_slot(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        if self.decay_unobserved {
            let empty: Vec<EvidenceKind> = Vec::new();
            let keys: Vec<K> = self.trust.keys().cloned().collect();
            for k in keys {
                let ev = pending.get(&k).unwrap_or(&empty);
                let prev = self.trust_of(&k);
                self.trust.insert(k, self.update.step(prev, ev));
            }
        } else {
            for (k, ev) in pending {
                let prev = self.trust_of(&k);
                self.trust.insert(k, self.update.step(prev, &ev));
            }
        }
        self.slots_elapsed += 1;
    }

    /// Number of closed slots so far.
    pub fn slots_elapsed(&self) -> u64 {
        self.slots_elapsed
    }

    /// All peers with an explicit trust value, in unspecified order.
    pub fn peers(&self) -> impl Iterator<Item = (&K, TrustValue)> {
        self.trust.iter().map(|(k, v)| (k, *v))
    }

    /// Number of peers tracked.
    pub fn len(&self) -> usize {
        self.trust.len()
    }

    /// `true` when no peer has ever been observed or seeded.
    pub fn is_empty(&self) -> bool {
        self.trust.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_peer_reads_initial() {
        let store: TrustStore<u32> = TrustStore::new(TrustValue::DEFAULT);
        assert_eq!(store.trust_of(&7), TrustValue::DEFAULT);
        assert!(store.is_empty());
    }

    #[test]
    fn evidence_moves_trust_at_slot_end_only() {
        let mut store: TrustStore<u32> = TrustStore::new(TrustValue::DEFAULT);
        store.record(1, EvidenceKind::FalseTestimony);
        // Nothing applied yet:
        assert_eq!(store.trust_of(&1), TrustValue::DEFAULT);
        assert_eq!(store.pending_for(&1).len(), 1);
        store.end_slot();
        assert!(store.trust_of(&1) < TrustValue::DEFAULT);
        assert!(store.pending_for(&1).is_empty());
        assert_eq!(store.slots_elapsed(), 1);
    }

    #[test]
    fn unobserved_peers_frozen_by_default() {
        let mut store: TrustStore<u32> = TrustStore::new(TrustValue::DEFAULT);
        store.set_trust(1, TrustValue::new(0.8));
        store.end_slot();
        assert_eq!(store.trust_of(&1), TrustValue::new(0.8));
    }

    #[test]
    fn decay_unobserved_ablation() {
        let mut store: TrustStore<u32> = TrustStore::new(TrustValue::DEFAULT);
        store.decay_unobserved = true;
        store.set_trust(1, TrustValue::new(0.8));
        store.end_slot();
        assert!((store.trust_of(&1).get() - 0.72).abs() < 1e-12);
    }

    #[test]
    fn multiple_evidences_accumulate_within_slot() {
        let mut a: TrustStore<u32> = TrustStore::new(TrustValue::ZERO);
        let mut b: TrustStore<u32> = TrustStore::new(TrustValue::ZERO);
        a.record(1, EvidenceKind::TruthfulTestimony);
        a.record(1, EvidenceKind::TruthfulTestimony);
        b.record(1, EvidenceKind::TruthfulTestimony);
        a.end_slot();
        b.end_slot();
        assert!(a.trust_of(&1) > b.trust_of(&1));
    }

    #[test]
    fn seeded_trust_then_updates() {
        let mut store: TrustStore<&str> = TrustStore::new(TrustValue::DEFAULT);
        store.set_trust("liar", TrustValue::new(0.9));
        for _ in 0..25 {
            store.record("liar", EvidenceKind::FalseTestimony);
            store.end_slot();
        }
        // 25 rounds of lying overwhelm even a high initial trust.
        assert!(store.trust_of(&"liar").get() < -0.5);
    }

    #[test]
    fn peers_iteration() {
        let mut store: TrustStore<u32> = TrustStore::new(TrustValue::DEFAULT);
        store.set_trust(1, TrustValue::new(0.1));
        store.set_trust(2, TrustValue::new(0.2));
        assert_eq!(store.len(), 2);
        let mut ids: Vec<u32> = store.peers().map(|(k, _)| *k).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn recording_registers_peer() {
        let mut store: TrustStore<u32> = TrustStore::new(TrustValue::DEFAULT);
        store.record(5, EvidenceKind::NormalRelaying);
        assert_eq!(store.len(), 1);
    }
}
