//! Formula (8): trust-weighted aggregation of investigation answers.
//!
//! During a cooperative investigation about a suspicious node `I`, each
//! interrogated neighbor `S_i` returns an answer about the contested link:
//! `+1` (the advertised link is correct), `-1` (the link is wrong — `I` is
//! spoofing) or `0` (no answer before the timeout). The investigator `A`
//! merges them:
//!
//! > `Detect(A,I) = Σ_i w_i · T(A,S_i) · e_i` with `w_i = 1 / Σ_j T(A,S_j)`
//!
//! so that an answer counts in proportion to the answerer's trust. A result
//! near `-1` means "the advertised link is almost certainly spoofed".

use crate::value::TrustValue;

/// A witness's answer to "is the link advertised by the suspect real?".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Answer {
    /// `e = +1`: the advertised link is correct; no spoofing observed.
    Confirm,
    /// `e = -1`: the advertised link is wrong.
    Deny,
    /// `e = 0`: the witness did not answer before the timeout.
    NoAnswer,
}

impl Answer {
    /// The numeric evidence value `e_i` of the paper.
    pub fn as_f64(self) -> f64 {
        match self {
            Answer::Confirm => 1.0,
            Answer::Deny => -1.0,
            Answer::NoAnswer => 0.0,
        }
    }

    /// Builds an answer from a boolean verification result.
    pub fn from_verification(link_ok: bool) -> Self {
        if link_ok {
            Answer::Confirm
        } else {
            Answer::Deny
        }
    }
}

/// Formula (8): merges `(trust-in-witness, answer)` pairs into a detection
/// value in `[-1, 1]`.
///
/// Implementation notes, documented in `DESIGN.md`:
///
/// * Negative trust contributes **zero** weight (via
///   [`TrustValue::weight`]): a distrusted witness is ignored rather than
///   having its vote inverted.
/// * The normalizer sums the trust of *all* witnesses, including those that
///   did not answer (`e = 0`). Missing answers therefore dilute the result
///   toward zero — this is what makes the paper's Figure 3 converge near
///   `-0.8` rather than `-1` in an unreliable network.
/// * If no witness carries positive trust the result is `0.0` (complete
///   uncertainty).
///
/// ```
/// use trustlink_trust::{detection_value, Answer, TrustValue};
/// let detect = detection_value([
///     (TrustValue::new(0.8), Answer::Deny),
///     (TrustValue::new(0.8), Answer::Deny),
///     (TrustValue::new(0.1), Answer::Confirm), // a barely-trusted liar
/// ]);
/// assert!(detect < -0.8);
/// ```
pub fn detection_value(answers: impl IntoIterator<Item = (TrustValue, Answer)>) -> f64 {
    let mut num = 0.0;
    let mut denom = 0.0;
    for (trust, answer) in answers {
        let w = trust.weight();
        num += w * answer.as_f64();
        denom += w;
    }
    if denom <= 0.0 {
        0.0
    } else {
        num / denom
    }
}

/// The evidence *sample* used for the formula (9) confidence interval:
/// the trust-weighted evidences `T_i⁺ · e_i` of the witnesses that actually
/// answered and carry positive trust.
///
/// §IV-C estimates the spread of "the partial set of evidences e_1..e_n
/// (namely the sample)"; witnesses that never answered contributed no
/// evidence, and distrusted witnesses contribute none to the aggregate, so
/// neither belongs in the sample. As liars lose trust their (weighted)
/// evidences vanish from the sample, the spread collapses, and the interval
/// narrows — which is how the paper's investigations become decisive "at
/// any round" once the trust system has done its work.
pub fn weighted_evidence_samples(
    answers: impl IntoIterator<Item = (TrustValue, Answer)>,
) -> Vec<f64> {
    answers
        .into_iter()
        .filter(|(t, a)| *a != Answer::NoAnswer && t.weight() > 0.0)
        .map(|(t, a)| t.weight() * a.as_f64())
        .collect()
}

/// Formula (8) with per-witness link-stability dilution: each evidence
/// value is scaled by the stability weight `s_i ∈ [0, 1]` of the link it
/// was sourced over (see [`crate::stability`]), while the normalizer keeps
/// the witness's **full** trust.
///
/// Scaling the numerator but not the denominator makes unstable evidence
/// behave like a partial non-answer: it pulls `Detect` toward zero instead
/// of merely rebalancing the votes. Under heavy churn no coalition of
/// young-link witnesses can push `|Detect|` past the average stability of
/// their links, so rule (10) withholds judgement — churn delays verdicts,
/// it cannot manufacture them. With every `s_i = 1.0` the computation is
/// bit-identical to [`detection_value`].
pub fn stability_weighted_detection_value(
    answers: impl IntoIterator<Item = (TrustValue, f64, Answer)>,
) -> f64 {
    let mut num = 0.0;
    let mut denom = 0.0;
    for (trust, stability, answer) in answers {
        let w = trust.weight();
        num += w * (stability * answer.as_f64());
        denom += w;
    }
    if denom <= 0.0 {
        0.0
    } else {
        num / denom
    }
}

/// The stability-diluted counterpart of [`weighted_evidence_samples`]: the
/// sample for formula (9) is the stability-scaled weighted evidence of each
/// answering, positively-trusted witness. With every stability at `1.0`
/// this is bit-identical to [`weighted_evidence_samples`].
pub fn stability_weighted_evidence_samples(
    answers: impl IntoIterator<Item = (TrustValue, f64, Answer)>,
) -> Vec<f64> {
    answers
        .into_iter()
        .filter(|(t, _, a)| *a != Answer::NoAnswer && t.weight() > 0.0)
        .map(|(t, s, a)| t.weight() * (s * a.as_f64()))
        .collect()
}

/// The unweighted counterpart of [`weighted_evidence_samples`] (for the
/// trust-weighting ablation): the raw evidences of answering witnesses.
pub fn answered_samples(answers: impl IntoIterator<Item = Answer>) -> Vec<f64> {
    answers.into_iter().filter(|a| *a != Answer::NoAnswer).map(|a| a.as_f64()).collect()
}

/// Like [`detection_value`] but *without* trust weighting — every witness
/// counts equally. This is the ablation baseline ("trust-weighting off")
/// used to show how much the trust system buys.
pub fn unweighted_detection_value(answers: impl IntoIterator<Item = Answer>) -> f64 {
    let mut num = 0.0;
    let mut n = 0u32;
    for answer in answers {
        num += answer.as_f64();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        num / f64::from(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_values() {
        assert_eq!(Answer::Confirm.as_f64(), 1.0);
        assert_eq!(Answer::Deny.as_f64(), -1.0);
        assert_eq!(Answer::NoAnswer.as_f64(), 0.0);
        assert_eq!(Answer::from_verification(true), Answer::Confirm);
        assert_eq!(Answer::from_verification(false), Answer::Deny);
    }

    #[test]
    fn unanimous_denial_is_minus_one() {
        let d = detection_value([
            (TrustValue::new(0.5), Answer::Deny),
            (TrustValue::new(0.9), Answer::Deny),
        ]);
        assert_eq!(d, -1.0);
    }

    #[test]
    fn unanimous_confirmation_is_plus_one() {
        let d = detection_value([
            (TrustValue::new(0.5), Answer::Confirm),
            (TrustValue::new(0.9), Answer::Confirm),
        ]);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn missing_answers_dilute() {
        // Two trusted deniers plus one trusted silent witness: |Detect| < 1.
        let d = detection_value([
            (TrustValue::new(0.6), Answer::Deny),
            (TrustValue::new(0.6), Answer::Deny),
            (TrustValue::new(0.6), Answer::NoAnswer),
        ]);
        assert!((d - (-2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn distrusted_witness_is_ignored() {
        let d = detection_value([
            (TrustValue::new(0.8), Answer::Deny),
            (TrustValue::new(-0.9), Answer::Confirm), // loud, but distrusted
        ]);
        assert_eq!(d, -1.0);
    }

    #[test]
    fn zero_total_trust_gives_zero() {
        let d = detection_value([
            (TrustValue::new(-0.5), Answer::Deny),
            (TrustValue::new(0.0), Answer::Confirm),
        ]);
        assert_eq!(d, 0.0);
        assert_eq!(detection_value([]), 0.0);
    }

    #[test]
    fn trusted_liars_can_sway_early_rounds() {
        // The phenomenon behind Figure 3: while liars still hold trust,
        // they pull Detect toward zero.
        let honest = (TrustValue::new(0.5), Answer::Deny);
        let liar = (TrustValue::new(0.5), Answer::Confirm);
        let d_few_liars = detection_value([honest, honest, honest, liar]);
        let d_more_liars = detection_value([honest, honest, liar, liar]);
        assert!(d_few_liars < d_more_liars, "{d_few_liars} vs {d_more_liars}");
        assert_eq!(d_more_liars, 0.0);
    }

    #[test]
    fn result_always_within_bounds() {
        for i in 0..50 {
            let t = TrustValue::new(-1.0 + (i as f64) / 25.0);
            for a in [Answer::Confirm, Answer::Deny, Answer::NoAnswer] {
                let d = detection_value([(t, a), (TrustValue::new(0.3), Answer::Deny)]);
                assert!((-1.0..=1.0).contains(&d), "out of bounds: {d}");
            }
        }
    }

    #[test]
    fn unweighted_baseline_counts_everyone() {
        let d = unweighted_detection_value([Answer::Deny, Answer::Deny, Answer::Confirm]);
        assert!((d - (-1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(unweighted_detection_value([]), 0.0);
    }

    #[test]
    fn weighted_samples_drop_silent_and_distrusted() {
        let samples = weighted_evidence_samples([
            (TrustValue::new(0.8), Answer::Deny),     // in: -0.8
            (TrustValue::new(0.5), Answer::NoAnswer), // out: silent
            (TrustValue::new(-0.3), Answer::Confirm), // out: distrusted
            (TrustValue::new(0.0), Answer::Confirm),  // out: zero weight
            (TrustValue::new(0.2), Answer::Confirm),  // in: +0.2
        ]);
        assert_eq!(samples, vec![-0.8, 0.2]);
    }

    #[test]
    fn weighted_samples_collapse_when_liars_lose_trust() {
        // The interval-narrowing mechanism: identical trusted deniers give
        // zero spread.
        let samples = weighted_evidence_samples([
            (TrustValue::new(0.9), Answer::Deny),
            (TrustValue::new(0.9), Answer::Deny),
            (TrustValue::new(-0.8), Answer::Confirm),
        ]);
        assert_eq!(samples, vec![-0.9, -0.9]);
        assert_eq!(crate::confidence::sample_std_dev(&samples), 0.0);
    }

    #[test]
    fn answered_samples_keep_raw_answers() {
        let samples =
            answered_samples([Answer::Deny, Answer::NoAnswer, Answer::Confirm, Answer::Deny]);
        assert_eq!(samples, vec![-1.0, 1.0, -1.0]);
    }

    #[test]
    fn full_stability_is_bit_identical_to_formula_eight() {
        let pairs = [
            (TrustValue::new(0.8), Answer::Deny),
            (TrustValue::new(0.4), Answer::NoAnswer),
            (TrustValue::new(0.3), Answer::Confirm),
            (TrustValue::new(-0.2), Answer::Deny),
        ];
        let with = stability_weighted_detection_value(pairs.iter().map(|&(t, a)| (t, 1.0, a)));
        let without = detection_value(pairs.iter().copied());
        assert_eq!(with.to_bits(), without.to_bits());
        let s_with: Vec<f64> =
            stability_weighted_evidence_samples(pairs.iter().map(|&(t, a)| (t, 1.0, a)));
        let s_without = weighted_evidence_samples(pairs.iter().copied());
        assert_eq!(s_with, s_without);
    }

    #[test]
    fn unstable_evidence_dilutes_toward_zero() {
        // Unanimous denial, but every link is half-stable: |Detect| is
        // capped by the average stability, not pushed back to -1.
        let d = stability_weighted_detection_value([
            (TrustValue::new(0.6), 0.5, Answer::Deny),
            (TrustValue::new(0.6), 0.5, Answer::Deny),
        ]);
        assert!((d - (-0.5)).abs() < 1e-12, "d={d}");
        // Mixed stability rebalances toward the stable witness.
        let d = stability_weighted_detection_value([
            (TrustValue::new(0.6), 1.0, Answer::Deny),
            (TrustValue::new(0.6), 0.0, Answer::Confirm),
        ]);
        assert!((d - (-0.5)).abs() < 1e-12, "d={d}");
    }

    #[test]
    fn stability_dilution_cannot_flip_a_sign() {
        let stable = stability_weighted_detection_value([
            (TrustValue::new(0.5), 1.0, Answer::Deny),
            (TrustValue::new(0.5), 0.2, Answer::Deny),
        ]);
        assert!(stable < 0.0);
        assert!(stable >= -1.0);
    }
}
