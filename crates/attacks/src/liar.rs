//! Investigation liars (§V): "colluding misbehaving nodes … that do not
//! perform link spoofing but that foil the detection by providing incorrect
//! answers".
//!
//! The liar policy is consulted by the detector agent (in `trustlink-core`)
//! whenever a node answers a link-verification request: a liar inverts the
//! truthful answer, either always, only for a set of accomplices, or with
//! some probability.

use rand::rngs::StdRng;
use rand::RngExt;
use trustlink_sim::NodeId;

/// How a node answers link-verification requests.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum LiarPolicy {
    /// Always answer truthfully (the default).
    #[default]
    Honest,
    /// Invert every answer.
    AlwaysLie,
    /// Lie only when the suspect is one of these accomplices (cover for
    /// them); otherwise answer truthfully. This is the paper's colluding
    /// liar.
    CoverFor {
        /// The accomplices to protect.
        accomplices: Vec<NodeId>,
    },
    /// Lie with the given probability, independently per answer.
    Probabilistic {
        /// Probability of lying in `[0, 1]`.
        probability: f64,
    },
}

impl LiarPolicy {
    /// Produces the answer actually sent, given the `truthful` one, the
    /// `suspect` under investigation and a deterministic RNG.
    ///
    /// # Panics
    ///
    /// Panics if a probabilistic policy carries a probability outside
    /// `[0, 1]`.
    pub fn answer(&self, truthful: bool, suspect: NodeId, rng: &mut StdRng) -> bool {
        match self {
            LiarPolicy::Honest => truthful,
            LiarPolicy::AlwaysLie => !truthful,
            LiarPolicy::CoverFor { accomplices } => {
                if accomplices.contains(&suspect) {
                    // Protect the accomplice: claim its links are fine.
                    true
                } else {
                    truthful
                }
            }
            LiarPolicy::Probabilistic { probability } => {
                assert!((0.0..=1.0).contains(probability), "lie probability must be in [0,1]");
                if rng.random_bool(*probability) {
                    !truthful
                } else {
                    truthful
                }
            }
        }
    }

    /// Three-valued variant for witnesses that may honestly *abstain*
    /// (`truthful = None` — no knowledge of the contested link). Honest
    /// nodes forward the abstention; liars convert it into whatever serves
    /// them: a cover-up answers `true`, an inverter asserts the opposite of
    /// the most likely truth (`false` knowledge ⇒ claim `true`).
    ///
    /// `rng` may be `None` when [`LiarPolicy::draws_rng`] is `false`; the
    /// caller keeps its deterministic RNG untouched for rng-free policies so
    /// the sharded engine can run the answering callback without RNG access.
    ///
    /// # Panics
    ///
    /// Panics if a probabilistic policy is asked to answer without an RNG,
    /// or carries a probability outside `[0, 1]`.
    pub fn answer_opt(
        &self,
        truthful: Option<bool>,
        suspect: NodeId,
        rng: Option<&mut StdRng>,
    ) -> Option<bool> {
        match self {
            LiarPolicy::Honest => truthful,
            LiarPolicy::AlwaysLie => Some(!truthful.unwrap_or(false)),
            LiarPolicy::CoverFor { accomplices } => {
                if accomplices.contains(&suspect) {
                    Some(true)
                } else {
                    truthful
                }
            }
            LiarPolicy::Probabilistic { probability } => {
                assert!((0.0..=1.0).contains(probability), "lie probability must be in [0,1]");
                let rng = rng.expect("probabilistic liar needs an RNG");
                if rng.random_bool(*probability) {
                    Some(!truthful.unwrap_or(false))
                } else {
                    truthful
                }
            }
        }
    }

    /// `true` for the policies whose answers consume the deterministic RNG
    /// stream. The detector consults this before touching [`rand`] state so
    /// that rng-free policies keep its receive path eligible for parallel
    /// (sharded) execution.
    pub fn draws_rng(&self) -> bool {
        matches!(self, LiarPolicy::Probabilistic { .. })
    }

    /// `true` for any policy that can produce false answers.
    pub fn is_malicious(&self) -> bool {
        !matches!(self, LiarPolicy::Honest)
            && !matches!(self, LiarPolicy::Probabilistic { probability } if *probability == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn honest_tells_the_truth() {
        let mut r = rng();
        assert!(LiarPolicy::Honest.answer(true, NodeId(1), &mut r));
        assert!(!LiarPolicy::Honest.answer(false, NodeId(1), &mut r));
        assert!(!LiarPolicy::Honest.is_malicious());
    }

    #[test]
    fn always_lie_inverts() {
        let mut r = rng();
        assert!(!LiarPolicy::AlwaysLie.answer(true, NodeId(1), &mut r));
        assert!(LiarPolicy::AlwaysLie.answer(false, NodeId(1), &mut r));
        assert!(LiarPolicy::AlwaysLie.is_malicious());
    }

    #[test]
    fn cover_for_protects_only_accomplices() {
        let policy = LiarPolicy::CoverFor { accomplices: vec![NodeId(7)] };
        let mut r = rng();
        // Covers the accomplice: false link reported as fine.
        assert!(policy.answer(false, NodeId(7), &mut r));
        // Honest about everyone else.
        assert!(!policy.answer(false, NodeId(8), &mut r));
        assert!(policy.answer(true, NodeId(8), &mut r));
        assert!(policy.is_malicious());
    }

    #[test]
    fn probabilistic_lies_at_rate() {
        let policy = LiarPolicy::Probabilistic { probability: 0.25 };
        let mut r = rng();
        let lies = (0..10_000).filter(|_| !policy.answer(true, NodeId(1), &mut r)).count();
        assert!((2200..=2800).contains(&lies), "lies={lies}");
    }

    #[test]
    fn zero_probability_is_honest() {
        let policy = LiarPolicy::Probabilistic { probability: 0.0 };
        assert!(!policy.is_malicious());
        let mut r = rng();
        assert!(policy.answer(true, NodeId(1), &mut r));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bogus_probability_panics() {
        let mut r = rng();
        let _ = LiarPolicy::Probabilistic { probability: 2.0 }.answer(true, NodeId(1), &mut r);
    }

    #[test]
    fn answer_opt_honest_preserves_abstention() {
        let mut r = rng();
        assert_eq!(LiarPolicy::Honest.answer_opt(None, NodeId(1), Some(&mut r)), None);
        assert_eq!(LiarPolicy::Honest.answer_opt(Some(false), NodeId(1), None), Some(false));
    }

    #[test]
    fn answer_opt_cover_overrides_abstention_for_accomplice() {
        let policy = LiarPolicy::CoverFor { accomplices: vec![NodeId(7)] };
        let mut r = rng();
        assert_eq!(policy.answer_opt(None, NodeId(7), Some(&mut r)), Some(true));
        assert_eq!(policy.answer_opt(Some(false), NodeId(7), None), Some(true));
        // Still honest about strangers, including their abstentions.
        assert_eq!(policy.answer_opt(None, NodeId(8), None), None);
    }

    #[test]
    fn answer_opt_always_lie_asserts() {
        let mut r = rng();
        assert_eq!(LiarPolicy::AlwaysLie.answer_opt(None, NodeId(1), Some(&mut r)), Some(true));
        assert_eq!(LiarPolicy::AlwaysLie.answer_opt(Some(true), NodeId(1), None), Some(false));
    }
}
