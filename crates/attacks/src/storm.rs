//! The broadcast-storm attack (§II "Active forge"): flooding forged control
//! messages to exhaust resources, optionally masquerading as a victim.

use bytes::Bytes;
use rand::RngExt;
use trustlink_olsr::message::{Message, MessageBody, Packet, TcMessage};
use trustlink_olsr::node::{OlsrNode, TIMER_USER_BASE};
use trustlink_olsr::types::{OlsrConfig, SequenceNumber};
use trustlink_olsr::wire::encode_packet;
use trustlink_sim::{Application, Context, NodeId, SimDuration, TimerToken};

const TIMER_STORM: TimerToken = TimerToken(TIMER_USER_BASE);

/// A node that behaves as a normal OLSR router *and* floods forged TCs.
///
/// Forged TCs carry fresh sequence numbers and random selector sets; when
/// `masquerade_as` is set the originator field is spoofed so the storm is
/// attributed to the victim (the paper notes storms are "typically coupled
/// with a masquerade").
pub struct BroadcastStorm {
    inner: OlsrNode,
    /// Delay between bursts.
    pub interval: SimDuration,
    /// Forged messages per burst.
    pub burst: usize,
    /// Spoofed originator (`None` = attack under own identity).
    pub masquerade_as: Option<NodeId>,
    seq: u16,
    forged_total: u64,
}

impl BroadcastStorm {
    /// Builds a storming node.
    pub fn new(
        config: OlsrConfig,
        interval: SimDuration,
        burst: usize,
        masquerade_as: Option<NodeId>,
    ) -> Self {
        assert!(burst > 0, "burst must be positive");
        BroadcastStorm {
            inner: OlsrNode::new(config),
            interval,
            burst,
            masquerade_as,
            seq: 10_000,
            forged_total: 0,
        }
    }

    /// The inner faithful OLSR node (for inspection).
    pub fn olsr(&self) -> &OlsrNode {
        &self.inner
    }

    /// Total forged messages emitted so far.
    pub fn forged_total(&self) -> u64 {
        self.forged_total
    }

    fn emit_burst(&mut self, ctx: &mut Context<'_>) {
        let originator = self.masquerade_as.unwrap_or(ctx.id());
        for _ in 0..self.burst {
            self.seq = self.seq.wrapping_add(1);
            // Random bogus selector set: 1-3 random low addresses.
            let n = ctx.rng().random_range(1..=3usize);
            let advertised: Vec<NodeId> =
                (0..n).map(|_| NodeId(ctx.rng().random_range(0..16u32))).collect();
            let msg = Message {
                vtime: SimDuration::from_secs(15),
                originator,
                ttl: 255,
                hop_count: 0,
                seq: SequenceNumber(self.seq),
                body: MessageBody::Tc(TcMessage { ansn: self.seq, advertised }),
            };
            let packet = Packet { seq: SequenceNumber(self.seq), messages: vec![msg] };
            let bytes: Bytes = encode_packet(&packet);
            ctx.broadcast(bytes);
            self.forged_total += 1;
        }
    }
}

impl Application for BroadcastStorm {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.inner.on_start(ctx);
        ctx.set_timer(self.interval, TIMER_STORM);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if timer == TIMER_STORM {
            self.emit_burst(ctx);
            ctx.set_timer(self.interval, TIMER_STORM);
        } else {
            self.inner.on_timer(ctx, timer);
        }
    }

    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        self.inner.on_receive(ctx, from, payload);
    }
}

impl std::fmt::Debug for BroadcastStorm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BroadcastStorm")
            .field("interval", &self.interval)
            .field("burst", &self.burst)
            .field("masquerade_as", &self.masquerade_as)
            .field("forged_total", &self.forged_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_sim::prelude::*;

    #[test]
    fn storm_floods_the_channel() {
        let mut sim = SimulatorBuilder::new(9).radio(RadioConfig::unit_disk(200.0)).build();
        let victim =
            sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(0.0, 0.0));
        let attacker = sim.add_node(
            Box::new(BroadcastStorm::new(
                OlsrConfig::fast(),
                SimDuration::from_millis(100),
                5,
                None,
            )),
            Position::new(100.0, 0.0),
        );
        sim.run_for(SimDuration::from_secs(10));
        let storm = sim.app_as::<BroadcastStorm>(attacker).unwrap();
        assert!(storm.forged_total() >= 450, "forged={}", storm.forged_total());
        // The victim's received-frame count dwarfs what 10 s of normal OLSR
        // (hello every 0.5 s + TC every 1.25 s) would produce.
        let received = sim.stats().node(victim).received;
        assert!(received > 400, "victim received only {received} frames");
    }

    #[test]
    fn masquerade_spoofs_originator() {
        let mut sim = SimulatorBuilder::new(10).radio(RadioConfig::unit_disk(200.0)).build();
        let observer =
            sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(0.0, 0.0));
        let _attacker = sim.add_node(
            Box::new(BroadcastStorm::new(
                OlsrConfig::fast(),
                SimDuration::from_millis(200),
                1,
                Some(NodeId(42)),
            )),
            Position::new(100.0, 0.0),
        );
        sim.run_for(SimDuration::from_secs(5));
        // The observer's log attributes the forged TCs to N42.
        let spoofed = sim.log(observer).lines().filter(|l| l.starts_with("TC_RX orig=N42")).count();
        assert!(spoofed > 10, "only {spoofed} spoofed TCs observed");
    }

    #[test]
    #[should_panic(expected = "burst")]
    fn zero_burst_rejected() {
        let _ = BroadcastStorm::new(OlsrConfig::fast(), SimDuration::from_secs(1), 0, None);
    }
}
