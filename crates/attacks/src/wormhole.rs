//! The wormhole attack (§II): two colluding nodes tunnel frames between
//! distant regions over an out-of-band channel, so each region hears the
//! other's control traffic as if it were local — "one recording the message
//! from one region so as to replay it in another region".
//!
//! The out-of-band channel is modelled as a pair of shared queues
//! (`Arc<Mutex<…>>` — applications must be `Send` so the sharded engine can
//! ship them between worker threads, and wormholes never declare themselves
//! [`Application::rng_free`], so their callbacks always run on the serial
//! replay path in a deterministic order); each
//! endpoint drains its inbound queue on a fast timer and re-broadcasts the
//! tunnelled frames unchanged, keeping the original originators — exactly
//! the "invisible" variant the paper describes.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use trustlink_olsr::node::{OlsrNode, TIMER_USER_BASE};
use trustlink_olsr::types::OlsrConfig;
use trustlink_sim::{Application, Context, NodeId, SimDuration, TimerToken};

const TIMER_TUNNEL_POLL: TimerToken = TimerToken(TIMER_USER_BASE + 500);

type Tunnel = Arc<Mutex<VecDeque<Bytes>>>;

/// One end of a wormhole. Create both ends with [`wormhole_pair`].
pub struct WormholeEndpoint {
    inner: OlsrNode,
    to_peer: Tunnel,
    from_peer: Tunnel,
    /// How often the inbound tunnel is drained.
    pub poll_interval: SimDuration,
    tunneled_in: u64,
    tunneled_out: u64,
}

/// Builds the two colluding endpoints of a wormhole. Add each to the
/// simulator at its (distant) position.
pub fn wormhole_pair(
    config_a: OlsrConfig,
    config_b: OlsrConfig,
    poll_interval: SimDuration,
) -> (WormholeEndpoint, WormholeEndpoint) {
    let ab: Tunnel = Arc::new(Mutex::new(VecDeque::new()));
    let ba: Tunnel = Arc::new(Mutex::new(VecDeque::new()));
    let a = WormholeEndpoint {
        inner: OlsrNode::new(config_a),
        to_peer: Arc::clone(&ab),
        from_peer: Arc::clone(&ba),
        poll_interval,
        tunneled_in: 0,
        tunneled_out: 0,
    };
    let b = WormholeEndpoint {
        inner: OlsrNode::new(config_b),
        to_peer: ba,
        from_peer: ab,
        poll_interval,
        tunneled_in: 0,
        tunneled_out: 0,
    };
    (a, b)
}

impl WormholeEndpoint {
    /// The inner faithful OLSR node.
    pub fn olsr(&self) -> &OlsrNode {
        &self.inner
    }

    /// Frames re-broadcast from the peer's region.
    pub fn tunneled_in(&self) -> u64 {
        self.tunneled_in
    }

    /// Frames captured and shipped to the peer.
    pub fn tunneled_out(&self) -> u64 {
        self.tunneled_out
    }
}

impl Application for WormholeEndpoint {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.inner.on_start(ctx);
        ctx.set_timer(self.poll_interval, TIMER_TUNNEL_POLL);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if timer == TIMER_TUNNEL_POLL {
            loop {
                let frame = self.from_peer.lock().unwrap().pop_front();
                match frame {
                    Some(payload) => {
                        ctx.broadcast(payload);
                        self.tunneled_in += 1;
                    }
                    None => break,
                }
            }
            ctx.set_timer(self.poll_interval, TIMER_TUNNEL_POLL);
        } else {
            self.inner.on_timer(ctx, timer);
        }
    }

    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        self.to_peer.lock().unwrap().push_back(payload.clone());
        self.tunneled_out += 1;
        self.inner.on_receive(ctx, from, payload);
    }
}

impl std::fmt::Debug for WormholeEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WormholeEndpoint")
            .field("tunneled_in", &self.tunneled_in)
            .field("tunneled_out", &self.tunneled_out)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_sim::prelude::*;

    #[test]
    fn wormhole_makes_distant_nodes_appear_adjacent() {
        // Two clusters far apart; a wormhole endpoint sits in each.
        let mut sim = SimulatorBuilder::new(31)
            .radio(RadioConfig::unit_disk(150.0))
            .arena(Arena::new(10_000.0, 1_000.0))
            .build();
        let alice =
            sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(0.0, 0.0));
        let (wa, wb) =
            wormhole_pair(OlsrConfig::fast(), OlsrConfig::fast(), SimDuration::from_millis(50));
        let _end_a = sim.add_node(Box::new(wa), Position::new(100.0, 0.0));
        let _end_b = sim.add_node(Box::new(wb), Position::new(5_000.0, 0.0));
        let bob =
            sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(5_100.0, 0.0));
        sim.run_for(SimDuration::from_secs(15));
        // Bob hears Alice's HELLOs through the tunnel: from his point of
        // view Alice looks like a (one-way) radio neighbor thousands of
        // metres away.
        let bob_heard_alice =
            sim.log(bob).lines().any(|l| l.starts_with(&format!("HELLO_RX from={alice}")));
        assert!(bob_heard_alice, "wormhole did not tunnel Alice's HELLOs to Bob");
        let end_a = sim.app_as::<WormholeEndpoint>(NodeId(1)).unwrap();
        assert!(end_a.tunneled_out() > 0);
        let end_b = sim.app_as::<WormholeEndpoint>(NodeId(2)).unwrap();
        assert!(end_b.tunneled_in() > 0);
    }

    #[test]
    fn tunnel_queues_are_symmetric() {
        let (a, b) =
            wormhole_pair(OlsrConfig::fast(), OlsrConfig::fast(), SimDuration::from_millis(50));
        // a.to_peer is b.from_peer and vice versa.
        a.to_peer.lock().unwrap().push_back(Bytes::from_static(b"x"));
        assert_eq!(b.from_peer.lock().unwrap().len(), 1);
        b.to_peer.lock().unwrap().push_back(Bytes::from_static(b"y"));
        assert_eq!(a.from_peer.lock().unwrap().len(), 1);
    }
}
