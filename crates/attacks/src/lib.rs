//! # trustlink-attacks
//!
//! Adversarial node behaviours for the `trustlink` reproduction of
//! *"Trust-enabled Link Spoofing Detection in MANET"* — every attack class
//! the paper's §II taxonomy describes, implemented against the
//! `trustlink-olsr` substrate:
//!
//! | Paper class | Attack | Module |
//! |-------------|--------|--------|
//! | Active forge | **link spoofing** (the paper's focus; Expressions 1–3) | [`spoof`] |
//! | Active forge | broadcast storm (with masquerade) | [`storm`] |
//! | Active forge | identity spoofing | [`identity`] |
//! | Active forge | willingness manipulation | [`modify`] |
//! | Drop | black hole / gray hole | [`drop`] |
//! | Modify & forward | sequence-number inflation, TC tampering | [`modify`] |
//! | Modify & forward | replay | [`replay`] |
//! | Modify & forward | wormhole (colluding pair) | [`wormhole`] |
//! | Evaluation adversary | investigation liars (§V) | [`liar`] |
//!
//! Attacks come in two shapes:
//!
//! * **hook sets** ([`trustlink_olsr::hooks::OlsrHooks`] implementations)
//!   that parasitize an otherwise faithful [`trustlink_olsr::OlsrNode`] —
//!   link spoofing, dropping, tampering, willingness lies;
//! * **wrapper applications** that own a faithful node and add forged
//!   traffic around it — storm, identity spoofing, replay, wormhole.
//!
//! ```
//! use trustlink_attacks::prelude::*;
//! use trustlink_olsr::OlsrConfig;
//! use trustlink_sim::NodeId;
//!
//! // The paper's canonical attacker: advertise a phantom neighbor so the
//! // attacker is guaranteed MPR selection (Expression 1).
//! let attacker = link_spoofing_node(
//!     OlsrConfig::fast(),
//!     LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent {
//!         fake: vec![NodeId(99)],
//!     }),
//! );
//! # let _ = attacker;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drop;
pub mod identity;
pub mod liar;
pub mod modify;
pub mod replay;
pub mod spoof;
pub mod storm;
pub mod wormhole;

/// Glob-import of every attack type.
pub mod prelude {
    pub use crate::drop::{drop_attack_node, DropAttack, DropAttackNode, DropMode, DropScope};
    pub use crate::identity::IdentitySpoofer;
    pub use crate::liar::LiarPolicy;
    pub use crate::modify::{
        sequence_inflation_node, tc_tamper_node, willingness_node, SequenceInflation, TcTamper,
        WillingnessManipulation,
    };
    pub use crate::replay::ReplayAttacker;
    pub use crate::spoof::{link_spoofing_node, LinkSpoofing, LinkSpoofingNode, SpoofVariant};
    pub use crate::storm::BroadcastStorm;
    pub use crate::wormhole::{wormhole_pair, WormholeEndpoint};
}

pub use drop::{drop_attack_node, DropAttack, DropMode, DropScope};
pub use liar::LiarPolicy;
pub use spoof::{link_spoofing_node, LinkSpoofing, LinkSpoofingNode, SpoofVariant};
