//! Identity spoofing (§II): forging control messages under another node's
//! main address, "intended to create conflicting route(s) and loop(s)".

use bytes::Bytes;
use rand::RngExt;
use trustlink_olsr::message::{
    HelloMessage, LinkCode, LinkGroup, LinkType, Message, MessageBody, NeighborType, Packet,
};
use trustlink_olsr::node::{OlsrNode, TIMER_USER_BASE};
use trustlink_olsr::types::{OlsrConfig, SequenceNumber, Willingness};
use trustlink_olsr::wire::encode_packet;
use trustlink_sim::{Application, Context, NodeId, SimDuration, TimerToken};

const TIMER_SPOOF: TimerToken = TimerToken(TIMER_USER_BASE + 200);

/// A node that periodically emits HELLOs forged in a victim's name,
/// claiming an arbitrary symmetric neighborhood.
pub struct IdentitySpoofer {
    inner: OlsrNode,
    /// The impersonated node.
    pub victim: NodeId,
    /// The neighborhood claimed on the victim's behalf.
    pub claimed_neighbors: Vec<NodeId>,
    /// Emission period for forged HELLOs.
    pub interval: SimDuration,
    seq: u16,
    forged_total: u64,
}

impl IdentitySpoofer {
    /// Builds an identity spoofer.
    pub fn new(
        config: OlsrConfig,
        victim: NodeId,
        claimed_neighbors: Vec<NodeId>,
        interval: SimDuration,
    ) -> Self {
        IdentitySpoofer {
            inner: OlsrNode::new(config),
            victim,
            claimed_neighbors,
            interval,
            seq: 30_000,
            forged_total: 0,
        }
    }

    /// The inner faithful OLSR node.
    pub fn olsr(&self) -> &OlsrNode {
        &self.inner
    }

    /// Forged HELLOs emitted so far.
    pub fn forged_total(&self) -> u64 {
        self.forged_total
    }

    fn emit_forged_hello(&mut self, ctx: &mut Context<'_>) {
        self.seq = self.seq.wrapping_add(ctx.rng().random_range(1..4u16));
        let hello = HelloMessage {
            willingness: Willingness::High,
            groups: vec![LinkGroup {
                code: LinkCode::new(LinkType::Sym, NeighborType::Sym),
                addrs: self.claimed_neighbors.clone(),
            }],
        };
        let msg = Message {
            vtime: SimDuration::from_secs(6),
            originator: self.victim,
            ttl: 1,
            hop_count: 0,
            seq: SequenceNumber(self.seq),
            body: MessageBody::Hello(hello),
        };
        let packet = Packet { seq: SequenceNumber(self.seq), messages: vec![msg] };
        let bytes: Bytes = encode_packet(&packet);
        ctx.broadcast(bytes);
        self.forged_total += 1;
    }
}

impl Application for IdentitySpoofer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.inner.on_start(ctx);
        ctx.set_timer(self.interval, TIMER_SPOOF);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if timer == TIMER_SPOOF {
            self.emit_forged_hello(ctx);
            ctx.set_timer(self.interval, TIMER_SPOOF);
        } else {
            self.inner.on_timer(ctx, timer);
        }
    }

    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        self.inner.on_receive(ctx, from, payload);
    }
}

impl std::fmt::Debug for IdentitySpoofer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdentitySpoofer")
            .field("victim", &self.victim)
            .field("forged_total", &self.forged_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_sim::prelude::*;

    #[test]
    fn observer_attributes_forged_hellos_to_victim() {
        let mut sim = SimulatorBuilder::new(41).radio(RadioConfig::unit_disk(200.0)).build();
        let observer =
            sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(0.0, 0.0));
        // The forged neighborhood must claim the observer itself: receivers
        // only record 2-hop state from HELLOs that prove a live symmetric
        // link (RFC 3626 §8.2.1), so a credible forgery lists its audience.
        let _spoofer = sim.add_node(
            Box::new(IdentitySpoofer::new(
                OlsrConfig::fast(),
                NodeId(42),
                vec![NodeId(0), NodeId(7), NodeId(8)],
                SimDuration::from_millis(500),
            )),
            Position::new(100.0, 0.0),
        );
        sim.run_for(SimDuration::from_secs(5));
        let forged_seen =
            sim.log(observer).lines().filter(|l| l.starts_with("HELLO_RX from=N42")).count();
        assert!(forged_seen >= 5, "observer saw only {forged_seen} forged HELLOs");
        // The phantom neighborhood contaminated the observer's 2-hop view.
        let obs = sim.app_as::<OlsrNode>(observer).unwrap();
        let two_hop = obs.two_hop_set().two_hop_addrs(sim.now(), observer, &[]);
        assert!(two_hop.contains(&NodeId(7)), "2-hop view: {two_hop:?}");
    }
}
