//! The replay attack (§II "Modify and forward"): capture control traffic
//! and re-emit it later, poisoning routing tables with obsolete
//! information while keeping the original identification fields.

use bytes::Bytes;
use trustlink_olsr::node::{OlsrNode, TIMER_USER_BASE};
use trustlink_olsr::types::OlsrConfig;
use trustlink_sim::{Application, Context, NodeId, SimDuration, TimerToken};

const TIMER_REPLAY_BASE: u64 = TIMER_USER_BASE + 100;

/// A node that behaves as a normal OLSR router while recording every frame
/// it hears and re-broadcasting it after `delay`.
pub struct ReplayAttacker {
    inner: OlsrNode,
    /// How long captured frames are held before re-emission.
    pub delay: SimDuration,
    /// Cap on simultaneously held frames (oldest dropped beyond it).
    pub capacity: usize,
    held: Vec<(u64, Bytes)>,
    next_token: u64,
    replayed_total: u64,
}

impl ReplayAttacker {
    /// Builds a replay attacker.
    pub fn new(config: OlsrConfig, delay: SimDuration, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ReplayAttacker {
            inner: OlsrNode::new(config),
            delay,
            capacity,
            held: Vec::new(),
            next_token: TIMER_REPLAY_BASE,
            replayed_total: 0,
        }
    }

    /// The inner faithful OLSR node.
    pub fn olsr(&self) -> &OlsrNode {
        &self.inner
    }

    /// Total frames replayed so far.
    pub fn replayed_total(&self) -> u64 {
        self.replayed_total
    }
}

impl Application for ReplayAttacker {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.inner.on_start(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        if timer.0 >= TIMER_REPLAY_BASE {
            if let Some(pos) = self.held.iter().position(|(t, _)| *t == timer.0) {
                let (_, payload) = self.held.remove(pos);
                ctx.broadcast(payload);
                self.replayed_total += 1;
            }
        } else {
            self.inner.on_timer(ctx, timer);
        }
    }

    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        // Record first, then let the faithful node process normally.
        if self.held.len() < self.capacity {
            self.next_token += 1;
            self.held.push((self.next_token, payload.clone()));
            ctx.set_timer(self.delay, TimerToken(self.next_token));
        }
        self.inner.on_receive(ctx, from, payload);
    }
}

impl std::fmt::Debug for ReplayAttacker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayAttacker")
            .field("delay", &self.delay)
            .field("held", &self.held.len())
            .field("replayed_total", &self.replayed_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_sim::prelude::*;

    #[test]
    fn replays_heard_traffic_after_delay() {
        let mut sim = SimulatorBuilder::new(21).radio(RadioConfig::unit_disk(200.0)).build();
        let _a = sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(0.0, 0.0));
        let attacker = sim.add_node(
            Box::new(ReplayAttacker::new(OlsrConfig::fast(), SimDuration::from_secs(2), 64)),
            Position::new(100.0, 0.0),
        );
        sim.run_for(SimDuration::from_secs(10));
        let replayer = sim.app_as::<ReplayAttacker>(attacker).unwrap();
        assert!(replayer.replayed_total() > 0, "nothing was replayed");
        // The replayed frames really hit the air: the attacker transmits
        // far more than its own hello/TC schedule would.
        let sent = sim.stats().node(attacker).broadcasts_sent;
        assert!(sent > replayer.replayed_total(), "sent={sent}");
    }

    #[test]
    fn capacity_bounds_memory() {
        let mut sim = SimulatorBuilder::new(22).radio(RadioConfig::unit_disk(200.0)).build();
        let _a = sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(0.0, 0.0));
        // Tiny capacity with a huge delay: held never exceeds 2.
        let attacker = sim.add_node(
            Box::new(ReplayAttacker::new(OlsrConfig::fast(), SimDuration::from_secs(500), 2)),
            Position::new(100.0, 0.0),
        );
        sim.run_for(SimDuration::from_secs(10));
        let replayer = sim.app_as::<ReplayAttacker>(attacker).unwrap();
        assert!(replayer.held.len() <= 2);
        assert_eq!(replayer.replayed_total(), 0); // delay not yet elapsed
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ReplayAttacker::new(OlsrConfig::fast(), SimDuration::from_secs(1), 0);
    }
}
