//! Modify-and-forward attacks and willingness manipulation (§II).
//!
//! * [`SequenceInflation`] — an intermediate bumps the sequence number of
//!   relayed messages so receivers believe it provides the freshest route
//!   (the paper's example of hijacked sequence numbers);
//! * [`TcTamper`] — a relay rewrites the advertised selector set of TCs in
//!   transit;
//! * [`WillingnessManipulation`] — a node lies about its own willingness
//!   (`WILL_ALWAYS` forces MPR selection; `WILL_NEVER` evades relay duty).

use trustlink_olsr::hooks::OlsrHooks;
use trustlink_olsr::message::{Message, MessageBody};
use trustlink_olsr::node::OlsrNode;
use trustlink_olsr::types::{OlsrConfig, SequenceNumber, Willingness};
use trustlink_sim::NodeId;

/// Inflates sequence numbers of relayed control messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceInflation {
    /// How much to add to each relayed message's sequence number.
    pub offset: u16,
    /// Messages tampered so far.
    pub tampered: u64,
}

impl SequenceInflation {
    /// Builds an inflator adding `offset` to relayed sequence numbers.
    pub fn new(offset: u16) -> Self {
        SequenceInflation { offset, tampered: 0 }
    }
}

impl OlsrHooks for SequenceInflation {
    fn on_forward(&mut self, msg: &mut Message, _from: NodeId) {
        msg.seq = SequenceNumber(msg.seq.0.wrapping_add(self.offset));
        if let MessageBody::Tc(tc) = &mut msg.body {
            tc.ansn = tc.ansn.wrapping_add(self.offset);
        }
        self.tampered += 1;
    }
}

/// Rewrites the selector set of TCs in transit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcTamper {
    /// Addresses injected into every relayed TC.
    pub inject: Vec<NodeId>,
    /// Addresses removed from every relayed TC.
    pub erase: Vec<NodeId>,
    /// Messages tampered so far.
    pub tampered: u64,
}

impl TcTamper {
    /// Builds a TC tamperer.
    pub fn new(inject: Vec<NodeId>, erase: Vec<NodeId>) -> Self {
        TcTamper { inject, erase, tampered: 0 }
    }
}

impl OlsrHooks for TcTamper {
    fn on_forward(&mut self, msg: &mut Message, _from: NodeId) {
        if let MessageBody::Tc(tc) = &mut msg.body {
            tc.advertised.retain(|a| !self.erase.contains(a));
            for &a in &self.inject {
                if !tc.advertised.contains(&a) {
                    tc.advertised.push(a);
                }
            }
            // Freshen the ANSN so the forgery supersedes the original.
            tc.ansn = tc.ansn.wrapping_add(1);
            self.tampered += 1;
        }
    }
}

/// Advertises a forged willingness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WillingnessManipulation {
    /// The willingness to claim regardless of configuration.
    pub claimed: Willingness,
}

impl OlsrHooks for WillingnessManipulation {
    fn willingness_override(&mut self) -> Option<Willingness> {
        Some(self.claimed)
    }
}

/// An OLSR node inflating relayed sequence numbers.
pub type SequenceInflationNode = OlsrNode<SequenceInflation>;
/// An OLSR node rewriting relayed TCs.
pub type TcTamperNode = OlsrNode<TcTamper>;
/// An OLSR node lying about its willingness.
pub type WillingnessNode = OlsrNode<WillingnessManipulation>;

/// Builds a sequence-inflating node.
pub fn sequence_inflation_node(config: OlsrConfig, offset: u16) -> SequenceInflationNode {
    OlsrNode::with_hooks(config, SequenceInflation::new(offset))
}

/// Builds a TC-tampering node.
pub fn tc_tamper_node(config: OlsrConfig, tamper: TcTamper) -> TcTamperNode {
    OlsrNode::with_hooks(config, tamper)
}

/// Builds a willingness-manipulating node.
pub fn willingness_node(config: OlsrConfig, claimed: Willingness) -> WillingnessNode {
    OlsrNode::with_hooks(config, WillingnessManipulation { claimed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_olsr::message::TcMessage;
    use trustlink_sim::SimDuration;

    fn tc_msg(seq: u16, ansn: u16, advertised: &[u32]) -> Message {
        Message {
            vtime: SimDuration::from_secs(15),
            originator: NodeId(5),
            ttl: 10,
            hop_count: 1,
            seq: SequenceNumber(seq),
            body: MessageBody::Tc(TcMessage {
                ansn,
                advertised: advertised.iter().map(|&a| NodeId(a)).collect(),
            }),
        }
    }

    #[test]
    fn sequence_inflation_bumps_seq_and_ansn() {
        let mut hooks = SequenceInflation::new(100);
        let mut msg = tc_msg(7, 3, &[1]);
        hooks.on_forward(&mut msg, NodeId(0));
        assert_eq!(msg.seq, SequenceNumber(107));
        match &msg.body {
            MessageBody::Tc(tc) => assert_eq!(tc.ansn, 103),
            _ => unreachable!(),
        }
        assert_eq!(hooks.tampered, 1);
    }

    #[test]
    fn sequence_inflation_wraps() {
        let mut hooks = SequenceInflation::new(10);
        let mut msg = tc_msg(u16::MAX, 0, &[]);
        hooks.on_forward(&mut msg, NodeId(0));
        assert_eq!(msg.seq, SequenceNumber(9));
    }

    #[test]
    fn tc_tamper_injects_and_erases() {
        let mut hooks = TcTamper::new(vec![NodeId(9)], vec![NodeId(1)]);
        let mut msg = tc_msg(1, 5, &[1, 2]);
        hooks.on_forward(&mut msg, NodeId(0));
        match &msg.body {
            MessageBody::Tc(tc) => {
                assert_eq!(tc.advertised, vec![NodeId(2), NodeId(9)]);
                assert_eq!(tc.ansn, 6);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn tc_tamper_ignores_non_tc() {
        let mut hooks = TcTamper::new(vec![NodeId(9)], vec![]);
        let mut msg = Message {
            body: MessageBody::Mid(trustlink_olsr::message::MidMessage { aliases: vec![] }),
            ..tc_msg(1, 1, &[])
        };
        let before = msg.clone();
        hooks.on_forward(&mut msg, NodeId(0));
        assert_eq!(msg, before);
        assert_eq!(hooks.tampered, 0);
    }

    #[test]
    fn willingness_override_applies() {
        let mut hooks = WillingnessManipulation { claimed: Willingness::Always };
        assert_eq!(hooks.willingness_override(), Some(Willingness::Always));
    }

    #[test]
    fn will_always_attacker_gets_selected_as_mpr() {
        use trustlink_sim::prelude::*;
        // A 5-node line; N2 center claims WILL_ALWAYS.
        let mut sim = SimulatorBuilder::new(5)
            .radio(RadioConfig::unit_disk(150.0))
            .arena(trustlink_sim::Arena::new(10_000.0, 1_000.0))
            .build();
        for i in 0..5u32 {
            if i == 2 {
                sim.add_node(
                    Box::new(willingness_node(OlsrConfig::fast(), Willingness::Always)),
                    Position::new(f64::from(i) * 100.0, 0.0),
                );
            } else {
                sim.add_node(
                    Box::new(OlsrNode::new(OlsrConfig::fast())),
                    Position::new(f64::from(i) * 100.0, 0.0),
                );
            }
        }
        sim.run_for(SimDuration::from_secs(15));
        // Both neighbors of N2 must have selected it (WILL_ALWAYS forces it).
        for neighbor in [NodeId(1), NodeId(3)] {
            let node = sim.app_as::<OlsrNode>(neighbor).unwrap();
            assert!(
                node.mpr_set().contains(&NodeId(2)),
                "{neighbor} did not select the WILL_ALWAYS attacker: {:?}",
                node.mpr_set()
            );
        }
    }
}
