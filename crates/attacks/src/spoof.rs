//! The link spoofing attack (§III-A of the paper).
//!
//! An attacker `I` forges its HELLOs so that the advertised symmetric
//! neighborhood `NS'_I` differs from the real one `NS_I`. The paper's three
//! options are implemented verbatim:
//!
//! * **Expression (1)** — advertise a *non-existent* node: guarantees `I`
//!   (or an accomplice) is selected as MPR, since nobody else can cover the
//!   phantom;
//! * **Expression (2)** — advertise an *existing non-neighbor*: inflates
//!   `I`'s apparent connectivity and provisions a black hole;
//! * **Expression (3)** — *omit* a real neighbor: artificially deflates
//!   connectivity on both sides.

use trustlink_olsr::hooks::OlsrHooks;
use trustlink_olsr::message::{HelloMessage, LinkCode, LinkGroup, LinkType, NeighborType};
use trustlink_olsr::node::OlsrNode;
use trustlink_olsr::types::OlsrConfig;
use trustlink_sim::{NodeId, SimTime};

/// Which of the paper's three falsification options to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpoofVariant {
    /// Expression (1): declare non-existing nodes as symmetric neighbors.
    AdvertiseNonExistent {
        /// The phantom addresses to advertise.
        fake: Vec<NodeId>,
    },
    /// Expression (2): declare existing nodes that are *not* neighbors.
    AdvertiseExisting {
        /// The victims to claim adjacency with.
        victims: Vec<NodeId>,
    },
    /// Expression (3): hide real neighbors from the HELLO.
    OmitNeighbors {
        /// The neighbors to erase.
        omitted: Vec<NodeId>,
    },
}

/// Hook set implementing link spoofing, with an activity window so
/// experiments can start and *cease* the attack (Figure 2 requires the
/// latter).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpoofing {
    /// The falsification applied.
    pub variant: SpoofVariant,
    /// Attack begins at this instant.
    pub active_from: SimTime,
    /// Attack ceases at this instant (`None` = runs forever).
    pub active_until: Option<SimTime>,
}

impl LinkSpoofing {
    /// An always-on spoofing behaviour.
    pub fn permanent(variant: SpoofVariant) -> Self {
        LinkSpoofing { variant, active_from: SimTime::ZERO, active_until: None }
    }

    /// `true` when the attack is in its active window at `now`.
    pub fn is_active(&self, now: SimTime) -> bool {
        now >= self.active_from && self.active_until.is_none_or(|end| now < end)
    }
}

impl OlsrHooks for LinkSpoofing {
    fn on_hello_tx(&mut self, hello: &mut HelloMessage, now: SimTime) {
        if !self.is_active(now) {
            return;
        }
        match &self.variant {
            SpoofVariant::AdvertiseNonExistent { fake }
            | SpoofVariant::AdvertiseExisting { victims: fake } => {
                let already: Vec<NodeId> = hello.symmetric_neighbors();
                let extra: Vec<NodeId> =
                    fake.iter().copied().filter(|f| !already.contains(f)).collect();
                if !extra.is_empty() {
                    hello.groups.push(LinkGroup {
                        code: LinkCode::new(LinkType::Sym, NeighborType::Sym),
                        addrs: extra,
                    });
                }
            }
            SpoofVariant::OmitNeighbors { omitted } => {
                for group in &mut hello.groups {
                    group.addrs.retain(|a| !omitted.contains(a));
                }
                hello.groups.retain(|g| !g.addrs.is_empty());
            }
        }
    }
}

/// An OLSR node that performs link spoofing.
pub type LinkSpoofingNode = OlsrNode<LinkSpoofing>;

/// Builds a link-spoofing node.
pub fn link_spoofing_node(config: OlsrConfig, spoofing: LinkSpoofing) -> LinkSpoofingNode {
    OlsrNode::with_hooks(config, spoofing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustlink_olsr::types::Willingness;

    fn hello_with(sym: &[u32]) -> HelloMessage {
        HelloMessage {
            willingness: Willingness::Default,
            groups: vec![LinkGroup {
                code: LinkCode::new(LinkType::Sym, NeighborType::Sym),
                addrs: sym.iter().map(|&n| NodeId(n)).collect(),
            }],
        }
    }

    #[test]
    fn advertise_non_existent_adds_phantom() {
        let mut hooks =
            LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent { fake: vec![NodeId(99)] });
        let mut hello = hello_with(&[1, 2]);
        hooks.on_hello_tx(&mut hello, SimTime::from_secs(1));
        assert_eq!(hello.symmetric_neighbors(), vec![NodeId(1), NodeId(2), NodeId(99)]);
    }

    #[test]
    fn advertise_existing_skips_real_neighbors() {
        let mut hooks = LinkSpoofing::permanent(SpoofVariant::AdvertiseExisting {
            victims: vec![NodeId(1), NodeId(5)],
        });
        let mut hello = hello_with(&[1, 2]);
        hooks.on_hello_tx(&mut hello, SimTime::from_secs(1));
        // N1 was already real; only N5 gets forged in.
        assert_eq!(hello.symmetric_neighbors(), vec![NodeId(1), NodeId(2), NodeId(5)]);
        assert_eq!(hello.groups.len(), 2);
        assert_eq!(hello.groups[1].addrs, vec![NodeId(5)]);
    }

    #[test]
    fn omit_erases_neighbor_everywhere() {
        let mut hooks =
            LinkSpoofing::permanent(SpoofVariant::OmitNeighbors { omitted: vec![NodeId(2)] });
        let mut hello = hello_with(&[1, 2]);
        hooks.on_hello_tx(&mut hello, SimTime::from_secs(1));
        assert_eq!(hello.symmetric_neighbors(), vec![NodeId(1)]);
        // Groups emptied entirely disappear.
        let mut hooks2 = LinkSpoofing::permanent(SpoofVariant::OmitNeighbors {
            omitted: vec![NodeId(1), NodeId(2)],
        });
        let mut hello2 = hello_with(&[1, 2]);
        hooks2.on_hello_tx(&mut hello2, SimTime::from_secs(1));
        assert!(hello2.groups.is_empty());
    }

    #[test]
    fn activity_window_respected() {
        let mut hooks = LinkSpoofing {
            variant: SpoofVariant::AdvertiseNonExistent { fake: vec![NodeId(99)] },
            active_from: SimTime::from_secs(10),
            active_until: Some(SimTime::from_secs(20)),
        };
        assert!(!hooks.is_active(SimTime::from_secs(5)));
        assert!(hooks.is_active(SimTime::from_secs(15)));
        assert!(!hooks.is_active(SimTime::from_secs(20)));

        let mut hello = hello_with(&[1]);
        hooks.on_hello_tx(&mut hello, SimTime::from_secs(5));
        assert_eq!(hello.symmetric_neighbors(), vec![NodeId(1)]); // untouched
        hooks.on_hello_tx(&mut hello, SimTime::from_secs(15));
        assert!(hello.symmetric_neighbors().contains(&NodeId(99)));
    }

    #[test]
    fn spoofed_hello_end_to_end() {
        // The attacker's forged neighbor propagates into a victim's 2-hop set.
        use trustlink_sim::prelude::*;
        let mut sim = SimulatorBuilder::new(3).radio(RadioConfig::unit_disk(150.0)).build();
        let _victim =
            sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(0.0, 0.0));
        let attacker = sim.add_node(
            Box::new(link_spoofing_node(
                OlsrConfig::fast(),
                LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent {
                    fake: vec![NodeId(77)],
                }),
            )),
            Position::new(100.0, 0.0),
        );
        sim.run_for(SimDuration::from_secs(10));
        let victim_node = sim.app_as::<OlsrNode>(NodeId(0)).unwrap();
        let two_hop = victim_node.two_hop_set().two_hop_addrs(
            sim.now(),
            NodeId(0),
            &victim_node.symmetric_neighbors(sim.now()),
        );
        assert!(
            two_hop.contains(&NodeId(77)),
            "phantom N77 should appear as a 2-hop neighbor via the attacker, got {two_hop:?}"
        );
        // And the attacker becomes the victim's MPR (Expression (1)).
        assert!(victim_node.mpr_set().contains(&attacker));
    }
}
