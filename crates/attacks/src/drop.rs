//! Drop attacks: black hole and gray hole (§II "Drop attack").
//!
//! A drop attacker accepts its MPR duties but silently discards traffic it
//! should relay — every message (black hole) or a random fraction
//! (gray hole, "selective dropping").

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use trustlink_olsr::hooks::OlsrHooks;
use trustlink_olsr::message::{DataMessage, Message};
use trustlink_olsr::node::OlsrNode;
use trustlink_olsr::types::OlsrConfig;
use trustlink_sim::NodeId;

/// How aggressively traffic is dropped.
#[derive(Debug, Clone, PartialEq)]
pub enum DropMode {
    /// Drop everything.
    BlackHole,
    /// Drop each relayable message independently with this probability.
    GrayHole {
        /// Drop probability in `[0, 1]`.
        probability: f64,
    },
}

/// Which plane the dropping applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropScope {
    /// Flooded control messages only (TC/MID/HNA).
    ControlOnly,
    /// Unicast data only.
    DataOnly,
    /// Both planes.
    All,
}

/// Hook set implementing the drop attack.
#[derive(Debug)]
pub struct DropAttack {
    /// Aggressiveness.
    pub mode: DropMode,
    /// Targeted plane.
    pub scope: DropScope,
    rng: StdRng,
    /// Messages swallowed so far (for assertions and reports).
    pub dropped: u64,
}

impl DropAttack {
    /// Builds a drop attack; `seed` makes gray-hole decisions reproducible.
    pub fn new(mode: DropMode, scope: DropScope, seed: u64) -> Self {
        if let DropMode::GrayHole { probability } = &mode {
            assert!((0.0..=1.0).contains(probability), "drop probability must be in [0,1]");
        }
        DropAttack { mode, scope, rng: StdRng::seed_from_u64(seed), dropped: 0 }
    }

    fn should_drop(&mut self) -> bool {
        let drop = match &self.mode {
            DropMode::BlackHole => true,
            DropMode::GrayHole { probability } => self.rng.random_bool(*probability),
        };
        if drop {
            self.dropped += 1;
        }
        drop
    }
}

impl OlsrHooks for DropAttack {
    fn should_forward(&mut self, _msg: &Message, _from: NodeId) -> bool {
        match self.scope {
            DropScope::ControlOnly | DropScope::All => !self.should_drop(),
            DropScope::DataOnly => true,
        }
    }

    fn should_forward_data(&mut self, _data: &DataMessage, _from: NodeId) -> bool {
        match self.scope {
            DropScope::DataOnly | DropScope::All => !self.should_drop(),
            DropScope::ControlOnly => true,
        }
    }
}

/// An OLSR node that performs a drop attack.
pub type DropAttackNode = OlsrNode<DropAttack>;

/// Builds a dropping node.
pub fn drop_attack_node(config: OlsrConfig, attack: DropAttack) -> DropAttackNode {
    OlsrNode::with_hooks(config, attack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use trustlink_olsr::message::MessageBody;
    use trustlink_olsr::types::SequenceNumber;
    use trustlink_sim::SimDuration;

    fn dummy_msg() -> Message {
        Message {
            vtime: SimDuration::from_secs(1),
            originator: NodeId(1),
            ttl: 10,
            hop_count: 0,
            seq: SequenceNumber(1),
            body: MessageBody::Tc(trustlink_olsr::message::TcMessage {
                ansn: 0,
                advertised: vec![],
            }),
        }
    }

    fn dummy_data() -> DataMessage {
        DataMessage { src: NodeId(1), dst: NodeId(2), avoid: None, payload: Bytes::new() }
    }

    #[test]
    fn black_hole_drops_everything() {
        let mut attack = DropAttack::new(DropMode::BlackHole, DropScope::All, 1);
        for _ in 0..10 {
            assert!(!attack.should_forward(&dummy_msg(), NodeId(0)));
            assert!(!attack.should_forward_data(&dummy_data(), NodeId(0)));
        }
        assert_eq!(attack.dropped, 20);
    }

    #[test]
    fn scope_restricts_plane() {
        let mut control = DropAttack::new(DropMode::BlackHole, DropScope::ControlOnly, 1);
        assert!(!control.should_forward(&dummy_msg(), NodeId(0)));
        assert!(control.should_forward_data(&dummy_data(), NodeId(0)));

        let mut data = DropAttack::new(DropMode::BlackHole, DropScope::DataOnly, 1);
        assert!(data.should_forward(&dummy_msg(), NodeId(0)));
        assert!(!data.should_forward_data(&dummy_data(), NodeId(0)));
    }

    #[test]
    fn gray_hole_drops_fractionally() {
        let mut attack =
            DropAttack::new(DropMode::GrayHole { probability: 0.5 }, DropScope::All, 42);
        let forwarded =
            (0..10_000).filter(|_| attack.should_forward(&dummy_msg(), NodeId(0))).count();
        assert!((4300..=5700).contains(&forwarded), "forwarded={forwarded}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bogus_probability_rejected() {
        let _ = DropAttack::new(DropMode::GrayHole { probability: 1.5 }, DropScope::All, 1);
    }

    #[test]
    fn gray_hole_deterministic_per_seed() {
        let run = |seed| {
            let mut a =
                DropAttack::new(DropMode::GrayHole { probability: 0.3 }, DropScope::All, seed);
            (0..100).map(|_| a.should_forward(&dummy_msg(), NodeId(0))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
