//! Core protocol types: sequence numbers, willingness, configuration.

use std::fmt;

use trustlink_sim::{SimDuration, SimTime};

/// A 16-bit wrapping message/packet sequence number with the comparison
/// rule of RFC 3626 §19:
///
/// > S1 > S2 iff (S1 > S2 AND S1 - S2 ≤ MAXVALUE/2)
/// >          or (S2 > S1 AND S2 - S1 > MAXVALUE/2)
///
/// ```
/// use trustlink_olsr::types::SequenceNumber;
/// let s = SequenceNumber(65535);
/// assert!(s.next().is_newer_than(s)); // wraps around and stays "newer"
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SequenceNumber(pub u16);

impl SequenceNumber {
    /// The successor, wrapping at 2^16.
    #[must_use]
    pub fn next(self) -> SequenceNumber {
        SequenceNumber(self.0.wrapping_add(1))
    }

    /// RFC 3626 §19 "newer than" comparison (a strict partial order on the
    /// circle; antisymmetric except at the antipode).
    pub fn is_newer_than(self, other: SequenceNumber) -> bool {
        let (s1, s2) = (self.0, other.0);
        const HALF: u16 = u16::MAX / 2;
        (s1 > s2 && s1 - s2 <= HALF) || (s2 > s1 && s2 - s1 > HALF)
    }
}

impl fmt::Display for SequenceNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

// Willingness moved down into the simulator's record vocabulary (HELLO
// reception records carry it); re-exported here to keep the historical
// `trustlink_olsr::types::Willingness` path working.
pub use trustlink_sim::record::Willingness;

/// How much a node advertises in its TCs (RFC 3626 §15.1 TC_REDUNDANCY).
///
/// Richer advertisement yields a denser topology set at every node, which
/// gives the paper's investigation more alternative paths around a
/// suspicious MPR — one of the ablation axes in `trustlink-bench`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TcRedundancy {
    /// Advertise the MPR selector set only (TC_REDUNDANCY = 0, default).
    #[default]
    MprSelectors,
    /// Advertise MPR selectors plus the node's own MPR set
    /// (TC_REDUNDANCY = 1).
    SelectorsAndMprs,
    /// Advertise the full symmetric neighbor set (TC_REDUNDANCY = 2).
    FullNeighborSet,
}

/// How a node schedules the expensive parts of state maintenance (expiry
/// sweeps, MPR selection, routing calculation) relative to the packets
/// that invalidate them.
///
/// Both modes take every externally observable decision — HELLO/TC
/// content, data-plane next hops, flood forwarding — from state refreshed
/// *at the moment of the decision*, so for a given `(seed, configuration)`
/// the two modes transmit byte-identical frames and reach identical
/// routing tables, MPR sets and detection verdicts. They differ only in
/// when the *bookkeeping* runs, which shifts the timestamps of the
/// recompute-emitted audit-log lines (`LINK_LOST`, `NBR_ADD`/`NBR_LOST`,
/// `2HOP_LOST`, `MPR_SELECTOR_LOST` on sweep, `MPR_SET`, `ROUTE_*`) —
/// never their per-analysis-batch content. `tests/recompute_equivalence.rs`
/// pins this contract; [`RecomputeMode::Eager`] is kept as the oracle the
/// same way `ScanMode::Linear` backs the spatial grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecomputeMode {
    /// Change-aware and debounced (the default): receptions only mark
    /// per-domain change flags; a short coalescing timer — plus the next
    /// emission, data-plane use or analysis pass, whichever comes first —
    /// folds any burst of invalidations into one recomputation.
    #[default]
    Incremental,
    /// Recompute after every state-changing packet — the pre-incremental
    /// *cadence*, kept as the reference oracle for equivalence testing
    /// and the baseline for scaling benchmarks. Note this is scheduling
    /// only: the eager path shares the pipeline's change-gated internals
    /// and allocation-free scratch, so it is somewhat faster than the
    /// original per-packet code it stands in for, and benchmarks against
    /// it isolate the scheduling difference (conservatively).
    Eager,
}

/// One ring of a fisheye TC schedule: emissions landing in this ring are
/// scoped to `ttl` hops and happen every `every`-th TC opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FisheyeRing {
    /// Emission TTL: the flood dies `ttl` hops from the originator.
    pub ttl: u8,
    /// Emit into this ring every `every`-th TC emission (1 = every time).
    pub every: u32,
}

/// A validated fisheye ring table, innermost ring first.
///
/// The schedule works on a per-node emission counter `k` (1, 2, 3, …):
/// at emission `k` the node floods with the TTL of the *outermost* ring
/// whose `every` divides `k`. With the default table
/// `[(ttl 2, every 1), (ttl 8, every 2), (ttl 255, every 4)]` the
/// sequence of scopes is `2, 8, 2, 255, 2, 8, 2, 255, …`: the 2-hop
/// neighborhood hears every TC, the 8-hop ring every other one, and the
/// whole network every fourth. Each emission advertises a validity of
/// `topology_hold_time × every`, so a node that only ever hears ring-`r`
/// TCs holds the tuples long enough to bridge the gap to the next
/// emission that reaches it — distant topology refreshes slowly and ages
/// slowly instead of flapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FisheyeRings {
    rings: Vec<FisheyeRing>,
}

impl FisheyeRings {
    /// Builds a ring table from `(ttl, every)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when the table is empty, a TTL is zero, a stride is zero, or
    /// TTLs are not strictly ascending (inner rings must be tighter).
    pub fn new(rings: impl IntoIterator<Item = (u8, u32)>) -> Self {
        let rings: Vec<FisheyeRing> =
            rings.into_iter().map(|(ttl, every)| FisheyeRing { ttl, every }).collect();
        assert!(!rings.is_empty(), "fisheye ring table must not be empty");
        for r in &rings {
            assert!(r.ttl >= 1, "fisheye ring TTL must be at least 1");
            assert!(r.every >= 1, "fisheye ring stride must be at least 1");
        }
        assert!(
            rings.windows(2).all(|w| w[0].ttl < w[1].ttl),
            "fisheye ring TTLs must be strictly ascending"
        );
        FisheyeRings { rings }
    }

    /// A single unbounded ring emitted every interval: schedules exactly
    /// like [`FloodScope::Classic`] (the byte-identity configuration the
    /// equivalence suite pins).
    pub fn single_unbounded(ttl: u8) -> Self {
        FisheyeRings::new([(ttl, 1)])
    }

    /// The rings, innermost first.
    pub fn rings(&self) -> &[FisheyeRing] {
        &self.rings
    }

    /// Number of rings.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// `true` when the table has no rings (never: the constructor forbids
    /// it; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// The ring used for emission number `k` (1-based): the outermost ring
    /// whose stride divides `k`, or `None` when no ring is due (possible
    /// only when no ring has stride 1).
    pub fn ring_for_emission(&self, k: u64) -> Option<(usize, FisheyeRing)> {
        self.rings
            .iter()
            .enumerate()
            .rfind(|(_, r)| k.is_multiple_of(u64::from(r.every)))
            .map(|(i, r)| (i, *r))
    }

    /// Worst-case number of TC opportunities between emissions that reach
    /// a 1-hop neighbor. Every ring reaches 1 hop (TTL ≥ 1), and among
    /// the slots where *some* ring fires, consecutive multiples of the
    /// smallest stride are never further apart than that stride.
    pub fn near_stride(&self) -> u32 {
        self.rings.iter().map(|r| r.every).min().expect("ring table is never empty")
    }

    /// Worst-case number of TC opportunities between emissions that reach
    /// a node `hops` away, or `None` when no ring reaches that far.
    pub fn stride_covering(&self, hops: u8) -> Option<u32> {
        self.rings.iter().filter(|r| r.ttl >= hops).map(|r| r.every).min()
    }
}

impl Default for FisheyeRings {
    /// `[(ttl 2, every 1), (ttl 8, every 2), (ttl 255, every 4)]`.
    fn default() -> Self {
        FisheyeRings::new([(2, 1), (8, 2), (255, 4)])
    }
}

/// How far a node's TCs travel (the flooding scope). Scopes TC
/// dissemination only — MID/HNA floods are rare and keep `default_ttl`.
///
/// The third oracle pair of the codebase, after `ScanMode::Linear` and
/// [`RecomputeMode::Eager`] — with one essential difference: `Fisheye` is
/// *not* byte-identical to `Classic`. It deliberately changes what is on
/// the air (fewer, scoped floods), so the pinned contract is quantitative
/// instead: detection scenarios reach the same convictions, route stretch
/// stays bounded, and forwarded TC frames drop by an asymptotic factor of
/// the outermost stride (`tests/fisheye_equivalence.rs`,
/// `BENCH_scale.json`). A `Fisheye` with a single unbounded every-interval
/// ring *is* byte-identical to `Classic`, which anchors the scoped mode to
/// the oracle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FloodScope {
    /// Every TC floods network-wide (`default_ttl`) — RFC 3626 behaviour,
    /// the equivalence oracle and benchmark baseline. O(n²) forwarded
    /// frames per TC interval.
    #[default]
    Classic,
    /// Graded per-ring TC scoping: nearby topology stays fresh while far
    /// topology refreshes (and expires) slowly. O(n·√n)-ish forwarded
    /// frames per interval with the default table.
    Fisheye(FisheyeRings),
}

impl FloodScope {
    /// Worst-case number of TC opportunities between emissions a 1-hop
    /// neighbor hears: 1 for [`FloodScope::Classic`], the smallest ring
    /// stride for [`FloodScope::Fisheye`]. The E2 TC-silence rule keys
    /// its allowance off this so scoped emission is never mistaken for
    /// misbehaviour.
    pub fn near_stride(&self) -> u32 {
        match self {
            FloodScope::Classic => 1,
            FloodScope::Fisheye(rings) => rings.near_stride(),
        }
    }

    /// Number of distinct rings the scope schedules (1 for classic).
    pub fn ring_count(&self) -> usize {
        match self {
            FloodScope::Classic => 1,
            FloodScope::Fisheye(rings) => rings.len(),
        }
    }
}

/// Protocol timing and behaviour parameters (RFC 3626 §18 defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct OlsrConfig {
    /// HELLO emission interval (default 2 s).
    pub hello_interval: SimDuration,
    /// TC emission interval (default 5 s).
    pub tc_interval: SimDuration,
    /// Validity advertised in HELLOs: NEIGHB_HOLD_TIME = 3 × hello interval.
    pub neighbor_hold_time: SimDuration,
    /// Validity advertised in TCs: TOP_HOLD_TIME = 3 × TC interval.
    pub topology_hold_time: SimDuration,
    /// How long duplicate-set entries are kept (default 30 s).
    pub duplicate_hold_time: SimDuration,
    /// This node's willingness to relay.
    pub willingness: Willingness,
    /// Interval between expiry sweeps / state refreshes (default 1 s).
    pub refresh_interval: SimDuration,
    /// Default TTL for flooded control messages.
    pub default_ttl: u8,
    /// Default TTL for unicast data.
    pub data_ttl: u8,
    /// TC advertisement richness (RFC 3626 §15.1).
    pub tc_redundancy: TcRedundancy,
    /// How recomputation is scheduled (see [`RecomputeMode`]).
    pub recompute: RecomputeMode,
    /// Coalescing window of the incremental mode's recompute timer: a
    /// burst of state-changing receptions inside one window triggers a
    /// single deferred recomputation. Ignored in eager mode.
    pub recompute_debounce: SimDuration,
    /// How far TCs flood (see [`FloodScope`]).
    pub flood_scope: FloodScope,
}

impl OlsrConfig {
    /// RFC 3626 §18 default timing.
    pub fn rfc_default() -> Self {
        let hello = SimDuration::from_secs(2);
        let tc = SimDuration::from_secs(5);
        OlsrConfig {
            hello_interval: hello,
            tc_interval: tc,
            neighbor_hold_time: hello * 3,
            topology_hold_time: tc * 3,
            duplicate_hold_time: SimDuration::from_secs(30),
            willingness: Willingness::Default,
            refresh_interval: SimDuration::from_secs(1),
            default_ttl: 255,
            data_ttl: 32,
            tc_redundancy: TcRedundancy::default(),
            recompute: RecomputeMode::default(),
            recompute_debounce: SimDuration::from_millis(100),
            flood_scope: FloodScope::default(),
        }
    }

    /// A faster variant for simulations that need quick convergence
    /// (hello 0.5 s, TC 1.25 s, proportional hold times).
    pub fn fast() -> Self {
        let hello = SimDuration::from_millis(500);
        let tc = SimDuration::from_millis(1250);
        OlsrConfig {
            hello_interval: hello,
            tc_interval: tc,
            neighbor_hold_time: hello * 3,
            topology_hold_time: tc * 3,
            duplicate_hold_time: SimDuration::from_secs(8),
            willingness: Willingness::Default,
            refresh_interval: SimDuration::from_millis(250),
            default_ttl: 255,
            data_ttl: 32,
            tc_redundancy: TcRedundancy::default(),
            recompute: RecomputeMode::default(),
            recompute_debounce: SimDuration::from_millis(100),
            flood_scope: FloodScope::default(),
        }
    }

    /// Replaces the recompute scheduling mode.
    pub fn with_recompute(mut self, mode: RecomputeMode) -> Self {
        self.recompute = mode;
        self
    }

    /// Replaces the willingness.
    pub fn with_willingness(mut self, w: Willingness) -> Self {
        self.willingness = w;
        self
    }

    /// Replaces the TC advertisement richness.
    pub fn with_tc_redundancy(mut self, r: TcRedundancy) -> Self {
        self.tc_redundancy = r;
        self
    }

    /// Replaces the TC flooding scope.
    pub fn with_flood_scope(mut self, scope: FloodScope) -> Self {
        self.flood_scope = scope;
        self
    }
}

impl Default for OlsrConfig {
    fn default() -> Self {
        OlsrConfig::rfc_default()
    }
}

/// An expiring entry helper: many OLSR sets are "tuples valid until T".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expiry(pub SimTime);

impl Expiry {
    /// `true` when the entry is still valid at `now`.
    pub fn is_valid(self, now: SimTime) -> bool {
        self.0 > now
    }

    /// Extends the expiry to `max(current, candidate)`.
    pub fn extend_to(&mut self, candidate: SimTime) {
        if candidate > self.0 {
            self.0 = candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqnum_wraps() {
        assert_eq!(SequenceNumber(u16::MAX).next(), SequenceNumber(0));
        assert_eq!(SequenceNumber(7).next(), SequenceNumber(8));
    }

    #[test]
    fn seqnum_comparison_plain() {
        assert!(SequenceNumber(5).is_newer_than(SequenceNumber(3)));
        assert!(!SequenceNumber(3).is_newer_than(SequenceNumber(5)));
        assert!(!SequenceNumber(5).is_newer_than(SequenceNumber(5)));
    }

    #[test]
    fn seqnum_comparison_across_wrap() {
        // 2 is newer than 65534 (it wrapped).
        assert!(SequenceNumber(2).is_newer_than(SequenceNumber(65534)));
        assert!(!SequenceNumber(65534).is_newer_than(SequenceNumber(2)));
    }

    #[test]
    fn seqnum_antisymmetric_near_everywhere() {
        for &(a, b) in &[(0u16, 1), (100, 40000), (65000, 100), (32767, 0)] {
            let ab = SequenceNumber(a).is_newer_than(SequenceNumber(b));
            let ba = SequenceNumber(b).is_newer_than(SequenceNumber(a));
            assert!(!(ab && ba), "both newer: {a} {b}");
        }
    }

    #[test]
    fn willingness_roundtrip_and_rounding() {
        for w in [
            Willingness::Never,
            Willingness::Low,
            Willingness::Default,
            Willingness::High,
            Willingness::Always,
        ] {
            assert_eq!(Willingness::from_wire(w.to_wire()), w);
        }
        assert_eq!(Willingness::from_wire(2), Willingness::Low);
        assert_eq!(Willingness::from_wire(4), Willingness::Default);
        assert_eq!(Willingness::from_wire(200), Willingness::Always);
    }

    #[test]
    fn willingness_orders_by_eagerness() {
        assert!(Willingness::Always > Willingness::High);
        assert!(Willingness::High > Willingness::Default);
        assert!(Willingness::Default > Willingness::Low);
        assert!(Willingness::Low > Willingness::Never);
    }

    #[test]
    fn config_defaults_follow_rfc() {
        let c = OlsrConfig::rfc_default();
        assert_eq!(c.hello_interval, SimDuration::from_secs(2));
        assert_eq!(c.tc_interval, SimDuration::from_secs(5));
        assert_eq!(c.neighbor_hold_time, SimDuration::from_secs(6));
        assert_eq!(c.topology_hold_time, SimDuration::from_secs(15));
    }

    #[test]
    fn fast_config_is_proportional() {
        let c = OlsrConfig::fast();
        assert_eq!(c.neighbor_hold_time, c.hello_interval * 3);
        assert_eq!(c.topology_hold_time, c.tc_interval * 3);
    }

    #[test]
    fn fisheye_ring_selection_follows_strides() {
        let rings = FisheyeRings::default();
        // k = 1..=8: 2, 8, 2, 255, 2, 8, 2, 255.
        let scopes: Vec<u8> =
            (1..=8).map(|k| rings.ring_for_emission(k).expect("ring due").1.ttl).collect();
        assert_eq!(scopes, vec![2, 8, 2, 255, 2, 8, 2, 255]);
        // Ring indexes follow the table order.
        assert_eq!(rings.ring_for_emission(4).unwrap().0, 2);
        assert_eq!(rings.ring_for_emission(2).unwrap().0, 1);
        assert_eq!(rings.ring_for_emission(1).unwrap().0, 0);
    }

    #[test]
    fn fisheye_sparse_table_can_skip_emissions() {
        // No stride-1 ring: odd emissions are skipped entirely.
        let rings = FisheyeRings::new([(4, 2), (255, 4)]);
        assert!(rings.ring_for_emission(1).is_none());
        assert_eq!(rings.ring_for_emission(2).unwrap().1.ttl, 4);
        assert_eq!(rings.ring_for_emission(4).unwrap().1.ttl, 255);
        assert_eq!(rings.near_stride(), 2);
    }

    #[test]
    fn fisheye_stride_covering_picks_tightest_reaching_ring() {
        let rings = FisheyeRings::default();
        assert_eq!(rings.stride_covering(1), Some(1));
        assert_eq!(rings.stride_covering(2), Some(1));
        assert_eq!(rings.stride_covering(3), Some(2));
        assert_eq!(rings.stride_covering(8), Some(2));
        assert_eq!(rings.stride_covering(9), Some(4));
        assert_eq!(rings.stride_covering(255), Some(4));
        let bounded = FisheyeRings::new([(2, 1), (8, 2)]);
        assert_eq!(bounded.stride_covering(9), None);
    }

    #[test]
    fn flood_scope_near_stride() {
        assert_eq!(FloodScope::Classic.near_stride(), 1);
        assert_eq!(FloodScope::Fisheye(FisheyeRings::default()).near_stride(), 1);
        assert_eq!(FloodScope::Fisheye(FisheyeRings::new([(4, 2), (255, 4)])).near_stride(), 2);
        assert_eq!(FloodScope::Classic.ring_count(), 1);
        assert_eq!(FloodScope::Fisheye(FisheyeRings::default()).ring_count(), 3);
    }

    #[test]
    fn single_unbounded_ring_schedules_like_classic() {
        let rings = FisheyeRings::single_unbounded(255);
        for k in 1..=16 {
            let (idx, ring) = rings.ring_for_emission(k).expect("always due");
            assert_eq!((idx, ring.ttl, ring.every), (0, 255, 1));
        }
        assert_eq!(rings.near_stride(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn fisheye_rejects_non_ascending_ttls() {
        let _ = FisheyeRings::new([(8, 1), (8, 2)]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn fisheye_rejects_empty_table() {
        let _ = FisheyeRings::new([]);
    }

    #[test]
    #[should_panic(expected = "stride must be at least 1")]
    fn fisheye_rejects_zero_stride() {
        let _ = FisheyeRings::new([(2, 0)]);
    }

    #[test]
    fn expiry_logic() {
        let mut e = Expiry(SimTime::from_secs(10));
        assert!(e.is_valid(SimTime::from_secs(9)));
        assert!(!e.is_valid(SimTime::from_secs(10)));
        e.extend_to(SimTime::from_secs(12));
        assert_eq!(e.0, SimTime::from_secs(12));
        e.extend_to(SimTime::from_secs(5)); // never shrinks
        assert_eq!(e.0, SimTime::from_secs(12));
    }
}
