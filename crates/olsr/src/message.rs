//! OLSR message types (RFC 3626 §3, §6, §9, §12, §5.1 MID, §12 HNA) plus
//! the non-RFC `Data` message that carries the detector's investigation
//! traffic (documented substitution: the paper runs its investigation
//! request/answer exchange over whatever transport the MANET offers; we
//! give it a minimal unicast data plane inside the OLSR packet format).

use trustlink_sim::{NodeId, SimDuration};

use crate::types::{SequenceNumber, Willingness};

/// Link type of a HELLO link code (RFC 3626 §6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LinkType {
    /// No specific information about the link.
    Unspec = 0,
    /// The link is asymmetric: we hear them, handshake incomplete.
    Asym = 1,
    /// The link is symmetric: verified bidirectional.
    Sym = 2,
    /// The link has been lost.
    Lost = 3,
}

impl LinkType {
    /// Decodes the two low bits of a link code.
    pub fn from_bits(b: u8) -> LinkType {
        match b & 0b11 {
            0 => LinkType::Unspec,
            1 => LinkType::Asym,
            2 => LinkType::Sym,
            _ => LinkType::Lost,
        }
    }
}

/// Neighbor type of a HELLO link code (RFC 3626 §6.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum NeighborType {
    /// Not a symmetric neighbor.
    Not = 0,
    /// A symmetric neighbor.
    Sym = 1,
    /// A symmetric neighbor that has been selected as MPR.
    Mpr = 2,
}

impl NeighborType {
    /// Decodes bits 2-3 of a link code.
    pub fn from_bits(b: u8) -> NeighborType {
        match b & 0b11 {
            0 => NeighborType::Not,
            1 => NeighborType::Sym,
            _ => NeighborType::Mpr,
        }
    }
}

/// A HELLO link code: `(neighbor type << 2) | link type`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkCode {
    /// The link-sensing half of the code.
    pub link: LinkType,
    /// The neighbor-relationship half of the code.
    pub neighbor: NeighborType,
}

impl LinkCode {
    /// Builds a code from its halves.
    pub const fn new(link: LinkType, neighbor: NeighborType) -> Self {
        LinkCode { link, neighbor }
    }

    /// Wire encoding.
    pub fn to_wire(self) -> u8 {
        ((self.neighbor as u8) << 2) | (self.link as u8)
    }

    /// Wire decoding (never fails: unknown bits collapse to the nearest
    /// defined value).
    pub fn from_wire(b: u8) -> Self {
        LinkCode { link: LinkType::from_bits(b), neighbor: NeighborType::from_bits(b >> 2) }
    }

    /// `true` when the code advertises a symmetric relationship — the part
    /// of a HELLO a link-spoofing attacker falsifies.
    pub fn is_symmetric(self) -> bool {
        self.link == LinkType::Sym || self.neighbor != NeighborType::Not
    }
}

/// One link group inside a HELLO: a link code and the neighbor addresses it
/// applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkGroup {
    /// The code describing every address in the group.
    pub code: LinkCode,
    /// The advertised neighbor interfaces.
    pub addrs: Vec<NodeId>,
}

/// A HELLO message (RFC 3626 §6.1): the local link/neighbor view a node
/// advertises to its 1-hop neighborhood. This is the message the paper's
/// link-spoofing attacker tampers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloMessage {
    /// Advertised willingness to carry traffic.
    pub willingness: Willingness,
    /// Link groups (addresses grouped by link code).
    pub groups: Vec<LinkGroup>,
}

impl HelloMessage {
    /// All addresses advertised with a symmetric code (`SYM`/`MPR` neighbor
    /// type or `SYM` link type) — the `NS'` set of the paper's Expressions
    /// (1)–(3).
    pub fn symmetric_neighbors(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .groups
            .iter()
            .filter(|g| g.code.is_symmetric())
            .flat_map(|g| g.addrs.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Addresses advertised with the ASYM link type (heard but not yet
    /// verified bidirectional).
    pub fn asymmetric_neighbors(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .groups
            .iter()
            .filter(|g| !g.code.is_symmetric() && g.code.link == LinkType::Asym)
            .flat_map(|g| g.addrs.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Addresses advertised as MPR (the sender elected them to relay).
    pub fn mpr_neighbors(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .groups
            .iter()
            .filter(|g| g.code.neighbor == NeighborType::Mpr)
            .flat_map(|g| g.addrs.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A Topology Control message (RFC 3626 §9.1): an MPR advertises the set of
/// nodes that selected it (its *advertised neighbor set*), stamped with an
/// Advertised Neighbor Sequence Number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcMessage {
    /// Advertised Neighbor Sequence Number.
    pub ansn: u16,
    /// The MPR-selector addresses being advertised.
    pub advertised: Vec<NodeId>,
}

/// A Multiple Interface Declaration (RFC 3626 §5.1): maps alias interface
/// addresses to the originator's main address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MidMessage {
    /// Alias addresses of the originator.
    pub aliases: Vec<NodeId>,
}

/// A Host and Network Association message (RFC 3626 §12.1): external
/// networks reachable through the originator (acting as a gateway). The
/// network is identified by an id and a prefix length (a simplification of
/// the RFC's address/mask pairs, sufficient for spoofing experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HnaMessage {
    /// `(network id, prefix length)` pairs.
    pub networks: Vec<(NodeId, u8)>,
}

/// The unicast data-plane message (non-RFC, see module docs): investigation
/// requests/answers and any application traffic ride in these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataMessage {
    /// Source main address.
    pub src: NodeId,
    /// Destination main address.
    pub dst: NodeId,
    /// A node every forwarder must route around, if possible — the paper's
    /// requirement that investigation traffic avoid the suspicious MPR.
    pub avoid: Option<NodeId>,
    /// Application payload.
    pub payload: bytes::Bytes,
}

/// The body of an OLSR message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageBody {
    /// HELLO (type 1).
    Hello(HelloMessage),
    /// TC (type 2).
    Tc(TcMessage),
    /// MID (type 3).
    Mid(MidMessage),
    /// HNA (type 4).
    Hna(HnaMessage),
    /// Unicast data (type 200, outside the RFC-reserved range).
    Data(DataMessage),
}

impl MessageBody {
    /// The wire message-type byte.
    pub fn type_byte(&self) -> u8 {
        match self {
            MessageBody::Hello(_) => 1,
            MessageBody::Tc(_) => 2,
            MessageBody::Mid(_) => 3,
            MessageBody::Hna(_) => 4,
            MessageBody::Data(_) => 200,
        }
    }

    /// Human-readable type name used in audit logs.
    pub fn type_name(&self) -> &'static str {
        match self {
            MessageBody::Hello(_) => "HELLO",
            MessageBody::Tc(_) => "TC",
            MessageBody::Mid(_) => "MID",
            MessageBody::Hna(_) => "HNA",
            MessageBody::Data(_) => "DATA",
        }
    }

    /// HELLOs are never forwarded (RFC 3626 §6.2); everything else floods
    /// through the MPR backbone, except Data which is unicast-routed.
    pub fn is_flooded(&self) -> bool {
        matches!(self, MessageBody::Tc(_) | MessageBody::Mid(_) | MessageBody::Hna(_))
    }
}

/// The common message header (RFC 3626 §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Validity time of the carried information.
    pub vtime: SimDuration,
    /// Main address of the message's creator.
    pub originator: NodeId,
    /// Remaining hops the message may travel.
    pub ttl: u8,
    /// Hops travelled so far.
    pub hop_count: u8,
    /// Originator-scoped message sequence number.
    pub seq: SequenceNumber,
    /// The typed body.
    pub body: MessageBody,
}

/// An OLSR packet: one transmission, carrying one or more messages
/// (RFC 3626 §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Per-interface packet sequence number.
    pub seq: SequenceNumber,
    /// The carried messages.
    pub messages: Vec<Message>,
}

/// Encodes a validity time into the RFC 3626 §18.3 mantissa/exponent byte:
/// `C·(1 + a/16)·2^b` with `C = 1/16` s, four bits each.
///
/// The encoding is lossy (≈ 6 % worst-case relative error) — exactly like
/// the real protocol.
pub fn encode_vtime(d: SimDuration) -> u8 {
    const C: f64 = 0.0625; // 1/16 s
    let t = d.as_secs_f64().max(C);
    // Find the largest b with C·2^b <= t, then the mantissa.
    let mut b = (t / C).log2().floor() as i32;
    b = b.clamp(0, 15);
    let mut a = ((t / (C * 2f64.powi(b)) - 1.0) * 16.0).round() as i32;
    if a > 15 {
        // Mantissa overflow rolls into the next exponent.
        a = 0;
        b = (b + 1).min(15);
    }
    a = a.clamp(0, 15);
    ((a as u8) << 4) | (b as u8)
}

/// Decodes an RFC 3626 §18.3 vtime byte.
pub fn decode_vtime(byte: u8) -> SimDuration {
    const C: f64 = 0.0625;
    let a = f64::from(byte >> 4);
    let b = i32::from(byte & 0x0F);
    SimDuration::from_secs_f64(C * (1.0 + a / 16.0) * 2f64.powi(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_code_roundtrip() {
        for link in [LinkType::Unspec, LinkType::Asym, LinkType::Sym, LinkType::Lost] {
            for neighbor in [NeighborType::Not, NeighborType::Sym, NeighborType::Mpr] {
                let code = LinkCode::new(link, neighbor);
                assert_eq!(LinkCode::from_wire(code.to_wire()), code);
            }
        }
    }

    #[test]
    fn symmetric_codes() {
        assert!(LinkCode::new(LinkType::Sym, NeighborType::Not).is_symmetric());
        assert!(LinkCode::new(LinkType::Asym, NeighborType::Sym).is_symmetric());
        assert!(LinkCode::new(LinkType::Unspec, NeighborType::Mpr).is_symmetric());
        assert!(!LinkCode::new(LinkType::Asym, NeighborType::Not).is_symmetric());
        assert!(!LinkCode::new(LinkType::Lost, NeighborType::Not).is_symmetric());
    }

    fn hello_fixture() -> HelloMessage {
        HelloMessage {
            willingness: Willingness::Default,
            groups: vec![
                LinkGroup {
                    code: LinkCode::new(LinkType::Sym, NeighborType::Sym),
                    addrs: vec![NodeId(2), NodeId(1)],
                },
                LinkGroup {
                    code: LinkCode::new(LinkType::Sym, NeighborType::Mpr),
                    addrs: vec![NodeId(3)],
                },
                LinkGroup {
                    code: LinkCode::new(LinkType::Asym, NeighborType::Not),
                    addrs: vec![NodeId(4)],
                },
            ],
        }
    }

    #[test]
    fn hello_views() {
        let h = hello_fixture();
        assert_eq!(h.symmetric_neighbors(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(h.asymmetric_neighbors(), vec![NodeId(4)]);
        assert_eq!(h.mpr_neighbors(), vec![NodeId(3)]);
    }

    #[test]
    fn hello_views_dedup() {
        let h = HelloMessage {
            willingness: Willingness::Default,
            groups: vec![
                LinkGroup {
                    code: LinkCode::new(LinkType::Sym, NeighborType::Sym),
                    addrs: vec![NodeId(1), NodeId(1)],
                },
                LinkGroup {
                    code: LinkCode::new(LinkType::Unspec, NeighborType::Sym),
                    addrs: vec![NodeId(1)],
                },
            ],
        };
        assert_eq!(h.symmetric_neighbors(), vec![NodeId(1)]);
    }

    #[test]
    fn body_type_bytes_distinct() {
        let bodies = [
            MessageBody::Hello(hello_fixture()),
            MessageBody::Tc(TcMessage { ansn: 0, advertised: vec![] }),
            MessageBody::Mid(MidMessage { aliases: vec![] }),
            MessageBody::Hna(HnaMessage { networks: vec![] }),
            MessageBody::Data(DataMessage {
                src: NodeId(0),
                dst: NodeId(1),
                avoid: None,
                payload: bytes::Bytes::new(),
            }),
        ];
        let mut seen = std::collections::HashSet::new();
        for b in &bodies {
            assert!(seen.insert(b.type_byte()), "duplicate type byte");
        }
    }

    #[test]
    fn flooding_classification() {
        assert!(!MessageBody::Hello(hello_fixture()).is_flooded());
        assert!(MessageBody::Tc(TcMessage { ansn: 0, advertised: vec![] }).is_flooded());
        assert!(MessageBody::Mid(MidMessage { aliases: vec![] }).is_flooded());
        assert!(MessageBody::Hna(HnaMessage { networks: vec![] }).is_flooded());
    }

    #[test]
    fn vtime_roundtrip_within_rfc_error() {
        for secs in [0.0625, 0.5, 1.0, 2.0, 6.0, 15.0, 30.0, 128.0, 1000.0] {
            let d = SimDuration::from_secs_f64(secs);
            let decoded = decode_vtime(encode_vtime(d)).as_secs_f64();
            let rel = (decoded - secs).abs() / secs;
            assert!(rel < 0.07, "vtime {secs}s decoded as {decoded}s (rel err {rel})");
        }
    }

    #[test]
    fn vtime_classic_values() {
        // 6 s (NEIGHB_HOLD_TIME with 2 s hellos) has an exact encoding:
        // 6 = 1/16 · (1 + 8/16) · 2^6.
        let b = encode_vtime(SimDuration::from_secs(6));
        assert_eq!(decode_vtime(b), SimDuration::from_secs(6));
    }

    #[test]
    fn vtime_tiny_values_clamp_to_c() {
        let b = encode_vtime(SimDuration::from_micros(1));
        assert_eq!(decode_vtime(b), SimDuration::from_secs_f64(0.0625));
    }

    #[test]
    fn vtime_mantissa_overflow_rolls_over() {
        // A value just below a power-of-two boundary must not produce a=16.
        let d = SimDuration::from_secs_f64(0.0625 * 1.999);
        let decoded = decode_vtime(encode_vtime(d)).as_secs_f64();
        assert!(decoded > 0.11 && decoded < 0.14, "decoded {decoded}");
    }
}
