//! The OLSR information repositories (RFC 3626 §4.2–§4.4): link set,
//! neighbor set, 2-hop neighbor set, MPR selector set, topology set,
//! duplicate set and the MID interface-association set.
//!
//! Every repository is a collection of *tuples valid until a time*. Two
//! invariants make the incremental recompute pipeline possible:
//!
//! 1. **Every read is time-aware.** A tuple whose expiry has passed is
//!    semantically absent from every query, whether or not it has been
//!    physically removed. Purging is therefore pure garbage collection:
//!    *when* a purge runs can never change protocol behaviour, only
//!    memory usage and the timing of the corresponding audit-log lines.
//! 2. **Purges are min-expiry gated.** Each repository tracks a lower
//!    bound on the earliest expiry it contains; [`purge`](LinkSet::purge)
//!    returns immediately while `now` has not reached it. A sweep only
//!    ever touches tuples when something may actually have expired,
//!    instead of scanning the whole set after every received packet.
//!
//! The `purge` family still removes expired entries and reports what was
//! dropped (so the node can write the corresponding audit-log lines and
//! invalidate recompute artifacts that depended on the dropped state).

use std::collections::BTreeMap;

use trustlink_sim::{NodeId, SimTime};

use crate::types::{SequenceNumber, Willingness};

/// One sensed link to a 1-hop neighbor (RFC 3626 §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTuple {
    /// The neighbor's main address.
    pub neighbor: NodeId,
    /// Until when the link counts as symmetric.
    pub sym_until: SimTime,
    /// Until when the link counts as heard (asymmetric).
    pub asym_until: SimTime,
    /// When the whole tuple expires.
    pub until: SimTime,
}

impl LinkTuple {
    /// Link status at `now`: symmetric beats asymmetric beats lost.
    pub fn status(&self, now: SimTime) -> LinkStatus {
        if self.sym_until > now {
            LinkStatus::Symmetric
        } else if self.asym_until > now {
            LinkStatus::Asymmetric
        } else {
            LinkStatus::Lost
        }
    }
}

/// The sensed status of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkStatus {
    /// Verified bidirectional.
    Symmetric,
    /// Heard one-way only.
    Asymmetric,
    /// Expired or declared lost.
    Lost,
}

/// The smallest expiry in a set of candidate times, tracked as a *lower
/// bound*: extending a tuple's validity does not raise the bound, so a
/// purge may occasionally scan and find nothing — but a purge can never be
/// missed. Purge passes recompute the exact minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MinExpiry(SimTime);

impl Default for MinExpiry {
    fn default() -> Self {
        MinExpiry(SimTime::MAX)
    }
}

impl MinExpiry {
    /// Lowers the bound to cover a tuple expiring at `until`.
    fn cover(&mut self, until: SimTime) {
        self.0 = self.0.min(until);
    }

    /// `true` when nothing can have expired yet: the purge may skip.
    fn nothing_due(&self, now: SimTime) -> bool {
        self.0 > now
    }

    fn reset(&mut self) {
        self.0 = SimTime::MAX;
    }
}

/// The link set: every link this node has sensed recently.
#[derive(Debug, Clone, Default)]
pub struct LinkSet {
    tuples: BTreeMap<NodeId, LinkTuple>,
    min_expiry: MinExpiry,
}

impl LinkSet {
    /// Looks up the tuple for `neighbor`.
    pub fn get(&self, neighbor: NodeId) -> Option<&LinkTuple> {
        self.tuples.get(&neighbor)
    }

    /// Inserts or updates the tuple for `neighbor`, merging expiry times
    /// (times only ever extend; purging is how they shrink).
    pub fn upsert(&mut self, tuple: LinkTuple) {
        self.min_expiry.cover(tuple.until);
        self.tuples
            .entry(tuple.neighbor)
            .and_modify(|t| {
                t.sym_until = t.sym_until.max(tuple.sym_until);
                t.asym_until = t.asym_until.max(tuple.asym_until);
                t.until = t.until.max(tuple.until);
            })
            .or_insert(tuple);
    }

    /// Forces the symmetric validity of `neighbor` to expire immediately
    /// (used when a HELLO explicitly declares the link `LOST`).
    pub fn declare_lost(&mut self, neighbor: NodeId, now: SimTime) {
        if let Some(t) = self.tuples.get_mut(&neighbor) {
            t.sym_until = now;
        }
    }

    /// Neighbors with a symmetric link at `now`, ascending.
    pub fn symmetric_neighbors(&self, now: SimTime) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.symmetric_neighbors_into(now, &mut out);
        out
    }

    /// `true` when the link to `neighbor` is symmetric at `now`: the
    /// allocation-free membership form of
    /// [`LinkSet::symmetric_neighbors`]`.contains(…)`, for per-message
    /// forwarding gates.
    pub fn is_symmetric(&self, neighbor: NodeId, now: SimTime) -> bool {
        self.tuples.get(&neighbor).is_some_and(|t| t.status(now) == LinkStatus::Symmetric)
    }

    /// Allocation-free form of [`LinkSet::symmetric_neighbors`]: `out` is
    /// cleared and refilled (ascending).
    pub fn symmetric_neighbors_into(&self, now: SimTime, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            self.tuples
                .values()
                .filter(|t| t.status(now) == LinkStatus::Symmetric)
                .map(|t| t.neighbor),
        );
    }

    /// Neighbors with at least an asymmetric link at `now`, ascending.
    pub fn heard_neighbors(&self, now: SimTime) -> Vec<NodeId> {
        self.tuples
            .values()
            .filter(|t| t.status(now) != LinkStatus::Lost)
            .map(|t| t.neighbor)
            .collect()
    }

    /// Removes tuples wholly expired at `now`; returns the removed
    /// neighbors. Min-expiry gated: free while nothing can have expired.
    pub fn purge(&mut self, now: SimTime) -> Vec<NodeId> {
        if self.min_expiry.nothing_due(now) {
            return Vec::new();
        }
        let dead: Vec<NodeId> =
            self.tuples.values().filter(|t| t.until <= now).map(|t| t.neighbor).collect();
        for d in &dead {
            self.tuples.remove(d);
        }
        self.min_expiry.reset();
        for t in self.tuples.values() {
            self.min_expiry.cover(t.until);
        }
        dead
    }

    /// Number of tuples (including expired-but-unpurged ones).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when no link has been sensed.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over all tuples, ascending by neighbor.
    pub fn iter(&self) -> impl Iterator<Item = &LinkTuple> {
        self.tuples.values()
    }
}

/// A 1-hop neighbor entry (RFC 3626 §4.3.1): status + willingness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborTuple {
    /// The neighbor's main address.
    pub addr: NodeId,
    /// Its last advertised willingness.
    pub willingness: Willingness,
}

/// The neighbor set, derived from the link set but carrying willingness.
#[derive(Debug, Clone, Default)]
pub struct NeighborSet {
    tuples: BTreeMap<NodeId, NeighborTuple>,
}

impl NeighborSet {
    /// Inserts or updates a neighbor. Returns `true` when the entry is new
    /// or its willingness actually changed — the only neighbor-set updates
    /// that can alter MPR selection.
    pub fn upsert(&mut self, addr: NodeId, willingness: Willingness) -> bool {
        match self.tuples.entry(addr) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let changed = e.get().willingness != willingness;
                e.get_mut().willingness = willingness;
                changed
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(NeighborTuple { addr, willingness });
                true
            }
        }
    }

    /// Removes a neighbor, returning whether it existed.
    pub fn remove(&mut self, addr: NodeId) -> bool {
        self.tuples.remove(&addr).is_some()
    }

    /// Looks up a neighbor.
    pub fn get(&self, addr: NodeId) -> Option<&NeighborTuple> {
        self.tuples.get(&addr)
    }

    /// `true` when `addr` is currently a neighbor.
    pub fn contains(&self, addr: NodeId) -> bool {
        self.tuples.contains_key(&addr)
    }

    /// All neighbors ascending by address.
    pub fn iter(&self) -> impl Iterator<Item = &NeighborTuple> {
        self.tuples.values()
    }

    /// Addresses of all neighbors, ascending.
    pub fn addrs(&self) -> Vec<NodeId> {
        self.tuples.keys().copied().collect()
    }

    /// Number of neighbors.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when there are no neighbors.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A 2-hop neighbor entry (RFC 3626 §4.3.2): reachable `two_hop` via the
/// symmetric 1-hop neighbor `via`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TwoHopTuple {
    /// The 1-hop neighbor providing reachability.
    pub via: NodeId,
    /// The 2-hop neighbor reached.
    pub two_hop: NodeId,
    /// Expiry.
    pub until: SimTime,
}

/// The 2-hop neighbor set.
#[derive(Debug, Clone, Default)]
pub struct TwoHopSet {
    tuples: BTreeMap<(NodeId, NodeId), SimTime>,
    min_expiry: MinExpiry,
}

impl TwoHopSet {
    /// Inserts or refreshes the pair `(via, two_hop)` as of `now`. Returns
    /// `true` when the live content changed: the pair is new, or it existed
    /// only as an expired leftover. A pure refresh of a live pair returns
    /// `false` — it cannot alter MPR selection or routing.
    pub fn upsert(&mut self, via: NodeId, two_hop: NodeId, until: SimTime, now: SimTime) -> bool {
        self.min_expiry.cover(until);
        match self.tuples.entry((via, two_hop)) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let was_live = *e.get() > now;
                *e.get_mut() = (*e.get()).max(until);
                !was_live
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(until);
                true
            }
        }
    }

    /// Removes every pair advertised through `via` (when a HELLO from `via`
    /// declares the link lost, or the neighbor drops out of the symmetric
    /// set). Returns how many removed pairs were still live at `now` — with
    /// the `via`-bounded validity invariant the reception path maintains,
    /// sweep-time calls always find 0 live pairs (pure GC).
    pub fn remove_via(&mut self, via: NodeId, now: SimTime) -> usize {
        let mut live = 0;
        self.tuples.retain(|(v, _), until| {
            if *v != via {
                return true;
            }
            if *until > now {
                live += 1;
            }
            false
        });
        live
    }

    /// Removes one specific pair.
    pub fn remove(&mut self, via: NodeId, two_hop: NodeId) -> bool {
        self.tuples.remove(&(via, two_hop)).is_some()
    }

    /// All distinct 2-hop addresses at `now`, ascending, excluding `me` and
    /// excluding addresses in `exclude` (RFC: a 2-hop neighbor that is also
    /// a 1-hop neighbor does not need covering).
    pub fn two_hop_addrs(&self, now: SimTime, me: NodeId, exclude: &[NodeId]) -> Vec<NodeId> {
        let mut ex: Vec<NodeId> = exclude.to_vec();
        ex.sort_unstable();
        let mut out = Vec::new();
        self.two_hop_addrs_into(now, me, &ex, &mut out);
        out
    }

    /// Allocation-free form of [`TwoHopSet::two_hop_addrs`]: `exclude`
    /// must be sorted ascending, `out` is cleared and refilled.
    pub fn two_hop_addrs_into(
        &self,
        now: SimTime,
        me: NodeId,
        exclude: &[NodeId],
        out: &mut Vec<NodeId>,
    ) {
        debug_assert!(exclude.windows(2).all(|w| w[0] <= w[1]), "exclude must be sorted");
        out.clear();
        out.extend(
            self.tuples
                .iter()
                .filter(|(_, &until)| until > now)
                .map(|(&(_, th), _)| th)
                .filter(|th| *th != me && exclude.binary_search(th).is_err()),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// The 2-hop addresses reachable via `via` at `now`.
    pub fn reachable_via(&self, via: NodeId, now: SimTime) -> Vec<NodeId> {
        self.iter_via(via, now).collect()
    }

    /// Iterates the 2-hop addresses reachable via `via` at `now` without
    /// allocating (ascending; the keyspace is range-scanned).
    pub fn iter_via(&self, via: NodeId, now: SimTime) -> impl Iterator<Item = NodeId> + '_ {
        self.tuples
            .range((via, NodeId(0))..=(via, NodeId(u32::MAX)))
            .filter(move |(_, &until)| until > now)
            .map(|(&(_, th), _)| th)
    }

    /// The 1-hop neighbors through which `two_hop` is reachable at `now`.
    pub fn vias_for(&self, two_hop: NodeId, now: SimTime) -> Vec<NodeId> {
        self.tuples
            .iter()
            .filter(|(&(_, th), &until)| th == two_hop && until > now)
            .map(|(&(v, _), _)| v)
            .collect()
    }

    /// Drops expired pairs; returns the removed `(via, two_hop)` pairs.
    /// Min-expiry gated: free while nothing can have expired.
    pub fn purge(&mut self, now: SimTime) -> Vec<(NodeId, NodeId)> {
        if self.min_expiry.nothing_due(now) {
            return Vec::new();
        }
        let dead: Vec<(NodeId, NodeId)> =
            self.tuples.iter().filter(|(_, &until)| until <= now).map(|(&k, _)| k).collect();
        for k in &dead {
            self.tuples.remove(k);
        }
        self.min_expiry.reset();
        for &until in self.tuples.values() {
            self.min_expiry.cover(until);
        }
        dead
    }

    /// Iterates all live tuples at `now`.
    pub fn iter(&self, now: SimTime) -> impl Iterator<Item = TwoHopTuple> + '_ {
        self.tuples
            .iter()
            .filter(move |(_, &until)| until > now)
            .map(|(&(via, two_hop), &until)| TwoHopTuple { via, two_hop, until })
    }

    /// Number of stored pairs (live or not).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The MPR selector set (RFC 3626 §4.3.4): neighbors that chose *us* as
/// their MPR. Non-empty selector set ⇒ we must emit TCs and forward floods.
#[derive(Debug, Clone, Default)]
pub struct MprSelectorSet {
    tuples: BTreeMap<NodeId, SimTime>,
    min_expiry: MinExpiry,
}

impl MprSelectorSet {
    /// Inserts or refreshes a selector as of `now`. Returns `true` when the
    /// selector was not previously *live* (absent, or present only as an
    /// expired leftover) — i.e. when this is an observable addition.
    pub fn upsert(&mut self, addr: NodeId, until: SimTime, now: SimTime) -> bool {
        self.min_expiry.cover(until);
        let fresh = self.tuples.get(&addr).is_none_or(|&u| u <= now);
        let e = self.tuples.entry(addr).or_insert(until);
        *e = (*e).max(until);
        fresh
    }

    /// Removes a selector (on lost symmetry or an explicit LOST listing),
    /// returning whether a *live* entry existed at `now` (an expired
    /// leftover is dropped silently — it was already observably gone).
    pub fn remove(&mut self, addr: NodeId, now: SimTime) -> bool {
        self.tuples.remove(&addr).is_some_and(|until| until > now)
    }

    /// `true` when `addr` currently selects us at `now`.
    pub fn contains(&self, addr: NodeId, now: SimTime) -> bool {
        self.tuples.get(&addr).is_some_and(|&until| until > now)
    }

    /// All live selector addresses at `now`, ascending.
    pub fn addrs(&self, now: SimTime) -> Vec<NodeId> {
        self.tuples.iter().filter(|(_, &until)| until > now).map(|(&a, _)| a).collect()
    }

    /// `true` when nobody selects us at `now`.
    pub fn is_empty(&self, now: SimTime) -> bool {
        self.addrs(now).is_empty()
    }

    /// Drops expired entries; returns the removed addresses. Min-expiry
    /// gated: free while nothing can have expired.
    pub fn purge(&mut self, now: SimTime) -> Vec<NodeId> {
        if self.min_expiry.nothing_due(now) {
            return Vec::new();
        }
        let dead: Vec<NodeId> =
            self.tuples.iter().filter(|(_, &until)| until <= now).map(|(&a, _)| a).collect();
        for a in &dead {
            self.tuples.remove(a);
        }
        self.min_expiry.reset();
        for &until in self.tuples.values() {
            self.min_expiry.cover(until);
        }
        dead
    }
}

/// A topology tuple (RFC 3626 §4.4): `dest` is reachable in the last hop
/// through `last_hop` (an MPR of `dest`), per a TC with sequence `ansn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyTuple {
    /// The advertised destination (an MPR selector of `last_hop`).
    pub dest: NodeId,
    /// The TC originator (the MPR).
    pub last_hop: NodeId,
    /// ANSN carried by the TC that created this tuple.
    pub ansn: u16,
    /// Expiry.
    pub until: SimTime,
}

/// The topology set built from received TCs.
#[derive(Debug, Clone, Default)]
pub struct TopologySet {
    tuples: BTreeMap<(NodeId, NodeId), TopologyTuple>, // key: (last_hop, dest)
    min_expiry: MinExpiry,
}

impl TopologySet {
    /// Latest ANSN recorded for `last_hop` among tuples still live at
    /// `now`. Expired leftovers carry no authority: an originator whose
    /// entire advertisement has timed out is treated as never heard from,
    /// exactly as if the leftovers had already been garbage-collected —
    /// this keeps the ANSN staleness check independent of purge timing.
    pub fn ansn_of(&self, last_hop: NodeId, now: SimTime) -> Option<u16> {
        self.tuples
            .range((last_hop, NodeId(0))..=(last_hop, NodeId(u32::MAX)))
            .filter(|(_, t)| t.until > now)
            .map(|(_, t)| t.ansn)
            .next()
    }

    /// Applies a TC from `last_hop` carrying `ansn` and `dests`
    /// (RFC 3626 §9.5): stale-ANSN TCs are ignored; newer ANSNs replace all
    /// tuples of that originator. Returns `true` if the *live* content
    /// changed (a pure refresh of live tuples returns `false`).
    pub fn apply_tc(
        &mut self,
        last_hop: NodeId,
        ansn: u16,
        dests: &[NodeId],
        until: SimTime,
        now: SimTime,
    ) -> bool {
        let mut changed = false;
        if let Some(existing) = self.ansn_of(last_hop, now) {
            let newer = SequenceNumber(ansn).is_newer_than(SequenceNumber(existing));
            if existing != ansn && !newer {
                return false; // stale information
            }
            if newer {
                // Dropping a *live* tuple is a topology change in itself —
                // a TC that withdraws links (down to an empty advertised
                // set) must re-trigger route calculation even when it
                // inserts nothing.
                self.tuples.retain(|(lh, _), t| {
                    if *lh != last_hop {
                        return true;
                    }
                    if t.until > now {
                        changed = true;
                    }
                    false
                });
            }
        }
        self.min_expiry.cover(until);
        for &d in dests {
            let t = TopologyTuple { dest: d, last_hop, ansn, until };
            match self.tuples.insert((last_hop, d), t) {
                Some(old) if old.ansn == ansn && old.until > now => {
                    // pure refresh of a live tuple, not a topology change
                }
                _ => changed = true,
            }
        }
        changed
    }

    /// All live tuples at `now`.
    pub fn iter(&self, now: SimTime) -> impl Iterator<Item = &TopologyTuple> {
        self.tuples.values().filter(move |t| t.until > now)
    }

    /// Drops expired tuples; returns removed `(last_hop, dest)` pairs.
    /// Min-expiry gated: free while nothing can have expired — the gate
    /// that turns the former per-reception O(topology) sweep into an
    /// occasional one.
    pub fn purge(&mut self, now: SimTime) -> Vec<(NodeId, NodeId)> {
        if self.min_expiry.nothing_due(now) {
            return Vec::new();
        }
        let dead: Vec<(NodeId, NodeId)> =
            self.tuples.iter().filter(|(_, t)| t.until <= now).map(|(&k, _)| k).collect();
        for k in &dead {
            self.tuples.remove(k);
        }
        self.min_expiry.reset();
        for t in self.tuples.values() {
            self.min_expiry.cover(t.until);
        }
        dead
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The duplicate set (RFC 3626 §3.4): remembers processed/forwarded
/// messages so floods terminate.
///
/// This is the hottest repository in the whole stack — every flooded
/// reception probes it, and at 10³–10⁴ nodes each node holds thousands of
/// live tuples — so it is a flat open-addressed table rather than an
/// ordered map: one multiply-shift hash and (usually) one cache line per
/// probe, instead of a B-tree descent. Deletion only ever happens
/// wholesale in [`purge`](Self::purge), which rebuilds the table, so no
/// tombstones are needed. A slot is free iff its `until` is zero: live
/// entries always expire strictly after the epoch, because
/// [`record`](Self::record) stores `now + hold` and hold times are
/// positive.
#[derive(Debug, Clone, Default)]
pub struct DuplicateSet {
    /// Power-of-two slot array; empty until the first record.
    slots: Vec<DupSlot>,
    /// Occupied slot count (live and expired-but-not-yet-purged alike).
    live: usize,
    min_expiry: MinExpiry,
}

/// One open-addressing slot: 24 bytes, so a 64-byte cache line still
/// covers the typical one-slot probe.
#[derive(Debug, Clone, Copy)]
struct DupSlot {
    /// Expiry; zero marks the slot free.
    until: SimTime,
    /// `(originator << 16) | seq` — the full key, no ambiguity (the
    /// 32-bit originator id needs the u64 now that ids reach past 2¹⁶).
    key: u64,
    retransmitted: bool,
}

const DUP_EMPTY: DupSlot = DupSlot { until: SimTime::ZERO, key: 0, retransmitted: false };

fn dup_key(originator: NodeId, seq: SequenceNumber) -> u64 {
    (u64::from(originator.0) << 16) | u64::from(seq.0)
}

/// Fibonacci multiply-shift: spreads the structured `(originator, seq)`
/// key across the table's high bits.
fn dup_hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Verdict of [`DuplicateSet::probe_flood`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DupProbe {
    /// Never seen (or only an expired leftover): process and run the
    /// forwarding gates.
    New,
    /// Seen and fresh, but not yet retransmitted: skip processing, run
    /// the forwarding gates on this copy.
    SeenFresh,
    /// Seen, fresh and already retransmitted: suppress outright — the
    /// expiry extension has already been applied by the probe.
    Retransmitted,
}

impl DuplicateSet {
    /// First table size: small enough to live in L1, large enough that a
    /// node only rehashes a handful of times on its way to steady state.
    const INITIAL_SLOTS: usize = 64;

    /// Index of the slot holding `key`, if present (live or expired).
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (dup_hash(key) >> 32) as usize & mask;
        loop {
            let s = &self.slots[i];
            if s.until == SimTime::ZERO {
                return None;
            }
            if s.key == key {
                return Some(i);
            }
            i = (i + 1) & mask;
        }
    }

    /// Places `slot` (whose key must be absent) into its probe position.
    /// Capacity must already be ensured — the load factor keeps at least
    /// one slot free, so the probe always terminates.
    fn insert_new(&mut self, slot: DupSlot) {
        let mask = self.slots.len() - 1;
        let mut i = (dup_hash(slot.key) >> 32) as usize & mask;
        while self.slots[i].until != SimTime::ZERO {
            i = (i + 1) & mask;
        }
        self.slots[i] = slot;
        self.live += 1;
    }

    /// Grows (or first allocates) the table when one more insert would
    /// push occupancy past ~70%.
    fn ensure_capacity(&mut self) {
        let cap = self.slots.len();
        if cap > 0 && (self.live + 1) * 10 <= cap * 7 {
            return;
        }
        let new_cap = (cap * 2).max(Self::INITIAL_SLOTS);
        let old = std::mem::replace(&mut self.slots, vec![DUP_EMPTY; new_cap]);
        self.live = 0;
        for s in old {
            if s.until != SimTime::ZERO {
                self.insert_new(s);
            }
        }
    }

    /// `true` when `(originator, seq)` was already processed.
    pub fn seen(&self, originator: NodeId, seq: SequenceNumber, now: SimTime) -> bool {
        self.find(dup_key(originator, seq)).is_some_and(|i| self.slots[i].until > now)
    }

    /// `true` when `(originator, seq)` was already retransmitted.
    pub fn retransmitted(&self, originator: NodeId, seq: SequenceNumber, now: SimTime) -> bool {
        self.find(dup_key(originator, seq)).is_some_and(|i| {
            let s = &self.slots[i];
            s.until > now && s.retransmitted
        })
    }

    /// Records a processed message as of `now`. An expired leftover for the
    /// same `(originator, seq)` (a wrapped-around sequence number) is
    /// overwritten outright rather than merged: it is semantically a
    /// different message, and overwriting keeps the set's behaviour
    /// independent of when the leftover is garbage-collected.
    pub fn record(
        &mut self,
        originator: NodeId,
        seq: SequenceNumber,
        retransmitted: bool,
        until: SimTime,
        now: SimTime,
    ) {
        self.min_expiry.cover(until);
        let key = dup_key(originator, seq);
        if let Some(i) = self.find(key) {
            let s = &mut self.slots[i];
            if s.until <= now {
                s.retransmitted = retransmitted;
                s.until = until;
            } else {
                s.retransmitted |= retransmitted;
                s.until = s.until.max(until);
            }
        } else {
            self.ensure_capacity();
            self.insert_new(DupSlot { until, key, retransmitted });
        }
    }

    /// One-probe flood triage for the batched receive path: a single map
    /// access answers what [`seen`](Self::seen) and
    /// [`retransmitted`](Self::retransmitted) would answer separately,
    /// and for the dominant already-retransmitted copy it applies — in
    /// place — exactly the state [`record`](Self::record)`(…, false,
    /// dup_until, now)` would leave behind when the copy is suppressed
    /// (expiry extension; the flag stays set). For the other two verdicts
    /// the set is not touched: the caller's forwarding gates decide and
    /// record as usual.
    pub fn probe_flood(
        &mut self,
        originator: NodeId,
        seq: SequenceNumber,
        dup_until: SimTime,
        now: SimTime,
    ) -> DupProbe {
        match self.find(dup_key(originator, seq)) {
            Some(i) if self.slots[i].until > now => {
                let s = &mut self.slots[i];
                if s.retransmitted {
                    self.min_expiry.cover(dup_until);
                    s.until = s.until.max(dup_until);
                    DupProbe::Retransmitted
                } else {
                    DupProbe::SeenFresh
                }
            }
            // Absent, or an expired leftover from a wrapped sequence
            // number: semantically a brand-new message either way.
            _ => DupProbe::New,
        }
    }

    /// Drops expired entries by rebuilding the table — the wholesale
    /// deletion that lets the probe paths go tombstone-free. Min-expiry
    /// gated: free while nothing can have expired.
    pub fn purge(&mut self, now: SimTime) {
        if self.min_expiry.nothing_due(now) {
            return;
        }
        let cap = self.slots.len();
        let old = std::mem::replace(&mut self.slots, vec![DUP_EMPTY; cap]);
        self.live = 0;
        self.min_expiry.reset();
        for s in old {
            if s.until > now {
                self.min_expiry.cover(s.until);
                self.insert_new(s);
            }
        }
    }

    /// Number of remembered messages.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

/// The MID interface-association set (RFC 3626 §5.4): alias → main address.
#[derive(Debug, Clone, Default)]
pub struct InterfaceAssociationSet {
    tuples: BTreeMap<NodeId, (NodeId, SimTime)>, // alias -> (main, until)
    min_expiry: MinExpiry,
}

impl InterfaceAssociationSet {
    /// Records that `alias` belongs to `main`.
    pub fn upsert(&mut self, alias: NodeId, main: NodeId, until: SimTime) {
        self.min_expiry.cover(until);
        let e = self.tuples.entry(alias).or_insert((main, until));
        e.0 = main;
        e.1 = e.1.max(until);
    }

    /// Resolves an address to its main address (identity if no MID entry).
    pub fn main_of(&self, addr: NodeId, now: SimTime) -> NodeId {
        match self.tuples.get(&addr) {
            Some(&(main, until)) if until > now => main,
            _ => addr,
        }
    }

    /// Drops expired associations. Min-expiry gated: free while nothing
    /// can have expired.
    pub fn purge(&mut self, now: SimTime) {
        if self.min_expiry.nothing_due(now) {
            return;
        }
        self.tuples.retain(|_, (_, until)| *until > now);
        self.min_expiry.reset();
        for (_, until) in self.tuples.values() {
            self.min_expiry.cover(*until);
        }
    }

    /// Number of live+stale associations stored.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn link_status_transitions() {
        let tuple =
            LinkTuple { neighbor: NodeId(1), sym_until: t(5), asym_until: t(10), until: t(12) };
        assert_eq!(tuple.status(t(0)), LinkStatus::Symmetric);
        assert_eq!(tuple.status(t(5)), LinkStatus::Asymmetric);
        assert_eq!(tuple.status(t(10)), LinkStatus::Lost);
    }

    #[test]
    fn link_set_upsert_extends_only() {
        let mut set = LinkSet::default();
        set.upsert(LinkTuple {
            neighbor: NodeId(1),
            sym_until: t(5),
            asym_until: t(5),
            until: t(6),
        });
        set.upsert(LinkTuple {
            neighbor: NodeId(1),
            sym_until: t(3),
            asym_until: t(8),
            until: t(9),
        });
        let tuple = set.get(NodeId(1)).unwrap();
        assert_eq!(tuple.sym_until, t(5)); // not shrunk
        assert_eq!(tuple.asym_until, t(8));
        assert_eq!(tuple.until, t(9));
    }

    #[test]
    fn link_set_symmetric_and_purge() {
        let mut set = LinkSet::default();
        set.upsert(LinkTuple {
            neighbor: NodeId(1),
            sym_until: t(5),
            asym_until: t(5),
            until: t(6),
        });
        set.upsert(LinkTuple {
            neighbor: NodeId(2),
            sym_until: t(0),
            asym_until: t(5),
            until: t(6),
        });
        assert_eq!(set.symmetric_neighbors(t(1)), vec![NodeId(1)]);
        assert_eq!(set.heard_neighbors(t(1)), vec![NodeId(1), NodeId(2)]);
        let dead = set.purge(t(6));
        assert_eq!(dead, vec![NodeId(1), NodeId(2)]);
        assert!(set.is_empty());
    }

    #[test]
    fn link_declared_lost() {
        let mut set = LinkSet::default();
        set.upsert(LinkTuple {
            neighbor: NodeId(1),
            sym_until: t(50),
            asym_until: t(50),
            until: t(60),
        });
        set.declare_lost(NodeId(1), t(10));
        assert_eq!(set.get(NodeId(1)).unwrap().status(t(10)), LinkStatus::Asymmetric);
    }

    #[test]
    fn neighbor_set_basics() {
        let mut set = NeighborSet::default();
        assert!(set.upsert(NodeId(3), Willingness::High)); // new
        assert!(set.upsert(NodeId(1), Willingness::Default));
        assert!(set.upsert(NodeId(3), Willingness::Low)); // changed
        assert!(!set.upsert(NodeId(3), Willingness::Low)); // no-op refresh
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(NodeId(3)).unwrap().willingness, Willingness::Low);
        assert_eq!(set.addrs(), vec![NodeId(1), NodeId(3)]);
        assert!(set.remove(NodeId(1)));
        assert!(!set.remove(NodeId(1)));
    }

    #[test]
    fn two_hop_set_queries() {
        let mut set = TwoHopSet::default();
        set.upsert(NodeId(1), NodeId(10), t(5), t(0));
        set.upsert(NodeId(1), NodeId(11), t(5), t(0));
        set.upsert(NodeId(2), NodeId(10), t(5), t(0));
        assert_eq!(set.two_hop_addrs(t(0), NodeId(0), &[]), vec![NodeId(10), NodeId(11)]);
        // Excluding 1-hop neighbors and self:
        assert_eq!(set.two_hop_addrs(t(0), NodeId(0), &[NodeId(11)]), vec![NodeId(10)]);
        assert!(set.two_hop_addrs(t(0), NodeId(10), &[NodeId(11)]).is_empty());
        let mut vias = set.vias_for(NodeId(10), t(0));
        vias.sort_unstable();
        assert_eq!(vias, vec![NodeId(1), NodeId(2)]);
        assert_eq!(set.reachable_via(NodeId(1), t(0)), vec![NodeId(10), NodeId(11)]);
    }

    #[test]
    fn two_hop_expiry_and_removal() {
        let mut set = TwoHopSet::default();
        set.upsert(NodeId(1), NodeId(10), t(5), t(0));
        set.upsert(NodeId(2), NodeId(20), t(50), t(0));
        assert!(set.two_hop_addrs(t(10), NodeId(0), &[]).contains(&NodeId(20)));
        assert!(!set.two_hop_addrs(t(10), NodeId(0), &[]).contains(&NodeId(10)));
        let dead = set.purge(t(10));
        assert_eq!(dead, vec![(NodeId(1), NodeId(10))]);
        set.remove_via(NodeId(2), t(10));
        assert!(set.is_empty());
    }

    #[test]
    fn two_hop_upsert_reports_live_changes_only() {
        let mut set = TwoHopSet::default();
        assert!(set.upsert(NodeId(1), NodeId(10), t(5), t(0))); // new
        assert!(!set.upsert(NodeId(1), NodeId(10), t(8), t(1))); // refresh
                                                                 // Reviving the pair after it expired is an observable change again,
                                                                 // whether or not the leftover was purged in between.
        assert!(set.upsert(NodeId(1), NodeId(10), t(20), t(9)));
    }

    #[test]
    fn mpr_selector_set() {
        let mut set = MprSelectorSet::default();
        assert!(set.upsert(NodeId(1), t(5), t(0)));
        assert!(!set.upsert(NodeId(1), t(8), t(1))); // refresh, not fresh
        assert!(set.contains(NodeId(1), t(7)));
        assert!(!set.contains(NodeId(1), t(9)));
        assert!(set.is_empty(t(9)));
        assert_eq!(set.purge(t(9)), vec![NodeId(1)]);
        assert!(!set.remove(NodeId(1), t(9)));
    }

    #[test]
    fn mpr_selector_expired_leftover_counts_as_fresh() {
        let mut set = MprSelectorSet::default();
        assert!(set.upsert(NodeId(1), t(5), t(0)));
        // Leftover expired at t(5) but never purged: re-adding at t(6) is
        // observably fresh, and removing the leftover is observably a no-op.
        assert!(set.upsert(NodeId(1), t(9), t(6)));
        assert!(set.remove(NodeId(1), t(7)));
        assert!(set.upsert(NodeId(1), t(12), t(8)));
        assert!(!set.remove(NodeId(1), t(12)));
    }

    #[test]
    fn topology_ansn_rules() {
        let mut set = TopologySet::default();
        assert!(set.apply_tc(NodeId(5), 10, &[NodeId(1), NodeId(2)], t(15), t(0)));
        assert_eq!(set.iter(t(0)).count(), 2);
        // Same ANSN again: pure refresh, no change signal.
        assert!(!set.apply_tc(NodeId(5), 10, &[NodeId(1), NodeId(2)], t(20), t(1)));
        // Stale ANSN ignored.
        assert!(!set.apply_tc(NodeId(5), 9, &[NodeId(9)], t(20), t(1)));
        assert_eq!(set.iter(t(0)).count(), 2);
        // Newer ANSN replaces the originator's tuples wholesale.
        assert!(set.apply_tc(NodeId(5), 11, &[NodeId(3)], t(25), t(2)));
        let dests: Vec<NodeId> = set.iter(t(2)).map(|t| t.dest).collect();
        assert_eq!(dests, vec![NodeId(3)]);
    }

    #[test]
    fn topology_empty_tc_withdrawal_is_a_change() {
        // An MPR that lost its last selector emits a newer-ANSN TC with an
        // empty advertised set: the withdrawal of its live tuples must
        // signal a topology change (the routing BFS re-runs), even though
        // nothing is inserted.
        let mut set = TopologySet::default();
        assert!(set.apply_tc(NodeId(5), 10, &[NodeId(1), NodeId(2)], t(15), t(0)));
        assert!(set.apply_tc(NodeId(5), 11, &[], t(20), t(1)));
        assert_eq!(set.iter(t(1)).count(), 0);
        // Withdrawing only already-expired tuples is not a change.
        let mut set = TopologySet::default();
        assert!(set.apply_tc(NodeId(6), 1, &[NodeId(1)], t(5), t(0)));
        assert!(!set.apply_tc(NodeId(6), 2, &[], t(30), t(10)));
    }

    #[test]
    fn topology_expired_ansn_carries_no_authority() {
        let mut set = TopologySet::default();
        assert!(set.apply_tc(NodeId(5), 10, &[NodeId(1)], t(15), t(0)));
        // All of N5's tuples have expired by t(20): an ANSN that would have
        // been stale is accepted as if the leftovers were already purged.
        assert!(set.apply_tc(NodeId(5), 3, &[NodeId(2)], t(40), t(20)));
        let dests: Vec<NodeId> = set.iter(t(20)).map(|t| t.dest).collect();
        assert_eq!(dests, vec![NodeId(2)]);
    }

    #[test]
    fn topology_ansn_wraparound() {
        let mut set = TopologySet::default();
        assert!(set.apply_tc(NodeId(5), u16::MAX, &[NodeId(1)], t(15), t(0)));
        // 0 is "newer" than 65535 under RFC §19 arithmetic.
        assert!(set.apply_tc(NodeId(5), 0, &[NodeId(2)], t(20), t(1)));
        let dests: Vec<NodeId> = set.iter(t(1)).map(|t| t.dest).collect();
        assert_eq!(dests, vec![NodeId(2)]);
    }

    #[test]
    fn topology_purge() {
        let mut set = TopologySet::default();
        set.apply_tc(NodeId(5), 1, &[NodeId(1)], t(5), t(0));
        set.apply_tc(NodeId(6), 1, &[NodeId(2)], t(50), t(0));
        assert_eq!(set.purge(t(10)), vec![(NodeId(5), NodeId(1))]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn duplicate_set_semantics() {
        let mut set = DuplicateSet::default();
        let seq = SequenceNumber(7);
        assert!(!set.seen(NodeId(1), seq, t(0)));
        set.record(NodeId(1), seq, false, t(30), t(0));
        assert!(set.seen(NodeId(1), seq, t(0)));
        assert!(!set.retransmitted(NodeId(1), seq, t(0)));
        set.record(NodeId(1), seq, true, t(30), t(1));
        assert!(set.retransmitted(NodeId(1), seq, t(0)));
        // Retransmission flag is sticky.
        set.record(NodeId(1), seq, false, t(30), t(2));
        assert!(set.retransmitted(NodeId(1), seq, t(0)));
        set.purge(t(30));
        assert!(set.is_empty());
    }

    #[test]
    fn duplicate_record_overwrites_expired_leftovers() {
        let mut set = DuplicateSet::default();
        let seq = SequenceNumber(7);
        set.record(NodeId(1), seq, true, t(10), t(0));
        // The same (originator, seq) reappears after expiry (sequence
        // wraparound): it is a different message, so the stale
        // retransmitted flag must not stick.
        set.record(NodeId(1), seq, false, t(40), t(20));
        assert!(set.seen(NodeId(1), seq, t(20)));
        assert!(!set.retransmitted(NodeId(1), seq, t(20)));
    }

    #[test]
    fn purges_are_min_expiry_gated() {
        // A purge before the earliest expiry must remove nothing; at the
        // expiry it removes exactly the due tuples and re-tracks the rest.
        let mut links = LinkSet::default();
        links.upsert(LinkTuple {
            neighbor: NodeId(1),
            sym_until: t(5),
            asym_until: t(5),
            until: t(5),
        });
        links.upsert(LinkTuple {
            neighbor: NodeId(2),
            sym_until: t(9),
            asym_until: t(9),
            until: t(9),
        });
        assert!(links.purge(t(4)).is_empty());
        assert_eq!(links.purge(t(5)), vec![NodeId(1)]);
        assert!(links.purge(t(8)).is_empty()); // bound re-tracked to t(9)
        assert_eq!(links.purge(t(9)), vec![NodeId(2)]);

        let mut topo = TopologySet::default();
        topo.apply_tc(NodeId(5), 1, &[NodeId(1)], t(5), t(0));
        assert!(topo.purge(t(4)).is_empty());
        assert_eq!(topo.purge(t(5)), vec![(NodeId(5), NodeId(1))]);
        assert!(topo.purge(t(100)).is_empty()); // empty set: bound is +inf
    }

    #[test]
    fn interface_associations_resolve() {
        let mut set = InterfaceAssociationSet::default();
        set.upsert(NodeId(50), NodeId(5), t(10));
        assert_eq!(set.main_of(NodeId(50), t(5)), NodeId(5));
        assert_eq!(set.main_of(NodeId(50), t(10)), NodeId(50)); // expired
        assert_eq!(set.main_of(NodeId(7), t(5)), NodeId(7)); // identity
        set.purge(t(10));
        assert!(set.is_empty());
    }
}
