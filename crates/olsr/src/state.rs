//! The OLSR information repositories (RFC 3626 §4.2–§4.4): link set,
//! neighbor set, 2-hop neighbor set, MPR selector set, topology set,
//! duplicate set and the MID interface-association set.
//!
//! Every repository is a collection of *tuples valid until a time*; the
//! [`purge`](LinkSet::purge) family removes expired entries and reports
//! whether anything changed (so the node knows to recompute MPRs/routes and
//! to write the corresponding audit-log lines).

use std::collections::{BTreeMap, BTreeSet};

use trustlink_sim::{NodeId, SimTime};

use crate::types::{SequenceNumber, Willingness};

/// One sensed link to a 1-hop neighbor (RFC 3626 §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTuple {
    /// The neighbor's main address.
    pub neighbor: NodeId,
    /// Until when the link counts as symmetric.
    pub sym_until: SimTime,
    /// Until when the link counts as heard (asymmetric).
    pub asym_until: SimTime,
    /// When the whole tuple expires.
    pub until: SimTime,
}

impl LinkTuple {
    /// Link status at `now`: symmetric beats asymmetric beats lost.
    pub fn status(&self, now: SimTime) -> LinkStatus {
        if self.sym_until > now {
            LinkStatus::Symmetric
        } else if self.asym_until > now {
            LinkStatus::Asymmetric
        } else {
            LinkStatus::Lost
        }
    }
}

/// The sensed status of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkStatus {
    /// Verified bidirectional.
    Symmetric,
    /// Heard one-way only.
    Asymmetric,
    /// Expired or declared lost.
    Lost,
}

/// The link set: every link this node has sensed recently.
#[derive(Debug, Clone, Default)]
pub struct LinkSet {
    tuples: BTreeMap<NodeId, LinkTuple>,
}

impl LinkSet {
    /// Looks up the tuple for `neighbor`.
    pub fn get(&self, neighbor: NodeId) -> Option<&LinkTuple> {
        self.tuples.get(&neighbor)
    }

    /// Inserts or updates the tuple for `neighbor`, merging expiry times
    /// (times only ever extend; purging is how they shrink).
    pub fn upsert(&mut self, tuple: LinkTuple) {
        self.tuples
            .entry(tuple.neighbor)
            .and_modify(|t| {
                t.sym_until = t.sym_until.max(tuple.sym_until);
                t.asym_until = t.asym_until.max(tuple.asym_until);
                t.until = t.until.max(tuple.until);
            })
            .or_insert(tuple);
    }

    /// Forces the symmetric validity of `neighbor` to expire immediately
    /// (used when a HELLO explicitly declares the link `LOST`).
    pub fn declare_lost(&mut self, neighbor: NodeId, now: SimTime) {
        if let Some(t) = self.tuples.get_mut(&neighbor) {
            t.sym_until = now;
        }
    }

    /// Neighbors with a symmetric link at `now`, ascending.
    pub fn symmetric_neighbors(&self, now: SimTime) -> Vec<NodeId> {
        self.tuples
            .values()
            .filter(|t| t.status(now) == LinkStatus::Symmetric)
            .map(|t| t.neighbor)
            .collect()
    }

    /// Neighbors with at least an asymmetric link at `now`, ascending.
    pub fn heard_neighbors(&self, now: SimTime) -> Vec<NodeId> {
        self.tuples
            .values()
            .filter(|t| t.status(now) != LinkStatus::Lost)
            .map(|t| t.neighbor)
            .collect()
    }

    /// Removes tuples wholly expired at `now`; returns the removed
    /// neighbors.
    pub fn purge(&mut self, now: SimTime) -> Vec<NodeId> {
        let dead: Vec<NodeId> =
            self.tuples.values().filter(|t| t.until <= now).map(|t| t.neighbor).collect();
        for d in &dead {
            self.tuples.remove(d);
        }
        dead
    }

    /// Number of tuples (including expired-but-unpurged ones).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when no link has been sensed.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over all tuples, ascending by neighbor.
    pub fn iter(&self) -> impl Iterator<Item = &LinkTuple> {
        self.tuples.values()
    }
}

/// A 1-hop neighbor entry (RFC 3626 §4.3.1): status + willingness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborTuple {
    /// The neighbor's main address.
    pub addr: NodeId,
    /// Its last advertised willingness.
    pub willingness: Willingness,
}

/// The neighbor set, derived from the link set but carrying willingness.
#[derive(Debug, Clone, Default)]
pub struct NeighborSet {
    tuples: BTreeMap<NodeId, NeighborTuple>,
}

impl NeighborSet {
    /// Inserts or updates a neighbor.
    pub fn upsert(&mut self, addr: NodeId, willingness: Willingness) {
        self.tuples
            .entry(addr)
            .and_modify(|t| t.willingness = willingness)
            .or_insert(NeighborTuple { addr, willingness });
    }

    /// Removes a neighbor, returning whether it existed.
    pub fn remove(&mut self, addr: NodeId) -> bool {
        self.tuples.remove(&addr).is_some()
    }

    /// Looks up a neighbor.
    pub fn get(&self, addr: NodeId) -> Option<&NeighborTuple> {
        self.tuples.get(&addr)
    }

    /// `true` when `addr` is currently a neighbor.
    pub fn contains(&self, addr: NodeId) -> bool {
        self.tuples.contains_key(&addr)
    }

    /// All neighbors ascending by address.
    pub fn iter(&self) -> impl Iterator<Item = &NeighborTuple> {
        self.tuples.values()
    }

    /// Addresses of all neighbors, ascending.
    pub fn addrs(&self) -> Vec<NodeId> {
        self.tuples.keys().copied().collect()
    }

    /// Number of neighbors.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when there are no neighbors.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A 2-hop neighbor entry (RFC 3626 §4.3.2): reachable `two_hop` via the
/// symmetric 1-hop neighbor `via`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TwoHopTuple {
    /// The 1-hop neighbor providing reachability.
    pub via: NodeId,
    /// The 2-hop neighbor reached.
    pub two_hop: NodeId,
    /// Expiry.
    pub until: SimTime,
}

/// The 2-hop neighbor set.
#[derive(Debug, Clone, Default)]
pub struct TwoHopSet {
    tuples: BTreeMap<(NodeId, NodeId), SimTime>,
}

impl TwoHopSet {
    /// Inserts or refreshes the pair `(via, two_hop)`.
    pub fn upsert(&mut self, via: NodeId, two_hop: NodeId, until: SimTime) {
        let e = self.tuples.entry((via, two_hop)).or_insert(until);
        *e = (*e).max(until);
    }

    /// Removes every pair advertised through `via` (when a HELLO from `via`
    /// stops listing someone, or the neighbor is lost).
    pub fn remove_via(&mut self, via: NodeId) {
        self.tuples.retain(|(v, _), _| *v != via);
    }

    /// Removes one specific pair.
    pub fn remove(&mut self, via: NodeId, two_hop: NodeId) -> bool {
        self.tuples.remove(&(via, two_hop)).is_some()
    }

    /// All distinct 2-hop addresses at `now`, ascending, excluding `me` and
    /// excluding addresses in `exclude` (RFC: a 2-hop neighbor that is also
    /// a 1-hop neighbor does not need covering).
    pub fn two_hop_addrs(&self, now: SimTime, me: NodeId, exclude: &[NodeId]) -> Vec<NodeId> {
        let ex: BTreeSet<NodeId> = exclude.iter().copied().collect();
        let mut v: Vec<NodeId> = self
            .tuples
            .iter()
            .filter(|(_, &until)| until > now)
            .map(|(&(_, th), _)| th)
            .filter(|th| *th != me && !ex.contains(th))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The 2-hop addresses reachable via `via` at `now`.
    pub fn reachable_via(&self, via: NodeId, now: SimTime) -> Vec<NodeId> {
        self.tuples
            .iter()
            .filter(|(&(v, _), &until)| v == via && until > now)
            .map(|(&(_, th), _)| th)
            .collect()
    }

    /// The 1-hop neighbors through which `two_hop` is reachable at `now`.
    pub fn vias_for(&self, two_hop: NodeId, now: SimTime) -> Vec<NodeId> {
        self.tuples
            .iter()
            .filter(|(&(_, th), &until)| th == two_hop && until > now)
            .map(|(&(v, _), _)| v)
            .collect()
    }

    /// Drops expired pairs; returns the removed `(via, two_hop)` pairs.
    pub fn purge(&mut self, now: SimTime) -> Vec<(NodeId, NodeId)> {
        let dead: Vec<(NodeId, NodeId)> =
            self.tuples.iter().filter(|(_, &until)| until <= now).map(|(&k, _)| k).collect();
        for k in &dead {
            self.tuples.remove(k);
        }
        dead
    }

    /// Iterates all live tuples at `now`.
    pub fn iter(&self, now: SimTime) -> impl Iterator<Item = TwoHopTuple> + '_ {
        self.tuples
            .iter()
            .filter(move |(_, &until)| until > now)
            .map(|(&(via, two_hop), &until)| TwoHopTuple { via, two_hop, until })
    }

    /// Number of stored pairs (live or not).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The MPR selector set (RFC 3626 §4.3.4): neighbors that chose *us* as
/// their MPR. Non-empty selector set ⇒ we must emit TCs and forward floods.
#[derive(Debug, Clone, Default)]
pub struct MprSelectorSet {
    tuples: BTreeMap<NodeId, SimTime>,
}

impl MprSelectorSet {
    /// Inserts or refreshes a selector.
    pub fn upsert(&mut self, addr: NodeId, until: SimTime) -> bool {
        let fresh = !self.tuples.contains_key(&addr);
        let e = self.tuples.entry(addr).or_insert(until);
        *e = (*e).max(until);
        fresh
    }

    /// Removes a selector (on lost symmetry), returning whether it existed.
    pub fn remove(&mut self, addr: NodeId) -> bool {
        self.tuples.remove(&addr).is_some()
    }

    /// `true` when `addr` currently selects us at `now`.
    pub fn contains(&self, addr: NodeId, now: SimTime) -> bool {
        self.tuples.get(&addr).is_some_and(|&until| until > now)
    }

    /// All live selector addresses at `now`, ascending.
    pub fn addrs(&self, now: SimTime) -> Vec<NodeId> {
        self.tuples.iter().filter(|(_, &until)| until > now).map(|(&a, _)| a).collect()
    }

    /// `true` when nobody selects us at `now`.
    pub fn is_empty(&self, now: SimTime) -> bool {
        self.addrs(now).is_empty()
    }

    /// Drops expired entries; returns the removed addresses.
    pub fn purge(&mut self, now: SimTime) -> Vec<NodeId> {
        let dead: Vec<NodeId> =
            self.tuples.iter().filter(|(_, &until)| until <= now).map(|(&a, _)| a).collect();
        for a in &dead {
            self.tuples.remove(a);
        }
        dead
    }
}

/// A topology tuple (RFC 3626 §4.4): `dest` is reachable in the last hop
/// through `last_hop` (an MPR of `dest`), per a TC with sequence `ansn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyTuple {
    /// The advertised destination (an MPR selector of `last_hop`).
    pub dest: NodeId,
    /// The TC originator (the MPR).
    pub last_hop: NodeId,
    /// ANSN carried by the TC that created this tuple.
    pub ansn: u16,
    /// Expiry.
    pub until: SimTime,
}

/// The topology set built from received TCs.
#[derive(Debug, Clone, Default)]
pub struct TopologySet {
    tuples: BTreeMap<(NodeId, NodeId), TopologyTuple>, // key: (last_hop, dest)
}

impl TopologySet {
    /// Latest ANSN recorded for `last_hop`, if any tuple survives.
    pub fn ansn_of(&self, last_hop: NodeId) -> Option<u16> {
        self.tuples.iter().filter(|(&(lh, _), _)| lh == last_hop).map(|(_, t)| t.ansn).next()
    }

    /// Applies a TC from `last_hop` carrying `ansn` and `dests`
    /// (RFC 3626 §9.5): stale-ANSN TCs are ignored; newer ANSNs replace all
    /// tuples of that originator. Returns `true` if the set changed.
    pub fn apply_tc(
        &mut self,
        last_hop: NodeId,
        ansn: u16,
        dests: &[NodeId],
        until: SimTime,
    ) -> bool {
        if let Some(existing) = self.ansn_of(last_hop) {
            let newer = SequenceNumber(ansn).is_newer_than(SequenceNumber(existing));
            if existing != ansn && !newer {
                return false; // stale information
            }
            if newer {
                self.tuples.retain(|(lh, _), _| *lh != last_hop);
            }
        }
        let mut changed = false;
        for &d in dests {
            let t = TopologyTuple { dest: d, last_hop, ansn, until };
            match self.tuples.insert((last_hop, d), t) {
                Some(old) if old.ansn == ansn => {
                    // pure refresh, not a topology change
                }
                _ => changed = true,
            }
        }
        changed
    }

    /// All live tuples at `now`.
    pub fn iter(&self, now: SimTime) -> impl Iterator<Item = &TopologyTuple> {
        self.tuples.values().filter(move |t| t.until > now)
    }

    /// Drops expired tuples; returns removed `(last_hop, dest)` pairs.
    pub fn purge(&mut self, now: SimTime) -> Vec<(NodeId, NodeId)> {
        let dead: Vec<(NodeId, NodeId)> =
            self.tuples.iter().filter(|(_, t)| t.until <= now).map(|(&k, _)| k).collect();
        for k in &dead {
            self.tuples.remove(k);
        }
        dead
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The duplicate set (RFC 3626 §3.4): remembers processed/forwarded
/// messages so floods terminate.
#[derive(Debug, Clone, Default)]
pub struct DuplicateSet {
    tuples: BTreeMap<(NodeId, u16), DuplicateTuple>,
}

/// One remembered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateTuple {
    /// Whether the message has already been retransmitted by this node.
    pub retransmitted: bool,
    /// Expiry.
    pub until: SimTime,
}

impl DuplicateSet {
    /// `true` when `(originator, seq)` was already processed.
    pub fn seen(&self, originator: NodeId, seq: SequenceNumber, now: SimTime) -> bool {
        self.tuples.get(&(originator, seq.0)).is_some_and(|t| t.until > now)
    }

    /// `true` when `(originator, seq)` was already retransmitted.
    pub fn retransmitted(&self, originator: NodeId, seq: SequenceNumber, now: SimTime) -> bool {
        self.tuples.get(&(originator, seq.0)).is_some_and(|t| t.until > now && t.retransmitted)
    }

    /// Records a processed message.
    pub fn record(
        &mut self,
        originator: NodeId,
        seq: SequenceNumber,
        retransmitted: bool,
        until: SimTime,
    ) {
        let e = self
            .tuples
            .entry((originator, seq.0))
            .or_insert(DuplicateTuple { retransmitted, until });
        e.retransmitted |= retransmitted;
        e.until = e.until.max(until);
    }

    /// Drops expired entries.
    pub fn purge(&mut self, now: SimTime) {
        self.tuples.retain(|_, t| t.until > now);
    }

    /// Number of remembered messages.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// The MID interface-association set (RFC 3626 §5.4): alias → main address.
#[derive(Debug, Clone, Default)]
pub struct InterfaceAssociationSet {
    tuples: BTreeMap<NodeId, (NodeId, SimTime)>, // alias -> (main, until)
}

impl InterfaceAssociationSet {
    /// Records that `alias` belongs to `main`.
    pub fn upsert(&mut self, alias: NodeId, main: NodeId, until: SimTime) {
        let e = self.tuples.entry(alias).or_insert((main, until));
        e.0 = main;
        e.1 = e.1.max(until);
    }

    /// Resolves an address to its main address (identity if no MID entry).
    pub fn main_of(&self, addr: NodeId, now: SimTime) -> NodeId {
        match self.tuples.get(&addr) {
            Some(&(main, until)) if until > now => main,
            _ => addr,
        }
    }

    /// Drops expired associations.
    pub fn purge(&mut self, now: SimTime) {
        self.tuples.retain(|_, (_, until)| *until > now);
    }

    /// Number of live+stale associations stored.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn link_status_transitions() {
        let tuple =
            LinkTuple { neighbor: NodeId(1), sym_until: t(5), asym_until: t(10), until: t(12) };
        assert_eq!(tuple.status(t(0)), LinkStatus::Symmetric);
        assert_eq!(tuple.status(t(5)), LinkStatus::Asymmetric);
        assert_eq!(tuple.status(t(10)), LinkStatus::Lost);
    }

    #[test]
    fn link_set_upsert_extends_only() {
        let mut set = LinkSet::default();
        set.upsert(LinkTuple {
            neighbor: NodeId(1),
            sym_until: t(5),
            asym_until: t(5),
            until: t(6),
        });
        set.upsert(LinkTuple {
            neighbor: NodeId(1),
            sym_until: t(3),
            asym_until: t(8),
            until: t(9),
        });
        let tuple = set.get(NodeId(1)).unwrap();
        assert_eq!(tuple.sym_until, t(5)); // not shrunk
        assert_eq!(tuple.asym_until, t(8));
        assert_eq!(tuple.until, t(9));
    }

    #[test]
    fn link_set_symmetric_and_purge() {
        let mut set = LinkSet::default();
        set.upsert(LinkTuple {
            neighbor: NodeId(1),
            sym_until: t(5),
            asym_until: t(5),
            until: t(6),
        });
        set.upsert(LinkTuple {
            neighbor: NodeId(2),
            sym_until: t(0),
            asym_until: t(5),
            until: t(6),
        });
        assert_eq!(set.symmetric_neighbors(t(1)), vec![NodeId(1)]);
        assert_eq!(set.heard_neighbors(t(1)), vec![NodeId(1), NodeId(2)]);
        let dead = set.purge(t(6));
        assert_eq!(dead, vec![NodeId(1), NodeId(2)]);
        assert!(set.is_empty());
    }

    #[test]
    fn link_declared_lost() {
        let mut set = LinkSet::default();
        set.upsert(LinkTuple {
            neighbor: NodeId(1),
            sym_until: t(50),
            asym_until: t(50),
            until: t(60),
        });
        set.declare_lost(NodeId(1), t(10));
        assert_eq!(set.get(NodeId(1)).unwrap().status(t(10)), LinkStatus::Asymmetric);
    }

    #[test]
    fn neighbor_set_basics() {
        let mut set = NeighborSet::default();
        set.upsert(NodeId(3), Willingness::High);
        set.upsert(NodeId(1), Willingness::Default);
        set.upsert(NodeId(3), Willingness::Low); // update
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(NodeId(3)).unwrap().willingness, Willingness::Low);
        assert_eq!(set.addrs(), vec![NodeId(1), NodeId(3)]);
        assert!(set.remove(NodeId(1)));
        assert!(!set.remove(NodeId(1)));
    }

    #[test]
    fn two_hop_set_queries() {
        let mut set = TwoHopSet::default();
        set.upsert(NodeId(1), NodeId(10), t(5));
        set.upsert(NodeId(1), NodeId(11), t(5));
        set.upsert(NodeId(2), NodeId(10), t(5));
        assert_eq!(set.two_hop_addrs(t(0), NodeId(0), &[]), vec![NodeId(10), NodeId(11)]);
        // Excluding 1-hop neighbors and self:
        assert_eq!(set.two_hop_addrs(t(0), NodeId(0), &[NodeId(11)]), vec![NodeId(10)]);
        assert!(set.two_hop_addrs(t(0), NodeId(10), &[NodeId(11)]).is_empty());
        let mut vias = set.vias_for(NodeId(10), t(0));
        vias.sort_unstable();
        assert_eq!(vias, vec![NodeId(1), NodeId(2)]);
        assert_eq!(set.reachable_via(NodeId(1), t(0)), vec![NodeId(10), NodeId(11)]);
    }

    #[test]
    fn two_hop_expiry_and_removal() {
        let mut set = TwoHopSet::default();
        set.upsert(NodeId(1), NodeId(10), t(5));
        set.upsert(NodeId(2), NodeId(20), t(50));
        assert!(set.two_hop_addrs(t(10), NodeId(0), &[]).contains(&NodeId(20)));
        assert!(!set.two_hop_addrs(t(10), NodeId(0), &[]).contains(&NodeId(10)));
        let dead = set.purge(t(10));
        assert_eq!(dead, vec![(NodeId(1), NodeId(10))]);
        set.remove_via(NodeId(2));
        assert!(set.is_empty());
    }

    #[test]
    fn mpr_selector_set() {
        let mut set = MprSelectorSet::default();
        assert!(set.upsert(NodeId(1), t(5)));
        assert!(!set.upsert(NodeId(1), t(8))); // refresh, not fresh
        assert!(set.contains(NodeId(1), t(7)));
        assert!(!set.contains(NodeId(1), t(9)));
        assert!(set.is_empty(t(9)));
        assert_eq!(set.purge(t(9)), vec![NodeId(1)]);
        assert!(!set.remove(NodeId(1)));
    }

    #[test]
    fn topology_ansn_rules() {
        let mut set = TopologySet::default();
        assert!(set.apply_tc(NodeId(5), 10, &[NodeId(1), NodeId(2)], t(15)));
        assert_eq!(set.iter(t(0)).count(), 2);
        // Same ANSN again: pure refresh, no change signal.
        assert!(!set.apply_tc(NodeId(5), 10, &[NodeId(1), NodeId(2)], t(20)));
        // Stale ANSN ignored.
        assert!(!set.apply_tc(NodeId(5), 9, &[NodeId(9)], t(20)));
        assert_eq!(set.iter(t(0)).count(), 2);
        // Newer ANSN replaces the originator's tuples wholesale.
        assert!(set.apply_tc(NodeId(5), 11, &[NodeId(3)], t(25)));
        let dests: Vec<NodeId> = set.iter(t(0)).map(|t| t.dest).collect();
        assert_eq!(dests, vec![NodeId(3)]);
    }

    #[test]
    fn topology_ansn_wraparound() {
        let mut set = TopologySet::default();
        assert!(set.apply_tc(NodeId(5), u16::MAX, &[NodeId(1)], t(15)));
        // 0 is "newer" than 65535 under RFC §19 arithmetic.
        assert!(set.apply_tc(NodeId(5), 0, &[NodeId(2)], t(20)));
        let dests: Vec<NodeId> = set.iter(t(0)).map(|t| t.dest).collect();
        assert_eq!(dests, vec![NodeId(2)]);
    }

    #[test]
    fn topology_purge() {
        let mut set = TopologySet::default();
        set.apply_tc(NodeId(5), 1, &[NodeId(1)], t(5));
        set.apply_tc(NodeId(6), 1, &[NodeId(2)], t(50));
        assert_eq!(set.purge(t(10)), vec![(NodeId(5), NodeId(1))]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn duplicate_set_semantics() {
        let mut set = DuplicateSet::default();
        let seq = SequenceNumber(7);
        assert!(!set.seen(NodeId(1), seq, t(0)));
        set.record(NodeId(1), seq, false, t(30));
        assert!(set.seen(NodeId(1), seq, t(0)));
        assert!(!set.retransmitted(NodeId(1), seq, t(0)));
        set.record(NodeId(1), seq, true, t(30));
        assert!(set.retransmitted(NodeId(1), seq, t(0)));
        // Retransmission flag is sticky.
        set.record(NodeId(1), seq, false, t(30));
        assert!(set.retransmitted(NodeId(1), seq, t(0)));
        set.purge(t(30));
        assert!(set.is_empty());
    }

    #[test]
    fn interface_associations_resolve() {
        let mut set = InterfaceAssociationSet::default();
        set.upsert(NodeId(50), NodeId(5), t(10));
        assert_eq!(set.main_of(NodeId(50), t(5)), NodeId(5));
        assert_eq!(set.main_of(NodeId(50), t(10)), NodeId(50)); // expired
        assert_eq!(set.main_of(NodeId(7), t(5)), NodeId(7)); // identity
        set.purge(t(10));
        assert!(set.is_empty());
    }
}
