//! The audit-log record vocabulary — re-exported from the simulator.
//!
//! The vocabulary moved down into [`trustlink_sim::record`] when the engine's
//! log buffers became typed: every node's [`trustlink_sim::LogBuffer`] now
//! stores [`LogRecord`] values directly, so the defining crate must sit below
//! the routing layer. This module keeps the historical import path
//! (`trustlink_olsr::logging::{LogRecord, parse_line, ...}`) working.

pub use trustlink_sim::record::{
    from_rlog_line, parse_line, FlightRecord, FlightRecorder, LogRecord, MessageKind,
    ParseLogError, SuppressReason, VerdictKind,
};
