//! Routing table calculation (RFC 3626 §10).
//!
//! Routes are shortest paths (hop count) over the union of:
//! * this node's symmetric 1-hop links, and
//! * the topology tuples learned from TCs (`last_hop → dest` edges).
//!
//! [`RoutingTable::compute_avoiding`] additionally excludes one node from
//! the graph — the primitive the paper's investigation uses so that
//! requests/answers "should not go through … the suspicious MPR".

use std::collections::{BTreeMap, VecDeque};

use trustlink_sim::{NodeId, SimTime};

use crate::state::{TopologySet, TwoHopSet};

/// One route entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Final destination.
    pub dest: NodeId,
    /// The symmetric 1-hop neighbor to hand the packet to.
    pub next_hop: NodeId,
    /// Total hop count.
    pub hops: u32,
}

/// A freshly computed routing table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingTable {
    routes: BTreeMap<NodeId, Route>,
}

impl RoutingTable {
    /// Computes the table for `me` from its symmetric neighbors, its 2-hop
    /// neighbor set and the topology set (breadth-first search — all edges
    /// cost one hop). Using the 2-hop set alongside TC-learned topology is
    /// RFC 3626 §10 steps 2–3.
    pub fn compute(
        me: NodeId,
        symmetric_neighbors: &[NodeId],
        two_hop: &TwoHopSet,
        topology: &TopologySet,
        now: SimTime,
    ) -> Self {
        Self::compute_avoiding(me, symmetric_neighbors, two_hop, topology, now, None)
    }

    /// Like [`RoutingTable::compute`] but treats `avoid` as nonexistent:
    /// no route will traverse or terminate at it.
    pub fn compute_avoiding(
        me: NodeId,
        symmetric_neighbors: &[NodeId],
        two_hop: &TwoHopSet,
        topology: &TopologySet,
        now: SimTime,
        avoid: Option<NodeId>,
    ) -> Self {
        // Build adjacency: me -> neighbors, neighbor -> claimed 2-hop,
        // plus TC-learned topology edges. Edges *out of* `me` come only
        // from link sensing: a forged TC or HELLO mentioning this node must
        // never add a first hop that is not a verified symmetric neighbor
        // (the RFC's iterative calculation has the same property).
        let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &n in symmetric_neighbors {
            if Some(n) != avoid && n != me {
                adj.entry(me).or_default().push(n);
            }
        }
        let mut push = |from: NodeId, to: NodeId| {
            if from != me && to != me && from != to {
                adj.entry(from).or_default().push(to);
            }
        };
        for pair in two_hop.iter(now) {
            if Some(pair.via) == avoid || Some(pair.two_hop) == avoid {
                continue;
            }
            push(pair.via, pair.two_hop);
            push(pair.two_hop, pair.via);
        }
        for t in topology.iter(now) {
            if Some(t.last_hop) == avoid || Some(t.dest) == avoid {
                continue;
            }
            // TC edges are advertised by the MPR (last_hop); the RFC treats
            // them as usable in both directions for route calculation
            // because MPR selection requires a symmetric link.
            push(t.last_hop, t.dest);
            push(t.dest, t.last_hop);
        }

        // BFS from me.
        let mut dist: BTreeMap<NodeId, u32> = BTreeMap::new();
        let mut first_hop: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        dist.insert(me, 0);
        queue.push_back(me);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            let Some(nbrs) = adj.get(&u) else { continue };
            for &v in nbrs {
                if dist.contains_key(&v) {
                    continue;
                }
                dist.insert(v, du + 1);
                let fh = if u == me { v } else { first_hop[&u] };
                first_hop.insert(v, fh);
                queue.push_back(v);
            }
        }

        let routes = dist
            .into_iter()
            .filter(|&(d, _)| d != me)
            .map(|(d, hops)| (d, Route { dest: d, next_hop: first_hop[&d], hops }))
            .collect();
        RoutingTable { routes }
    }

    /// The route to `dest`, if any.
    pub fn route_to(&self, dest: NodeId) -> Option<&Route> {
        self.routes.get(&dest)
    }

    /// The next hop toward `dest`, if any.
    pub fn next_hop(&self, dest: NodeId) -> Option<NodeId> {
        self.routes.get(&dest).map(|r| r.next_hop)
    }

    /// All routes, ascending by destination.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.values()
    }

    /// Number of reachable destinations.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` when nothing is reachable.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Destinations whose route changed or disappeared between `self` and
    /// `next` — used by the node to emit `ROUTE_*` audit-log lines.
    pub fn diff<'a>(&'a self, next: &'a RoutingTable) -> RoutingDiff {
        let mut added = Vec::new();
        let mut changed = Vec::new();
        let mut removed = Vec::new();
        for (dest, route) in &next.routes {
            match self.routes.get(dest) {
                None => added.push(*route),
                Some(old) if old != route => changed.push(*route),
                Some(_) => {}
            }
        }
        for dest in self.routes.keys() {
            if !next.routes.contains_key(dest) {
                removed.push(*dest);
            }
        }
        RoutingDiff { added, changed, removed }
    }
}

/// The difference between two routing tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingDiff {
    /// Routes present only in the newer table.
    pub added: Vec<Route>,
    /// Routes whose next hop or hop count changed.
    pub changed: Vec<Route>,
    /// Destinations that became unreachable.
    pub removed: Vec<NodeId>,
}

impl RoutingDiff {
    /// `true` when the tables are identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.changed.is_empty() && self.removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(entries: &[(u16, u16)]) -> TopologySet {
        let mut set = TopologySet::default();
        for (i, &(last_hop, dest)) in entries.iter().enumerate() {
            // Distinct originators may repeat; use one ANSN per last_hop.
            let _ = i;
            set.apply_tc(NodeId(last_hop), 1, &[NodeId(dest)], SimTime::from_secs(1_000));
        }
        set
    }

    fn topo_multi(entries: &[(u16, &[u16])]) -> TopologySet {
        let mut set = TopologySet::default();
        for &(last_hop, dests) in entries {
            let dests: Vec<NodeId> = dests.iter().map(|&d| NodeId(d)).collect();
            set.apply_tc(NodeId(last_hop), 1, &dests, SimTime::from_secs(1_000));
        }
        set
    }

    fn now() -> SimTime {
        SimTime::from_secs(0)
    }

    fn no2h() -> TwoHopSet {
        TwoHopSet::default()
    }

    #[test]
    fn direct_neighbors_are_one_hop() {
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1), NodeId(2)],
            &no2h(),
            &TopologySet::default(),
            now(),
        );
        assert_eq!(table.len(), 2);
        assert_eq!(table.route_to(NodeId(1)).unwrap().hops, 1);
        assert_eq!(table.next_hop(NodeId(2)), Some(NodeId(2)));
    }

    #[test]
    fn multi_hop_chain() {
        // 0 - 1 - 2 - 3 (line); TCs: 1 advertises 2, 2 advertises 3.
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1)],
            &no2h(),
            &topo_multi(&[(1, &[2]), (2, &[3, 1])]),
            now(),
        );
        assert_eq!(table.route_to(NodeId(3)).unwrap().hops, 3);
        assert_eq!(table.next_hop(NodeId(3)), Some(NodeId(1)));
        assert_eq!(table.next_hop(NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn shortest_path_wins() {
        // Two routes to 3: 0-1-3 and 0-2-4-3. BFS must give hops=2 via 1.
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1), NodeId(2)],
            &no2h(),
            &topo_multi(&[(1, &[3]), (2, &[4]), (4, &[3])]),
            now(),
        );
        let r = table.route_to(NodeId(3)).unwrap();
        assert_eq!(r.hops, 2);
        assert_eq!(r.next_hop, NodeId(1));
    }

    #[test]
    fn avoidance_reroutes() {
        // Same two-path topology; avoiding node 1 forces the long way.
        let topo = topo_multi(&[(1, &[3]), (2, &[4]), (4, &[3])]);
        let table = RoutingTable::compute_avoiding(
            NodeId(0),
            &[NodeId(1), NodeId(2)],
            &no2h(),
            &topo,
            now(),
            Some(NodeId(1)),
        );
        let r = table.route_to(NodeId(3)).unwrap();
        assert_eq!(r.hops, 3);
        assert_eq!(r.next_hop, NodeId(2));
        // And node 1 itself is unroutable.
        assert!(table.route_to(NodeId(1)).is_none());
    }

    #[test]
    fn avoidance_can_disconnect() {
        // 0 - 1 - 2: avoiding 1 leaves 2 unreachable.
        let table = RoutingTable::compute_avoiding(
            NodeId(0),
            &[NodeId(1)],
            &no2h(),
            &topo(&[(1, 2)]),
            now(),
            Some(NodeId(1)),
        );
        assert!(table.is_empty());
    }

    #[test]
    fn unreachable_nodes_absent() {
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1)],
            &no2h(),
            &topo_multi(&[(5, &[6])]), // disconnected island
            now(),
        );
        assert!(table.route_to(NodeId(6)).is_none());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn expired_topology_ignored() {
        let mut set = TopologySet::default();
        set.apply_tc(NodeId(1), 1, &[NodeId(2)], SimTime::from_secs(5));
        let table =
            RoutingTable::compute(NodeId(0), &[NodeId(1)], &no2h(), &set, SimTime::from_secs(10));
        assert!(table.route_to(NodeId(2)).is_none());
    }

    #[test]
    fn diff_reports_changes() {
        let t1 = RoutingTable::compute(NodeId(0), &[NodeId(1)], &no2h(), &topo(&[(1, 2)]), now());
        let t2 = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1), NodeId(3)],
            &no2h(),
            &TopologySet::default(),
            now(),
        );
        let diff = t1.diff(&t2);
        assert_eq!(diff.added.iter().map(|r| r.dest).collect::<Vec<_>>(), vec![NodeId(3)]);
        assert_eq!(diff.removed, vec![NodeId(2)]);
        assert!(t1.diff(&t1.clone()).is_empty());
    }

    #[test]
    fn routes_never_point_to_self() {
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1)],
            &no2h(),
            &topo_multi(&[(1, &[0, 2])]), // topology mentioning me
            now(),
        );
        assert!(table.route_to(NodeId(0)).is_none());
        assert_eq!(table.route_to(NodeId(2)).unwrap().hops, 2);
    }
}
