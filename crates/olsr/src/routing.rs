//! Routing table calculation (RFC 3626 §10).
//!
//! Routes are shortest paths (hop count) over the union of:
//! * this node's symmetric 1-hop links, and
//! * the topology tuples learned from TCs (`last_hop → dest` edges).
//!
//! [`RoutingTable::compute_avoiding`] additionally excludes one node from
//! the graph — the primitive the paper's investigation uses so that
//! requests/answers "should not go through … the suspicious MPR".

use std::collections::VecDeque;

use trustlink_sim::{NodeId, SimTime};

use crate::state::{TopologySet, TwoHopSet};

/// Unvisited marker in the BFS distance array.
const UNVISITED: u32 = u32::MAX;

/// Reusable scratch state for [`RoutingTable::compute_with`].
///
/// Route calculation runs after every topology-changing packet; the
/// original implementation rebuilt `BTreeMap` adjacency and BFS state per
/// call. The workspace keeps dense per-node-id buffers (node ids are
/// small `u32`s) that survive across recomputations, so the steady-state
/// path allocates only the resulting table.
#[derive(Debug, Clone, Default)]
pub struct RoutingWorkspace {
    /// Adjacency lists indexed by node id; cleared (capacity kept) after
    /// each computation.
    adj: Vec<Vec<NodeId>>,
    /// Ids whose adjacency list is non-empty, for cheap clearing.
    touched: Vec<u32>,
    /// BFS hop counts, [`UNVISITED`] when unreached.
    dist: Vec<u32>,
    /// First hop toward each reached id.
    first_hop: Vec<NodeId>,
    /// BFS frontier.
    queue: VecDeque<NodeId>,
}

impl RoutingWorkspace {
    /// Grows the dense buffers to cover `id`.
    fn ensure(&mut self, id: NodeId) {
        let need = id.index() + 1;
        if self.adj.len() < need {
            self.adj.resize_with(need, Vec::new);
        }
    }

    fn push_edge(&mut self, from: NodeId, to: NodeId) {
        self.ensure(from);
        self.ensure(to);
        let list = &mut self.adj[from.index()];
        if list.is_empty() {
            self.touched.push(from.0);
        }
        list.push(to);
    }

    fn reset_for_next_use(&mut self) {
        for &t in &self.touched {
            self.adj[t as usize].clear();
        }
        self.touched.clear();
    }
}

/// One route entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Final destination.
    pub dest: NodeId,
    /// The symmetric 1-hop neighbor to hand the packet to.
    pub next_hop: NodeId,
    /// Total hop count.
    pub hops: u32,
}

/// A freshly computed routing table.
///
/// Backed by a `Vec<Route>` sorted by destination (node ids are dense
/// `u32`s): lookups are binary searches, iteration is a slice walk, and a
/// table can be recomputed *into* an existing allocation
/// ([`RoutingTable::compute_avoiding_into`]) so the steady-state recompute
/// path allocates nothing once warm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingTable {
    routes: Vec<Route>, // sorted ascending by dest
}

impl RoutingTable {
    /// Computes the table for `me` from its symmetric neighbors, its 2-hop
    /// neighbor set and the topology set (breadth-first search — all edges
    /// cost one hop). Using the 2-hop set alongside TC-learned topology is
    /// RFC 3626 §10 steps 2–3.
    pub fn compute(
        me: NodeId,
        symmetric_neighbors: &[NodeId],
        two_hop: &TwoHopSet,
        topology: &TopologySet,
        now: SimTime,
    ) -> Self {
        Self::compute_avoiding(me, symmetric_neighbors, two_hop, topology, now, None)
    }

    /// Like [`RoutingTable::compute`] but treats `avoid` as nonexistent:
    /// no route will traverse or terminate at it.
    pub fn compute_avoiding(
        me: NodeId,
        symmetric_neighbors: &[NodeId],
        two_hop: &TwoHopSet,
        topology: &TopologySet,
        now: SimTime,
        avoid: Option<NodeId>,
    ) -> Self {
        let mut ws = RoutingWorkspace::default();
        Self::compute_avoiding_with(&mut ws, me, symmetric_neighbors, two_hop, topology, now, avoid)
    }

    /// [`RoutingTable::compute`] through a caller-owned workspace: every
    /// scratch structure is reused, so the only allocation in steady
    /// state is the returned table itself. Results are identical to
    /// [`RoutingTable::compute`] for every input.
    pub fn compute_with(
        ws: &mut RoutingWorkspace,
        me: NodeId,
        symmetric_neighbors: &[NodeId],
        two_hop: &TwoHopSet,
        topology: &TopologySet,
        now: SimTime,
    ) -> Self {
        Self::compute_avoiding_with(ws, me, symmetric_neighbors, two_hop, topology, now, None)
    }

    /// Workspace-reusing form of [`RoutingTable::compute_avoiding`].
    pub fn compute_avoiding_with(
        ws: &mut RoutingWorkspace,
        me: NodeId,
        symmetric_neighbors: &[NodeId],
        two_hop: &TwoHopSet,
        topology: &TopologySet,
        now: SimTime,
        avoid: Option<NodeId>,
    ) -> Self {
        let mut out = RoutingTable::default();
        Self::compute_avoiding_into(
            ws,
            &mut out,
            me,
            symmetric_neighbors,
            two_hop,
            topology,
            now,
            avoid,
        );
        out
    }

    /// Fully allocation-free form: the scratch state lives in `ws` and the
    /// result is written into `out` (cleared first, capacity kept).
    /// Results are identical to [`RoutingTable::compute_avoiding`] for
    /// every input.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_avoiding_into(
        ws: &mut RoutingWorkspace,
        out: &mut RoutingTable,
        me: NodeId,
        symmetric_neighbors: &[NodeId],
        two_hop: &TwoHopSet,
        topology: &TopologySet,
        now: SimTime,
        avoid: Option<NodeId>,
    ) {
        // Build adjacency: me -> neighbors, neighbor -> claimed 2-hop,
        // plus TC-learned topology edges. Edges *out of* `me` come only
        // from link sensing: a forged TC or HELLO mentioning this node must
        // never add a first hop that is not a verified symmetric neighbor
        // (the RFC's iterative calculation has the same property).
        ws.ensure(me);
        for &n in symmetric_neighbors {
            if Some(n) != avoid && n != me {
                ws.push_edge(me, n);
            }
        }
        for pair in two_hop.iter(now) {
            if Some(pair.via) == avoid || Some(pair.two_hop) == avoid {
                continue;
            }
            Self::push_relayed(ws, me, pair.via, pair.two_hop);
            Self::push_relayed(ws, me, pair.two_hop, pair.via);
        }
        for t in topology.iter(now) {
            if Some(t.last_hop) == avoid || Some(t.dest) == avoid {
                continue;
            }
            // TC edges are advertised by the MPR (last_hop); the RFC treats
            // them as usable in both directions for route calculation
            // because MPR selection requires a symmetric link.
            Self::push_relayed(ws, me, t.last_hop, t.dest);
            Self::push_relayed(ws, me, t.dest, t.last_hop);
        }

        // BFS from me over dense arrays (node ids are small integers).
        let n = ws.adj.len();
        ws.dist.clear();
        ws.dist.resize(n, UNVISITED);
        ws.first_hop.clear();
        ws.first_hop.resize(n, me);
        ws.queue.clear();
        ws.dist[me.index()] = 0;
        ws.queue.push_back(me);
        while let Some(u) = ws.queue.pop_front() {
            let du = ws.dist[u.index()];
            // The adjacency list is moved out during the scan so the BFS
            // state can be written; edges never target their own source,
            // so the list cannot be observed empty mid-scan.
            let nbrs = std::mem::take(&mut ws.adj[u.index()]);
            for &v in &nbrs {
                if ws.dist[v.index()] != UNVISITED {
                    continue;
                }
                ws.dist[v.index()] = du + 1;
                ws.first_hop[v.index()] = if u == me { v } else { ws.first_hop[u.index()] };
                ws.queue.push_back(v);
            }
            ws.adj[u.index()] = nbrs;
        }

        out.routes.clear();
        for i in 0..n {
            let hops = ws.dist[i];
            let dest = NodeId(i as u32);
            if hops == UNVISITED || dest == me {
                continue;
            }
            // Ascending `i` keeps the vec sorted by destination.
            out.routes.push(Route { dest, next_hop: ws.first_hop[i], hops });
        }
        ws.reset_for_next_use();
    }

    /// Adds a learned (non-link-sensed) edge, filtering anything touching
    /// `me` or degenerate self-loops — the guard the old closure applied.
    fn push_relayed(ws: &mut RoutingWorkspace, me: NodeId, from: NodeId, to: NodeId) {
        if from != me && to != me && from != to {
            ws.push_edge(from, to);
        }
    }

    /// The route to `dest`, if any.
    pub fn route_to(&self, dest: NodeId) -> Option<&Route> {
        self.routes.binary_search_by_key(&dest, |r| r.dest).ok().map(|i| &self.routes[i])
    }

    /// The next hop toward `dest`, if any.
    pub fn next_hop(&self, dest: NodeId) -> Option<NodeId> {
        self.route_to(dest).map(|r| r.next_hop)
    }

    /// All routes, ascending by destination.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter()
    }

    /// Number of reachable destinations.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` when nothing is reachable.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Destinations whose route changed or disappeared between `self` and
    /// `next` — used by the node to emit `ROUTE_*` audit-log lines. A
    /// single merge walk over the two destination-sorted tables.
    pub fn diff<'a>(&'a self, next: &'a RoutingTable) -> RoutingDiff {
        let mut added = Vec::new();
        let mut changed = Vec::new();
        let mut removed = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.routes.len() || j < next.routes.len() {
            match (self.routes.get(i), next.routes.get(j)) {
                (Some(old), Some(new)) if old.dest == new.dest => {
                    if old != new {
                        changed.push(*new);
                    }
                    i += 1;
                    j += 1;
                }
                (Some(old), Some(new)) if old.dest < new.dest => {
                    removed.push(old.dest);
                    i += 1;
                }
                (Some(_), Some(new)) => {
                    added.push(*new);
                    j += 1;
                }
                (Some(old), None) => {
                    removed.push(old.dest);
                    i += 1;
                }
                (None, Some(new)) => {
                    added.push(*new);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        RoutingDiff { added, changed, removed }
    }
}

/// The difference between two routing tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoutingDiff {
    /// Routes present only in the newer table.
    pub added: Vec<Route>,
    /// Routes whose next hop or hop count changed.
    pub changed: Vec<Route>,
    /// Destinations that became unreachable.
    pub removed: Vec<NodeId>,
}

impl RoutingDiff {
    /// `true` when the tables are identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.changed.is_empty() && self.removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(entries: &[(u32, u32)]) -> TopologySet {
        let mut set = TopologySet::default();
        for (i, &(last_hop, dest)) in entries.iter().enumerate() {
            // Distinct originators may repeat; use one ANSN per last_hop.
            let _ = i;
            set.apply_tc(NodeId(last_hop), 1, &[NodeId(dest)], SimTime::from_secs(1_000), now());
        }
        set
    }

    fn topo_multi(entries: &[(u32, &[u32])]) -> TopologySet {
        let mut set = TopologySet::default();
        for &(last_hop, dests) in entries {
            let dests: Vec<NodeId> = dests.iter().map(|&d| NodeId(d)).collect();
            set.apply_tc(NodeId(last_hop), 1, &dests, SimTime::from_secs(1_000), now());
        }
        set
    }

    fn now() -> SimTime {
        SimTime::from_secs(0)
    }

    fn no2h() -> TwoHopSet {
        TwoHopSet::default()
    }

    #[test]
    fn direct_neighbors_are_one_hop() {
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1), NodeId(2)],
            &no2h(),
            &TopologySet::default(),
            now(),
        );
        assert_eq!(table.len(), 2);
        assert_eq!(table.route_to(NodeId(1)).unwrap().hops, 1);
        assert_eq!(table.next_hop(NodeId(2)), Some(NodeId(2)));
    }

    #[test]
    fn multi_hop_chain() {
        // 0 - 1 - 2 - 3 (line); TCs: 1 advertises 2, 2 advertises 3.
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1)],
            &no2h(),
            &topo_multi(&[(1, &[2]), (2, &[3, 1])]),
            now(),
        );
        assert_eq!(table.route_to(NodeId(3)).unwrap().hops, 3);
        assert_eq!(table.next_hop(NodeId(3)), Some(NodeId(1)));
        assert_eq!(table.next_hop(NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn shortest_path_wins() {
        // Two routes to 3: 0-1-3 and 0-2-4-3. BFS must give hops=2 via 1.
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1), NodeId(2)],
            &no2h(),
            &topo_multi(&[(1, &[3]), (2, &[4]), (4, &[3])]),
            now(),
        );
        let r = table.route_to(NodeId(3)).unwrap();
        assert_eq!(r.hops, 2);
        assert_eq!(r.next_hop, NodeId(1));
    }

    #[test]
    fn avoidance_reroutes() {
        // Same two-path topology; avoiding node 1 forces the long way.
        let topo = topo_multi(&[(1, &[3]), (2, &[4]), (4, &[3])]);
        let table = RoutingTable::compute_avoiding(
            NodeId(0),
            &[NodeId(1), NodeId(2)],
            &no2h(),
            &topo,
            now(),
            Some(NodeId(1)),
        );
        let r = table.route_to(NodeId(3)).unwrap();
        assert_eq!(r.hops, 3);
        assert_eq!(r.next_hop, NodeId(2));
        // And node 1 itself is unroutable.
        assert!(table.route_to(NodeId(1)).is_none());
    }

    #[test]
    fn avoidance_can_disconnect() {
        // 0 - 1 - 2: avoiding 1 leaves 2 unreachable.
        let table = RoutingTable::compute_avoiding(
            NodeId(0),
            &[NodeId(1)],
            &no2h(),
            &topo(&[(1, 2)]),
            now(),
            Some(NodeId(1)),
        );
        assert!(table.is_empty());
    }

    #[test]
    fn unreachable_nodes_absent() {
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1)],
            &no2h(),
            &topo_multi(&[(5, &[6])]), // disconnected island
            now(),
        );
        assert!(table.route_to(NodeId(6)).is_none());
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn expired_topology_ignored() {
        let mut set = TopologySet::default();
        set.apply_tc(NodeId(1), 1, &[NodeId(2)], SimTime::from_secs(5), now());
        let table =
            RoutingTable::compute(NodeId(0), &[NodeId(1)], &no2h(), &set, SimTime::from_secs(10));
        assert!(table.route_to(NodeId(2)).is_none());
    }

    #[test]
    fn diff_reports_changes() {
        let t1 = RoutingTable::compute(NodeId(0), &[NodeId(1)], &no2h(), &topo(&[(1, 2)]), now());
        let t2 = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1), NodeId(3)],
            &no2h(),
            &TopologySet::default(),
            now(),
        );
        let diff = t1.diff(&t2);
        assert_eq!(diff.added.iter().map(|r| r.dest).collect::<Vec<_>>(), vec![NodeId(3)]);
        assert_eq!(diff.removed, vec![NodeId(2)]);
        assert!(t1.diff(&t1.clone()).is_empty());
    }

    #[test]
    fn workspace_reuse_matches_fresh_computation() {
        // One workspace driven across different graphs (shrinking and
        // growing, with and without avoidance) must match the one-shot
        // API every time.
        let mut ws = RoutingWorkspace::default();
        let big = topo_multi(&[(1, &[2, 3]), (2, &[4]), (4, &[3, 5]), (5, &[6])]);
        let small = topo(&[(1, 2)]);
        let sym_big = vec![NodeId(1), NodeId(2)];
        let sym_small = vec![NodeId(1)];
        let runs: Vec<(&[NodeId], &TopologySet, Option<NodeId>)> = vec![
            (&sym_big, &big, None),
            (&sym_small, &small, None),
            (&sym_big, &big, Some(NodeId(2))),
            (&sym_big, &big, None),
            (&sym_small, &small, Some(NodeId(1))),
        ];
        for (sym, topo, avoid) in runs {
            let reused = RoutingTable::compute_avoiding_with(
                &mut ws,
                NodeId(0),
                sym,
                &no2h(),
                topo,
                now(),
                avoid,
            );
            let fresh = RoutingTable::compute_avoiding(NodeId(0), sym, &no2h(), topo, now(), avoid);
            assert_eq!(reused, fresh, "avoid={avoid:?}");
        }
    }

    #[test]
    fn routes_never_point_to_self() {
        let table = RoutingTable::compute(
            NodeId(0),
            &[NodeId(1)],
            &no2h(),
            &topo_multi(&[(1, &[0, 2])]), // topology mentioning me
            now(),
        );
        assert!(table.route_to(NodeId(0)).is_none());
        assert_eq!(table.route_to(NodeId(2)).unwrap().hops, 2);
    }
}
