//! # trustlink-olsr
//!
//! An implementation of the Optimized Link State Routing protocol
//! (RFC 3626) for the `trustlink` MANET simulator — the routing substrate
//! of *"Trust-enabled Link Spoofing Detection in MANET"* (Alattar, Sailhan,
//! Bourgeois — ICDCS WWASN 2012).
//!
//! Implemented, per the RFC:
//!
//! * HELLO-based link sensing, neighbor detection and 2-hop population
//!   (§6–§8), with the mantissa/exponent vtime encoding (§18.3) and the
//!   wrap-aware sequence-number arithmetic (§19);
//! * MPR selection (§8.3.1) and MPR-selector tracking;
//! * TC origination with ANSN handling, MID and HNA processing, and the
//!   default forwarding algorithm (§3.4) that floods through MPRs only;
//! * routing-table calculation (§10), plus route computation that *avoids*
//!   a chosen node — the primitive behind the paper's investigation rule
//!   that requests "should not go through … the suspicious MPR";
//! * a binary wire format over [`bytes`] (16-bit addresses instead of IPv4,
//!   see `DESIGN.md`), with a decoder that never panics on forged input.
//!
//! Beyond the RFC, and central to the paper:
//!
//! * every routing-relevant action writes a line to the node's audit log
//!   ([`logging::LogRecord`]); the intrusion detector parses **only** those
//!   lines, so no change to the routing implementation is ever needed;
//! * the [`hooks::OlsrHooks`] trait exposes exactly the tamper points of
//!   the paper's attack taxonomy (forge / drop / modify-and-forward), used
//!   by the `trustlink-attacks` crate;
//! * a minimal unicast data plane ([`node::OlsrNode::send_data`]) carries
//!   investigation traffic with optional node avoidance.
//!
//! ## Quick example
//!
//! ```
//! use trustlink_olsr::prelude::*;
//! use trustlink_sim::prelude::*;
//!
//! let mut sim = SimulatorBuilder::new(42).radio(RadioConfig::unit_disk(150.0)).build();
//! for i in 0..3 {
//!     sim.add_node(
//!         Box::new(OlsrNode::new(OlsrConfig::fast())),
//!         Position::new(i as f64 * 100.0, 0.0),
//!     );
//! }
//! sim.run_for(SimDuration::from_secs(15));
//! // The end of a 3-node line routes to the other end through the middle.
//! let a = sim.app_as::<OlsrNode>(NodeId(0)).unwrap();
//! assert_eq!(a.routing_table().next_hop(NodeId(2)), Some(NodeId(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hooks;
pub mod logging;
pub mod message;
pub mod mpr;
pub mod node;
pub mod routing;
pub mod state;
pub mod types;
pub mod wire;

/// Glob-import of the types needed to run OLSR nodes.
pub mod prelude {
    pub use crate::hooks::{NoHooks, OlsrHooks};
    pub use crate::logging::{parse_line, LogRecord};
    pub use crate::message::{HelloMessage, MessageBody, Packet, TcMessage};
    pub use crate::node::{OlsrNode, ReceivedData, RecomputeStats};
    pub use crate::routing::{Route, RoutingTable};
    pub use crate::types::{
        FisheyeRing, FisheyeRings, FloodScope, OlsrConfig, RecomputeMode, SequenceNumber,
        Willingness,
    };
}

pub use hooks::{NoHooks, OlsrHooks};
pub use logging::{parse_line, LogRecord};
pub use node::{OlsrNode, ReceivedData, RecomputeStats};
pub use routing::RoutingTable;
pub use types::{FisheyeRing, FisheyeRings, FloodScope, OlsrConfig, RecomputeMode, Willingness};
