//! Binary wire format: a faithful shrinking of RFC 3626 §3 packet/message
//! framing. Addresses are escape-encoded main addresses ([`NodeId`])
//! instead of 32-bit IPv4 — documented in `DESIGN.md`; nothing in the
//! protocol logic depends on the address width. Addresses below
//! [`NodeId::WIRE_ESCAPE`] occupy the two bytes the original 16-bit
//! format used (so every historical scenario encodes byte-for-byte
//! identically); wider addresses encode as the escape marker plus the
//! full 32-bit value, which is what lets 10⁵-node scenarios exist at
//! all.
//!
//! Decoding is total: malformed input yields a [`WireError`], never a panic,
//! so forged packets from attack nodes can be thrown at the parser safely.

use bytes::{Buf, BufMut, Bytes};
use trustlink_sim::NodeId;

use crate::message::{
    decode_vtime, encode_vtime, DataMessage, HelloMessage, HnaMessage, LinkCode, LinkGroup,
    Message, MessageBody, MidMessage, Packet, TcMessage,
};
use crate::types::{SequenceNumber, Willingness};

/// Errors produced while decoding a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced structure was complete.
    Truncated,
    /// A length field is inconsistent (zero, overlapping, or past the end).
    BadLength,
    /// A message carries a type byte this implementation does not know.
    UnknownMessageType(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadLength => write!(f, "inconsistent length field"),
            WireError::UnknownMessageType(t) => write!(f, "unknown message type {t}"),
        }
    }
}

impl std::error::Error for WireError {}

const PACKET_HEADER_LEN: usize = 4;
/// Header length with a narrow (two-byte) originator; a wide originator
/// adds four bytes, discovered while parsing.
const MESSAGE_HEADER_LEN: usize = 10;
/// Bare sentinel for "no avoid constraint" in data messages, kept at the
/// historical two-byte `0xFFFF`. Because that value collides with the
/// address escape marker, the avoid field uses `0xFFFE` as *its* escape:
/// real addresses below `0xFFFE` encode bare, anything wider (including
/// `0xFFFE` itself) escapes to the 32-bit form.
const NO_AVOID: u16 = u16::MAX;
const AVOID_ESCAPE: u16 = u16::MAX - 1;

fn put_avoid(buf: &mut Vec<u8>, avoid: Option<NodeId>) {
    match avoid {
        None => buf.put_u16(NO_AVOID),
        Some(n) if n.0 < u32::from(AVOID_ESCAPE) => buf.put_u16(n.0 as u16),
        Some(n) => {
            buf.put_u16(AVOID_ESCAPE);
            buf.put_u32(n.0);
        }
    }
}

fn get_avoid(bytes: &mut Bytes) -> Result<Option<NodeId>, WireError> {
    if bytes.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    match bytes.get_u16() {
        NO_AVOID => Ok(None),
        AVOID_ESCAPE => {
            if bytes.remaining() < 4 {
                return Err(WireError::Truncated);
            }
            Ok(Some(NodeId(bytes.get_u32())))
        }
        v => Ok(Some(NodeId(u32::from(v)))),
    }
}

fn get_addr(bytes: &mut Bytes) -> Result<NodeId, WireError> {
    NodeId::get(bytes).ok_or(WireError::Truncated)
}

/// Walks one escape-encoded address in a raw slice during structural
/// validation; `None` when the slice ends inside the address.
fn skip_addr(buf: &[u8], off: usize) -> Option<usize> {
    NodeId::read_at(buf, off).map(|(_, n)| off + n)
}

const MSG_HELLO: u8 = 1;
const MSG_TC: u8 = 2;
const MSG_MID: u8 = 3;
const MSG_HNA: u8 = 4;
const MSG_DATA: u8 = 200;

/// Encodes a packet to bytes.
///
/// # Panics
///
/// Panics if a data payload exceeds `u16::MAX` bytes or a message would
/// overflow the 16-bit size field (neither occurs with protocol-generated
/// traffic).
pub fn encode_packet(packet: &Packet) -> Bytes {
    let mut scratch = Vec::with_capacity(64);
    encode_packet_into(packet, &mut scratch)
}

/// Encodes a packet through a caller-owned scratch buffer.
///
/// `scratch` is cleared and refilled; reusing one buffer across packets
/// makes the encode path allocation-stable — after warm-up, the only
/// allocation per frame is the exact-size [`Bytes`] the radio needs to
/// own anyway. [`OlsrNode`](crate::node::OlsrNode) holds such a buffer
/// for every transmission.
///
/// # Panics
///
/// Same contract as [`encode_packet`].
pub fn encode_packet_into(packet: &Packet, scratch: &mut Vec<u8>) -> Bytes {
    scratch.clear();
    scratch.put_u16(0); // length placeholder
    scratch.put_u16(packet.seq.0);
    for msg in &packet.messages {
        encode_message(scratch, msg);
    }
    let len = u16::try_from(scratch.len()).expect("packet too large");
    scratch[0..2].copy_from_slice(&len.to_be_bytes());
    Bytes::copy_from_slice(scratch)
}

fn encode_message(buf: &mut Vec<u8>, msg: &Message) {
    let start = buf.len();
    buf.put_u8(msg.body.type_byte());
    buf.put_u8(encode_vtime(msg.vtime));
    buf.put_u16(0); // size placeholder
    msg.originator.put(buf);
    buf.put_u8(msg.ttl);
    buf.put_u8(msg.hop_count);
    buf.put_u16(msg.seq.0);
    match &msg.body {
        MessageBody::Hello(h) => encode_hello(buf, h),
        MessageBody::Tc(t) => encode_tc(buf, t),
        MessageBody::Mid(m) => {
            for a in &m.aliases {
                a.put(buf);
            }
        }
        MessageBody::Hna(h) => {
            for (net, prefix) in &h.networks {
                net.put(buf);
                buf.put_u8(*prefix);
                buf.put_u8(0);
            }
        }
        MessageBody::Data(d) => {
            d.src.put(buf);
            d.dst.put(buf);
            put_avoid(buf, d.avoid);
            let plen = u16::try_from(d.payload.len()).expect("payload too large");
            buf.put_u16(plen);
            buf.put_slice(&d.payload);
        }
    }
    let size = u16::try_from(buf.len() - start).expect("message too large");
    buf[start + 2..start + 4].copy_from_slice(&size.to_be_bytes());
}

fn encode_hello(buf: &mut Vec<u8>, h: &HelloMessage) {
    buf.put_u16(0); // reserved
    buf.put_u8(0); // htime (unused by receivers here)
    buf.put_u8(h.willingness.to_wire());
    for group in &h.groups {
        buf.put_u8(group.code.to_wire());
        buf.put_u8(0); // reserved
        let addr_bytes: usize = group.addrs.iter().map(|a| a.wire_len()).sum();
        let size = u16::try_from(4 + addr_bytes).expect("group too large");
        buf.put_u16(size);
        for a in &group.addrs {
            a.put(buf);
        }
    }
}

fn encode_tc(buf: &mut Vec<u8>, t: &TcMessage) {
    buf.put_u16(t.ansn);
    buf.put_u16(0); // reserved
    for a in &t.advertised {
        a.put(buf);
    }
}

/// Recyclable buffers for packet decoding.
///
/// Encoding has been allocation-stable since the `encode_packet_into`
/// scratch buffer; decoding still built every `Vec` inside a [`Packet`]
/// from scratch on each reception — the remaining hot-path allocation at
/// scale. A `DecodeArena` closes it: [`decode_packet_with`] draws the
/// message, group, address and network vectors from the arena's free
/// lists, and [`recycle`](DecodeArena::recycle) walks a fully processed
/// packet and parks every vector for the next reception. Payload bytes
/// are zero-copy [`Bytes`] slices of the received frame and need no
/// recycling. Once warm, a steady-state reception decodes without
/// touching the allocator.
#[derive(Debug, Default)]
pub struct DecodeArena {
    msg_bufs: Vec<Vec<Message>>,
    group_bufs: Vec<Vec<LinkGroup>>,
    addr_bufs: Vec<Vec<NodeId>>,
    net_bufs: Vec<Vec<(NodeId, u8)>>,
}

impl DecodeArena {
    fn take_msgs(&mut self) -> Vec<Message> {
        self.msg_bufs.pop().unwrap_or_default()
    }

    fn take_groups(&mut self) -> Vec<LinkGroup> {
        self.group_bufs.pop().unwrap_or_default()
    }

    fn take_addrs(&mut self) -> Vec<NodeId> {
        self.addr_bufs.pop().unwrap_or_default()
    }

    fn take_nets(&mut self) -> Vec<(NodeId, u8)> {
        self.net_bufs.pop().unwrap_or_default()
    }

    /// Takes a fully processed packet apart and parks its vectors (cleared,
    /// capacity kept) for the next [`decode_packet_with`] call.
    pub fn recycle(&mut self, packet: Packet) {
        let mut msgs = packet.messages;
        for msg in msgs.drain(..) {
            self.recycle_message(msg);
        }
        self.msg_bufs.push(msgs);
    }

    /// Parks one message's vectors, for callers that materialize messages
    /// individually ([`materialize_message`]) rather than whole packets.
    pub fn recycle_message(&mut self, msg: Message) {
        match msg.body {
            MessageBody::Hello(h) => {
                let mut groups = h.groups;
                for g in groups.drain(..) {
                    let mut addrs = g.addrs;
                    addrs.clear();
                    self.addr_bufs.push(addrs);
                }
                self.group_bufs.push(groups);
            }
            MessageBody::Tc(t) => {
                let mut addrs = t.advertised;
                addrs.clear();
                self.addr_bufs.push(addrs);
            }
            MessageBody::Mid(m) => {
                let mut addrs = m.aliases;
                addrs.clear();
                self.addr_bufs.push(addrs);
            }
            MessageBody::Hna(h) => {
                let mut nets = h.networks;
                nets.clear();
                self.net_bufs.push(nets);
            }
            MessageBody::Data(_) => {} // payload is a zero-copy slice
        }
    }
}

/// Decodes a packet from bytes.
///
/// Convenience wrapper around [`decode_packet_with`] paying fresh
/// allocations; reception hot paths should hold a [`DecodeArena`].
///
/// # Errors
///
/// Returns a [`WireError`] when the buffer is truncated, a length field is
/// inconsistent, or a message type is unknown.
pub fn decode_packet(bytes: Bytes) -> Result<Packet, WireError> {
    let mut arena = DecodeArena::default();
    decode_packet_with(&mut arena, bytes)
}

/// Decodes a packet drawing every vector from `arena` (see
/// [`DecodeArena`]). Results are identical to [`decode_packet`] for every
/// input. On error, partially drawn buffers are dropped, not leaked back
/// into the arena — errors are the cold path.
///
/// # Errors
///
/// Same contract as [`decode_packet`].
pub fn decode_packet_with(arena: &mut DecodeArena, mut bytes: Bytes) -> Result<Packet, WireError> {
    if bytes.len() < PACKET_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    // Declared length covers the whole packet including the 4 header bytes;
    // two of them were already consumed by get_u16.
    let declared = bytes.get_u16() as usize;
    if declared < PACKET_HEADER_LEN {
        return Err(WireError::BadLength);
    }
    match declared.cmp(&(bytes.len() + 2)) {
        std::cmp::Ordering::Greater => return Err(WireError::Truncated),
        std::cmp::Ordering::Less => return Err(WireError::BadLength),
        std::cmp::Ordering::Equal => {}
    }
    let seq = SequenceNumber(bytes.get_u16());
    // Protocol packets carry a handful of messages; clamp the hint so a
    // forged frame full of payload bytes cannot force a huge reservation.
    let mut messages = arena.take_msgs();
    messages.reserve((bytes.remaining() / MESSAGE_HEADER_LEN).min(4));
    while bytes.has_remaining() {
        messages.push(decode_message(arena, &mut bytes)?);
    }
    Ok(Packet { seq, messages })
}

fn decode_message(arena: &mut DecodeArena, bytes: &mut Bytes) -> Result<Message, WireError> {
    if bytes.remaining() < MESSAGE_HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let msg_type = bytes.get_u8();
    let vtime = decode_vtime(bytes.get_u8());
    let size = bytes.get_u16() as usize;
    let originator = get_addr(bytes)?;
    if bytes.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let ttl = bytes.get_u8();
    let hop_count = bytes.get_u8();
    let seq = SequenceNumber(bytes.get_u16());
    // type + vtime + size, the escape-encoded originator, ttl + hops + seq.
    let header_len = 4 + originator.wire_len() + 4;
    if size < header_len {
        return Err(WireError::BadLength);
    }
    let body_len = size - header_len;
    if bytes.remaining() < body_len {
        return Err(WireError::Truncated);
    }
    let mut body_bytes = bytes.split_to(body_len);
    let body = match msg_type {
        MSG_HELLO => MessageBody::Hello(decode_hello(arena, &mut body_bytes)?),
        MSG_TC => MessageBody::Tc(decode_tc(arena, &mut body_bytes)?),
        MSG_MID => MessageBody::Mid(decode_mid(arena, &mut body_bytes)?),
        MSG_HNA => MessageBody::Hna(decode_hna(arena, &mut body_bytes)?),
        MSG_DATA => MessageBody::Data(decode_data(&mut body_bytes)?),
        other => return Err(WireError::UnknownMessageType(other)),
    };
    Ok(Message { vtime, originator, ttl, hop_count, seq, body })
}

fn decode_mid(arena: &mut DecodeArena, bytes: &mut Bytes) -> Result<MidMessage, WireError> {
    let mut aliases = arena.take_addrs();
    aliases.reserve(bytes.remaining() / 2);
    while bytes.has_remaining() {
        aliases.push(get_addr(bytes)?);
    }
    Ok(MidMessage { aliases })
}

fn decode_hna(arena: &mut DecodeArena, bytes: &mut Bytes) -> Result<HnaMessage, WireError> {
    let mut networks = arena.take_nets();
    networks.reserve(bytes.remaining() / 4);
    while bytes.has_remaining() {
        let net = get_addr(bytes)?;
        if bytes.remaining() < 2 {
            return Err(WireError::Truncated);
        }
        let prefix = bytes.get_u8();
        let _reserved = bytes.get_u8();
        networks.push((net, prefix));
    }
    Ok(HnaMessage { networks })
}

fn decode_hello(arena: &mut DecodeArena, bytes: &mut Bytes) -> Result<HelloMessage, WireError> {
    if bytes.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let _reserved = bytes.get_u16();
    let _htime = bytes.get_u8();
    let willingness = Willingness::from_wire(bytes.get_u8());
    let mut groups = arena.take_groups();
    while bytes.has_remaining() {
        if bytes.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        let code = LinkCode::from_wire(bytes.get_u8());
        let _reserved = bytes.get_u8();
        let size = bytes.get_u16() as usize;
        if size < 4 {
            return Err(WireError::BadLength);
        }
        let addr_bytes = size - 4;
        if bytes.remaining() < addr_bytes {
            return Err(WireError::Truncated);
        }
        let mut group_body = bytes.split_to(addr_bytes);
        let mut addrs = arena.take_addrs();
        addrs.reserve(addr_bytes / 2);
        while group_body.has_remaining() {
            addrs.push(get_addr(&mut group_body)?);
        }
        groups.push(LinkGroup { code, addrs });
    }
    Ok(HelloMessage { willingness, groups })
}

fn decode_tc(arena: &mut DecodeArena, bytes: &mut Bytes) -> Result<TcMessage, WireError> {
    if bytes.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let ansn = bytes.get_u16();
    let _reserved = bytes.get_u16();
    let mut advertised = arena.take_addrs();
    advertised.reserve(bytes.remaining() / 2);
    while bytes.has_remaining() {
        advertised.push(get_addr(bytes)?);
    }
    Ok(TcMessage { ansn, advertised })
}

fn decode_data(bytes: &mut Bytes) -> Result<DataMessage, WireError> {
    if bytes.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    let src = get_addr(bytes)?;
    let dst = get_addr(bytes)?;
    let avoid = get_avoid(bytes)?;
    if bytes.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    let plen = bytes.get_u16() as usize;
    if bytes.remaining() < plen {
        return Err(WireError::Truncated);
    }
    let payload = bytes.split_to(plen);
    if bytes.has_remaining() {
        return Err(WireError::BadLength);
    }
    Ok(DataMessage { src, dst, avoid, payload })
}

/// The message discriminant of a [`MessageView`], known from one header
/// byte without touching the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageType {
    /// HELLO (link sensing, §6).
    Hello,
    /// TC (topology control, §9).
    Tc,
    /// MID (interface association, §5).
    Mid,
    /// HNA (host and network association, §12).
    Hna,
    /// Unicast data-plane message (this reproduction's addition).
    Data,
}

/// One message's header fields plus the location of its still-encoded body,
/// yielded by [`PacketView::messages`].
#[derive(Debug, Clone, Copy)]
pub struct MessageView {
    /// Message discriminant.
    pub kind: MessageType,
    /// Validity time of the carried information.
    pub vtime: trustlink_sim::SimDuration,
    /// Main address of the originating node.
    pub originator: NodeId,
    /// Remaining hop budget.
    pub ttl: u8,
    /// Hops travelled so far.
    pub hop_count: u8,
    /// Message sequence number.
    pub seq: SequenceNumber,
    /// Body byte range within the frame the view was parsed from.
    body: (usize, usize),
}

fn be16(buf: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([buf[off], buf[off + 1]])
}

/// A fully validated, zero-materialization view over an encoded packet.
///
/// [`PacketView::parse`] performs the complete structural validation of
/// [`decode_packet_with`] — the two accept and reject exactly the same
/// byte strings — but builds nothing: no vectors, no arena traffic.
/// [`PacketView::messages`] then yields header views, and only the
/// messages a receiver actually needs are decoded, individually, through
/// [`materialize_message`]. This is the workhorse of the batched receive
/// path: the dominant reception at scale is a flood copy that has already
/// been forwarded or suppressed, and its fate is decided entirely from
/// `(originator, seq, ttl)` — header bytes — without ever decoding the
/// body it would have thrown away.
#[derive(Debug, Clone, Copy)]
pub struct PacketView<'a> {
    buf: &'a [u8],
}

impl<'a> PacketView<'a> {
    /// Validates `buf` as a complete packet.
    ///
    /// # Errors
    ///
    /// Rejects exactly the inputs [`decode_packet`] rejects, with the same
    /// [`WireError`].
    pub fn parse(buf: &'a [u8]) -> Result<Self, WireError> {
        if buf.len() < PACKET_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let declared = be16(buf, 0) as usize;
        if declared < PACKET_HEADER_LEN {
            return Err(WireError::BadLength);
        }
        match declared.cmp(&buf.len()) {
            std::cmp::Ordering::Greater => return Err(WireError::Truncated),
            std::cmp::Ordering::Less => return Err(WireError::BadLength),
            std::cmp::Ordering::Equal => {}
        }
        let mut off = PACKET_HEADER_LEN;
        while off < buf.len() {
            if buf.len() - off < MESSAGE_HEADER_LEN {
                return Err(WireError::Truncated);
            }
            let msg_type = buf[off];
            let size = be16(buf, off + 2) as usize;
            // Walk the escape-encoded originator to find the true header
            // length, mirroring the decoder's read sequence (and errors)
            // exactly.
            let Some((_, alen)) = NodeId::read_at(buf, off + 4) else {
                return Err(WireError::Truncated);
            };
            let header_len = 4 + alen + 4;
            if buf.len() - off < header_len {
                return Err(WireError::Truncated);
            }
            if size < header_len {
                return Err(WireError::BadLength);
            }
            if size > buf.len() - off {
                return Err(WireError::Truncated);
            }
            let body = &buf[off + header_len..off + size];
            match msg_type {
                MSG_HELLO => validate_hello(body)?,
                MSG_TC => {
                    if body.len() < 4 {
                        return Err(WireError::Truncated);
                    }
                    validate_addr_run(body, 4, body.len(), 0)?;
                }
                MSG_MID => {
                    validate_addr_run(body, 0, body.len(), 0)?;
                }
                MSG_HNA => {
                    validate_addr_run(body, 0, body.len(), 2)?;
                }
                MSG_DATA => validate_data(body)?,
                other => return Err(WireError::UnknownMessageType(other)),
            }
            off += size;
        }
        Ok(PacketView { buf })
    }

    /// The packet sequence number.
    pub fn seq(&self) -> SequenceNumber {
        SequenceNumber(be16(self.buf, 2))
    }

    /// Header views of the packet's messages, in wire order.
    pub fn messages(&self) -> MessageViewIter<'a> {
        MessageViewIter { buf: self.buf, off: PACKET_HEADER_LEN }
    }
}

fn validate_hello(body: &[u8]) -> Result<(), WireError> {
    if body.len() < 4 {
        return Err(WireError::Truncated);
    }
    let mut off = 4;
    while off < body.len() {
        if body.len() - off < 4 {
            return Err(WireError::Truncated);
        }
        let size = be16(body, off + 2) as usize;
        if size < 4 {
            return Err(WireError::BadLength);
        }
        if size > body.len() - off {
            return Err(WireError::Truncated);
        }
        validate_addr_run(body, off + 4, off + size, 0)?;
        off += size;
    }
    Ok(())
}

/// Validates that `body[from..to]` is exactly a run of escape-encoded
/// addresses, each followed by `trailer` fixed bytes (HNA's prefix and
/// reserved byte), mirroring the decoders' bounded reads.
fn validate_addr_run(body: &[u8], from: usize, to: usize, trailer: usize) -> Result<(), WireError> {
    let mut off = from;
    while off < to {
        match skip_addr(&body[..to], off) {
            Some(next) if to - next >= trailer => off = next + trailer,
            _ => return Err(WireError::Truncated),
        }
    }
    Ok(())
}

/// Validates a data-message body, mirroring [`decode_data`].
fn validate_data(body: &[u8]) -> Result<(), WireError> {
    if body.len() < 8 {
        return Err(WireError::Truncated);
    }
    let mut off = 0;
    for _ in 0..2 {
        match skip_addr(body, off) {
            Some(next) => off = next,
            None => return Err(WireError::Truncated),
        }
    }
    if body.len() - off < 2 {
        return Err(WireError::Truncated);
    }
    let avoid_raw = be16(body, off);
    off += 2;
    if avoid_raw == AVOID_ESCAPE {
        if body.len() - off < 4 {
            return Err(WireError::Truncated);
        }
        off += 4;
    }
    if body.len() - off < 2 {
        return Err(WireError::Truncated);
    }
    let plen = be16(body, off) as usize;
    off += 2;
    match plen.cmp(&(body.len() - off)) {
        std::cmp::Ordering::Greater => Err(WireError::Truncated),
        std::cmp::Ordering::Less => Err(WireError::BadLength),
        std::cmp::Ordering::Equal => Ok(()),
    }
}

/// Iterator over a validated packet's message headers.
#[derive(Debug)]
pub struct MessageViewIter<'a> {
    buf: &'a [u8],
    off: usize,
}

impl Iterator for MessageViewIter<'_> {
    type Item = MessageView;

    fn next(&mut self) -> Option<MessageView> {
        if self.off >= self.buf.len() {
            return None;
        }
        let o = self.off;
        let buf = self.buf;
        let kind = match buf[o] {
            MSG_HELLO => MessageType::Hello,
            MSG_TC => MessageType::Tc,
            MSG_MID => MessageType::Mid,
            MSG_HNA => MessageType::Hna,
            MSG_DATA => MessageType::Data,
            other => unreachable!("type {other} survived PacketView::parse"),
        };
        let size = be16(buf, o + 2) as usize;
        self.off = o + size;
        let (originator, alen) =
            NodeId::read_at(buf, o + 4).expect("originator survived PacketView::parse");
        Some(MessageView {
            kind,
            vtime: decode_vtime(buf[o + 1]),
            originator,
            ttl: buf[o + 4 + alen],
            hop_count: buf[o + 5 + alen],
            seq: SequenceNumber(be16(buf, o + 6 + alen)),
            body: (o + 8 + alen, o + size),
        })
    }
}

/// Decodes the single message behind `view` into an owned [`Message`],
/// drawing vectors from `arena` exactly like [`decode_packet_with`] and
/// sharing the frame's storage for data payloads. Return it with
/// [`DecodeArena::recycle_message`] when done.
///
/// # Panics
///
/// `view` must come from a successful [`PacketView::parse`] of this same
/// `frame`; the body was then already validated, so decoding cannot fail.
/// Panics if the contract is violated.
pub fn materialize_message(arena: &mut DecodeArena, frame: &Bytes, view: &MessageView) -> Message {
    let mut body = frame.slice(view.body.0..view.body.1);
    let body = match view.kind {
        MessageType::Hello => MessageBody::Hello(
            decode_hello(arena, &mut body).expect("body validated by PacketView::parse"),
        ),
        MessageType::Tc => MessageBody::Tc(
            decode_tc(arena, &mut body).expect("body validated by PacketView::parse"),
        ),
        MessageType::Mid => MessageBody::Mid(
            decode_mid(arena, &mut body).expect("body validated by PacketView::parse"),
        ),
        MessageType::Hna => MessageBody::Hna(
            decode_hna(arena, &mut body).expect("body validated by PacketView::parse"),
        ),
        MessageType::Data => {
            MessageBody::Data(decode_data(&mut body).expect("body validated by PacketView::parse"))
        }
    };
    Message {
        vtime: view.vtime,
        originator: view.originator,
        ttl: view.ttl,
        hop_count: view.hop_count,
        seq: view.seq,
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{LinkType, NeighborType};
    use bytes::BytesMut;
    use trustlink_sim::SimDuration;

    fn sample_packet() -> Packet {
        Packet {
            seq: SequenceNumber(42),
            messages: vec![
                Message {
                    vtime: SimDuration::from_secs(6),
                    originator: NodeId(3),
                    ttl: 1,
                    hop_count: 0,
                    seq: SequenceNumber(7),
                    body: MessageBody::Hello(HelloMessage {
                        willingness: Willingness::High,
                        groups: vec![
                            LinkGroup {
                                code: LinkCode::new(LinkType::Sym, NeighborType::Sym),
                                addrs: vec![NodeId(1), NodeId(2)],
                            },
                            LinkGroup {
                                code: LinkCode::new(LinkType::Asym, NeighborType::Not),
                                addrs: vec![NodeId(9)],
                            },
                        ],
                    }),
                },
                Message {
                    vtime: SimDuration::from_secs(15),
                    originator: NodeId(3),
                    ttl: 255,
                    hop_count: 2,
                    seq: SequenceNumber(8),
                    body: MessageBody::Tc(TcMessage {
                        ansn: 100,
                        advertised: vec![NodeId(1), NodeId(4)],
                    }),
                },
                Message {
                    vtime: SimDuration::from_secs(15),
                    originator: NodeId(5),
                    ttl: 255,
                    hop_count: 0,
                    seq: SequenceNumber(9),
                    body: MessageBody::Mid(MidMessage { aliases: vec![NodeId(50), NodeId(51)] }),
                },
                Message {
                    vtime: SimDuration::from_secs(15),
                    originator: NodeId(6),
                    ttl: 255,
                    hop_count: 0,
                    seq: SequenceNumber(10),
                    body: MessageBody::Hna(HnaMessage {
                        networks: vec![(NodeId(100), 24), (NodeId(200), 16)],
                    }),
                },
                Message {
                    vtime: SimDuration::from_secs(1),
                    originator: NodeId(0),
                    ttl: 32,
                    hop_count: 1,
                    seq: SequenceNumber(11),
                    body: MessageBody::Data(DataMessage {
                        src: NodeId(0),
                        dst: NodeId(6),
                        avoid: Some(NodeId(3)),
                        payload: Bytes::from_static(b"VERIFY_LINK N3-N9"),
                    }),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_full_packet() {
        let packet = sample_packet();
        let bytes = encode_packet(&packet);
        let mut decoded = decode_packet(bytes).expect("decode");
        // vtime is lossy per the RFC encoding; normalize before comparing.
        for (d, o) in decoded.messages.iter_mut().zip(&packet.messages) {
            assert!(
                (d.vtime.as_secs_f64() - o.vtime.as_secs_f64()).abs()
                    / o.vtime.as_secs_f64().max(0.0625)
                    < 0.07
            );
            d.vtime = o.vtime;
        }
        assert_eq!(decoded, packet);
    }

    #[test]
    fn encode_into_reused_scratch_matches_encode() {
        let packet = sample_packet();
        let reference = encode_packet(&packet);
        let mut scratch = Vec::new();
        // Dirty the scratch first: encode_packet_into must clear it.
        scratch.extend_from_slice(b"garbage from a previous frame");
        for _ in 0..3 {
            let frame = encode_packet_into(&packet, &mut scratch);
            assert_eq!(frame, reference);
        }
    }

    #[test]
    fn arena_decode_matches_fresh_decode_across_reuse() {
        // One arena driven across many packets (including recycling after
        // each) must produce exactly what a fresh decode produces, and
        // reuse must not leak state between packets.
        let mut arena = DecodeArena::default();
        let packets =
            [sample_packet(), Packet { seq: SequenceNumber(1), messages: vec![] }, sample_packet()];
        for _ in 0..3 {
            for p in &packets {
                let bytes = encode_packet(p);
                let fresh = decode_packet(bytes.clone()).expect("fresh decode");
                let pooled = decode_packet_with(&mut arena, bytes).expect("arena decode");
                assert_eq!(pooled, fresh);
                arena.recycle(pooled);
            }
        }
        // Errors must not poison the arena either.
        assert!(decode_packet_with(&mut arena, Bytes::from_static(b"\x00\x03")).is_err());
        let bytes = encode_packet(&sample_packet());
        let after_err = decode_packet_with(&mut arena, bytes.clone()).unwrap();
        assert_eq!(after_err, decode_packet(bytes).unwrap());
    }

    #[test]
    fn data_without_avoid_roundtrips() {
        let packet = Packet {
            seq: SequenceNumber(0),
            messages: vec![Message {
                vtime: SimDuration::from_secs(1),
                originator: NodeId(1),
                ttl: 32,
                hop_count: 0,
                seq: SequenceNumber(1),
                body: MessageBody::Data(DataMessage {
                    src: NodeId(1),
                    dst: NodeId(2),
                    avoid: None,
                    payload: Bytes::new(),
                }),
            }],
        };
        let decoded = decode_packet(encode_packet(&packet)).unwrap();
        match &decoded.messages[0].body {
            MessageBody::Data(d) => {
                assert_eq!(d.avoid, None);
                assert!(d.payload.is_empty());
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn empty_packet_roundtrips() {
        let p = Packet { seq: SequenceNumber(9), messages: vec![] };
        let decoded = decode_packet(encode_packet(&p)).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn truncated_inputs_error() {
        assert_eq!(decode_packet(Bytes::from_static(b"")), Err(WireError::Truncated));
        assert_eq!(decode_packet(Bytes::from_static(b"\x00\x08\x00")), Err(WireError::Truncated));
        // Valid header but message header cut short.
        let mut bytes = BytesMut::new();
        bytes.put_u16(9);
        bytes.put_u16(0);
        bytes.put_u8(1); // msg type, then nothing
        assert_eq!(decode_packet(bytes.freeze()), Err(WireError::Truncated));
    }

    #[test]
    fn unknown_message_type_errors() {
        let mut bytes = BytesMut::new();
        bytes.put_u16(14);
        bytes.put_u16(0);
        bytes.put_u8(99); // unknown type
        bytes.put_u8(0);
        bytes.put_u16(10);
        bytes.put_u16(0);
        bytes.put_u8(1);
        bytes.put_u8(0);
        bytes.put_u16(0);
        assert_eq!(decode_packet(bytes.freeze()), Err(WireError::UnknownMessageType(99)));
    }

    #[test]
    fn bad_message_size_errors() {
        let mut bytes = BytesMut::new();
        bytes.put_u16(14);
        bytes.put_u16(0);
        bytes.put_u8(1);
        bytes.put_u8(0);
        bytes.put_u16(5); // size < header length
        bytes.put_u16(0);
        bytes.put_u8(1);
        bytes.put_u8(0);
        bytes.put_u16(0);
        assert_eq!(decode_packet(bytes.freeze()), Err(WireError::BadLength));
    }

    #[test]
    fn hello_with_dangling_half_address_errors() {
        let mut bytes = BytesMut::new();
        bytes.put_u16(0);
        bytes.put_u16(0);
        bytes.put_u8(1); // hello
        bytes.put_u8(0);
        bytes.put_u16(MESSAGE_HEADER_LEN as u16 + 4 + 5); // body: 4 fixed + 5 group
        bytes.put_u16(0);
        bytes.put_u8(1);
        bytes.put_u8(0);
        bytes.put_u16(0);
        // hello fixed part
        bytes.put_u16(0);
        bytes.put_u8(0);
        bytes.put_u8(3);
        // group with size 5: one full address then a dangling half-address
        // byte — with escape-encoded (variable length) addresses this is a
        // truncation, not a length-arithmetic error.
        bytes.put_u8(6);
        bytes.put_u8(0);
        bytes.put_u16(5);
        bytes.put_u8(0);
        let len = bytes.len() as u16;
        bytes[0..2].copy_from_slice(&len.to_be_bytes());
        assert_eq!(decode_packet(bytes.freeze()), Err(WireError::Truncated));
    }

    #[test]
    fn decode_never_panics_on_noise() {
        // Cheap deterministic fuzz: xorshift noise buffers of many lengths.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8
        };
        for len in 0..200 {
            let buf: Vec<u8> = (0..len).map(|_| next()).collect();
            let _ = decode_packet(Bytes::from(buf)); // must not panic
        }
    }

    #[test]
    fn wire_error_display() {
        assert_eq!(WireError::Truncated.to_string(), "truncated packet");
        assert_eq!(WireError::UnknownMessageType(7).to_string(), "unknown message type 7");
        assert_eq!(WireError::BadLength.to_string(), "inconsistent length field");
    }
}
