//! The OLSR protocol state machine, runnable as a
//! [`trustlink_sim::Application`].
//!
//! One [`OlsrNode`] implements, per RFC 3626: link sensing and neighbor
//! detection from HELLOs, 2-hop population, MPR selection, MPR-selector
//! tracking, TC origination and flooding via the default forwarding
//! algorithm, topology-set maintenance and routing-table calculation —
//! plus the minimal unicast data plane the detector's investigations ride
//! on, and the audit log every action leaves behind.

use bytes::Bytes;
use rand::RngExt;
use trustlink_sim::{
    Application, CallbackClass, Context, FloodStats, FrameBatch, NodeId, SimTime, TimerToken,
};

use crate::hooks::{NoHooks, OlsrHooks};
use crate::logging::{LogRecord, MessageKind, SuppressReason};
use crate::message::{
    DataMessage, HelloMessage, LinkCode, LinkGroup, LinkType, Message, MessageBody, MidMessage,
    NeighborType, Packet, TcMessage,
};
use crate::mpr::{CandidatePool, MprWorkspace};
use crate::routing::{RoutingTable, RoutingWorkspace};
use crate::state::{
    DupProbe, DuplicateSet, InterfaceAssociationSet, LinkSet, LinkStatus, LinkTuple,
    MprSelectorSet, NeighborSet, TopologySet, TwoHopSet,
};
use crate::types::{FloodScope, OlsrConfig, RecomputeMode, SequenceNumber, Willingness};
use crate::wire::{
    decode_packet_with, encode_packet_into, materialize_message, DecodeArena, MessageType,
    PacketView,
};

/// Timer tokens used by the OLSR state machine. Wrappers layering their own
/// timers on top must use tokens ≥ [`TIMER_USER_BASE`].
pub const TIMER_HELLO: TimerToken = TimerToken(1);
/// TC emission timer.
pub const TIMER_TC: TimerToken = TimerToken(2);
/// Periodic purge/recompute timer.
pub const TIMER_REFRESH: TimerToken = TimerToken(3);
/// Debounced-recompute timer ([`RecomputeMode::Incremental`] only): armed
/// when a reception invalidates state, so a burst of receptions inside one
/// debounce window coalesces into a single recomputation.
pub const TIMER_RECOMPUTE: TimerToken = TimerToken(4);
/// First token value free for applications wrapping an [`OlsrNode`].
pub const TIMER_USER_BASE: u64 = 1000;

/// Which recompute inputs a burst of receptions has invalidated since the
/// last [`OlsrNode::ensure_fresh`], tracked per domain so MPR selection
/// reruns only when the 1/2-hop neighborhood actually changed and the
/// routing BFS only when the neighborhood or the TC-learned topology did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ChangeFlags {
    /// The 1-hop/2-hop neighborhood changed: link status, two-hop
    /// coverage, a neighbor's willingness, or the MPR exclusion list.
    nbr: bool,
    /// The TC-learned topology changed.
    topo: bool,
}

impl ChangeFlags {
    fn any(self) -> bool {
        self.nbr || self.topo
    }
}

/// Counters for the recompute pipeline, exposed for tests and tooling:
/// the incremental mode's whole point is that `mpr_runs`/`route_runs`
/// grow much slower than received packets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecomputeStats {
    /// Times [`ensure_fresh`](OlsrNode::ensure_fresh) ran (cheap, gated).
    pub flushes: u64,
    /// Times MPR selection actually executed.
    pub mpr_runs: u64,
    /// Times the routing BFS actually executed.
    pub route_runs: u64,
}

/// A unicast data payload delivered to this node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedData {
    /// Source main address.
    pub src: NodeId,
    /// Arrival time.
    pub at: SimTime,
    /// The payload.
    pub payload: Bytes,
}

/// The OLSR routing daemon for one node, parameterized by behaviour
/// [`OlsrHooks`] (faithful by default).
///
/// ```
/// use trustlink_olsr::prelude::*;
/// use trustlink_sim::prelude::*;
///
/// let mut sim = SimulatorBuilder::new(1).radio(RadioConfig::unit_disk(150.0)).build();
/// let a = sim.add_node(Box::new(OlsrNode::with_defaults()), Position::new(0.0, 0.0));
/// let b = sim.add_node(Box::new(OlsrNode::with_defaults()), Position::new(100.0, 0.0));
/// sim.run_for(SimDuration::from_secs(10));
/// let node_a = sim.app_as::<OlsrNode>(a).unwrap();
/// assert!(node_a.symmetric_neighbors(sim.now()).contains(&b));
/// ```
pub struct OlsrNode<H: OlsrHooks = NoHooks> {
    id: NodeId,
    config: OlsrConfig,
    hooks: H,
    links: LinkSet,
    neighbors: NeighborSet,
    two_hop: TwoHopSet,
    mprs: Vec<NodeId>,
    selectors: MprSelectorSet,
    topology: TopologySet,
    duplicates: DuplicateSet,
    ifaces: InterfaceAssociationSet,
    routes: RoutingTable,
    prev_sym: Vec<NodeId>,
    ansn: u16,
    last_advertised: Vec<NodeId>,
    msg_seq: SequenceNumber,
    pkt_seq: SequenceNumber,
    inbox: Vec<ReceivedData>,
    /// TC emission opportunities consumed while holding TC duty; drives
    /// the fisheye ring schedule ([`FloodScope::Fisheye`]).
    tc_emissions: u64,
    /// Flood-frame accounting: TCs originated per ring, TCs re-flooded.
    flood: FloodStats,
    flags: ChangeFlags,
    /// `true` while a [`TIMER_RECOMPUTE`] is pending (incremental mode).
    debounce_armed: bool,
    stats: RecomputeStats,
    started: bool,
    /// Alias addresses this node advertises in MIDs (usually empty).
    pub mid_aliases: Vec<NodeId>,
    /// Neighbors barred from MPR selection (treated as `WILL_NEVER`),
    /// regardless of their advertised willingness. The trust-enabled
    /// detector populates this with condemned intruders — the CAP-OLSR
    /// style response the paper's related work describes ("if the
    /// resulting trust is lower than a given threshold, then I is excluded
    /// from MPRs").
    excluded_mprs: std::collections::BTreeSet<NodeId>,
    /// Reused wire-encode scratch: transmissions allocate only the frame.
    wire_scratch: Vec<u8>,
    /// Reused wire-decode buffers (see [`DecodeArena`]): per-reception
    /// decoding allocates nothing once warm.
    decode_arena: DecodeArena,
    /// Reused MPR-selection scratch (see [`MprWorkspace`]).
    mpr_ws: MprWorkspace,
    /// Reused MPR candidate buffers (see [`CandidatePool`]).
    cand_pool: CandidatePool,
    /// Reused MPR output buffer, swapped with `mprs` on change.
    mpr_scratch: Vec<NodeId>,
    /// Reused 2-hop target buffer for MPR selection.
    targets_scratch: Vec<NodeId>,
    /// Reused symmetric-neighbor buffer, swapped with `prev_sym` on flush.
    sym_scratch: Vec<NodeId>,
    /// Reused route-calculation scratch (see [`RoutingWorkspace`]).
    route_ws: RoutingWorkspace,
    /// Reused routing-table double buffer, swapped with `routes` on change.
    routes_scratch: RoutingTable,
}

impl OlsrNode<NoHooks> {
    /// A faithful node with RFC default timing.
    pub fn with_defaults() -> Self {
        OlsrNode::new(OlsrConfig::default())
    }

    /// A faithful node with the given configuration.
    pub fn new(config: OlsrConfig) -> Self {
        OlsrNode::with_hooks(config, NoHooks)
    }
}

impl<H: OlsrHooks> OlsrNode<H> {
    /// A node with explicit behaviour hooks (used by the attack crate).
    pub fn with_hooks(config: OlsrConfig, hooks: H) -> Self {
        OlsrNode {
            id: NodeId(0),
            config,
            hooks,
            links: LinkSet::default(),
            neighbors: NeighborSet::default(),
            two_hop: TwoHopSet::default(),
            mprs: Vec::new(),
            selectors: MprSelectorSet::default(),
            topology: TopologySet::default(),
            duplicates: DuplicateSet::default(),
            ifaces: InterfaceAssociationSet::default(),
            routes: RoutingTable::default(),
            prev_sym: Vec::new(),
            ansn: 0,
            last_advertised: Vec::new(),
            msg_seq: SequenceNumber(0),
            pkt_seq: SequenceNumber(0),
            inbox: Vec::new(),
            tc_emissions: 0,
            flood: FloodStats::default(),
            flags: ChangeFlags::default(),
            debounce_armed: false,
            stats: RecomputeStats::default(),
            started: false,
            mid_aliases: Vec::new(),
            excluded_mprs: std::collections::BTreeSet::new(),
            wire_scratch: Vec::new(),
            decode_arena: DecodeArena::default(),
            mpr_ws: MprWorkspace::default(),
            cand_pool: CandidatePool::default(),
            mpr_scratch: Vec::new(),
            targets_scratch: Vec::new(),
            sym_scratch: Vec::new(),
            route_ws: RoutingWorkspace::default(),
            routes_scratch: RoutingTable::default(),
        }
    }

    // ---- inspection API -------------------------------------------------

    /// This node's main address (valid after the simulation started it).
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration in force.
    pub fn config(&self) -> &OlsrConfig {
        &self.config
    }

    /// Mutable access to the behaviour hooks.
    pub fn hooks_mut(&mut self) -> &mut H {
        &mut self.hooks
    }

    /// Immutable access to the behaviour hooks.
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Symmetric 1-hop neighbors at `now`, ascending.
    pub fn symmetric_neighbors(&self, now: SimTime) -> Vec<NodeId> {
        self.links.symmetric_neighbors(now)
    }

    /// The current MPR set (ascending).
    pub fn mpr_set(&self) -> &[NodeId] {
        &self.mprs
    }

    /// The neighbors currently selecting this node as MPR.
    pub fn mpr_selectors(&self, now: SimTime) -> Vec<NodeId> {
        self.selectors.addrs(now)
    }

    /// The current routing table.
    pub fn routing_table(&self) -> &RoutingTable {
        &self.routes
    }

    /// The topology set learned from TCs.
    pub fn topology_set(&self) -> &TopologySet {
        &self.topology
    }

    /// The 2-hop neighbor set.
    pub fn two_hop_set(&self) -> &TwoHopSet {
        &self.two_hop
    }

    /// The 1-hop neighbor set (with willingness).
    pub fn neighbor_set(&self) -> &NeighborSet {
        &self.neighbors
    }

    /// Drains data payloads addressed to this node.
    pub fn take_inbox(&mut self) -> Vec<ReceivedData> {
        std::mem::take(&mut self.inbox)
    }

    /// Bars `addr` from this node's MPR selection (it is treated as
    /// `WILL_NEVER` from now on). Takes effect at the next recomputation.
    pub fn exclude_from_mprs(&mut self, addr: NodeId) {
        if self.excluded_mprs.insert(addr) {
            self.flags.nbr = true;
        }
    }

    /// Lifts an MPR exclusion.
    pub fn readmit_to_mprs(&mut self, addr: NodeId) {
        if self.excluded_mprs.remove(&addr) {
            self.flags.nbr = true;
        }
    }

    /// The neighbors currently barred from MPR selection.
    pub fn excluded_mprs(&self) -> Vec<NodeId> {
        self.excluded_mprs.iter().copied().collect()
    }

    /// `true` once `on_start` ran.
    pub fn is_started(&self) -> bool {
        self.started
    }

    /// Recompute-pipeline counters (flushes vs actual MPR/BFS executions).
    pub fn recompute_stats(&self) -> RecomputeStats {
        self.stats
    }

    /// Flood-frame accounting: TCs originated per [`FloodScope`] ring and
    /// TCs this node re-flooded for others — the quantity fisheye scoping
    /// attacks (classic flooding books everything into ring 0).
    pub fn flood_stats(&self) -> &FloodStats {
        &self.flood
    }

    /// The MPR set this node would materialize at `now`, computed from the
    /// live repositories without touching cached state. Independent of
    /// recompute scheduling: both [`RecomputeMode`]s yield the same value
    /// for the same reception history — the property
    /// `tests/recompute_equivalence.rs` pins. Allocates; meant for tests
    /// and tooling, not the hot path.
    pub fn effective_mprs(&self, now: SimTime) -> Vec<NodeId> {
        let sym = self.links.symmetric_neighbors(now);
        let mut targets = Vec::new();
        self.two_hop.two_hop_addrs_into(now, self.id, &sym, &mut targets);
        let mut pool = CandidatePool::default();
        fill_mpr_candidates(
            &mut pool,
            &self.two_hop,
            &self.neighbors,
            &self.excluded_mprs,
            self.id,
            &sym,
            now,
        );
        crate::mpr::select_mprs(pool.candidates(), &targets)
    }

    /// The routing table this node would materialize at `now`, computed
    /// from the live repositories. Same contract as
    /// [`OlsrNode::effective_mprs`].
    pub fn effective_routes(&self, now: SimTime) -> RoutingTable {
        let sym = self.links.symmetric_neighbors(now);
        RoutingTable::compute(self.id, &sym, &self.two_hop, &self.topology, now)
    }

    // ---- transmission helpers -------------------------------------------

    fn next_msg_seq(&mut self) -> SequenceNumber {
        self.msg_seq = self.msg_seq.next();
        self.msg_seq
    }

    fn transmit(&mut self, ctx: &mut Context<'_>, messages: Vec<Message>) {
        self.pkt_seq = self.pkt_seq.next();
        let packet = Packet { seq: self.pkt_seq, messages };
        ctx.broadcast(encode_packet_into(&packet, &mut self.wire_scratch));
    }

    fn unicast(&mut self, ctx: &mut Context<'_>, to: NodeId, messages: Vec<Message>) {
        self.pkt_seq = self.pkt_seq.next();
        let packet = Packet { seq: self.pkt_seq, messages };
        ctx.send(to, encode_packet_into(&packet, &mut self.wire_scratch));
    }

    /// Builds the HELLO this node would send at `now` (before hooks).
    pub fn build_hello(&self, now: SimTime) -> HelloMessage {
        let mut sym = Vec::new();
        let mut sym_mpr = Vec::new();
        let mut asym = Vec::new();
        let mut lost = Vec::new();
        for tuple in self.links.iter() {
            if tuple.until <= now {
                // A wholly expired tuple is semantically purged, whether or
                // not the sweep has physically removed it yet: advertising
                // it would make HELLO content depend on purge timing.
                continue;
            }
            match tuple.status(now) {
                LinkStatus::Symmetric => {
                    if self.mprs.contains(&tuple.neighbor) {
                        sym_mpr.push(tuple.neighbor);
                    } else {
                        sym.push(tuple.neighbor);
                    }
                }
                LinkStatus::Asymmetric => asym.push(tuple.neighbor),
                LinkStatus::Lost => lost.push(tuple.neighbor),
            }
        }
        let mut groups = Vec::new();
        if !sym.is_empty() {
            groups.push(LinkGroup {
                code: LinkCode::new(LinkType::Sym, NeighborType::Sym),
                addrs: sym,
            });
        }
        if !sym_mpr.is_empty() {
            groups.push(LinkGroup {
                code: LinkCode::new(LinkType::Sym, NeighborType::Mpr),
                addrs: sym_mpr,
            });
        }
        if !asym.is_empty() {
            groups.push(LinkGroup {
                code: LinkCode::new(LinkType::Asym, NeighborType::Not),
                addrs: asym,
            });
        }
        if !lost.is_empty() {
            groups.push(LinkGroup {
                code: LinkCode::new(LinkType::Lost, NeighborType::Not),
                addrs: lost,
            });
        }
        let willingness = self.hooks_willingness();
        HelloMessage { willingness, groups }
    }

    fn hooks_willingness(&self) -> Willingness {
        // `willingness_override` takes &mut; we keep the public builder
        // immutable by caching nothing and only consulting the config here.
        self.config.willingness
    }

    fn emit_hello(&mut self, ctx: &mut Context<'_>) {
        // The HELLO groups SYM vs SYM_MPR by the materialized MPR set:
        // refresh it first so emission content never depends on recompute
        // scheduling (both modes materialize here, at the same instant).
        self.ensure_fresh(ctx);
        let now = ctx.now();
        let mut hello = self.build_hello(now);
        if let Some(w) = self.hooks.willingness_override() {
            hello.willingness = w;
        }
        self.hooks.on_hello_tx(&mut hello, now);
        ctx.log(LogRecord::HelloTx {
            sym: hello.symmetric_neighbors(),
            asym: hello.asymmetric_neighbors(),
        });
        let msg = Message {
            vtime: self.config.neighbor_hold_time,
            originator: self.id,
            ttl: 1,
            hop_count: 0,
            seq: self.next_msg_seq(),
            body: MessageBody::Hello(hello),
        };
        self.transmit(ctx, vec![msg]);
    }

    fn emit_tc(&mut self, ctx: &mut Context<'_>) {
        // TC content reads the selector sweep state and (for the richer
        // redundancy levels) the materialized MPR set: refresh first.
        self.ensure_fresh(ctx);
        let now = ctx.now();
        let selectors = self.selectors.addrs(now);
        if selectors.is_empty() && self.last_advertised.is_empty() {
            return; // not an MPR: no TC duty
        }
        // An emission opportunity with TC duty: consume one schedule slot.
        // The counter starts at emission 1, so a fresh MPR's first TC
        // covers the innermost ring and the network-wide advertisement
        // follows within one ring cycle.
        self.tc_emissions += 1;
        let (ring, ttl, vtime) = match &self.config.flood_scope {
            FloodScope::Classic => (0, self.config.default_ttl, self.config.topology_hold_time),
            FloodScope::Fisheye(rings) => {
                match rings.ring_for_emission(self.tc_emissions) {
                    // The advertised validity stretches with the ring
                    // stride: a node that only this ring reaches must hold
                    // the tuples until the next emission that reaches it.
                    Some((idx, r)) => {
                        (idx, r.ttl, self.config.topology_hold_time * u64::from(r.every))
                    }
                    None => return, // sparse table: no ring due this slot
                }
            }
        };
        let mut advertised = selectors;
        match self.config.tc_redundancy {
            crate::types::TcRedundancy::MprSelectors => {}
            crate::types::TcRedundancy::SelectorsAndMprs => {
                advertised.extend(self.mprs.iter().copied());
            }
            crate::types::TcRedundancy::FullNeighborSet => {
                advertised.extend(self.links.symmetric_neighbors(now));
            }
        }
        advertised.sort_unstable();
        advertised.dedup();
        if advertised != self.last_advertised {
            self.ansn = self.ansn.wrapping_add(1);
            self.last_advertised = advertised.clone();
        }
        let mut tc = TcMessage { ansn: self.ansn, advertised };
        self.hooks.on_tc_tx(&mut tc, now);
        ctx.log(LogRecord::TcTx { ansn: tc.ansn, advertised: tc.advertised.clone() });
        self.flood.record_originated(ring);
        let msg = Message {
            vtime,
            originator: self.id,
            ttl,
            hop_count: 0,
            seq: self.next_msg_seq(),
            body: MessageBody::Tc(tc),
        };
        // Record own message so an echoed copy is not reprocessed.
        self.duplicates.record(
            self.id,
            self.msg_seq,
            true,
            now + self.config.duplicate_hold_time,
            now,
        );
        self.transmit(ctx, vec![msg]);
    }

    fn emit_mid(&mut self, ctx: &mut Context<'_>) {
        if self.mid_aliases.is_empty() {
            return;
        }
        let msg = Message {
            vtime: self.config.topology_hold_time,
            originator: self.id,
            ttl: self.config.default_ttl,
            hop_count: 0,
            seq: self.next_msg_seq(),
            body: MessageBody::Mid(MidMessage { aliases: self.mid_aliases.clone() }),
        };
        self.duplicates.record(
            self.id,
            self.msg_seq,
            true,
            ctx.now() + self.config.duplicate_hold_time,
            ctx.now(),
        );
        self.transmit(ctx, vec![msg]);
    }

    /// Sends `payload` to `dst` over the data plane. When `avoid` is set the
    /// first hop (and each forwarding hop) routes around that node — the
    /// investigation primitive of the paper's Algorithm 1.
    ///
    /// Returns `false` (and logs `DATA_NO_ROUTE`) when no admissible route
    /// exists.
    pub fn send_data(
        &mut self,
        ctx: &mut Context<'_>,
        dst: NodeId,
        payload: Bytes,
        avoid: Option<NodeId>,
    ) -> bool {
        let now = ctx.now();
        if dst == self.id {
            self.inbox.push(ReceivedData { src: self.id, at: now, payload });
            return true;
        }
        // The next hop reads the materialized routing table: refresh it so
        // data-plane decisions never depend on recompute scheduling.
        self.ensure_fresh(ctx);
        let next = self.next_hop_for(dst, avoid, now);
        let Some(next) = next else {
            ctx.log(LogRecord::DataNoRoute { dst });
            return false;
        };
        ctx.log(LogRecord::DataTx { dst, next_hop: next });
        let msg = Message {
            vtime: self.config.neighbor_hold_time,
            originator: self.id,
            ttl: self.config.data_ttl,
            hop_count: 0,
            seq: self.next_msg_seq(),
            body: MessageBody::Data(DataMessage { src: self.id, dst, avoid, payload }),
        };
        self.unicast(ctx, next, vec![msg]);
        true
    }

    fn next_hop_for(&mut self, dst: NodeId, avoid: Option<NodeId>, now: SimTime) -> Option<NodeId> {
        match avoid {
            None => self.routes.next_hop(dst),
            Some(avoided) => {
                if dst == avoided {
                    return None;
                }
                let sym = self.links.symmetric_neighbors(now);
                RoutingTable::compute_avoiding_with(
                    &mut self.route_ws,
                    self.id,
                    &sym,
                    &self.two_hop,
                    &self.topology,
                    now,
                    Some(avoided),
                )
                .next_hop(dst)
            }
        }
    }

    // ---- reception ------------------------------------------------------

    fn process_hello(&mut self, ctx: &mut Context<'_>, originator: NodeId, hello: &HelloMessage) {
        let now = ctx.now();
        let hold = now + self.config.neighbor_hold_time;
        let claimed_sym = hello.symmetric_neighbors();
        let claimed_asym = hello.asymmetric_neighbors();
        ctx.log(LogRecord::HelloRx {
            from: originator,
            willingness: hello.willingness,
            sym: Box::from(&claimed_sym[..]),
            asym: Box::from(&claimed_asym[..]),
        });

        // Link sensing: hearing them refreshes the asym validity; being
        // listed by them (heard in both directions) makes it symmetric.
        // A tuple whose expiry already passed is semantically purged — its
        // previous status is `None`, whichever mode got to the sweep first.
        let heard_us = claimed_sym.contains(&self.id) || claimed_asym.contains(&self.id);
        let before = self.links.get(originator).filter(|t| t.until > now).map(|t| t.status(now));
        self.links.upsert(LinkTuple {
            neighbor: originator,
            sym_until: if heard_us { hold } else { SimTime::ZERO },
            asym_until: hold,
            until: hold,
        });
        // An explicit LOST listing tears the symmetry down immediately.
        let lost_us = hello
            .groups
            .iter()
            .any(|g| g.code.link == LinkType::Lost && g.addrs.contains(&self.id));
        if lost_us {
            self.links.declare_lost(originator, now);
            // Losing the link voids the sender's 2-hop contributions and
            // its selector status right here, at reception time: they are
            // predicated on a symmetric link that no longer exists.
            if self.two_hop.remove_via(originator, now) > 0 {
                self.flags.nbr = true;
            }
        }
        let after = self.links.get(originator).map(|t| t.status(now));
        if before != after {
            self.flags.nbr = true;
            match after {
                Some(LinkStatus::Symmetric) => {
                    ctx.log(LogRecord::LinkSymmetric { neighbor: originator })
                }
                Some(LinkStatus::Asymmetric) => {
                    ctx.log(LogRecord::LinkAsymmetric { neighbor: originator })
                }
                _ => {}
            }
        }

        // Neighbor set (symmetric only) + willingness bookkeeping.
        if after == Some(LinkStatus::Symmetric)
            && self.neighbors.upsert(originator, hello.willingness)
        {
            self.flags.nbr = true;
        }

        // 2-hop set: the sender's claimed symmetric neighbors, minus us —
        // recorded only while the HELLO itself proves a live symmetric
        // link (it lists us, and does not declare us lost). This keeps
        // every 2-hop tuple's validity bounded by its `via`'s symmetric
        // validity, which is what makes the expiry sweeps pure GC.
        if heard_us && !lost_us {
            for &th in &claimed_sym {
                if th != self.id && self.two_hop.upsert(originator, th, hold, now) {
                    self.flags.nbr = true;
                    ctx.log(LogRecord::TwoHopAdded { via: originator, addr: th });
                }
            }
        }

        // MPR selector set: did they pick us? Only a HELLO that sustains a
        // live symmetric link can (re)assert selection.
        if hello.mpr_neighbors().contains(&self.id) && heard_us && !lost_us {
            if self.selectors.upsert(originator, hold, now) {
                ctx.log(LogRecord::MprSelectorAdded { addr: originator });
            }
        } else if self.selectors.remove(originator, now) {
            ctx.log(LogRecord::MprSelectorLost { addr: originator });
        }
    }

    fn process_tc(&mut self, ctx: &mut Context<'_>, msg: &Message, tc: &TcMessage, from: NodeId) {
        let now = ctx.now();
        ctx.log(LogRecord::TcRx {
            originator: msg.originator,
            sender: from,
            ansn: tc.ansn,
            advertised: Box::from(&tc.advertised[..]),
        });
        let until = now + msg.vtime;
        if self.topology.apply_tc(msg.originator, tc.ansn, &tc.advertised, until, now) {
            self.flags.topo = true;
        }
    }

    fn forward_flooded(&mut self, ctx: &mut Context<'_>, msg: &Message, from: NodeId) {
        let now = ctx.now();
        let kind = match msg.body {
            MessageBody::Tc(_) => MessageKind::Tc,
            MessageBody::Mid(_) => MessageKind::Mid,
            MessageBody::Hna(_) => MessageKind::Hna,
            _ => return,
        };
        let dup_until = now + self.config.duplicate_hold_time;
        if self.duplicates.retransmitted(msg.originator, msg.seq, now) {
            self.suppress_forward(ctx, msg.originator, kind, msg.seq, SuppressReason::Duplicate);
            self.duplicates.record(msg.originator, msg.seq, false, dup_until, now);
            return;
        }
        match self.flood_gate(from, msg.ttl, now) {
            Err(reason) => {
                self.suppress_forward(ctx, msg.originator, kind, msg.seq, reason);
                self.duplicates.record(msg.originator, msg.seq, false, dup_until, now);
            }
            Ok(()) => self.forward_approved(ctx, msg, from, kind, dup_until, now),
        }
    }

    /// The header-only forwarding gates of the default forwarding
    /// algorithm (§3.4), after the duplicate check: shared verbatim by the
    /// per-frame oracle and the batched fast path so their decisions
    /// cannot drift.
    fn flood_gate(&mut self, from: NodeId, ttl: u8, now: SimTime) -> Result<(), SuppressReason> {
        if ttl <= 1 {
            return Err(SuppressReason::TtlExpired);
        }
        let sender_main = self.ifaces.main_of(from, now);
        if !self.links.is_symmetric(sender_main, now) {
            return Err(SuppressReason::UnknownSender);
        }
        // Default forwarding algorithm: retransmit only if the sender
        // selected us as its MPR.
        if !self.selectors.contains(sender_main, now) {
            return Err(SuppressReason::NotMprSelector);
        }
        Ok(())
    }

    fn suppress_forward(
        &mut self,
        ctx: &mut Context<'_>,
        originator: NodeId,
        kind: MessageKind,
        seq: SequenceNumber,
        reason: SuppressReason,
    ) {
        ctx.log(LogRecord::ForwardSuppressed { originator, kind, seq: seq.0, reason });
    }

    /// Retransmits a message that passed every gate — or lets a drop
    /// attacker swallow it. Shared by both receive paths.
    fn forward_approved(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &Message,
        from: NodeId,
        kind: MessageKind,
        dup_until: SimTime,
        now: SimTime,
    ) {
        if !self.hooks.should_forward(msg, from) {
            // A drop attacker stays silent: no log line either — its own
            // logs would incriminate it. The *absence* of forwarding is what
            // neighbors can observe (paper evidence E2).
            self.duplicates.record(msg.originator, msg.seq, true, dup_until, now);
            return;
        }
        let mut fwd = msg.clone();
        fwd.ttl -= 1;
        fwd.hop_count += 1;
        self.hooks.on_forward(&mut fwd, from);
        self.duplicates.record(msg.originator, msg.seq, true, dup_until, now);
        if kind == MessageKind::Tc {
            self.flood.forwarded += 1;
        }
        ctx.log(LogRecord::Forwarded { originator: msg.originator, kind, seq: msg.seq.0, from });
        self.transmit(ctx, vec![fwd]);
    }

    fn process_data(
        &mut self,
        ctx: &mut Context<'_>,
        msg: &Message,
        data: &DataMessage,
        from: NodeId,
    ) {
        let now = ctx.now();
        if data.dst == self.id {
            ctx.log(LogRecord::DataRx { src: data.src });
            self.inbox.push(ReceivedData { src: data.src, at: now, payload: data.payload.clone() });
            return;
        }
        if msg.ttl <= 1 {
            return; // silently dies, like an expired IP packet
        }
        if !self.hooks.should_forward_data(data, from) {
            return; // black hole: swallowed without trace
        }
        // Same contract as `send_data`: route from fresh state.
        self.ensure_fresh(ctx);
        let next = self.next_hop_for(data.dst, data.avoid, now);
        let Some(next) = next else {
            ctx.log(LogRecord::DataNoRoute { dst: data.dst });
            return;
        };
        ctx.log(LogRecord::DataForwarded { src: data.src, dst: data.dst, next_hop: next });
        let mut fwd = msg.clone();
        fwd.ttl -= 1;
        fwd.hop_count += 1;
        self.unicast(ctx, next, vec![fwd]);
    }

    fn handle_packet(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        let mut arena = std::mem::take(&mut self.decode_arena);
        let packet = match decode_packet_with(&mut arena, payload) {
            Ok(p) => p,
            Err(_) => {
                self.decode_arena = arena;
                ctx.log(LogRecord::DecodeError { from });
                return;
            }
        };
        let now = ctx.now();
        for msg in &packet.messages {
            if msg.originator == self.id {
                continue; // our own flood echoed back
            }
            let already_processed = self.duplicates.seen(msg.originator, msg.seq, now);
            match &msg.body {
                MessageBody::Hello(h) => {
                    // HELLOs are link-local and never forwarded; process
                    // every one (they are never duplicates in the flooding
                    // sense).
                    self.process_hello(ctx, msg.originator, h);
                }
                MessageBody::Tc(t) => {
                    if !already_processed {
                        self.process_tc(ctx, msg, t, from);
                    }
                    self.forward_flooded(ctx, msg, from);
                }
                MessageBody::Mid(m) => {
                    if !already_processed {
                        ctx.log(LogRecord::MidRx {
                            originator: msg.originator,
                            aliases: Box::from(&m.aliases[..]),
                        });
                        let until = now + msg.vtime;
                        for &alias in &m.aliases {
                            self.ifaces.upsert(alias, msg.originator, until);
                        }
                    }
                    self.forward_flooded(ctx, msg, from);
                }
                MessageBody::Hna(h) => {
                    if !already_processed {
                        ctx.log(LogRecord::HnaRx {
                            originator: msg.originator,
                            networks: Box::from(&h.networks[..]),
                        });
                    }
                    self.forward_flooded(ctx, msg, from);
                }
                MessageBody::Data(d) => {
                    self.process_data(ctx, msg, d, from);
                }
            }
        }
        self.decode_arena = arena;
        self.decode_arena.recycle(packet);
        self.after_packet_recompute(ctx);
    }

    /// The decision-point trailer every received frame pays, shared by both
    /// receive paths so flush semantics cannot drift between them.
    fn after_packet_recompute(&mut self, ctx: &mut Context<'_>) {
        if self.flags.any() {
            match self.config.recompute {
                // The pre-incremental cadence: every state-changing packet
                // pays a full recomputation immediately.
                RecomputeMode::Eager => self.ensure_fresh(ctx),
                // Change-aware: coalesce this burst behind the debounce
                // timer (the next emission, data-plane use or analysis
                // pass refreshes earlier if it comes first).
                RecomputeMode::Incremental => {
                    if !self.debounce_armed {
                        self.debounce_armed = true;
                        ctx.set_timer(self.config.recompute_debounce, TIMER_RECOMPUTE);
                    }
                }
            }
        }
    }

    /// Batched receive fast path: decodes `frame` through a [`PacketView`]
    /// (validation without materialization) and materializes message
    /// bodies only when they will actually be processed or retransmitted.
    ///
    /// Observably identical to [`Self::handle_packet`] on the same frame:
    /// every log line, repository mutation, and RNG draw happens in the
    /// same order. The only elided work is *pure* — body materialization
    /// for duplicate flood copies whose forwarding decision needs nothing
    /// beyond the message header, and `DuplicateSet` lookups for message
    /// kinds the per-frame path queries but never uses.
    fn handle_frame_view(
        &mut self,
        ctx: &mut Context<'_>,
        from: NodeId,
        frame: &Bytes,
        arena: &mut DecodeArena,
    ) {
        let view = match PacketView::parse(frame) {
            Ok(v) => v,
            Err(_) => {
                ctx.log(LogRecord::DecodeError { from });
                return;
            }
        };
        let now = ctx.now();
        for mv in view.messages() {
            if mv.originator == self.id {
                continue; // our own flood echoed back
            }
            let kind = match mv.kind {
                MessageType::Hello => {
                    let msg = materialize_message(arena, frame, &mv);
                    if let MessageBody::Hello(h) = &msg.body {
                        self.process_hello(ctx, msg.originator, h);
                    }
                    arena.recycle_message(msg);
                    continue;
                }
                MessageType::Data => {
                    let msg = materialize_message(arena, frame, &mv);
                    if let MessageBody::Data(d) = &msg.body {
                        self.process_data(ctx, &msg, d, from);
                    }
                    arena.recycle_message(msg);
                    continue;
                }
                MessageType::Tc => MessageKind::Tc,
                MessageType::Mid => MessageKind::Mid,
                MessageType::Hna => MessageKind::Hna,
            };
            // Flooded control traffic. One duplicate-set probe replaces the
            // per-frame path's seen() + retransmitted() pair, and already
            // applies the `forwarded = false` record for suppressed copies.
            let dup_until = now + self.config.duplicate_hold_time;
            match self.duplicates.probe_flood(mv.originator, mv.seq, dup_until, now) {
                DupProbe::Retransmitted => {
                    // Already retransmitted once: suppressed on the header
                    // alone, body never materialized.
                    self.suppress_forward(
                        ctx,
                        mv.originator,
                        kind,
                        mv.seq,
                        SuppressReason::Duplicate,
                    );
                }
                DupProbe::SeenFresh => {
                    // Seen but not yet forwarded: processing is skipped, but
                    // the forwarding decision is still live. Materialize only
                    // if the gates approve.
                    match self.flood_gate(from, mv.ttl, now) {
                        Err(reason) => {
                            self.suppress_forward(ctx, mv.originator, kind, mv.seq, reason);
                            self.duplicates.record(mv.originator, mv.seq, false, dup_until, now);
                        }
                        Ok(()) => {
                            let msg = materialize_message(arena, frame, &mv);
                            self.forward_approved(ctx, &msg, from, kind, dup_until, now);
                            arena.recycle_message(msg);
                        }
                    }
                }
                DupProbe::New => {
                    let msg = materialize_message(arena, frame, &mv);
                    match &msg.body {
                        MessageBody::Tc(t) => self.process_tc(ctx, &msg, t, from),
                        MessageBody::Mid(m) => {
                            ctx.log(LogRecord::MidRx {
                                originator: msg.originator,
                                aliases: Box::from(&m.aliases[..]),
                            });
                            let until = now + msg.vtime;
                            for &alias in &m.aliases {
                                self.ifaces.upsert(alias, msg.originator, until);
                            }
                        }
                        MessageBody::Hna(h) => {
                            ctx.log(LogRecord::HnaRx {
                                originator: msg.originator,
                                networks: Box::from(&h.networks[..]),
                            });
                        }
                        _ => unreachable!("flooded kinds are Tc/Mid/Hna"),
                    }
                    match self.flood_gate(from, mv.ttl, now) {
                        Err(reason) => {
                            self.suppress_forward(ctx, mv.originator, kind, mv.seq, reason);
                            self.duplicates.record(mv.originator, mv.seq, false, dup_until, now);
                        }
                        Ok(()) => self.forward_approved(ctx, &msg, from, kind, dup_until, now),
                    }
                    arena.recycle_message(msg);
                }
            }
        }
        self.after_packet_recompute(ctx);
    }

    // ---- state maintenance ----------------------------------------------

    /// Brings every derived artifact up to date with the repositories *at
    /// this instant*: expiry sweeps (min-expiry gated), the symmetric-
    /// neighborhood delta, then — only for domains whose inputs actually
    /// changed — MPR selection and the routing BFS, logging every
    /// observable change.
    ///
    /// Every externally observable decision point calls this first
    /// (HELLO/TC emission, data-plane sends and forwards, the detector's
    /// analysis pass), which is what keeps [`RecomputeMode::Incremental`]
    /// and [`RecomputeMode::Eager`] byte-identical on the air: both modes
    /// materialize from identical repositories at identical instants.
    fn ensure_fresh(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        self.stats.flushes += 1;
        let mut nbr_changed = self.flags.nbr;
        let mut topo_changed = self.flags.topo;
        self.flags = ChangeFlags::default();

        // Expiry sweeps. Link-tuple removals cannot change the symmetric
        // set (an expired tuple was already non-symmetric); two-hop and
        // topology removals invalidate MPR/route inputs.
        for dead in self.links.purge(now) {
            ctx.log(LogRecord::LinkLost { neighbor: dead });
        }
        let dead_pairs = self.two_hop.purge(now);
        if !dead_pairs.is_empty() {
            nbr_changed = true;
            for (via, addr) in dead_pairs {
                ctx.log(LogRecord::TwoHopLost { via, addr });
            }
        }
        for addr in self.selectors.purge(now) {
            ctx.log(LogRecord::MprSelectorLost { addr });
        }
        if !self.topology.purge(now).is_empty() {
            topo_changed = true;
        }
        self.duplicates.purge(now);
        self.ifaces.purge(now);

        // Symmetric-neighborhood delta (cheap: O(degree) every flush; this
        // is also what catches pure-time symmetry transitions that no
        // reception announced).
        let mut sym = std::mem::take(&mut self.sym_scratch);
        self.links.symmetric_neighbors_into(now, &mut sym);
        let prev = std::mem::take(&mut self.prev_sym);
        if sym != prev {
            nbr_changed = true;
            for n in &sym {
                if !prev.contains(n) {
                    ctx.log(LogRecord::NeighborAdded { addr: *n });
                }
            }
            for n in &prev {
                if !sym.contains(n) {
                    ctx.log(LogRecord::NeighborLost { addr: *n });
                    self.neighbors.remove(*n);
                    self.two_hop.remove_via(*n, now);
                    if self.selectors.remove(*n, now) {
                        ctx.log(LogRecord::MprSelectorLost { addr: *n });
                    }
                }
            }
        }
        self.prev_sym = sym;
        self.sym_scratch = prev; // recycle the allocation

        // MPR selection: only when the 1/2-hop neighborhood changed. The
        // selection is a pure function of its inputs, so skipping it on
        // unchanged inputs is exact, not an approximation.
        if nbr_changed {
            self.stats.mpr_runs += 1;
            self.two_hop.two_hop_addrs_into(
                now,
                self.id,
                &self.prev_sym,
                &mut self.targets_scratch,
            );
            fill_mpr_candidates(
                &mut self.cand_pool,
                &self.two_hop,
                &self.neighbors,
                &self.excluded_mprs,
                self.id,
                &self.prev_sym,
                now,
            );
            crate::mpr::select_mprs_with(
                &mut self.mpr_ws,
                self.cand_pool.candidates(),
                &self.targets_scratch,
                &mut self.mpr_scratch,
            );
            if self.mpr_scratch != self.mprs {
                ctx.log(LogRecord::MprSet { mprs: Box::from(&self.mpr_scratch[..]) });
                std::mem::swap(&mut self.mprs, &mut self.mpr_scratch);
            }
        }

        // Routing table: only when the neighborhood or the topology
        // changed (same exactness argument).
        if nbr_changed || topo_changed {
            self.stats.route_runs += 1;
            RoutingTable::compute_avoiding_into(
                &mut self.route_ws,
                &mut self.routes_scratch,
                self.id,
                &self.prev_sym,
                &self.two_hop,
                &self.topology,
                now,
                None,
            );
            let diff = self.routes.diff(&self.routes_scratch);
            for r in &diff.added {
                ctx.log(LogRecord::RouteAdded { dest: r.dest, next_hop: r.next_hop, hops: r.hops });
            }
            for r in &diff.changed {
                ctx.log(LogRecord::RouteChanged {
                    dest: r.dest,
                    next_hop: r.next_hop,
                    hops: r.hops,
                });
            }
            for d in &diff.removed {
                ctx.log(LogRecord::RouteLost { dest: *d });
            }
            std::mem::swap(&mut self.routes, &mut self.routes_scratch);
        }
    }

    /// Public freshness hook for wrappers ([`refresh`](Self::refresh) is
    /// what the detector calls before tailing the audit log, so the
    /// recompute-emitted lines land in the same analysis batch in both
    /// recompute modes).
    pub fn refresh(&mut self, ctx: &mut Context<'_>) {
        self.ensure_fresh(ctx);
    }
}

impl<H: OlsrHooks> Application for OlsrNode<H> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.id = ctx.id();
        self.started = true;
        // Stagger the periodic timers so co-located nodes do not fire in
        // lock-step (the usual OLSR jitter).
        let hello_us = self.config.hello_interval.as_micros();
        let tc_us = self.config.tc_interval.as_micros();
        let hello_off =
            trustlink_sim::SimDuration::from_micros(ctx.rng().random_range(0..hello_us));
        let tc_off = trustlink_sim::SimDuration::from_micros(ctx.rng().random_range(0..tc_us));
        ctx.set_timer(hello_off, TIMER_HELLO);
        ctx.set_timer(tc_off, TIMER_TC);
        ctx.set_timer(self.config.refresh_interval, TIMER_REFRESH);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, timer: TimerToken) {
        match timer {
            TIMER_HELLO => {
                self.emit_hello(ctx);
                ctx.set_timer(self.config.hello_interval, TIMER_HELLO);
            }
            TIMER_TC => {
                self.emit_tc(ctx);
                self.emit_mid(ctx);
                ctx.set_timer(self.config.tc_interval, TIMER_TC);
            }
            TIMER_REFRESH => {
                self.ensure_fresh(ctx);
                ctx.set_timer(self.config.refresh_interval, TIMER_REFRESH);
            }
            TIMER_RECOMPUTE => {
                self.debounce_armed = false;
                self.ensure_fresh(ctx);
            }
            _ => {}
        }
    }

    fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
        self.handle_packet(ctx, from, payload);
    }

    fn on_receive_batch(&mut self, ctx: &mut Context<'_>, batch: &mut FrameBatch) {
        // One arena warm-up amortized across the whole batch; frames decode
        // zero-copy through `PacketView` and recycle into the same arena.
        let mut arena = std::mem::take(&mut self.decode_arena);
        for (from, payload) in batch.drain() {
            self.handle_frame_view(ctx, from, &payload, &mut arena);
        }
        self.decode_arena = arena;
    }

    fn rng_free(&self, class: CallbackClass) -> bool {
        match class {
            // `on_start` staggers HELLO/TC timers from the engine stream.
            CallbackClass::Start => false,
            // Receive and timer paths never draw, and hooks cannot: the
            // `OlsrHooks` methods take no `Context`, so the whole protocol
            // machine is deterministic given its inputs. This is what lets
            // the sharded engine run OLSR traffic off the main thread.
            CallbackClass::Receive | CallbackClass::Timer => true,
        }
    }
}

impl<H: OlsrHooks> std::fmt::Debug for OlsrNode<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OlsrNode")
            .field("id", &self.id)
            .field("neighbors", &self.neighbors.len())
            .field("mprs", &self.mprs)
            .field("routes", &self.routes.len())
            .finish()
    }
}

/// Builds the MPR candidate set for `me` into `pool` (cleared first): one
/// candidate per symmetric neighbor, covering the strict 2-hop targets
/// reachable through it, with `WILL_NEVER` forced for excluded intruders.
/// The single definition both the hot path ([`OlsrNode::ensure_fresh`])
/// and the pure query ([`OlsrNode::effective_mprs`]) share — the
/// equivalence suite compares materialized against effective state, so
/// the two must be the same computation by construction. `sym` must be
/// sorted ascending.
fn fill_mpr_candidates(
    pool: &mut CandidatePool,
    two_hop: &TwoHopSet,
    neighbors: &NeighborSet,
    excluded: &std::collections::BTreeSet<NodeId>,
    me: NodeId,
    sym: &[NodeId],
    now: SimTime,
) {
    pool.clear();
    for &n in sym {
        let willingness = if excluded.contains(&n) {
            Willingness::Never
        } else {
            neighbors.get(n).map_or(Willingness::Default, |t| t.willingness)
        };
        let covers = pool.push(n, willingness);
        covers
            .extend(two_hop.iter_via(n, now).filter(|t| *t != me && sym.binary_search(t).is_err()));
        pool.seal_last();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_packet;
    use trustlink_sim::{Position, RadioConfig, SimDuration, SimulatorBuilder};

    fn line_sim(n: usize, spacing: f64, range: f64, seed: u64) -> trustlink_sim::Simulator {
        let mut sim = SimulatorBuilder::new(seed)
            .radio(RadioConfig::unit_disk(range))
            .arena(trustlink_sim::Arena::new(10_000.0, 10_000.0))
            .build();
        for i in 0..n {
            sim.add_node(
                Box::new(OlsrNode::new(OlsrConfig::fast())),
                Position::new(i as f64 * spacing, 0.0),
            );
        }
        sim
    }

    #[test]
    fn two_nodes_become_symmetric_neighbors() {
        let mut sim = line_sim(2, 100.0, 150.0, 7);
        sim.run_for(SimDuration::from_secs(5));
        let now = sim.now();
        let a = sim.app_as::<OlsrNode>(NodeId(0)).unwrap();
        let b = sim.app_as::<OlsrNode>(NodeId(1)).unwrap();
        assert_eq!(a.symmetric_neighbors(now), vec![NodeId(1)]);
        assert_eq!(b.symmetric_neighbors(now), vec![NodeId(0)]);
        // 1-hop routes appear.
        assert_eq!(a.routing_table().next_hop(NodeId(1)), Some(NodeId(1)));
    }

    #[test]
    fn line_of_four_converges_multi_hop_routes() {
        let mut sim = line_sim(4, 100.0, 150.0, 11);
        sim.run_for(SimDuration::from_secs(20));
        let a = sim.app_as::<OlsrNode>(NodeId(0)).unwrap();
        let r = a.routing_table().route_to(NodeId(3)).expect("route to far end");
        assert_eq!(r.hops, 3);
        assert_eq!(r.next_hop, NodeId(1));
        // Middle nodes are MPRs of their neighbors.
        let b = sim.app_as::<OlsrNode>(NodeId(1)).unwrap();
        assert!(!b.mpr_selectors(sim.now()).is_empty(), "N1 must be selected as MPR");
    }

    #[test]
    fn mpr_covers_all_two_hop_neighbors() {
        let mut sim = line_sim(5, 100.0, 150.0, 13);
        sim.run_for(SimDuration::from_secs(20));
        let now = sim.now();
        for i in 0..5 {
            let node = sim.app_as::<OlsrNode>(NodeId(i)).unwrap();
            let sym = node.symmetric_neighbors(now);
            let targets = node.two_hop_set().two_hop_addrs(now, NodeId(i), &sym);
            for t in &targets {
                let vias = node.two_hop_set().vias_for(*t, now);
                assert!(
                    vias.iter().any(|v| node.mpr_set().contains(v)),
                    "N{i}: 2-hop {t} not covered by MPRs {:?}",
                    node.mpr_set()
                );
            }
        }
    }

    #[test]
    fn data_plane_delivers_multi_hop() {
        let mut sim = line_sim(4, 100.0, 150.0, 17);
        sim.run_for(SimDuration::from_secs(20));
        let a = sim.app_as::<OlsrNode>(NodeId(0)).unwrap();
        let next = a.routing_table().next_hop(NodeId(3)).unwrap();
        assert_eq!(next, NodeId(1));
        // Encode a data packet as N0 would and inject it.
        let msg = Message {
            vtime: SimDuration::from_secs(6),
            originator: NodeId(0),
            ttl: 32,
            hop_count: 0,
            seq: SequenceNumber(999),
            body: MessageBody::Data(DataMessage {
                src: NodeId(0),
                dst: NodeId(3),
                avoid: None,
                payload: Bytes::from_static(b"ping"),
            }),
        };
        let packet = Packet { seq: SequenceNumber(999), messages: vec![msg] };
        sim.inject_broadcast(NodeId(0), encode_packet(&packet));
        sim.run_for(SimDuration::from_secs(5));
        let d = sim.app_as_mut::<OlsrNode>(NodeId(3)).unwrap();
        let inbox = d.take_inbox();
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].src, NodeId(0));
        assert_eq!(inbox[0].payload.as_ref(), b"ping");
    }

    #[test]
    fn audit_log_records_neighborhood_events() {
        let mut sim = line_sim(3, 100.0, 150.0, 23);
        sim.run_for(SimDuration::from_secs(10));
        let log = sim.log(NodeId(1));
        let mut saw_hello_rx = false;
        let mut saw_nbr_add = false;
        let mut saw_mpr_selector = false;
        for line in log.lines() {
            if line.starts_with("HELLO_RX") {
                saw_hello_rx = true;
            }
            if line.starts_with("NBR_ADD") {
                saw_nbr_add = true;
            }
            if line.starts_with("MPR_SELECTOR_ADD") {
                saw_mpr_selector = true;
            }
            // Every rendered line must be parseable (external log consumers
            // depend on it).
            crate::logging::parse_line(&line)
                .unwrap_or_else(|e| panic!("unparseable log line `{line}`: {e}"));
        }
        assert!(saw_hello_rx && saw_nbr_add);
        // The middle node of a 3-line is everyone's MPR.
        assert!(saw_mpr_selector);
    }

    #[test]
    fn neighbor_loss_detected_after_silence() {
        let mut sim = line_sim(2, 100.0, 150.0, 29);
        sim.run_for(SimDuration::from_secs(5));
        sim.kill(NodeId(1));
        sim.run_for(SimDuration::from_secs(10));
        let now = sim.now();
        let a = sim.app_as::<OlsrNode>(NodeId(0)).unwrap();
        assert!(a.symmetric_neighbors(now).is_empty());
        assert!(sim.log(NodeId(0)).lines().any(|l| l.starts_with("NBR_LOST addr=N1")));
    }

    #[test]
    fn tc_messages_propagate_topology() {
        let mut sim = line_sim(4, 100.0, 150.0, 31);
        sim.run_for(SimDuration::from_secs(20));
        // N0 must have learned, via TCs, links it cannot hear directly.
        let a = sim.app_as::<OlsrNode>(NodeId(0)).unwrap();
        let topo_edges: Vec<(NodeId, NodeId)> =
            a.topology_set().iter(sim.now()).map(|t| (t.last_hop, t.dest)).collect();
        assert!(
            topo_edges.iter().any(|(lh, d)| lh.0 >= 2 || d.0 >= 2),
            "no remote topology learned: {topo_edges:?}"
        );
    }

    /// Records `(ttl, hop_count)` of every message this node re-floods,
    /// as mutated just before retransmission.
    #[derive(Default)]
    struct RecordForwards {
        seen: Vec<(u8, u8)>,
    }

    impl crate::hooks::OlsrHooks for RecordForwards {
        fn on_forward(&mut self, msg: &mut Message, _from: NodeId) {
            self.seen.push((msg.ttl, msg.hop_count));
        }
    }

    /// A 3-node line whose middle node records its re-floods: both ends
    /// select the middle as MPR, so a flood injected at N0 exercises the
    /// default forwarding algorithm at N1.
    fn converged_line_with_recorder(seed: u64) -> trustlink_sim::Simulator {
        let mut sim = SimulatorBuilder::new(seed)
            .radio(RadioConfig::unit_disk(150.0))
            .arena(trustlink_sim::Arena::new(10_000.0, 10_000.0))
            .build();
        for i in 0..3 {
            let app: Box<dyn trustlink_sim::Application> = if i == 1 {
                Box::new(OlsrNode::with_hooks(OlsrConfig::fast(), RecordForwards::default()))
            } else {
                Box::new(OlsrNode::new(OlsrConfig::fast()))
            };
            sim.add_node(app, Position::new(f64::from(i) * 100.0, 0.0));
        }
        sim.run_for(SimDuration::from_secs(10));
        let mid = sim.app_as::<OlsrNode<RecordForwards>>(NodeId(1)).unwrap();
        assert!(
            mid.mpr_selectors(sim.now()).contains(&NodeId(0)),
            "N0 must select N1 as MPR for the forwarding tests to bite"
        );
        sim
    }

    /// Injects a crafted TC flood as if broadcast by N0.
    fn inject_tc(sim: &mut trustlink_sim::Simulator, seq: u16, ttl: u8, hop_count: u8) {
        let msg = Message {
            vtime: SimDuration::from_secs(6),
            originator: NodeId(0),
            ttl,
            hop_count,
            seq: SequenceNumber(seq),
            body: MessageBody::Tc(TcMessage { ansn: seq, advertised: vec![NodeId(1)] }),
        };
        let packet = Packet { seq: SequenceNumber(seq), messages: vec![msg] };
        sim.inject_broadcast(NodeId(0), encode_packet(&packet));
        sim.run_for(SimDuration::from_millis(200));
    }

    fn mid_lines(sim: &trustlink_sim::Simulator, prefix: &str, seq: u16) -> usize {
        let needle = format!("seq={seq}");
        sim.log(NodeId(1)).lines().filter(|l| l.starts_with(prefix) && l.contains(&needle)).count()
    }

    #[test]
    fn forward_flooded_drops_exhausted_ttl() {
        let mut sim = converged_line_with_recorder(41);
        let fwd_before = sim.app_as::<OlsrNode<RecordForwards>>(NodeId(1)).unwrap().flood.forwarded;
        inject_tc(&mut sim, 900, 1, 0);
        let mid = sim.app_as::<OlsrNode<RecordForwards>>(NodeId(1)).unwrap();
        assert!(mid.hooks().seen.is_empty(), "a ttl=1 flood must never reach on_forward");
        assert_eq!(mid.flood.forwarded, fwd_before, "ttl=1 flood counted as forwarded");
        assert_eq!(mid_lines(&sim, "FWD_SUPPRESS", 900), 1);
        assert!(
            sim.log(NodeId(1)).lines().any(|l| l.starts_with("FWD_SUPPRESS")
                && l.contains("seq=900")
                && l.contains("reason=ttl-expired")),
            "suppression must cite the exhausted TTL"
        );
        assert_eq!(mid_lines(&sim, "FWD ", 900), 0);
    }

    #[test]
    fn forward_flooded_decrements_ttl_and_increments_hop_count() {
        let mut sim = converged_line_with_recorder(43);
        inject_tc(&mut sim, 901, 5, 2);
        let mid = sim.app_as::<OlsrNode<RecordForwards>>(NodeId(1)).unwrap();
        assert_eq!(mid.hooks().seen, vec![(4, 3)], "re-flood must carry ttl-1, hop_count+1");
        assert_eq!(mid_lines(&sim, "FWD ", 901), 1);
        // The re-flood reaches the far end of the line (out of N0's range).
        assert!(
            sim.log(NodeId(2))
                .lines()
                .any(|l| l.starts_with("TC_RX orig=N0") && l.contains("ansn=901")),
            "forwarded TC never reached the 2-hop node"
        );
    }

    #[test]
    fn forward_flooded_suppresses_duplicate_refloods() {
        let mut sim = converged_line_with_recorder(47);
        inject_tc(&mut sim, 902, 8, 0);
        inject_tc(&mut sim, 902, 8, 0); // the same (originator, seq) again
        let mid = sim.app_as::<OlsrNode<RecordForwards>>(NodeId(1)).unwrap();
        assert_eq!(mid.hooks().seen.len(), 1, "duplicate flood was retransmitted");
        assert_eq!(mid_lines(&sim, "FWD ", 902), 1);
        assert!(
            sim.log(NodeId(1)).lines().any(|l| l.starts_with("FWD_SUPPRESS")
                && l.contains("seq=902")
                && l.contains("reason=duplicate")),
            "second copy must be suppressed as a duplicate"
        );
    }

    #[test]
    fn fisheye_ttl_scopes_flood_reach() {
        // A 5-node line under a single TTL-2 ring: N1's TCs (selected by
        // N0) reach N3 (2 hops) but die before N4; classic floods reach
        // the whole line. This is the TTL mechanics the ring schedule
        // leans on, observed end-to-end.
        let run = |scope: crate::types::FloodScope| {
            let cfg = OlsrConfig::fast().with_flood_scope(scope);
            let mut sim = SimulatorBuilder::new(53)
                .radio(RadioConfig::unit_disk(150.0))
                .arena(trustlink_sim::Arena::new(10_000.0, 10_000.0))
                .build();
            for i in 0..5 {
                sim.add_node(
                    Box::new(OlsrNode::new(cfg.clone())),
                    Position::new(f64::from(i) * 100.0, 0.0),
                );
            }
            sim.run_for(SimDuration::from_secs(20));
            sim
        };
        let heard_n1 = |sim: &trustlink_sim::Simulator, id: u32| {
            sim.log(NodeId(id)).lines().any(|l| l.starts_with("TC_RX orig=N1"))
        };
        let classic = run(crate::types::FloodScope::Classic);
        assert!(heard_n1(&classic, 3) && heard_n1(&classic, 4), "classic floods reach everyone");
        let scoped =
            run(crate::types::FloodScope::Fisheye(crate::types::FisheyeRings::new([(2, 1)])));
        assert!(heard_n1(&scoped, 3), "a TTL-2 flood must still cover 2 hops");
        assert!(!heard_n1(&scoped, 4), "a TTL-2 flood must die beyond 2 hops");
    }

    #[test]
    fn fisheye_stretches_vtime_per_ring() {
        // The outermost ring's TCs must advertise a validity stretched by
        // its stride, so topology learned only from rare network-wide
        // floods is held across the gap instead of flapping. Observable
        // only at a listener the inner ring never reaches: a nearer node
        // keeps hearing short-validity inner-ring TCs, and the latest
        // message's vtime legitimately replaces the old one (RFC 3626
        // §9.5). N4 on a 5-node line is 3 hops from the originator N1,
        // beyond the TTL-2 inner ring.
        let rings = crate::types::FisheyeRings::new([(2, 1), (255, 4)]);
        let cfg = OlsrConfig::fast().with_flood_scope(crate::types::FloodScope::Fisheye(rings));
        let mut sim = SimulatorBuilder::new(59)
            .radio(RadioConfig::unit_disk(150.0))
            .arena(trustlink_sim::Arena::new(10_000.0, 10_000.0))
            .build();
        for i in 0..5 {
            sim.add_node(
                Box::new(OlsrNode::new(cfg.clone())),
                Position::new(f64::from(i) * 100.0, 0.0),
            );
        }
        sim.run_for(SimDuration::from_secs(30));
        let now = sim.now();
        let far = sim.app_as::<OlsrNode>(NodeId(4)).unwrap();
        let hold = far.config().topology_hold_time;
        let from_n1 = far
            .topology_set()
            .iter(now)
            .filter(|t| t.last_hop == NodeId(1))
            .map(|t| t.until.saturating_since(now))
            .max()
            .expect("N4 must have learned N1's advertisement from the unbounded ring");
        assert!(
            from_n1 > hold * 2,
            "outermost-ring TCs must stretch validity beyond the base hold time \
             (saw {from_n1:?}, base {hold:?})"
        );
    }

    #[test]
    fn avoid_routing_in_diamond() {
        // Diamond: 0 - {1, 2} - 3. Avoiding 1 must route via 2.
        let mut sim = SimulatorBuilder::new(37)
            .radio(RadioConfig::unit_disk(110.0))
            .arena(trustlink_sim::Arena::new(1_000.0, 1_000.0))
            .build();
        // Edge length 100 (< 110 range); diagonals 120 and 160 (out of range).
        let positions = [
            Position::new(0.0, 100.0),   // 0
            Position::new(80.0, 160.0),  // 1
            Position::new(80.0, 40.0),   // 2
            Position::new(160.0, 100.0), // 3
        ];
        for p in positions {
            sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), p);
        }
        sim.run_for(SimDuration::from_secs(20));
        let now = sim.now();
        let a = sim.app_as_mut::<OlsrNode>(NodeId(0)).unwrap();
        let sym = a.symmetric_neighbors(now);
        assert_eq!(sym, vec![NodeId(1), NodeId(2)]);
        let next = a.next_hop_for(NodeId(3), Some(NodeId(1)), now);
        assert_eq!(next, Some(NodeId(2)));
        let next_none = a.next_hop_for(NodeId(1), Some(NodeId(1)), now);
        assert_eq!(next_none, None, "cannot route to the avoided node");
    }
}
