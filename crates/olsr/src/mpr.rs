//! MPR selection (RFC 3626 §8.3.1).
//!
//! Each node selects, among its symmetric 1-hop neighbors, a minimal-ish set
//! of *multipoint relays* covering every strict 2-hop neighbor. Only MPRs
//! retransmit flooded control traffic — which is exactly why the paper's
//! link-spoofing attacker wants to be selected: Expression (1) shows that
//! advertising a non-existent neighbor guarantees selection.
//!
//! The heuristic implemented is the RFC's:
//!
//! 1. start with all neighbors of willingness `WILL_ALWAYS`;
//! 2. add every neighbor that is the *only* path to some 2-hop neighbor;
//! 3. while some 2-hop neighbor is uncovered, add the neighbor with the
//!    highest willingness, breaking ties by reachability (number of still
//!    uncovered 2-hop neighbors it covers) and then by degree.

use std::collections::BTreeSet;

use trustlink_sim::NodeId;

use crate::types::Willingness;

/// A candidate 1-hop neighbor for MPR selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MprCandidate {
    /// The neighbor's address.
    pub addr: NodeId,
    /// Its advertised willingness.
    pub willingness: Willingness,
    /// The strict 2-hop neighbors reachable through it.
    pub covers: Vec<NodeId>,
    /// Its degree `D(y)`: number of symmetric neighbors of the candidate,
    /// excluding this node and its 1-hop neighborhood. We approximate with
    /// the size of `covers` plus any extra links the candidate advertised;
    /// callers may supply the exact RFC value when available.
    pub degree: usize,
}

/// Reusable scratch buffers for [`select_mprs_with`].
///
/// MPR selection runs after every received HELLO; the original
/// implementation rebuilt several `BTreeMap`/`BTreeSet` structures per
/// call. A node-owned workspace keeps the flat buffers the selection
/// actually needs, so steady-state recomputation allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct MprWorkspace {
    /// Deduplicated targets, ascending.
    targets: Vec<NodeId>,
    /// Parallel to `targets`: already covered by a selected MPR?
    covered: Vec<bool>,
    /// `(candidate, target)` coverage pairs, sorted and deduplicated —
    /// duplicate candidate addresses merge, exactly like the map-of-sets
    /// this replaces.
    pairs: Vec<(NodeId, NodeId)>,
    /// Parallel to `targets`: number of distinct candidates covering it.
    cover_count: Vec<u32>,
    /// Parallel to `targets`: one covering candidate (the sole one when
    /// `cover_count == 1`).
    sole_cover: Vec<NodeId>,
}

/// A reusable buffer of [`MprCandidate`]s.
///
/// Candidate construction used to allocate one `Vec<MprCandidate>` plus
/// one `covers` vector per symmetric neighbor on *every* recomputation.
/// The pool recycles both: [`clear`](CandidatePool::clear) parks the
/// `covers` allocations of the previous round, and
/// [`push`](CandidatePool::push) hands them back out. Once warm, building
/// the candidate set allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct CandidatePool {
    cands: Vec<MprCandidate>,
    spare_covers: Vec<Vec<NodeId>>,
}

impl CandidatePool {
    /// Empties the pool, keeping every allocation for reuse.
    pub fn clear(&mut self) {
        for mut c in self.cands.drain(..) {
            c.covers.clear();
            self.spare_covers.push(std::mem::take(&mut c.covers));
        }
    }

    /// Starts a new candidate for `addr`; returns its `covers` buffer
    /// (empty, capacity recycled) for the caller to fill.
    pub fn push(&mut self, addr: NodeId, willingness: Willingness) -> &mut Vec<NodeId> {
        let covers = self.spare_covers.pop().unwrap_or_default();
        self.cands.push(MprCandidate { addr, willingness, covers, degree: 0 });
        let c = self.cands.last_mut().expect("just pushed");
        &mut c.covers
    }

    /// Finalizes the most recent candidate: sets its degree to the cover
    /// count (the approximation documented on [`MprCandidate::degree`]).
    pub fn seal_last(&mut self) {
        if let Some(c) = self.cands.last_mut() {
            c.degree = c.covers.len();
        }
    }

    /// The candidates built so far.
    pub fn candidates(&self) -> &[MprCandidate] {
        &self.cands
    }
}

/// Inserts `addr` into the sorted set `out`; `true` if newly added.
fn insert_sorted(out: &mut Vec<NodeId>, addr: NodeId) -> bool {
    match out.binary_search(&addr) {
        Ok(_) => false,
        Err(at) => {
            out.insert(at, addr);
            true
        }
    }
}

impl MprWorkspace {
    /// The coverage pairs of `addr`, as a sorted slice of the pair buffer.
    fn pairs_of(&self, addr: NodeId) -> &[(NodeId, NodeId)] {
        let lo = self.pairs.partition_point(|p| p.0 < addr);
        let hi = self.pairs.partition_point(|p| p.0 <= addr);
        &self.pairs[lo..hi]
    }

    /// Marks everything `addr` covers; returns how many targets became
    /// newly covered.
    fn mark_covered(&mut self, addr: NodeId) -> usize {
        let lo = self.pairs.partition_point(|p| p.0 < addr);
        let hi = self.pairs.partition_point(|p| p.0 <= addr);
        let mut newly = 0;
        for i in lo..hi {
            let t = self.pairs[i].1;
            let ti = self.targets.binary_search(&t).expect("pair target not in target set");
            if !self.covered[ti] {
                self.covered[ti] = true;
                newly += 1;
            }
        }
        newly
    }
}

/// Computes the MPR set covering `two_hop_targets` using `candidates`
/// (RFC 3626 §8.3.1 heuristic).
///
/// `two_hop_targets` should already exclude the selecting node itself and
/// its symmetric 1-hop neighbors. Candidates with willingness
/// [`Willingness::Never`] are never selected; 2-hop targets only reachable
/// through such neighbors end up uncovered (as in the RFC).
///
/// The result is sorted ascending. This is the convenience wrapper around
/// [`select_mprs_with`], paying one workspace allocation per call.
pub fn select_mprs(candidates: &[MprCandidate], two_hop_targets: &[NodeId]) -> Vec<NodeId> {
    let mut ws = MprWorkspace::default();
    let mut out = Vec::new();
    select_mprs_with(&mut ws, candidates, two_hop_targets, &mut out);
    out
}

/// Allocation-free form of [`select_mprs`]: scratch state lives in `ws`,
/// the selected set (sorted ascending) is written into `out`. Results are
/// identical to [`select_mprs`] for every input.
pub fn select_mprs_with(
    ws: &mut MprWorkspace,
    candidates: &[MprCandidate],
    two_hop_targets: &[NodeId],
    out: &mut Vec<NodeId>,
) {
    out.clear();
    ws.targets.clear();
    ws.targets.extend_from_slice(two_hop_targets);
    ws.targets.sort_unstable();
    ws.targets.dedup();
    if ws.targets.is_empty() {
        // Still honour WILL_ALWAYS neighbors (RFC step 1).
        for c in candidates {
            if c.willingness == Willingness::Always {
                insert_sorted(out, c.addr);
            }
        }
        return;
    }

    // Coverage restricted to real targets and willing candidates.
    ws.pairs.clear();
    for c in candidates {
        if c.willingness == Willingness::Never {
            continue;
        }
        for &t in &c.covers {
            if ws.targets.binary_search(&t).is_ok() {
                ws.pairs.push((c.addr, t));
            }
        }
    }
    ws.pairs.sort_unstable();
    ws.pairs.dedup();

    ws.covered.clear();
    ws.covered.resize(ws.targets.len(), false);
    let mut uncovered = ws.targets.len();

    // Step 1: WILL_ALWAYS neighbors are always MPRs.
    for c in candidates {
        if c.willingness == Willingness::Always {
            insert_sorted(out, c.addr);
            uncovered -= ws.mark_covered(c.addr);
        }
    }

    // Step 2: neighbors that are the sole cover of some target.
    ws.cover_count.clear();
    ws.cover_count.resize(ws.targets.len(), 0);
    ws.sole_cover.clear();
    ws.sole_cover.resize(ws.targets.len(), NodeId(0));
    for &(cand, t) in &ws.pairs {
        let ti = ws.targets.binary_search(&t).expect("pair target not in target set");
        ws.cover_count[ti] += 1;
        ws.sole_cover[ti] = cand;
    }
    for ti in 0..ws.targets.len() {
        if !ws.covered[ti] && ws.cover_count[ti] == 1 {
            insert_sorted(out, ws.sole_cover[ti]);
        }
    }
    for &m in out.iter() {
        uncovered -= ws.mark_covered(m);
    }

    // Step 3: greedy by (willingness, reachability, degree, addr-for-determinism).
    while uncovered > 0 {
        let mut best: Option<(Willingness, usize, usize, NodeId)> = None;
        for c in candidates {
            if c.willingness == Willingness::Never || out.binary_search(&c.addr).is_ok() {
                continue;
            }
            let reach = ws
                .pairs_of(c.addr)
                .iter()
                .filter(|(_, t)| {
                    let ti = ws.targets.binary_search(t).expect("pair target not in target set");
                    !ws.covered[ti]
                })
                .count();
            if reach == 0 {
                continue;
            }
            let key = (c.willingness, reach, c.degree, c.addr);
            let better = match &best {
                None => true,
                Some((w, r, d, a)) => {
                    (key.0, key.1, key.2) > (*w, *r, *d)
                        || ((key.0, key.1, key.2) == (*w, *r, *d) && key.3 < *a)
                }
            };
            if better {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, _, addr)) => {
                insert_sorted(out, addr);
                uncovered -= ws.mark_covered(addr);
            }
            None => break, // some targets are unreachable through willing neighbors
        }
    }
}

/// Checks the MPR coverage invariant: every target reachable through some
/// willing candidate is covered by at least one selected MPR. Returns the
/// uncovered-but-coverable targets (empty = invariant holds).
pub fn uncovered_targets(
    candidates: &[MprCandidate],
    two_hop_targets: &[NodeId],
    mprs: &[NodeId],
) -> Vec<NodeId> {
    let mpr_set: BTreeSet<NodeId> = mprs.iter().copied().collect();
    let mut covered: BTreeSet<NodeId> = BTreeSet::new();
    let mut coverable: BTreeSet<NodeId> = BTreeSet::new();
    for c in candidates {
        if c.willingness == Willingness::Never {
            continue;
        }
        for &t in &c.covers {
            coverable.insert(t);
            if mpr_set.contains(&c.addr) {
                covered.insert(t);
            }
        }
    }
    two_hop_targets
        .iter()
        .copied()
        .filter(|t| coverable.contains(t) && !covered.contains(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(addr: u32, will: Willingness, covers: &[u32]) -> MprCandidate {
        MprCandidate {
            addr: NodeId(addr),
            willingness: will,
            covers: covers.iter().map(|&c| NodeId(c)).collect(),
            degree: covers.len(),
        }
    }

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn empty_inputs() {
        assert!(select_mprs(&[], &[]).is_empty());
        assert!(select_mprs(&[], &ids(&[10])).is_empty());
        assert!(select_mprs(&[cand(1, Willingness::Default, &[])], &[]).is_empty());
    }

    #[test]
    fn single_candidate_covers_all() {
        let c = [cand(1, Willingness::Default, &[10, 11])];
        assert_eq!(select_mprs(&c, &ids(&[10, 11])), ids(&[1]));
    }

    #[test]
    fn sole_cover_is_forced() {
        // 1 covers {10}, 2 covers {10, 11}: 2 is the sole cover of 11.
        let c = [cand(1, Willingness::Default, &[10]), cand(2, Willingness::Default, &[10, 11])];
        let mprs = select_mprs(&c, &ids(&[10, 11]));
        assert_eq!(mprs, ids(&[2])); // 2 alone suffices
    }

    #[test]
    fn greedy_picks_max_reachability() {
        // 3 covers three targets, 1 and 2 cover one each; greedy should
        // take 3 first and be done.
        let c = [
            cand(1, Willingness::Default, &[10]),
            cand(2, Willingness::Default, &[11]),
            cand(3, Willingness::Default, &[10, 11, 12]),
        ];
        assert_eq!(select_mprs(&c, &ids(&[10, 11, 12])), ids(&[3]));
    }

    #[test]
    fn willingness_beats_reachability() {
        // No target has a sole cover, so the greedy step runs: the
        // high-willingness candidate is picked first even though another
        // candidate covers more targets (RFC orders by willingness first).
        let c = [
            cand(1, Willingness::High, &[10]),
            cand(2, Willingness::Default, &[10, 11]),
            cand(3, Willingness::Default, &[11]),
        ];
        let mprs = select_mprs(&c, &ids(&[10, 11]));
        // 1 picked first (higher willingness), then 2 (degree beats 3) for 11.
        assert_eq!(mprs, ids(&[1, 2]));
    }

    #[test]
    fn will_never_is_excluded() {
        let c = [cand(1, Willingness::Never, &[10, 11]), cand(2, Willingness::Default, &[10])];
        let mprs = select_mprs(&c, &ids(&[10, 11]));
        assert_eq!(mprs, ids(&[2]));
        // 11 is only coverable via the unwilling node: stays uncovered but
        // does not loop forever.
        assert!(uncovered_targets(&c, &ids(&[10, 11]), &mprs).is_empty()); // 11 isn't "coverable"
    }

    #[test]
    fn will_always_is_always_selected() {
        let c = [cand(1, Willingness::Always, &[]), cand(2, Willingness::Default, &[10])];
        let mprs = select_mprs(&c, &ids(&[10]));
        assert_eq!(mprs, ids(&[1, 2]));
        // Even with no 2-hop targets at all:
        assert_eq!(select_mprs(&c, &[]), ids(&[1]));
    }

    #[test]
    fn tie_break_by_degree_then_addr() {
        // Equal willingness and reachability; higher degree wins.
        let mut c1 = cand(1, Willingness::Default, &[10]);
        c1.degree = 5;
        let mut c2 = cand(2, Willingness::Default, &[10]);
        c2.degree = 2;
        assert_eq!(select_mprs(&[c1.clone(), c2.clone()], &ids(&[10])), ids(&[1]));
        // Exactly equal: deterministic lowest address.
        c1.degree = 2;
        assert_eq!(select_mprs(&[c1, c2], &ids(&[10])), ids(&[1]));
    }

    #[test]
    fn coverage_invariant_random_like_cases() {
        // A handful of structured cases; the proptest suite drives more.
        let cases: Vec<(Vec<MprCandidate>, Vec<NodeId>)> = vec![
            (
                vec![
                    cand(1, Willingness::Default, &[10, 11]),
                    cand(2, Willingness::Low, &[11, 12]),
                    cand(3, Willingness::High, &[12, 13]),
                    cand(4, Willingness::Default, &[13, 10]),
                ],
                ids(&[10, 11, 12, 13]),
            ),
            (
                vec![
                    cand(1, Willingness::Default, &[20]),
                    cand(2, Willingness::Default, &[20]),
                    cand(3, Willingness::Default, &[20]),
                ],
                ids(&[20]),
            ),
        ];
        for (cands, targets) in cases {
            let mprs = select_mprs(&cands, &targets);
            assert!(
                uncovered_targets(&cands, &targets, &mprs).is_empty(),
                "uncovered targets with candidates {cands:?}"
            );
        }
    }

    #[test]
    fn workspace_reuse_matches_fresh_selection() {
        // One workspace driven across heterogeneous inputs (including
        // duplicate candidate addresses and shrinking target sets) must
        // match a fresh `select_mprs` every time.
        let cases: Vec<(Vec<MprCandidate>, Vec<NodeId>)> = vec![
            (
                vec![
                    cand(1, Willingness::Default, &[10, 11]),
                    cand(2, Willingness::Low, &[11, 12]),
                    cand(3, Willingness::High, &[12, 13]),
                    cand(4, Willingness::Always, &[13, 10]),
                    cand(4, Willingness::Always, &[11]), // duplicate addr
                ],
                ids(&[10, 11, 12, 13, 13, 10]), // duplicated targets
            ),
            (vec![cand(9, Willingness::Always, &[])], ids(&[])),
            (
                vec![cand(1, Willingness::Never, &[20]), cand(2, Willingness::Default, &[20])],
                ids(&[20, 21]),
            ),
            (vec![], ids(&[5])),
        ];
        let mut ws = MprWorkspace::default();
        let mut out = Vec::new();
        for (cands, targets) in &cases {
            select_mprs_with(&mut ws, cands, targets, &mut out);
            assert_eq!(out, select_mprs(cands, targets), "candidates {cands:?}");
        }
    }

    #[test]
    fn targets_not_coverable_do_not_hang() {
        let c = [cand(1, Willingness::Default, &[10])];
        // 99 is not coverable at all.
        let mprs = select_mprs(&c, &ids(&[10, 99]));
        assert_eq!(mprs, ids(&[1]));
    }
}
