//! MPR selection (RFC 3626 §8.3.1).
//!
//! Each node selects, among its symmetric 1-hop neighbors, a minimal-ish set
//! of *multipoint relays* covering every strict 2-hop neighbor. Only MPRs
//! retransmit flooded control traffic — which is exactly why the paper's
//! link-spoofing attacker wants to be selected: Expression (1) shows that
//! advertising a non-existent neighbor guarantees selection.
//!
//! The heuristic implemented is the RFC's:
//!
//! 1. start with all neighbors of willingness `WILL_ALWAYS`;
//! 2. add every neighbor that is the *only* path to some 2-hop neighbor;
//! 3. while some 2-hop neighbor is uncovered, add the neighbor with the
//!    highest willingness, breaking ties by reachability (number of still
//!    uncovered 2-hop neighbors it covers) and then by degree.

use std::collections::{BTreeMap, BTreeSet};

use trustlink_sim::NodeId;

use crate::types::Willingness;

/// A candidate 1-hop neighbor for MPR selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MprCandidate {
    /// The neighbor's address.
    pub addr: NodeId,
    /// Its advertised willingness.
    pub willingness: Willingness,
    /// The strict 2-hop neighbors reachable through it.
    pub covers: Vec<NodeId>,
    /// Its degree `D(y)`: number of symmetric neighbors of the candidate,
    /// excluding this node and its 1-hop neighborhood. We approximate with
    /// the size of `covers` plus any extra links the candidate advertised;
    /// callers may supply the exact RFC value when available.
    pub degree: usize,
}

/// Computes the MPR set covering `two_hop_targets` using `candidates`
/// (RFC 3626 §8.3.1 heuristic).
///
/// `two_hop_targets` should already exclude the selecting node itself and
/// its symmetric 1-hop neighbors. Candidates with willingness
/// [`Willingness::Never`] are never selected; 2-hop targets only reachable
/// through such neighbors end up uncovered (as in the RFC).
///
/// The result is sorted ascending.
pub fn select_mprs(candidates: &[MprCandidate], two_hop_targets: &[NodeId]) -> Vec<NodeId> {
    let mut mprs: BTreeSet<NodeId> = BTreeSet::new();
    let targets: BTreeSet<NodeId> = two_hop_targets.iter().copied().collect();
    if targets.is_empty() {
        // Still honour WILL_ALWAYS neighbors (RFC step 1).
        for c in candidates {
            if c.willingness == Willingness::Always {
                mprs.insert(c.addr);
            }
        }
        return mprs.into_iter().collect();
    }

    // Coverage map restricted to real targets and willing candidates.
    // Duplicate candidate addresses (which a well-formed neighbor set never
    // produces, but robustness demands) merge their coverage.
    let mut coverage: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
    for c in candidates {
        if c.willingness == Willingness::Never {
            continue;
        }
        let entry = coverage.entry(c.addr).or_default();
        entry.extend(c.covers.iter().copied().filter(|t| targets.contains(t)));
    }

    let mut uncovered: BTreeSet<NodeId> = targets.clone();

    // Step 1: WILL_ALWAYS neighbors are always MPRs.
    for c in candidates {
        if c.willingness == Willingness::Always {
            mprs.insert(c.addr);
            if let Some(cov) = coverage.get(&c.addr) {
                for t in cov {
                    uncovered.remove(t);
                }
            }
        }
    }

    // Step 2: neighbors that are the sole cover of some target.
    let mut cover_count: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for (&cand, cov) in &coverage {
        for &t in cov {
            cover_count.entry(t).or_default().push(cand);
        }
    }
    for (&target, covers) in &cover_count {
        if uncovered.contains(&target) && covers.len() == 1 {
            let only = covers[0];
            mprs.insert(only);
        }
    }
    for m in &mprs {
        if let Some(cov) = coverage.get(m) {
            for t in cov {
                uncovered.remove(t);
            }
        }
    }

    // Step 3: greedy by (willingness, reachability, degree, addr-for-determinism).
    while !uncovered.is_empty() {
        let mut best: Option<(Willingness, usize, usize, NodeId)> = None;
        for c in candidates {
            if c.willingness == Willingness::Never || mprs.contains(&c.addr) {
                continue;
            }
            let reach = coverage.get(&c.addr).map_or(0, |cov| cov.intersection(&uncovered).count());
            if reach == 0 {
                continue;
            }
            let key = (c.willingness, reach, c.degree, c.addr);
            let better = match &best {
                None => true,
                Some((w, r, d, a)) => {
                    (key.0, key.1, key.2) > (*w, *r, *d)
                        || ((key.0, key.1, key.2) == (*w, *r, *d) && key.3 < *a)
                }
            };
            if better {
                best = Some(key);
            }
        }
        match best {
            Some((_, _, _, addr)) => {
                mprs.insert(addr);
                if let Some(cov) = coverage.get(&addr) {
                    for t in cov {
                        uncovered.remove(t);
                    }
                }
            }
            None => break, // some targets are unreachable through willing neighbors
        }
    }

    mprs.into_iter().collect()
}

/// Checks the MPR coverage invariant: every target reachable through some
/// willing candidate is covered by at least one selected MPR. Returns the
/// uncovered-but-coverable targets (empty = invariant holds).
pub fn uncovered_targets(
    candidates: &[MprCandidate],
    two_hop_targets: &[NodeId],
    mprs: &[NodeId],
) -> Vec<NodeId> {
    let mpr_set: BTreeSet<NodeId> = mprs.iter().copied().collect();
    let mut covered: BTreeSet<NodeId> = BTreeSet::new();
    let mut coverable: BTreeSet<NodeId> = BTreeSet::new();
    for c in candidates {
        if c.willingness == Willingness::Never {
            continue;
        }
        for &t in &c.covers {
            coverable.insert(t);
            if mpr_set.contains(&c.addr) {
                covered.insert(t);
            }
        }
    }
    two_hop_targets
        .iter()
        .copied()
        .filter(|t| coverable.contains(t) && !covered.contains(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(addr: u16, will: Willingness, covers: &[u16]) -> MprCandidate {
        MprCandidate {
            addr: NodeId(addr),
            willingness: will,
            covers: covers.iter().map(|&c| NodeId(c)).collect(),
            degree: covers.len(),
        }
    }

    fn ids(v: &[u16]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn empty_inputs() {
        assert!(select_mprs(&[], &[]).is_empty());
        assert!(select_mprs(&[], &ids(&[10])).is_empty());
        assert!(select_mprs(&[cand(1, Willingness::Default, &[])], &[]).is_empty());
    }

    #[test]
    fn single_candidate_covers_all() {
        let c = [cand(1, Willingness::Default, &[10, 11])];
        assert_eq!(select_mprs(&c, &ids(&[10, 11])), ids(&[1]));
    }

    #[test]
    fn sole_cover_is_forced() {
        // 1 covers {10}, 2 covers {10, 11}: 2 is the sole cover of 11.
        let c = [cand(1, Willingness::Default, &[10]), cand(2, Willingness::Default, &[10, 11])];
        let mprs = select_mprs(&c, &ids(&[10, 11]));
        assert_eq!(mprs, ids(&[2])); // 2 alone suffices
    }

    #[test]
    fn greedy_picks_max_reachability() {
        // 3 covers three targets, 1 and 2 cover one each; greedy should
        // take 3 first and be done.
        let c = [
            cand(1, Willingness::Default, &[10]),
            cand(2, Willingness::Default, &[11]),
            cand(3, Willingness::Default, &[10, 11, 12]),
        ];
        assert_eq!(select_mprs(&c, &ids(&[10, 11, 12])), ids(&[3]));
    }

    #[test]
    fn willingness_beats_reachability() {
        // No target has a sole cover, so the greedy step runs: the
        // high-willingness candidate is picked first even though another
        // candidate covers more targets (RFC orders by willingness first).
        let c = [
            cand(1, Willingness::High, &[10]),
            cand(2, Willingness::Default, &[10, 11]),
            cand(3, Willingness::Default, &[11]),
        ];
        let mprs = select_mprs(&c, &ids(&[10, 11]));
        // 1 picked first (higher willingness), then 2 (degree beats 3) for 11.
        assert_eq!(mprs, ids(&[1, 2]));
    }

    #[test]
    fn will_never_is_excluded() {
        let c = [cand(1, Willingness::Never, &[10, 11]), cand(2, Willingness::Default, &[10])];
        let mprs = select_mprs(&c, &ids(&[10, 11]));
        assert_eq!(mprs, ids(&[2]));
        // 11 is only coverable via the unwilling node: stays uncovered but
        // does not loop forever.
        assert!(uncovered_targets(&c, &ids(&[10, 11]), &mprs).is_empty()); // 11 isn't "coverable"
    }

    #[test]
    fn will_always_is_always_selected() {
        let c = [cand(1, Willingness::Always, &[]), cand(2, Willingness::Default, &[10])];
        let mprs = select_mprs(&c, &ids(&[10]));
        assert_eq!(mprs, ids(&[1, 2]));
        // Even with no 2-hop targets at all:
        assert_eq!(select_mprs(&c, &[]), ids(&[1]));
    }

    #[test]
    fn tie_break_by_degree_then_addr() {
        // Equal willingness and reachability; higher degree wins.
        let mut c1 = cand(1, Willingness::Default, &[10]);
        c1.degree = 5;
        let mut c2 = cand(2, Willingness::Default, &[10]);
        c2.degree = 2;
        assert_eq!(select_mprs(&[c1.clone(), c2.clone()], &ids(&[10])), ids(&[1]));
        // Exactly equal: deterministic lowest address.
        c1.degree = 2;
        assert_eq!(select_mprs(&[c1, c2], &ids(&[10])), ids(&[1]));
    }

    #[test]
    fn coverage_invariant_random_like_cases() {
        // A handful of structured cases; the proptest suite drives more.
        let cases: Vec<(Vec<MprCandidate>, Vec<NodeId>)> = vec![
            (
                vec![
                    cand(1, Willingness::Default, &[10, 11]),
                    cand(2, Willingness::Low, &[11, 12]),
                    cand(3, Willingness::High, &[12, 13]),
                    cand(4, Willingness::Default, &[13, 10]),
                ],
                ids(&[10, 11, 12, 13]),
            ),
            (
                vec![
                    cand(1, Willingness::Default, &[20]),
                    cand(2, Willingness::Default, &[20]),
                    cand(3, Willingness::Default, &[20]),
                ],
                ids(&[20]),
            ),
        ];
        for (cands, targets) in cases {
            let mprs = select_mprs(&cands, &targets);
            assert!(
                uncovered_targets(&cands, &targets, &mprs).is_empty(),
                "uncovered targets with candidates {cands:?}"
            );
        }
    }

    #[test]
    fn targets_not_coverable_do_not_hang() {
        let c = [cand(1, Willingness::Default, &[10])];
        // 99 is not coverable at all.
        let mprs = select_mprs(&c, &ids(&[10, 99]));
        assert_eq!(mprs, ids(&[1]));
    }
}
