//! Behaviour hooks: the extension point through which the attack crate
//! turns a well-behaved OLSR node into a misbehaving one.
//!
//! The hooks deliberately mirror the paper's §II attack taxonomy:
//!
//! * *active forge* — [`OlsrHooks::on_hello_tx`] / [`OlsrHooks::on_tc_tx`]
//!   tamper with self-originated routing messages (link spoofing lives
//!   here);
//! * *drop* — [`OlsrHooks::should_forward`] /
//!   [`OlsrHooks::should_forward_data`] veto retransmissions (black/gray
//!   hole);
//! * *modify and forward* — [`OlsrHooks::on_forward`] tampers with relayed
//!   messages.
//!
//! A default no-op implementation ([`NoHooks`]) produces a faithful node.

use trustlink_sim::{NodeId, SimTime};

use crate::message::{DataMessage, HelloMessage, Message, TcMessage};
use crate::types::Willingness;

/// Extension points applied by [`crate::node::OlsrNode`] at well-defined
/// places in the protocol state machine. All methods default to faithful
/// behaviour.
pub trait OlsrHooks: Send + 'static {
    /// Called just before a self-originated HELLO is serialized; mutate it
    /// to forge link-state information (the paper's link spoofing attack).
    fn on_hello_tx(&mut self, _hello: &mut HelloMessage, _now: SimTime) {}

    /// Called just before a self-originated TC is serialized.
    fn on_tc_tx(&mut self, _tc: &mut TcMessage, _now: SimTime) {}

    /// Overrides the advertised willingness (the willingness-manipulation
    /// attack); `None` keeps the configured value.
    fn willingness_override(&mut self) -> Option<Willingness> {
        None
    }

    /// Decides whether a flooded control message that the default
    /// forwarding algorithm *would* retransmit is actually sent. Returning
    /// `false` implements control-plane dropping.
    fn should_forward(&mut self, _msg: &Message, _from: NodeId) -> bool {
        true
    }

    /// Mutates a flooded message just before retransmission (the
    /// modify-and-forward attack class, e.g. sequence-number inflation).
    fn on_forward(&mut self, _msg: &mut Message, _from: NodeId) {}

    /// Decides whether a unicast data message is forwarded. Returning
    /// `false` implements the black-hole / gray-hole data drop.
    fn should_forward_data(&mut self, _data: &DataMessage, _from: NodeId) -> bool {
        true
    }
}

/// The faithful, no-op hook set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoHooks;

impl OlsrHooks for NoHooks {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{HelloMessage, TcMessage};

    #[test]
    fn no_hooks_is_faithful() {
        let mut hooks = NoHooks;
        let mut hello = HelloMessage { willingness: Willingness::Default, groups: vec![] };
        let before = hello.clone();
        hooks.on_hello_tx(&mut hello, SimTime::ZERO);
        assert_eq!(hello, before);

        let mut tc = TcMessage { ansn: 1, advertised: vec![NodeId(1)] };
        let tc_before = tc.clone();
        hooks.on_tc_tx(&mut tc, SimTime::ZERO);
        assert_eq!(tc, tc_before);

        assert_eq!(hooks.willingness_override(), None);
        let data = DataMessage {
            src: NodeId(0),
            dst: NodeId(1),
            avoid: None,
            payload: bytes::Bytes::new(),
        };
        assert!(hooks.should_forward_data(&data, NodeId(2)));
    }
}
