//! Property-based tests for the OLSR substrate: the MPR coverage
//! invariant, routing loop-freedom, sequence-number arithmetic and the
//! vtime codec.

use proptest::prelude::*;

use trustlink_olsr::message::{decode_vtime, encode_vtime};
use trustlink_olsr::mpr::{select_mprs, uncovered_targets, MprCandidate};
use trustlink_olsr::routing::RoutingTable;
use trustlink_olsr::state::{DuplicateSet, TopologySet, TwoHopSet};
use trustlink_olsr::types::{SequenceNumber, Willingness};
use trustlink_sim::{NodeId, SimDuration, SimTime};

fn willingness() -> impl Strategy<Value = Willingness> {
    prop_oneof![
        Just(Willingness::Never),
        Just(Willingness::Low),
        Just(Willingness::Default),
        Just(Willingness::High),
        Just(Willingness::Always),
    ]
}

fn candidates() -> impl Strategy<Value = Vec<MprCandidate>> {
    proptest::collection::vec((willingness(), proptest::collection::vec(100u32..140, 0..8)), 1..12)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (willingness, covers))| MprCandidate {
                    addr: NodeId(i as u32), // unique, like a real neighbor set
                    willingness,
                    degree: covers.len(),
                    covers: covers.into_iter().map(NodeId).collect(),
                })
                .collect()
        })
}

/// Like [`candidates`] but allowing duplicate addresses — a malformed
/// input `select_mprs` must survive (coverage merges).
fn candidates_with_duplicates() -> impl Strategy<Value = Vec<MprCandidate>> {
    proptest::collection::vec(
        (0u32..6, willingness(), proptest::collection::vec(100u32..140, 0..8)),
        1..12,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(addr, willingness, covers)| MprCandidate {
                addr: NodeId(addr),
                willingness,
                degree: covers.len(),
                covers: covers.into_iter().map(NodeId).collect(),
            })
            .collect()
    })
}

proptest! {
    // ---- MPR selection ---------------------------------------------------

    #[test]
    fn mpr_selection_always_covers_coverable_targets(cands in candidates()) {
        // Targets: the union of everything any willing candidate covers.
        let targets: Vec<NodeId> = {
            let mut t: Vec<NodeId> = cands
                .iter()
                .filter(|c| c.willingness != Willingness::Never)
                .flat_map(|c| c.covers.iter().copied())
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        let mprs = select_mprs(&cands, &targets);
        let uncovered = uncovered_targets(&cands, &targets, &mprs);
        prop_assert!(uncovered.is_empty(), "uncovered: {uncovered:?}");
    }

    #[test]
    fn mpr_selection_survives_duplicate_addresses(cands in candidates_with_duplicates()) {
        // Coverage must merge across duplicate entries: every target
        // covered by a willing entry stays covered.
        let targets: Vec<NodeId> = {
            let mut t: Vec<NodeId> = cands
                .iter()
                .filter(|c| c.willingness != Willingness::Never)
                .flat_map(|c| c.covers.iter().copied())
                .collect();
            t.sort_unstable();
            t.dedup();
            t
        };
        // Skip inputs where one address carries both Never and non-Never
        // willingness: the merged semantics are undefined there.
        let mut by_addr: std::collections::BTreeMap<NodeId, Vec<Willingness>> =
            std::collections::BTreeMap::new();
        for c in &cands {
            by_addr.entry(c.addr).or_default().push(c.willingness);
        }
        prop_assume!(by_addr.values().all(|ws| {
            ws.iter().all(|w| *w == Willingness::Never)
                || ws.iter().all(|w| *w != Willingness::Never)
        }));
        let mprs = select_mprs(&cands, &targets);
        let uncovered = uncovered_targets(&cands, &targets, &mprs);
        prop_assert!(uncovered.is_empty(), "uncovered: {uncovered:?}");
    }

    #[test]
    fn mpr_selection_is_deterministic(cands in candidates()) {
        let targets: Vec<NodeId> =
            cands.iter().flat_map(|c| c.covers.iter().copied()).collect();
        prop_assert_eq!(select_mprs(&cands, &targets), select_mprs(&cands, &targets));
    }

    #[test]
    fn will_never_nodes_are_never_selected(cands in candidates()) {
        let targets: Vec<NodeId> =
            cands.iter().flat_map(|c| c.covers.iter().copied()).collect();
        let mprs = select_mprs(&cands, &targets);
        for c in &cands {
            if c.willingness == Willingness::Never {
                prop_assert!(!mprs.contains(&c.addr));
            }
        }
    }

    #[test]
    fn will_always_nodes_are_always_selected(cands in candidates()) {
        let targets: Vec<NodeId> =
            cands.iter().flat_map(|c| c.covers.iter().copied()).collect();
        let mprs = select_mprs(&cands, &targets);
        for c in &cands {
            if c.willingness == Willingness::Always {
                prop_assert!(mprs.contains(&c.addr));
            }
        }
    }

    // ---- routing ----------------------------------------------------------

    #[test]
    fn routes_are_loop_free_and_first_hop_is_neighbor(
        edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
        sym in proptest::collection::vec(1u32..12, 1..5),
    ) {
        // Build an arbitrary advertised topology plus symmetric neighbors.
        let mut topo = TopologySet::default();
        let until = SimTime::from_secs(1_000);
        for (i, &(a, b)) in edges.iter().enumerate() {
            if a != b {
                topo.apply_tc(NodeId(a), i as u16, &[NodeId(b)], until, SimTime::ZERO);
            }
        }
        let me = NodeId(0);
        let sym: Vec<NodeId> = {
            let mut s: Vec<NodeId> = sym.into_iter().map(NodeId).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let table = RoutingTable::compute(me, &sym, &TwoHopSet::default(), &topo, SimTime::ZERO);
        for route in table.iter() {
            // First hop must be one of my symmetric neighbors.
            prop_assert!(
                sym.contains(&route.next_hop),
                "route to {} via non-neighbor {}",
                route.dest,
                route.next_hop
            );
            prop_assert!(route.hops >= 1);
            prop_assert!(route.dest != me);
        }
        // BFS yields minimal hop counts: a 1-hop route exists exactly for
        // symmetric neighbors.
        for &n in &sym {
            prop_assert_eq!(table.route_to(n).map(|r| r.hops), Some(1));
        }
    }

    #[test]
    fn avoidance_never_routes_via_avoided(
        edges in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        avoid in 1u32..10,
    ) {
        let mut topo = TopologySet::default();
        let until = SimTime::from_secs(1_000);
        for (i, &(a, b)) in edges.iter().enumerate() {
            if a != b {
                topo.apply_tc(NodeId(a), i as u16, &[NodeId(b)], until, SimTime::ZERO);
            }
        }
        let sym = vec![NodeId(1), NodeId(2)];
        let avoided = NodeId(avoid);
        let table = RoutingTable::compute_avoiding(
            NodeId(0),
            &sym,
            &TwoHopSet::default(),
            &topo,
            SimTime::ZERO,
            Some(avoided),
        );
        for route in table.iter() {
            prop_assert!(route.next_hop != avoided);
            prop_assert!(route.dest != avoided);
        }
    }

    // ---- sequence numbers ---------------------------------------------------

    #[test]
    fn seqnum_newer_is_antisymmetric_off_antipode(a in any::<u16>(), b in any::<u16>()) {
        let sa = SequenceNumber(a);
        let sb = SequenceNumber(b);
        let ab = sa.is_newer_than(sb);
        let ba = sb.is_newer_than(sa);
        if a == b {
            prop_assert!(!ab && !ba);
        } else if a.wrapping_sub(b) != u16::MAX / 2 + 1 {
            // Exactly one direction wins except at the antipode.
            prop_assert!(ab ^ ba, "a={a} b={b} ab={ab} ba={ba}");
        }
    }

    #[test]
    fn seqnum_next_is_always_newer(a in any::<u16>()) {
        let s = SequenceNumber(a);
        prop_assert!(s.next().is_newer_than(s));
        prop_assert!(!s.is_newer_than(s.next()));
    }

    // ---- vtime codec -------------------------------------------------------

    #[test]
    fn vtime_roundtrip_relative_error_bounded(secs in 0.0625f64..1000.0) {
        let d = SimDuration::from_secs_f64(secs);
        let decoded = decode_vtime(encode_vtime(d)).as_secs_f64();
        let rel = (decoded - secs).abs() / secs;
        prop_assert!(rel < 0.07, "vtime {secs} decoded {decoded} (rel {rel})");
    }

    #[test]
    fn vtime_encoding_is_monotone(a in 0.0625f64..500.0, factor in 1.5f64..4.0) {
        let small = decode_vtime(encode_vtime(SimDuration::from_secs_f64(a)));
        let large = decode_vtime(encode_vtime(SimDuration::from_secs_f64(a * factor)));
        prop_assert!(large >= small);
    }

    // ---- duplicate set -------------------------------------------------------

    #[test]
    fn duplicate_set_seen_iff_recorded_and_unexpired(
        records in proptest::collection::vec((0u32..8, 0u16..16, any::<bool>()), 0..32),
        probe_orig in 0u32..8,
        probe_seq in 0u16..16,
    ) {
        let mut set = DuplicateSet::default();
        let until = SimTime::from_secs(30);
        for &(orig, seq, retx) in &records {
            set.record(NodeId(orig), SequenceNumber(seq), retx, until, SimTime::ZERO);
        }
        let recorded = records.iter().any(|&(o, s, _)| o == probe_orig && s == probe_seq);
        prop_assert_eq!(
            set.seen(NodeId(probe_orig), SequenceNumber(probe_seq), SimTime::from_secs(1)),
            recorded
        );
        // Everything expires.
        prop_assert!(!set.seen(
            NodeId(probe_orig),
            SequenceNumber(probe_seq),
            SimTime::from_secs(30)
        ));
        // Retransmission flags are sticky.
        let any_retx = records
            .iter()
            .any(|&(o, s, r)| o == probe_orig && s == probe_seq && r);
        prop_assert_eq!(
            set.retransmitted(
                NodeId(probe_orig),
                SequenceNumber(probe_seq),
                SimTime::from_secs(1)
            ),
            any_retx
        );
    }

    // ---- two-hop set -----------------------------------------------------------

    #[test]
    fn two_hop_vias_and_reachability_agree(
        pairs in proptest::collection::vec((0u32..6, 10u32..20), 0..24),
    ) {
        let mut set = TwoHopSet::default();
        let until = SimTime::from_secs(10);
        for &(via, th) in &pairs {
            set.upsert(NodeId(via), NodeId(th), until, SimTime::ZERO);
        }
        let now = SimTime::from_secs(1);
        for &(via, th) in &pairs {
            prop_assert!(set.reachable_via(NodeId(via), now).contains(&NodeId(th)));
            prop_assert!(set.vias_for(NodeId(th), now).contains(&NodeId(via)));
        }
        // Purge at expiry removes everything.
        let mut set2 = set.clone();
        set2.purge(until);
        prop_assert!(set2.two_hop_addrs(until, NodeId(99), &[]).is_empty());
    }
}
