//! The uniform spatial grid that indexes node positions for the radio.
//!
//! Every broadcast used to scan all node slots — O(n) per frame, O(n²) per
//! HELLO interval network-wide — which capped scenarios at a few dozen
//! nodes. The [`SpatialGrid`] hashes positions into square cells at least
//! as large as the radio's maximum propagation range, so any receiver that
//! could possibly hear a frame lies in the 3×3 cell neighborhood of the
//! transmitter. Positions are stored *inline* in the cell buckets: a
//! range query walks nine contiguous arrays and never touches the node
//! slots, which is what makes the query fast in practice (the slot array
//! is orders of magnitude larger than a neighborhood).
//!
//! The engine keeps the index current incrementally: nodes enter on
//! `add_node` / `revive`, leave on `kill`, and migrate on `set_position`
//! and mobility ticks.
//!
//! ## Determinism contract
//!
//! The grid changes *which* slots are inspected, never the order of RNG
//! draws: callers sort the gathered candidates ascending by node index
//! before judging them, and the radio draws randomness only for
//! candidates within positive-probability range. Everything the distance
//! cull rejects has delivery probability zero — the linear scan would
//! have judged it without drawing — so a grid-indexed run is
//! byte-identical (logs and stats) to a linear-scan run of the same
//! `(seed, config)`; the `grid_equivalence` suite pins this down.

use crate::mobility::{Arena, Position};

/// Sentinel for "this node is not currently indexed" (dead nodes).
const NOT_IN_GRID: u32 = u32::MAX;

/// Cap on cells per axis, so a huge arena with a short radio range does
/// not allocate millions of mostly-empty cells. Cells only ever grow past
/// the radio range (preserving the 3×3 cover property), never shrink
/// below it.
const MAX_CELLS_PER_AXIS: usize = 128;

/// One indexed node: its slot index and its current position, kept
/// inline so range queries stay within the bucket's cache lines.
#[derive(Debug, Clone, Copy)]
struct GridEntry {
    index: u32,
    pos: Position,
}

/// A uniform grid hash over node positions.
///
/// Cell side length is `max(range, arena_side / MAX_CELLS_PER_AXIS)` per
/// axis; because cells are never smaller than the radio range, two nodes
/// within range of each other always occupy the same or adjacent cells.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    cell_w: f64,
    cell_h: f64,
    cols: usize,
    rows: usize,
    /// Entries per cell, in arbitrary order (queries sort their output).
    cells: Vec<Vec<GridEntry>>,
    /// Cell of each node, or [`NOT_IN_GRID`].
    node_cell: Vec<u32>,
}

impl SpatialGrid {
    /// Builds an empty grid covering `arena` with cells sized for `range`
    /// (the radio's maximum propagation range, in metres).
    ///
    /// A non-positive or non-finite `range` degenerates to arena-sized
    /// cells (a 2×2 grid, since the far border rounds into its own
    /// cell), so every query walks every node — the linear scan in
    /// disguise, still correct.
    pub fn new(arena: &Arena, range: f64) -> Self {
        let axis = |extent: f64| -> (f64, usize) {
            let floor = extent / MAX_CELLS_PER_AXIS as f64;
            let cell = if range.is_finite() && range > 0.0 { range.max(floor) } else { extent };
            // Positions are clamped to [0, extent], so the largest index a
            // query can produce is floor(extent / cell).
            let count = (extent / cell).floor() as usize + 1;
            (cell, count)
        };
        let (cell_w, cols) = axis(arena.width);
        let (cell_h, rows) = axis(arena.height);
        SpatialGrid {
            cell_w,
            cell_h,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            node_cell: Vec::new(),
        }
    }

    /// Number of cells along the horizontal axis.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of cells along the vertical axis.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of nodes currently indexed.
    pub fn indexed(&self) -> usize {
        self.node_cell.iter().filter(|&&c| c != NOT_IN_GRID).count()
    }

    /// `true` when node `index` is currently in the grid.
    pub fn contains(&self, index: u32) -> bool {
        self.node_cell.get(index as usize).is_some_and(|&c| c != NOT_IN_GRID)
    }

    /// The linear cell index `pos` falls in (clamped to the grid).
    fn cell_of(&self, pos: Position) -> usize {
        let col = ((pos.x / self.cell_w) as usize).min(self.cols - 1);
        let row = ((pos.y / self.cell_h) as usize).min(self.rows - 1);
        row * self.cols + col
    }

    /// Registers a new node slot without placing it in any cell.
    ///
    /// Slots must be registered in index order; `index` must equal the
    /// number of slots registered so far.
    pub fn register_slot(&mut self, index: u32) {
        debug_assert_eq!(index as usize, self.node_cell.len(), "slots registered out of order");
        self.node_cell.push(NOT_IN_GRID);
    }

    /// Places a registered node at `pos`. No-op if it is already indexed.
    pub fn insert(&mut self, index: u32, pos: Position) {
        if self.node_cell[index as usize] != NOT_IN_GRID {
            return;
        }
        let cell = self.cell_of(pos);
        self.cells[cell].push(GridEntry { index, pos });
        self.node_cell[index as usize] = cell as u32;
    }

    /// Removes a node from the index (a dead node neither transmits nor
    /// receives, so broadcasts need not consider it). No-op if absent.
    pub fn remove(&mut self, index: u32) {
        let cell = self.node_cell[index as usize];
        if cell == NOT_IN_GRID {
            return;
        }
        let bucket = &mut self.cells[cell as usize];
        let at = bucket.iter().position(|e| e.index == index).expect("grid cell lost a node");
        bucket.swap_remove(at);
        self.node_cell[index as usize] = NOT_IN_GRID;
    }

    /// Migrates an indexed node to `pos`, moving it between cells when it
    /// crossed a border. No-op for unindexed (dead) nodes.
    pub fn update(&mut self, index: u32, pos: Position) {
        let old = self.node_cell[index as usize];
        if old == NOT_IN_GRID {
            return;
        }
        let new = self.cell_of(pos);
        let bucket = &mut self.cells[old as usize];
        let at = bucket.iter().position(|e| e.index == index).expect("grid cell lost a node");
        if new as u32 == old {
            bucket[at].pos = pos;
            return;
        }
        bucket.swap_remove(at);
        self.cells[new].push(GridEntry { index, pos });
        self.node_cell[index as usize] = new as u32;
    }

    /// The worker shard node `index` belongs to, for the sharded execution
    /// mode: its current grid cell modulo the shard count, so co-located
    /// nodes — the receivers of any one burst — land on the same worker.
    /// Mobility rebalances for free: [`SpatialGrid::update`] moves the
    /// node's cell, and with it the shard the next epoch assigns.
    ///
    /// Unindexed nodes (linear scan mode never inserts; dead nodes are
    /// removed, though those receive no work anyway) fall back to a plain
    /// round-robin over the node index.
    pub(crate) fn shard_of(&self, index: u32, shards: usize) -> usize {
        let cell = self.node_cell.get(index as usize).copied().unwrap_or(NOT_IN_GRID);
        if cell == NOT_IN_GRID {
            index as usize % shards
        } else {
            cell as usize % shards
        }
    }

    /// Appends to `out` the index of every indexed node within `range`
    /// metres of `pos` (inclusive), by walking the 3×3 cell neighborhood.
    /// `range` must not exceed the radio range the grid was sized for, or
    /// receivers beyond the neighborhood would be missed.
    ///
    /// Order is unspecified; callers needing determinism must sort
    /// (ascending node index matches the linear scan).
    pub fn gather_within(&self, pos: Position, range: f64, out: &mut Vec<u32>) {
        debug_assert!(
            !(range.is_finite() && range > 0.0)
                || (range <= self.cell_w + 1e-9 && range <= self.cell_h + 1e-9),
            "query range {range} exceeds the grid cell size ({} x {})",
            self.cell_w,
            self.cell_h
        );
        let center = self.cell_of(pos);
        let col = center % self.cols;
        let row = center / self.cols;
        let col_lo = col.saturating_sub(1);
        let col_hi = (col + 1).min(self.cols - 1);
        let row_lo = row.saturating_sub(1);
        let row_hi = (row + 1).min(self.rows - 1);
        for r in row_lo..=row_hi {
            for c in col_lo..=col_hi {
                for e in &self.cells[r * self.cols + c] {
                    if pos.distance(&e.pos) <= range {
                        out.push(e.index);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RANGE: f64 = 100.0;

    fn grid(w: f64, h: f64, range: f64) -> SpatialGrid {
        SpatialGrid::new(&Arena::new(w, h), range)
    }

    fn gathered(g: &SpatialGrid, pos: Position) -> Vec<u32> {
        let mut out = Vec::new();
        g.gather_within(pos, RANGE, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn cell_counts_cover_the_arena() {
        let g = grid(1000.0, 500.0, 250.0);
        assert_eq!(g.cols(), 5); // floor(1000/250)+1: x == 1000.0 maps in-bounds
        assert_eq!(g.rows(), 3);
    }

    #[test]
    fn degenerate_range_collapses_to_one_cell() {
        for bad in [0.0, -5.0, f64::INFINITY, f64::NAN] {
            let g = grid(100.0, 100.0, bad);
            assert_eq!((g.cols(), g.rows()), (2, 2), "range {bad}");
        }
    }

    #[test]
    fn huge_arena_is_capped() {
        let g = grid(1_000_000.0, 1_000_000.0, 10.0);
        assert!(g.cols() <= MAX_CELLS_PER_AXIS + 1);
        assert!(g.rows() <= MAX_CELLS_PER_AXIS + 1);
        // The cap grows cells, never shrinks them below the range.
        assert!(g.cell_w >= 10.0 && g.cell_h >= 10.0);
    }

    #[test]
    fn neighbors_within_range_are_always_gathered() {
        // Nodes at distance exactly `range` must be found, including
        // across cell borders and at arena corners.
        let g0 = grid(1000.0, 1000.0, RANGE);
        let cases = [
            (Position::new(99.9, 0.0), Position::new(199.9, 0.0)), // border straddle
            (Position::new(0.0, 0.0), Position::new(100.0, 0.0)),  // exactly range
            (Position::new(1000.0, 1000.0), Position::new(900.0, 1000.0)), // far corner
            (Position::new(500.0, 500.0), Position::new(429.3, 429.3)), // diagonal
        ];
        for (i, (a, b)) in cases.iter().enumerate() {
            let mut g = g0.clone();
            g.register_slot(0);
            g.register_slot(1);
            g.insert(0, *a);
            g.insert(1, *b);
            assert!(a.distance(b) <= RANGE + 1e-9, "case {i} badly constructed");
            assert!(gathered(&g, *a).contains(&1), "case {i}: b not gathered from a");
            assert!(gathered(&g, *b).contains(&0), "case {i}: a not gathered from b");
        }
    }

    #[test]
    fn out_of_range_nodes_are_culled() {
        let mut g = grid(1000.0, 1000.0, RANGE);
        g.register_slot(0);
        g.register_slot(1);
        g.insert(0, Position::new(50.0, 50.0));
        // Same 3×3 neighborhood, but beyond the range: must be culled.
        g.insert(1, Position::new(50.0 + RANGE + 1.0, 50.0));
        assert_eq!(gathered(&g, Position::new(50.0, 50.0)), vec![0]);
    }

    #[test]
    fn remove_and_reinsert_round_trips() {
        let mut g = grid(300.0, 300.0, RANGE);
        g.register_slot(0);
        g.register_slot(1);
        g.insert(0, Position::new(10.0, 10.0));
        g.insert(1, Position::new(20.0, 20.0));
        assert_eq!(g.indexed(), 2);
        g.remove(0);
        assert!(!g.contains(0));
        assert_eq!(gathered(&g, Position::new(10.0, 10.0)), vec![1]);
        g.remove(0); // double-remove is a no-op
        g.insert(0, Position::new(250.0, 250.0));
        assert!(g.contains(0));
        assert_eq!(gathered(&g, Position::new(250.0, 250.0)), vec![0]);
        g.insert(0, Position::new(10.0, 10.0)); // double-insert is a no-op
        assert_eq!(gathered(&g, Position::new(250.0, 250.0)), vec![0]);
    }

    #[test]
    fn update_moves_nodes_across_cell_borders() {
        let mut g = grid(1000.0, 1000.0, RANGE);
        g.register_slot(0);
        g.insert(0, Position::new(50.0, 50.0));
        // Wander far away: the old neighborhood must forget it, the new
        // one must know it.
        g.update(0, Position::new(950.0, 950.0));
        assert!(gathered(&g, Position::new(50.0, 50.0)).is_empty());
        assert_eq!(gathered(&g, Position::new(950.0, 950.0)), vec![0]);
        // In-cell movement must refresh the stored position too.
        g.update(0, Position::new(901.0, 901.0));
        assert_eq!(gathered(&g, Position::new(850.0, 850.0)), vec![0]);
        assert!(gathered(&g, Position::new(1000.0, 1000.0)).is_empty());
        // Updating a removed node is a no-op.
        g.remove(0);
        g.update(0, Position::new(10.0, 10.0));
        assert!(!g.contains(0));
    }

    #[test]
    fn gather_never_duplicates() {
        let mut g = grid(500.0, 500.0, RANGE);
        for i in 0..50u32 {
            g.register_slot(i);
            g.insert(i, Position::new(f64::from(i) * 10.0, f64::from(i % 7) * 70.0));
        }
        for i in 0..50u32 {
            let mut out = Vec::new();
            g.gather_within(
                Position::new(f64::from(i) * 10.0, f64::from(i % 7) * 70.0),
                RANGE,
                &mut out,
            );
            let before = out.len();
            out.sort_unstable();
            out.dedup();
            assert_eq!(out.len(), before, "gather produced duplicates");
        }
    }

    #[test]
    fn positions_on_the_far_border_are_in_bounds() {
        let mut g = grid(1000.0, 1000.0, 250.0);
        g.register_slot(0);
        g.insert(0, Position::new(1000.0, 1000.0));
        let mut out = Vec::new();
        g.gather_within(Position::new(1000.0, 1000.0), 250.0, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        g.gather_within(Position::new(800.0, 800.0), 250.0, &mut out);
        assert!(out.is_empty()); // distance ≈ 283 m > 250 m: culled
        out.clear();
        g.gather_within(Position::new(850.0, 850.0), 250.0, &mut out);
        assert_eq!(out, vec![0]); // distance ≈ 212 m
    }
}
