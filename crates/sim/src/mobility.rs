//! Positions, the arena and mobility models.
//!
//! Mobility matters to the reproduced paper twice: node movement causes
//! *benign* MPR replacements (the E1 trigger that must not be mistaken for an
//! attack), and the authors list "impact of mobility on trustworthiness
//! evaluation" as future work — which the ablation experiments exercise.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::time::SimDuration;

/// A point in the two-dimensional simulation arena, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Builds a position from coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// The rectangular region `[0, width] × [0, height]` nodes live in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arena {
    /// Width in metres.
    pub width: f64,
    /// Height in metres.
    pub height: f64,
}

impl Arena {
    /// Builds an arena.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is non-positive or non-finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "arena dimensions must be positive and finite"
        );
        Arena { width, height }
    }

    /// Clamps a position to lie inside the arena.
    pub fn clamp(&self, p: Position) -> Position {
        Position::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// `true` when `p` lies inside the arena (inclusive of the border).
    pub fn contains(&self, p: Position) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Draws a uniformly random position inside the arena.
    pub fn random_position(&self, rng: &mut StdRng) -> Position {
        Position::new(rng.random_range(0.0..=self.width), rng.random_range(0.0..=self.height))
    }
}

impl Default for Arena {
    /// A 1000 m × 1000 m arena.
    fn default() -> Self {
        Arena { width: 1000.0, height: 1000.0 }
    }
}

/// How a node moves.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum MobilityModel {
    /// The node never moves. This is the paper's evaluation setting.
    #[default]
    Stationary,
    /// Classic random waypoint: pick a uniform destination, travel to it at a
    /// uniform speed drawn from `[speed_min, speed_max]` m/s, pause, repeat.
    RandomWaypoint {
        /// Minimum travel speed in m/s (must be > 0).
        speed_min: f64,
        /// Maximum travel speed in m/s (must be >= `speed_min`).
        speed_max: f64,
        /// Pause duration at each waypoint.
        pause: SimDuration,
    },
    /// Brownian-style walk: each tick, move `speed` m/s in a fresh uniform
    /// direction, reflecting off the arena border.
    RandomWalk {
        /// Speed in m/s.
        speed: f64,
    },
}

/// Engine-side state for one node's mobility.
#[derive(Debug, Clone)]
pub(crate) struct MobilityState {
    pub model: MobilityModel,
    /// Destination of the current random-waypoint leg, if any.
    waypoint: Option<Position>,
    /// Current speed of the leg, m/s.
    speed: f64,
    /// Remaining pause time at a reached waypoint.
    pause_left: SimDuration,
}

impl MobilityState {
    pub fn new(model: MobilityModel) -> Self {
        MobilityState { model, waypoint: None, speed: 0.0, pause_left: SimDuration::ZERO }
    }

    /// Advances the node by `dt`, returning its new position.
    pub fn step(
        &mut self,
        pos: Position,
        dt: SimDuration,
        arena: &Arena,
        rng: &mut StdRng,
    ) -> Position {
        match self.model.clone() {
            MobilityModel::Stationary => pos,
            MobilityModel::RandomWalk { speed } => {
                let angle = rng.random_range(0.0..std::f64::consts::TAU);
                let d = speed * dt.as_secs_f64();
                let mut p = Position::new(pos.x + d * angle.cos(), pos.y + d * angle.sin());
                // Reflect off the borders.
                if p.x < 0.0 {
                    p.x = -p.x;
                }
                if p.y < 0.0 {
                    p.y = -p.y;
                }
                if p.x > arena.width {
                    p.x = 2.0 * arena.width - p.x;
                }
                if p.y > arena.height {
                    p.y = 2.0 * arena.height - p.y;
                }
                arena.clamp(p)
            }
            MobilityModel::RandomWaypoint { speed_min, speed_max, pause } => {
                if !self.pause_left.is_zero() {
                    self.pause_left = self.pause_left - dt.min(self.pause_left);
                    return pos;
                }
                let target = match self.waypoint {
                    Some(t) => t,
                    None => {
                        let t = arena.random_position(rng);
                        self.speed = if speed_max > speed_min {
                            rng.random_range(speed_min..=speed_max)
                        } else {
                            speed_min
                        };
                        self.waypoint = Some(t);
                        t
                    }
                };
                let dist = pos.distance(&target);
                let travel = self.speed * dt.as_secs_f64();
                if travel >= dist {
                    // Arrived: start pausing, next tick picks a new waypoint.
                    self.waypoint = None;
                    self.pause_left = pause;
                    target
                } else {
                    let f = travel / dist;
                    Position::new(pos.x + (target.x - pos.x) * f, pos.y + (target.y - pos.y) * f)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn arena_clamp_and_contains() {
        let arena = Arena::new(100.0, 50.0);
        assert!(arena.contains(Position::new(0.0, 0.0)));
        assert!(arena.contains(Position::new(100.0, 50.0)));
        assert!(!arena.contains(Position::new(100.1, 0.0)));
        let p = arena.clamp(Position::new(-5.0, 60.0));
        assert_eq!(p, Position::new(0.0, 50.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_arena_rejected() {
        let _ = Arena::new(0.0, 10.0);
    }

    #[test]
    fn stationary_never_moves() {
        let arena = Arena::default();
        let mut st = MobilityState::new(MobilityModel::Stationary);
        let p0 = Position::new(10.0, 20.0);
        let mut r = rng();
        let p1 = st.step(p0, SimDuration::from_secs(100), &arena, &mut r);
        assert_eq!(p0, p1);
    }

    #[test]
    fn random_walk_stays_in_arena_and_moves() {
        let arena = Arena::new(50.0, 50.0);
        let mut st = MobilityState::new(MobilityModel::RandomWalk { speed: 10.0 });
        let mut p = Position::new(25.0, 25.0);
        let mut r = rng();
        let mut moved = false;
        for _ in 0..1000 {
            let q = st.step(p, SimDuration::from_millis(100), &arena, &mut r);
            assert!(arena.contains(q), "escaped arena: {q:?}");
            if q.distance(&p) > 0.0 {
                moved = true;
            }
            p = q;
        }
        assert!(moved);
    }

    #[test]
    fn waypoint_reaches_target_then_pauses() {
        let arena = Arena::new(100.0, 100.0);
        let mut st = MobilityState::new(MobilityModel::RandomWaypoint {
            speed_min: 10.0,
            speed_max: 10.0,
            pause: SimDuration::from_secs(5),
        });
        let mut p = Position::new(50.0, 50.0);
        let mut r = rng();
        // Drive it until a waypoint is chosen and reached.
        let mut arrived_at: Option<Position> = None;
        for _ in 0..10_000 {
            let before_waypoint = st.waypoint;
            p = st.step(p, SimDuration::from_millis(200), &arena, &mut r);
            if before_waypoint.is_some() && st.waypoint.is_none() {
                arrived_at = Some(p);
                break;
            }
        }
        let stop = arrived_at.expect("never arrived at a waypoint");
        // While pausing the node must not move.
        let q = st.step(p, SimDuration::from_secs(1), &arena, &mut r);
        assert_eq!(q, stop);
    }

    #[test]
    fn waypoint_speed_range_degenerate() {
        // speed_min == speed_max must not panic (empty range guard).
        let arena = Arena::new(100.0, 100.0);
        let mut st = MobilityState::new(MobilityModel::RandomWaypoint {
            speed_min: 5.0,
            speed_max: 5.0,
            pause: SimDuration::ZERO,
        });
        let mut r = rng();
        let _ = st.step(Position::new(0.0, 0.0), SimDuration::from_secs(1), &arena, &mut r);
    }
}
