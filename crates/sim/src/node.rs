//! Node identity, the application trait and the per-callback context.
//!
//! A *node* in the simulator is an [`Application`] (the protocol stack under
//! test) plus engine-owned state: a position, a mobility state, an audit
//! [`LogBuffer`] and traffic counters. Applications never touch the engine
//! directly; every side effect goes through the [`Context`] handed to each
//! callback, which keeps the simulation deterministic and replayable.

use std::any::Any;
use std::fmt;

use bytes::Bytes;
use rand::rngs::StdRng;

use crate::record::LogRecord;
use crate::time::{SimDuration, SimTime};

/// The identity of a node: its OLSR *main address* in the reproduced system.
///
/// Identities are 32-bit so production-scale scenarios (10⁵ nodes and
/// beyond) fit; the wire stays compact through the escape encoding of
/// [`NodeId::put`], which keeps every address below
/// [`NodeId::WIRE_ESCAPE`] at the historical two bytes.
///
/// ```
/// use trustlink_sim::NodeId;
/// assert_eq!(NodeId(7).to_string(), "N7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The numeric index of the node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The 16-bit escape marker for wide addresses on the wire. Addresses
    /// below this value encode as the bare two-byte big-endian integer —
    /// byte-for-byte what the 16-bit format produced — while wider
    /// addresses encode as the marker followed by the full 32-bit value.
    pub const WIRE_ESCAPE: u16 = u16::MAX;

    /// Number of bytes [`NodeId::put`] writes for this address.
    pub const fn wire_len(self) -> usize {
        if self.0 < Self::WIRE_ESCAPE as u32 {
            2
        } else {
            6
        }
    }

    /// Appends the escape-encoded address to `buf`.
    pub fn put(self, buf: &mut impl bytes::BufMut) {
        if self.0 < u32::from(Self::WIRE_ESCAPE) {
            buf.put_u16(self.0 as u16);
        } else {
            buf.put_u16(Self::WIRE_ESCAPE);
            buf.put_u32(self.0);
        }
    }

    /// Reads one escape-encoded address from `buf`, or `None` when the
    /// buffer is too short.
    pub fn get(buf: &mut impl bytes::Buf) -> Option<NodeId> {
        if buf.remaining() < 2 {
            return None;
        }
        let v = buf.get_u16();
        if v < Self::WIRE_ESCAPE {
            Some(NodeId(u32::from(v)))
        } else if buf.remaining() >= 4 {
            Some(NodeId(buf.get_u32()))
        } else {
            None
        }
    }

    /// Reads one escape-encoded address from `buf` at `off`, returning the
    /// address and the number of bytes it occupied. `None` when the slice
    /// is too short. Slice-based twin of [`NodeId::get`] for validated
    /// zero-copy views.
    pub fn read_at(buf: &[u8], off: usize) -> Option<(NodeId, usize)> {
        let hi = *buf.get(off)?;
        let lo = *buf.get(off + 1)?;
        let v = u16::from_be_bytes([hi, lo]);
        if v < Self::WIRE_ESCAPE {
            Some((NodeId(u32::from(v)), 2))
        } else {
            let raw: [u8; 4] = buf.get(off + 2..off + 6)?.try_into().ok()?;
            Some((NodeId(u32::from_be_bytes(raw)), 6))
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// An opaque timer identifier chosen by the application.
///
/// The engine never interprets the token; protocols use it to multiplex
/// several logical timers over the single engine timer facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimerToken(pub u64);

impl fmt::Display for TimerToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// The class of an application callback, used by
/// [`Application::rng_free`] to declare which callbacks never touch the
/// simulation-wide RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallbackClass {
    /// [`Application::on_start`].
    Start,
    /// [`Application::on_receive`] / [`Application::on_receive_batch`].
    Receive,
    /// [`Application::on_timer`].
    Timer,
}

/// The behaviour installed on a node.
///
/// All callbacks receive a [`Context`] used to emit frames, arm timers and
/// append audit-log lines. Implementations must be `'static` (they are boxed
/// into the engine) and should be deterministic given the context RNG.
/// `Send` lets the sharded execution mode move node state to worker
/// threads; applications hold plain owned data, so this is free.
///
/// The supertrait [`Any`] enables downcasting a `dyn Application` back to its
/// concrete type for post-run inspection, e.g.
/// `sim.app(id).downcast_ref::<MyApp>()` via trait upcasting.
pub trait Application: Any + Send {
    /// Declares that a class of callbacks never calls [`Context::rng`],
    /// for any input, in any state. The sharded execution mode runs
    /// RNG-free callbacks on worker threads and replays everything else
    /// serially at its exact global position, so the single RNG stream is
    /// drawn in precisely the serial order.
    ///
    /// The default — `false` for everything — is always correct: it makes
    /// the engine treat every callback as potentially RNG-drawing.
    /// Overriding for a callback that *does* draw is a contract violation
    /// the engine turns into a panic (see [`Context::rng`]), never a
    /// silent divergence.
    fn rng_free(&self, _class: CallbackClass) -> bool {
        false
    }

    /// Called once when the simulation starts (or the node is added to a
    /// running simulation).
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a radio frame transmitted by `from` reaches this node.
    fn on_receive(&mut self, _ctx: &mut Context<'_>, _from: NodeId, _payload: Bytes) {}

    /// Called under [`DeliveryMode::Batched`](crate::engine::DeliveryMode)
    /// with every frame that reached this node at one instant. The frames
    /// are ordered exactly as the per-frame oracle would have delivered
    /// them (global scheduling order), so the default implementation —
    /// replaying them one by one through [`Application::on_receive`] — is
    /// observably identical to per-frame delivery. Protocols override this
    /// to amortize per-packet setup (decode arenas, freshness sweeps)
    /// across the whole batch.
    fn on_receive_batch(&mut self, ctx: &mut Context<'_>, batch: &mut FrameBatch) {
        for (from, payload) in batch.drain() {
            self.on_receive(ctx, from, payload);
        }
    }

    /// Called when a timer armed with [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _timer: TimerToken) {}
}

/// Every frame that arrived at one receiver at one delivery instant, in
/// global scheduling order.
///
/// Payloads are [`Bytes`] views into the senders' encoded frame storage —
/// coalescing copies nothing. Batches are pooled by the engine: the backing
/// vector is recycled across deliveries, so steady-state batched dispatch
/// performs no allocation.
#[derive(Debug, Default)]
pub struct FrameBatch {
    frames: Vec<(NodeId, Bytes)>,
}

impl FrameBatch {
    /// Appends one frame. Engine-internal; applications only consume.
    pub(crate) fn push(&mut self, from: NodeId, payload: Bytes) {
        self.frames.push((from, payload));
    }

    /// Number of frames in the batch.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` if the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The frames in delivery order, without consuming them.
    pub fn frames(&self) -> &[(NodeId, Bytes)] {
        &self.frames
    }

    /// Drains the frames in delivery order. The backing capacity is kept so
    /// the engine can recycle it.
    pub fn drain(&mut self) -> impl Iterator<Item = (NodeId, Bytes)> + '_ {
        self.frames.drain(..)
    }

    /// Empties the batch, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.frames.clear();
    }

    /// Per-frame admission filter used by the engine (collision window,
    /// traffic accounting).
    pub(crate) fn retain(&mut self, f: impl FnMut(&(NodeId, Bytes)) -> bool) {
        self.frames.retain(f);
    }
}

/// A side effect requested by an application; executed by the engine after
/// the callback returns, in request order.
#[derive(Debug, Clone)]
pub(crate) enum Command {
    /// Transmit a broadcast frame on the shared medium.
    Broadcast { payload: Bytes },
    /// Transmit a frame addressed to a (supposed) radio neighbor. Subject to
    /// exactly the same propagation/loss rules as a broadcast, but only `to`
    /// may receive it.
    Unicast { to: NodeId, payload: Bytes },
    /// Arm a one-shot timer.
    SetTimer { delay: SimDuration, token: TimerToken },
    /// Stop the whole simulation at the current instant.
    Halt,
}

/// The per-callback handle through which an application interacts with the
/// simulated world.
///
/// Everything an application can do — learn the time, draw randomness, send
/// frames, arm timers, write logs — is funnelled through this type.
pub struct Context<'a> {
    node: NodeId,
    now: SimTime,
    /// `None` when the callback declared itself RNG-free
    /// ([`Application::rng_free`]) and is running on a shard worker; a
    /// draw then panics instead of silently breaking determinism.
    rng: Option<&'a mut StdRng>,
    log: &'a mut LogBuffer,
    commands: &'a mut Vec<Command>,
}

impl<'a> Context<'a> {
    pub(crate) fn new(
        node: NodeId,
        now: SimTime,
        rng: &'a mut StdRng,
        log: &'a mut LogBuffer,
        commands: &'a mut Vec<Command>,
    ) -> Self {
        Context { node, now, rng: Some(rng), log, commands }
    }

    /// A context whose RNG is inaccessible, for callbacks that declared
    /// themselves RNG-free and run off the serial spine.
    pub(crate) fn new_rng_free(
        node: NodeId,
        now: SimTime,
        log: &'a mut LogBuffer,
        commands: &'a mut Vec<Command>,
    ) -> Self {
        Context { node, now, rng: None, log, commands }
    }

    /// The identity of the node this callback runs on.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The simulation-wide deterministic random number generator.
    ///
    /// # Panics
    ///
    /// Panics if the running callback declared itself RNG-free via
    /// [`Application::rng_free`] — a misclassification that would
    /// otherwise silently desynchronize the sharded execution mode from
    /// the serial oracle.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng.as_deref_mut().expect(
            "Context::rng called from a callback whose Application::rng_free \
             classification declared it RNG-free",
        )
    }

    /// Queues a broadcast frame for transmission on the shared medium.
    pub fn broadcast(&mut self, payload: Bytes) {
        self.commands.push(Command::Broadcast { payload });
    }

    /// Queues a link-local unicast frame addressed to `to`.
    ///
    /// Delivery is subject to the same range and loss rules as a broadcast;
    /// the frame is simply ignored by every other node.
    pub fn send(&mut self, to: NodeId, payload: Bytes) {
        self.commands.push(Command::Unicast { to, payload });
    }

    /// Arms a one-shot timer that will fire `delay` from now with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) {
        self.commands.push(Command::SetTimer { delay, token });
    }

    /// Appends a typed record to this node's audit log, stamped with the
    /// current simulation time. Rendering to text happens at the edges
    /// ([`LogBuffer::render_lines`]), never on this hot path.
    pub fn log(&mut self, record: LogRecord) {
        self.log.push(self.now, record);
    }

    /// Read access to this node's own audit log — how a log-based intrusion
    /// detector co-located with the router tails "its" log file.
    pub fn log_buffer(&self) -> &LogBuffer {
        self.log
    }

    /// Requests the end of the whole simulation at the current instant.
    pub fn halt(&mut self) {
        self.commands.push(Command::Halt);
    }
}

/// An append-only, time-stamped log of typed records owned by one node.
///
/// The trust-enabled detector of the paper is *log based*: it reads these
/// records — and nothing else — to find signs of intrusion. The buffer
/// supports cursor-style incremental reads so a detector can periodically
/// consume "what happened since I last looked".
///
/// ```
/// use trustlink_sim::node::LogBuffer;
/// use trustlink_sim::record::LogRecord;
/// use trustlink_sim::time::SimTime;
/// use trustlink_sim::NodeId;
///
/// let mut log = LogBuffer::default();
/// log.push(SimTime::from_secs(1), LogRecord::DataRx { src: NodeId(2) });
/// let (records, cursor) = log.read_from(0);
/// assert_eq!(records.len(), 1);
/// let (rest, _) = log.read_from(cursor);
/// assert!(rest.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogBuffer {
    entries: Vec<(SimTime, LogRecord)>,
}

impl LogBuffer {
    /// Appends one record stamped `at`.
    pub fn push(&mut self, at: SimTime, record: LogRecord) {
        self.entries.push((at, record));
    }

    /// Number of records logged so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All `(timestamp, record)` entries, oldest first.
    pub fn entries(&self) -> &[(SimTime, LogRecord)] {
        &self.entries
    }

    /// Iterator over the canonical text rendering of each record, oldest
    /// first. Rendering happens here, at the edge — not when logging.
    pub fn lines(&self) -> impl Iterator<Item = String> + '_ {
        self.entries.iter().map(|(_, r)| r.to_line())
    }

    /// Renders the whole buffer to `(timestamp, line)` pairs — byte-for-byte
    /// the strings the buffer stored before records were typed. This is the
    /// adapter external consumers of the old text logs use.
    pub fn render_lines(&self) -> Vec<(SimTime, String)> {
        self.entries.iter().map(|(at, r)| (*at, r.to_line())).collect()
    }

    /// Returns the entries appended at or after position `cursor`, plus the
    /// next cursor value. Feeding the returned cursor back yields only new
    /// entries — the idiom for periodic log analysis.
    pub fn read_from(&self, cursor: usize) -> (&[(SimTime, LogRecord)], usize) {
        let start = cursor.min(self.entries.len());
        (&self.entries[start..], self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(NodeId(3).index(), 3);
    }

    #[test]
    fn context_queues_commands_in_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut log = LogBuffer::default();
        let mut commands = Vec::new();
        let mut ctx =
            Context::new(NodeId(0), SimTime::from_secs(5), &mut rng, &mut log, &mut commands);
        assert_eq!(ctx.id(), NodeId(0));
        assert_eq!(ctx.now(), SimTime::from_secs(5));
        ctx.broadcast(Bytes::from_static(b"a"));
        ctx.send(NodeId(1), Bytes::from_static(b"b"));
        ctx.set_timer(SimDuration::from_secs(1), TimerToken(9));
        ctx.log(LogRecord::DataRx { src: NodeId(2) });
        ctx.halt();
        assert_eq!(commands.len(), 4);
        assert!(matches!(commands[0], Command::Broadcast { .. }));
        assert!(matches!(commands[1], Command::Unicast { to: NodeId(1), .. }));
        assert!(matches!(commands[2], Command::SetTimer { token: TimerToken(9), .. }));
        assert!(matches!(commands[3], Command::Halt));
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].0, SimTime::from_secs(5));
    }

    #[test]
    fn log_buffer_cursor_semantics() {
        let mut log = LogBuffer::default();
        assert!(log.is_empty());
        log.push(SimTime::ZERO, LogRecord::NeighborAdded { addr: NodeId(1) });
        log.push(SimTime::from_secs(1), LogRecord::NeighborAdded { addr: NodeId(2) });
        let (all, c) = log.read_from(0);
        assert_eq!(all.len(), 2);
        log.push(SimTime::from_secs(2), LogRecord::NeighborLost { addr: NodeId(1) });
        let (new, c2) = log.read_from(c);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].1, LogRecord::NeighborLost { addr: NodeId(1) });
        // A cursor beyond the end is clamped rather than panicking.
        let (none, _) = log.read_from(c2 + 100);
        assert!(none.is_empty());
    }

    #[test]
    fn log_lines_renders_records_at_the_edge() {
        let mut log = LogBuffer::default();
        log.push(SimTime::ZERO, LogRecord::NeighborAdded { addr: NodeId(4) });
        log.push(SimTime::ZERO, LogRecord::RouteLost { dest: NodeId(9) });
        let collected: Vec<String> = log.lines().collect();
        assert_eq!(collected, vec!["NBR_ADD addr=N4", "ROUTE_LOST dest=N9"]);
        let rendered = log.render_lines();
        assert_eq!(rendered.len(), 2);
        assert_eq!(rendered[0], (SimTime::ZERO, "NBR_ADD addr=N4".to_string()));
    }
}
