//! The wireless medium: propagation, loss, delay and collisions.
//!
//! The paper's trust system exists precisely because the medium is
//! unreliable — "the high level of collisions" makes even honest evidence
//! uncertain. The radio model is therefore configurable along all the axes
//! that matter to the evaluation: range, independent frame loss, delay
//! jitter and a receiver-side collision window.

use rand::rngs::StdRng;
use rand::RngExt;

use crate::mobility::Position;
use crate::time::SimDuration;

/// How received power falls off with distance, reduced to a delivery
/// probability per frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Propagation {
    /// Perfect reception up to `range` metres, nothing beyond. The classic
    /// unit-disk model; the default.
    UnitDisk {
        /// Radio range in metres.
        range: f64,
    },
    /// Perfect reception up to `full_range`, then delivery probability
    /// decays linearly to zero at `max_range`. A cheap stand-in for fading
    /// that still yields the "two nodes in range often fail to communicate"
    /// phenomenon the paper highlights for evidence E3.
    LinearFade {
        /// Distance up to which delivery is certain, in metres.
        full_range: f64,
        /// Distance at which delivery probability reaches zero, in metres.
        max_range: f64,
    },
}

impl Propagation {
    /// Probability that a frame crosses `distance` metres, before
    /// independent Bernoulli loss is applied.
    pub fn delivery_probability(&self, distance: f64) -> f64 {
        match *self {
            Propagation::UnitDisk { range } => {
                if distance <= range {
                    1.0
                } else {
                    0.0
                }
            }
            Propagation::LinearFade { full_range, max_range } => {
                if distance <= full_range {
                    1.0
                } else if distance >= max_range {
                    0.0
                } else {
                    1.0 - (distance - full_range) / (max_range - full_range)
                }
            }
        }
    }

    /// The distance beyond which delivery is impossible.
    pub fn max_range(&self) -> f64 {
        match *self {
            Propagation::UnitDisk { range } => range,
            Propagation::LinearFade { max_range, .. } => max_range,
        }
    }
}

/// Full configuration of the shared medium.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioConfig {
    /// Path-loss model.
    pub propagation: Propagation,
    /// Independent probability that an otherwise-deliverable frame is lost
    /// (interference, checksum failure, ...). `0.0` disables.
    pub loss_probability: f64,
    /// Fixed propagation + processing delay applied to every frame.
    pub base_delay: SimDuration,
    /// Uniform extra delay in `[0, jitter]` added per receiver. Jitter keeps
    /// simultaneous receptions apart and is the standard OLSR trick to avoid
    /// synchronized floods.
    pub jitter: SimDuration,
    /// When set, two frames arriving at the same receiver closer together
    /// than this window collide: the later frame is lost. `None` disables
    /// collision modelling.
    pub collision_window: Option<SimDuration>,
}

impl RadioConfig {
    /// A loss-free unit-disk radio with 1 ms delay and 2 ms jitter.
    pub fn unit_disk(range: f64) -> Self {
        RadioConfig {
            propagation: Propagation::UnitDisk { range },
            loss_probability: 0.0,
            base_delay: SimDuration::from_millis(1),
            jitter: SimDuration::from_millis(2),
            collision_window: None,
        }
    }

    /// Sets the independent frame-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1]");
        self.loss_probability = p;
        self
    }

    /// Enables the receiver-side collision window.
    pub fn with_collisions(mut self, window: SimDuration) -> Self {
        self.collision_window = Some(window);
        self
    }

    /// Replaces the propagation model.
    pub fn with_propagation(mut self, p: Propagation) -> Self {
        self.propagation = p;
        self
    }

    /// Decides the fate of a frame sent from `tx` toward a receiver at `rx`.
    pub fn judge(&self, tx: Position, rx: Position, rng: &mut StdRng) -> DeliveryOutcome {
        let d = tx.distance(&rx);
        let p = self.propagation.delivery_probability(d);
        if p <= 0.0 {
            return DeliveryOutcome::OutOfRange;
        }
        if p < 1.0 && !rng.random_bool(p) {
            return DeliveryOutcome::Lost;
        }
        if self.loss_probability > 0.0 && rng.random_bool(self.loss_probability) {
            return DeliveryOutcome::Lost;
        }
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(rng.random_range(0..=self.jitter.as_micros()))
        };
        DeliveryOutcome::Deliver(self.base_delay + jitter)
    }

    /// Decides whether a frame sent from `tx` reaches a receiver at `rx`,
    /// and with what delay. `None` means the frame is lost.
    pub fn sample_delivery(
        &self,
        tx: Position,
        rx: Position,
        rng: &mut StdRng,
    ) -> Option<SimDuration> {
        match self.judge(tx, rx, rng) {
            DeliveryOutcome::Deliver(d) => Some(d),
            DeliveryOutcome::OutOfRange | DeliveryOutcome::Lost => None,
        }
    }
}

/// The fate of one frame at one potential receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The frame arrives after the given delay.
    Deliver(SimDuration),
    /// The receiver is beyond the propagation model's maximum range.
    OutOfRange,
    /// The frame was dropped by fading or Bernoulli loss.
    Lost,
}

impl Default for RadioConfig {
    /// `RadioConfig::unit_disk(250.0)` — the conventional 250 m 802.11 range.
    fn default() -> Self {
        RadioConfig::unit_disk(250.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn unit_disk_is_sharp() {
        let p = Propagation::UnitDisk { range: 100.0 };
        assert_eq!(p.delivery_probability(0.0), 1.0);
        assert_eq!(p.delivery_probability(100.0), 1.0);
        assert_eq!(p.delivery_probability(100.01), 0.0);
        assert_eq!(p.max_range(), 100.0);
    }

    #[test]
    fn linear_fade_interpolates() {
        let p = Propagation::LinearFade { full_range: 100.0, max_range: 200.0 };
        assert_eq!(p.delivery_probability(50.0), 1.0);
        assert_eq!(p.delivery_probability(100.0), 1.0);
        assert!((p.delivery_probability(150.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.delivery_probability(200.0), 0.0);
        assert_eq!(p.delivery_probability(500.0), 0.0);
        assert_eq!(p.max_range(), 200.0);
    }

    #[test]
    fn in_range_lossless_always_delivers() {
        let cfg = RadioConfig::unit_disk(100.0);
        let mut r = rng();
        for _ in 0..100 {
            let d = cfg
                .sample_delivery(Position::new(0.0, 0.0), Position::new(50.0, 0.0), &mut r)
                .expect("in-range lossless frame must be delivered");
            assert!(d >= cfg.base_delay);
            assert!(d <= cfg.base_delay + cfg.jitter);
        }
    }

    #[test]
    fn out_of_range_never_delivers() {
        let cfg = RadioConfig::unit_disk(100.0);
        let mut r = rng();
        for _ in 0..100 {
            assert!(cfg
                .sample_delivery(Position::new(0.0, 0.0), Position::new(101.0, 0.0), &mut r)
                .is_none());
        }
    }

    #[test]
    fn loss_probability_thins_deliveries() {
        let cfg = RadioConfig::unit_disk(100.0).with_loss(0.5);
        let mut r = rng();
        let delivered = (0..10_000)
            .filter(|_| {
                cfg.sample_delivery(Position::new(0.0, 0.0), Position::new(10.0, 0.0), &mut r)
                    .is_some()
            })
            .count();
        // Binomial(10_000, 0.5): ±4σ ≈ ±200.
        assert!((4800..=5200).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bogus_loss_rejected() {
        let _ = RadioConfig::default().with_loss(1.5);
    }

    #[test]
    fn zero_jitter_gives_fixed_delay() {
        let mut cfg = RadioConfig::unit_disk(100.0);
        cfg.jitter = SimDuration::ZERO;
        let mut r = rng();
        let d =
            cfg.sample_delivery(Position::new(0.0, 0.0), Position::new(1.0, 0.0), &mut r).unwrap();
        assert_eq!(d, cfg.base_delay);
    }
}
