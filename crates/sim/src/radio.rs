//! The wireless medium: propagation, loss, delay and collisions.
//!
//! The paper's trust system exists precisely because the medium is
//! unreliable — "the high level of collisions" makes even honest evidence
//! uncertain. The radio model is therefore configurable along all the axes
//! that matter to the evaluation: range, independent frame loss, delay
//! jitter and a receiver-side collision window.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::mobility::Position;
use crate::node::NodeId;
use crate::time::SimDuration;

/// How received power falls off with distance, reduced to a delivery
/// probability per frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Propagation {
    /// Perfect reception up to `range` metres, nothing beyond. The classic
    /// unit-disk model; the default.
    UnitDisk {
        /// Radio range in metres.
        range: f64,
    },
    /// Perfect reception up to `full_range`, then delivery probability
    /// decays linearly to zero at `max_range`. A cheap stand-in for fading
    /// that still yields the "two nodes in range often fail to communicate"
    /// phenomenon the paper highlights for evidence E3.
    LinearFade {
        /// Distance up to which delivery is certain, in metres.
        full_range: f64,
        /// Distance at which delivery probability reaches zero, in metres.
        max_range: f64,
    },
}

impl Propagation {
    /// Probability that a frame crosses `distance` metres, before
    /// independent Bernoulli loss is applied.
    ///
    /// Boundary behaviour, exactly:
    ///
    /// - [`Propagation::UnitDisk`]: `1.0` for every `distance <= range`
    ///   (the boundary itself still delivers), `0.0` strictly beyond.
    ///   A `range` of `0.0` therefore still delivers at distance `0.0`
    ///   (a node can reach a co-located receiver) and nothing else.
    /// - [`Propagation::LinearFade`]: `1.0` for `distance <= full_range`
    ///   (inclusive), `0.0` for `distance >= max_range` (inclusive), and
    ///   the open interval in between interpolates linearly. Because both
    ///   boundary branches are checked *before* the interpolation, a
    ///   degenerate model with `full_range == max_range` never divides by
    ///   zero: the `full_range` check wins and the cliff is sharp, exactly
    ///   like a unit disk of that radius.
    pub fn delivery_probability(&self, distance: f64) -> f64 {
        match *self {
            Propagation::UnitDisk { range } => {
                if distance <= range {
                    1.0
                } else {
                    0.0
                }
            }
            Propagation::LinearFade { full_range, max_range } => {
                if distance <= full_range {
                    1.0
                } else if distance >= max_range {
                    0.0
                } else {
                    1.0 - (distance - full_range) / (max_range - full_range)
                }
            }
        }
    }

    /// The distance beyond which delivery is impossible.
    pub fn max_range(&self) -> f64 {
        match *self {
            Propagation::UnitDisk { range } => range,
            Propagation::LinearFade { max_range, .. } => max_range,
        }
    }
}

/// Full configuration of the shared medium.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioConfig {
    /// Path-loss model.
    pub propagation: Propagation,
    /// Independent probability that an otherwise-deliverable frame is lost
    /// (interference, checksum failure, ...). `0.0` disables.
    pub loss_probability: f64,
    /// Fixed propagation + processing delay applied to every frame.
    pub base_delay: SimDuration,
    /// Uniform extra delay in `[0, jitter]` added per receiver. Jitter keeps
    /// simultaneous receptions apart and is the standard OLSR trick to avoid
    /// synchronized floods.
    pub jitter: SimDuration,
    /// When set, two frames arriving at the same receiver closer together
    /// than this window collide: the later frame is lost. `None` disables
    /// collision modelling.
    pub collision_window: Option<SimDuration>,
}

impl RadioConfig {
    /// A loss-free unit-disk radio with 1 ms delay and 2 ms jitter.
    pub fn unit_disk(range: f64) -> Self {
        RadioConfig {
            propagation: Propagation::UnitDisk { range },
            loss_probability: 0.0,
            base_delay: SimDuration::from_millis(1),
            jitter: SimDuration::from_millis(2),
            collision_window: None,
        }
    }

    /// Sets the independent frame-loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1], got {p}");
        self.loss_probability = p;
        self
    }

    /// Enables the receiver-side collision window.
    pub fn with_collisions(mut self, window: SimDuration) -> Self {
        self.collision_window = Some(window);
        self
    }

    /// Replaces the propagation model.
    pub fn with_propagation(mut self, p: Propagation) -> Self {
        self.propagation = p;
        self
    }

    /// Decides the fate of a frame sent from `tx` toward a receiver at `rx`.
    pub fn judge(&self, tx: Position, rx: Position, rng: &mut StdRng) -> DeliveryOutcome {
        let d = tx.distance(&rx);
        let p = self.propagation.delivery_probability(d);
        if p <= 0.0 {
            return DeliveryOutcome::OutOfRange;
        }
        if p < 1.0 && !rng.random_bool(p) {
            return DeliveryOutcome::Lost;
        }
        if self.loss_probability > 0.0 && rng.random_bool(self.loss_probability) {
            return DeliveryOutcome::Lost;
        }
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(rng.random_range(0..=self.jitter.as_micros()))
        };
        DeliveryOutcome::Deliver(self.base_delay + jitter)
    }

    /// Decides whether a frame sent from `tx` reaches a receiver at `rx`,
    /// and with what delay. `None` means the frame is lost.
    pub fn sample_delivery(
        &self,
        tx: Position,
        rx: Position,
        rng: &mut StdRng,
    ) -> Option<SimDuration> {
        match self.judge(tx, rx, rng) {
            DeliveryOutcome::Deliver(d) => Some(d),
            DeliveryOutcome::OutOfRange | DeliveryOutcome::Lost => None,
        }
    }
}

/// The fate of one frame at one potential receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The frame arrives after the given delay.
    Deliver(SimDuration),
    /// The receiver is beyond the propagation model's maximum range.
    OutOfRange,
    /// The frame was dropped by fading or Bernoulli loss.
    Lost,
}

impl Default for RadioConfig {
    /// `RadioConfig::unit_disk(250.0)` — the conventional 250 m 802.11 range.
    fn default() -> Self {
        RadioConfig::unit_disk(250.0)
    }
}

/// Gilbert–Elliott two-state burst-loss parameters.
///
/// Every link runs an independent two-state Markov chain: in the *good*
/// state frames are lost with probability `loss_good`, in the *bad* (deep
/// fade) state with `loss_bad`. The chain is **frame-clocked**: it advances
/// one transition step per frame judged on the link, which is the standard
/// packet-level reading of the model. Correlated bursts emerge because a
/// link that has entered the bad state stays there for a geometrically
/// distributed number of frames (mean `1 / p_exit_bad`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FadingConfig {
    /// Probability of a good→bad transition per judged frame.
    pub p_enter_bad: f64,
    /// Probability of a bad→good transition per judged frame.
    pub p_exit_bad: f64,
    /// Frame-loss probability while the link is in the good state.
    pub loss_good: f64,
    /// Frame-loss probability while the link is in the bad state.
    pub loss_bad: f64,
}

impl FadingConfig {
    /// A classic bursty profile: lossless good state, `loss_bad` inside
    /// fades entered with probability `p_enter_bad` and left with
    /// probability `p_exit_bad` per frame.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside `[0, 1]`.
    pub fn bursty(p_enter_bad: f64, p_exit_bad: f64, loss_bad: f64) -> Self {
        FadingConfig { p_enter_bad, p_exit_bad, loss_good: 0.0, loss_bad }.validated()
    }

    fn validated(self) -> Self {
        for (name, v) in [
            ("p_enter_bad", self.p_enter_bad),
            ("p_exit_bad", self.p_exit_bad),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
        self
    }
}

/// Per-edge channel override: extra latency and extra Bernoulli loss on one
/// specific link, on top of whatever the uniform [`RadioConfig`] decides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkOverride {
    /// Extra independent loss probability on this edge.
    pub loss: f64,
    /// Extra delay added to every frame delivered over this edge.
    pub extra_delay: SimDuration,
    /// Upper bound of extra uniform per-frame delay in `[0, jitter]` on this
    /// edge, drawn from the link's private RNG stream (after the loss draw,
    /// so enabling jitter never changes which frames are lost). Zero draws
    /// nothing: a zero-jitter override is byte-identical to one built before
    /// this field existed.
    pub jitter: SimDuration,
}

impl Default for LinkOverride {
    fn default() -> Self {
        LinkOverride { loss: 0.0, extra_delay: SimDuration::ZERO, jitter: SimDuration::ZERO }
    }
}

/// Per-link channel model layered on top of the uniform [`RadioConfig`].
///
/// The uniform radio stays the byte-identical default: a simulator built
/// *without* a channel model draws exactly the same random numbers in
/// exactly the same order as before this type existed. When a model is
/// attached, the base radio still judges every frame first (range, uniform
/// loss, jitter — all from the single global RNG), and the channel then
/// applies its per-link effects using **per-link RNG streams** seeded
/// deterministically from `(link, seed)`. Link-local draws therefore never
/// perturb the global stream: a fading process on link A–B cannot change
/// what happens on link C–D.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelModel {
    fading: Option<FadingConfig>,
    overrides: BTreeMap<(u32, u32), LinkOverride>,
}

impl ChannelModel {
    /// An empty (neutral) model: no fading, no per-edge overrides.
    pub fn new() -> Self {
        ChannelModel::default()
    }

    /// Enables Gilbert–Elliott burst-loss fading on every link.
    ///
    /// # Panics
    ///
    /// Panics if any fading parameter is outside `[0, 1]`.
    pub fn with_fading(mut self, f: FadingConfig) -> Self {
        self.fading = Some(f.validated());
        self
    }

    /// Sets a per-edge override for the undirected link `a`–`b`.
    ///
    /// # Panics
    ///
    /// Panics if `o.loss` is outside `[0, 1]`.
    pub fn with_link(mut self, a: NodeId, b: NodeId, o: LinkOverride) -> Self {
        assert!(
            (0.0..=1.0).contains(&o.loss),
            "link override loss probability must be in [0,1], got {}",
            o.loss
        );
        self.overrides.insert(link_key(a, b), o);
        self
    }

    /// The fading profile, if enabled.
    pub fn fading(&self) -> Option<&FadingConfig> {
        self.fading.as_ref()
    }

    /// The override configured for the undirected link `a`–`b`, if any.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<&LinkOverride> {
        self.overrides.get(&link_key(a, b))
    }

    /// Whether the model changes nothing (no fading, no overrides).
    pub fn is_neutral(&self) -> bool {
        self.fading.is_none() && self.overrides.is_empty()
    }
}

/// Undirected link key: fading and overrides apply to the edge, not to a
/// direction, so both directions share one chain and one RNG stream.
fn link_key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// splitmix64-style mix of the simulation seed and a link key into the
/// seed of that link's private RNG stream.
///
/// Links whose endpoints both fit 16 bits pack exactly as the original
/// 16-bit formula did, so per-link streams (and everything pinned on
/// them) are unchanged for every historical scenario; wider identities
/// pack into the upper word instead.
fn link_seed(seed: u64, key: (u32, u32)) -> u64 {
    let packed = if key.0 < 1 << 16 && key.1 < 1 << 16 {
        (u64::from(key.0) << 16) | u64::from(key.1)
    } else {
        (u64::from(key.0) << 32) | u64::from(key.1)
    };
    let mut z = seed ^ packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One link's live fading state: its private RNG stream plus the current
/// Gilbert–Elliott chain state.
#[derive(Debug, Clone, PartialEq)]
struct LinkFade {
    rng: StdRng,
    bad: bool,
}

impl LinkFade {
    fn new(seed: u64, key: (u32, u32)) -> Self {
        LinkFade { rng: StdRng::seed_from_u64(link_seed(seed, key)), bad: false }
    }
}

/// Runtime state of a [`ChannelModel`]: the per-link chains, materialized
/// lazily the first time a frame is judged on a link. Owned by the
/// simulator and maintained alongside the spatial grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelState {
    model: ChannelModel,
    seed: u64,
    links: BTreeMap<(u32, u32), LinkFade>,
}

impl ChannelState {
    /// Wraps a model with the simulation seed its link streams derive from.
    pub fn new(model: ChannelModel, seed: u64) -> Self {
        ChannelState { model, seed, links: BTreeMap::new() }
    }

    /// The configuration this state runs.
    pub fn model(&self) -> &ChannelModel {
        &self.model
    }

    /// Whether the fading chain of the undirected link `a`–`b` is currently
    /// in the bad (deep fade) state.
    pub fn in_fade(&self, a: NodeId, b: NodeId) -> bool {
        self.links.get(&link_key(a, b)).is_some_and(|l| l.bad)
    }

    /// Judges one frame: the uniform radio first (drawing from the global
    /// RNG exactly as it would without a channel model), then the per-link
    /// fading chain and edge overrides from the link's private stream.
    pub fn judge(
        &mut self,
        radio: &RadioConfig,
        from: NodeId,
        to: NodeId,
        tx: Position,
        rx: Position,
        global: &mut StdRng,
    ) -> DeliveryOutcome {
        let base = radio.judge(tx, rx, global);
        let DeliveryOutcome::Deliver(base_delay) = base else {
            return base;
        };
        let key = link_key(from, to);
        let overrides = self.model.overrides.get(&key).copied();
        let needs_state = self.model.fading.is_some()
            || overrides.is_some_and(|o| o.loss > 0.0 || !o.jitter.is_zero());
        let mut link_jitter = SimDuration::ZERO;
        if needs_state {
            let seed = self.seed;
            let link = self.links.entry(key).or_insert_with(|| LinkFade::new(seed, key));
            if let Some(f) = self.model.fading {
                let flip = if link.bad { f.p_exit_bad } else { f.p_enter_bad };
                if flip > 0.0 && link.rng.random_bool(flip) {
                    link.bad = !link.bad;
                }
                let loss = if link.bad { f.loss_bad } else { f.loss_good };
                if loss > 0.0 && link.rng.random_bool(loss) {
                    return DeliveryOutcome::Lost;
                }
            }
            if let Some(o) = overrides {
                if o.loss > 0.0 && link.rng.random_bool(o.loss) {
                    return DeliveryOutcome::Lost;
                }
                if !o.jitter.is_zero() {
                    link_jitter =
                        SimDuration::from_micros(link.rng.random_range(0..=o.jitter.as_micros()));
                }
            }
        }
        match overrides {
            Some(o) if !o.extra_delay.is_zero() || !link_jitter.is_zero() => {
                DeliveryOutcome::Deliver(base_delay + o.extra_delay + link_jitter)
            }
            _ => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn unit_disk_is_sharp() {
        let p = Propagation::UnitDisk { range: 100.0 };
        assert_eq!(p.delivery_probability(0.0), 1.0);
        assert_eq!(p.delivery_probability(100.0), 1.0);
        assert_eq!(p.delivery_probability(100.01), 0.0);
        assert_eq!(p.max_range(), 100.0);
    }

    #[test]
    fn linear_fade_interpolates() {
        let p = Propagation::LinearFade { full_range: 100.0, max_range: 200.0 };
        assert_eq!(p.delivery_probability(50.0), 1.0);
        assert_eq!(p.delivery_probability(100.0), 1.0);
        assert!((p.delivery_probability(150.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.delivery_probability(200.0), 0.0);
        assert_eq!(p.delivery_probability(500.0), 0.0);
        assert_eq!(p.max_range(), 200.0);
    }

    #[test]
    fn in_range_lossless_always_delivers() {
        let cfg = RadioConfig::unit_disk(100.0);
        let mut r = rng();
        for _ in 0..100 {
            let d = cfg
                .sample_delivery(Position::new(0.0, 0.0), Position::new(50.0, 0.0), &mut r)
                .expect("in-range lossless frame must be delivered");
            assert!(d >= cfg.base_delay);
            assert!(d <= cfg.base_delay + cfg.jitter);
        }
    }

    #[test]
    fn out_of_range_never_delivers() {
        let cfg = RadioConfig::unit_disk(100.0);
        let mut r = rng();
        for _ in 0..100 {
            assert!(cfg
                .sample_delivery(Position::new(0.0, 0.0), Position::new(101.0, 0.0), &mut r)
                .is_none());
        }
    }

    #[test]
    fn loss_probability_thins_deliveries() {
        let cfg = RadioConfig::unit_disk(100.0).with_loss(0.5);
        let mut r = rng();
        let delivered = (0..10_000)
            .filter(|_| {
                cfg.sample_delivery(Position::new(0.0, 0.0), Position::new(10.0, 0.0), &mut r)
                    .is_some()
            })
            .count();
        // Binomial(10_000, 0.5): ±4σ ≈ ±200.
        assert!((4800..=5200).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bogus_loss_rejected() {
        let _ = RadioConfig::default().with_loss(1.5);
    }

    #[test]
    fn zero_jitter_gives_fixed_delay() {
        let mut cfg = RadioConfig::unit_disk(100.0);
        cfg.jitter = SimDuration::ZERO;
        let mut r = rng();
        let d =
            cfg.sample_delivery(Position::new(0.0, 0.0), Position::new(1.0, 0.0), &mut r).unwrap();
        assert_eq!(d, cfg.base_delay);
    }

    #[test]
    fn bogus_loss_panic_names_the_value() {
        let caught = std::panic::catch_unwind(|| RadioConfig::default().with_loss(1.5))
            .expect_err("with_loss(1.5) must panic");
        let msg = caught.downcast_ref::<String>().expect("panic carries a formatted message");
        assert!(msg.contains("1.5"), "panic message must name the offending value: {msg}");
    }

    #[test]
    fn zero_range_disk_still_reaches_colocated_receivers() {
        let p = Propagation::UnitDisk { range: 0.0 };
        assert_eq!(p.delivery_probability(0.0), 1.0);
        assert_eq!(p.delivery_probability(f64::MIN_POSITIVE), 0.0);
    }

    #[test]
    fn degenerate_linear_fade_is_a_sharp_cliff() {
        // full_range == max_range: both boundary branches fire before the
        // interpolation, so there is no 0/0 and the cliff is sharp.
        let p = Propagation::LinearFade { full_range: 100.0, max_range: 100.0 };
        assert_eq!(p.delivery_probability(100.0), 1.0);
        assert_eq!(p.delivery_probability(100.0 + f64::EPSILON * 100.0), 0.0);
    }

    #[test]
    fn linear_fade_boundaries_are_inclusive() {
        let p = Propagation::LinearFade { full_range: 100.0, max_range: 200.0 };
        // Exactly full_range delivers with certainty; exactly max_range never.
        assert_eq!(p.delivery_probability(100.0), 1.0);
        assert_eq!(p.delivery_probability(200.0), 0.0);
    }

    fn near() -> (Position, Position) {
        (Position::new(0.0, 0.0), Position::new(10.0, 0.0))
    }

    #[test]
    fn neutral_channel_changes_nothing_and_skips_link_state() {
        let cfg = RadioConfig::unit_disk(100.0);
        let (tx, rx) = near();
        let mut plain = rng();
        let mut wrapped = rng();
        let mut ch = ChannelState::new(ChannelModel::new(), 7);
        assert!(ch.model().is_neutral());
        for _ in 0..200 {
            let a = cfg.judge(tx, rx, &mut plain);
            let b = ch.judge(&cfg, NodeId(0), NodeId(1), tx, rx, &mut wrapped);
            assert_eq!(a, b);
        }
        // Neutral models never materialize per-link state.
        assert!(ch.links.is_empty());
        // And the global streams stayed in lockstep.
        assert_eq!(plain, wrapped);
    }

    #[test]
    fn quiet_fading_leaves_the_global_stream_untouched() {
        // A fading chain that can never enter the bad state and never loses
        // in the good state draws only from the per-link stream, so the
        // global RNG sequence is identical to a channel-off run.
        let cfg = RadioConfig::unit_disk(100.0);
        let (tx, rx) = near();
        let mut plain = rng();
        let mut wrapped = rng();
        let model = ChannelModel::new().with_fading(FadingConfig::bursty(0.0, 1.0, 0.9));
        let mut ch = ChannelState::new(model, 7);
        for _ in 0..200 {
            let a = cfg.judge(tx, rx, &mut plain);
            let b = ch.judge(&cfg, NodeId(0), NodeId(1), tx, rx, &mut wrapped);
            assert_eq!(a, b);
        }
        assert_eq!(plain, wrapped);
        assert!(!ch.in_fade(NodeId(0), NodeId(1)));
    }

    #[test]
    fn fading_loses_frames_in_bursts() {
        let mut cfg = RadioConfig::unit_disk(100.0);
        cfg.jitter = SimDuration::ZERO; // keep the delivery pattern pure
        let (tx, rx) = near();
        let mut g = rng();
        let model = ChannelModel::new().with_fading(FadingConfig::bursty(0.1, 0.2, 1.0));
        let mut ch = ChannelState::new(model, 7);
        let outcomes: Vec<bool> = (0..5_000)
            .map(|_| {
                matches!(
                    ch.judge(&cfg, NodeId(0), NodeId(1), tx, rx, &mut g),
                    DeliveryOutcome::Deliver(_)
                )
            })
            .collect();
        let lost = outcomes.iter().filter(|d| !**d).count();
        // Stationary bad-state share is p_enter/(p_enter+p_exit) = 1/3.
        assert!((1_000..=2_400).contains(&lost), "lost={lost}");
        // Burstiness: losses must be correlated, i.e. the number of
        // loss-runs is far below what independent losses would produce.
        let runs = outcomes.windows(2).filter(|w| w[0] && !w[1]).count();
        assert!(runs * 3 < lost, "losses are not bursty: {lost} losses in {runs} runs");
    }

    #[test]
    fn fading_chains_are_deterministic_per_link_and_seed() {
        let cfg = RadioConfig::unit_disk(100.0);
        let (tx, rx) = near();
        let model = ChannelModel::new().with_fading(FadingConfig::bursty(0.2, 0.2, 1.0));
        let run = |seed: u64| -> Vec<DeliveryOutcome> {
            let mut g = rng();
            let mut ch = ChannelState::new(model.clone(), seed);
            (0..500).map(|_| ch.judge(&cfg, NodeId(3), NodeId(8), tx, rx, &mut g)).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn link_key_is_undirected() {
        let cfg = RadioConfig::unit_disk(100.0);
        let (tx, rx) = near();
        let model = ChannelModel::new().with_fading(FadingConfig::bursty(0.2, 0.2, 1.0));
        let mut g = rng();
        let mut ch = ChannelState::new(model, 7);
        let _ = ch.judge(&cfg, NodeId(4), NodeId(2), tx, rx, &mut g);
        // Both directions share the one chain keyed (2, 4).
        assert_eq!(ch.links.len(), 1);
        assert!(ch.links.contains_key(&(2, 4)));
        let _ = ch.judge(&cfg, NodeId(2), NodeId(4), tx, rx, &mut g);
        assert_eq!(ch.links.len(), 1);
    }

    #[test]
    fn link_override_adds_delay_and_loss() {
        let mut cfg = RadioConfig::unit_disk(100.0);
        cfg.jitter = SimDuration::ZERO;
        let (tx, rx) = near();
        let mut g = rng();
        let slow =
            LinkOverride { extra_delay: SimDuration::from_millis(40), ..LinkOverride::default() };
        let model = ChannelModel::new().with_link(NodeId(0), NodeId(1), slow);
        let mut ch = ChannelState::new(model, 7);
        match ch.judge(&cfg, NodeId(0), NodeId(1), tx, rx, &mut g) {
            DeliveryOutcome::Deliver(d) => {
                assert_eq!(d, cfg.base_delay + SimDuration::from_millis(40))
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        // A different edge is untouched.
        match ch.judge(&cfg, NodeId(0), NodeId(2), tx, rx, &mut g) {
            DeliveryOutcome::Deliver(d) => assert_eq!(d, cfg.base_delay),
            other => panic!("expected delivery, got {other:?}"),
        }
        // A lossy override thins deliveries on its edge only.
        let bad = LinkOverride { loss: 0.5, ..LinkOverride::default() };
        let model = ChannelModel::new().with_link(NodeId(0), NodeId(1), bad);
        let mut ch = ChannelState::new(model, 7);
        let delivered = (0..2_000)
            .filter(|_| {
                matches!(
                    ch.judge(&cfg, NodeId(0), NodeId(1), tx, rx, &mut g),
                    DeliveryOutcome::Deliver(_)
                )
            })
            .count();
        assert!((800..=1_200).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    #[should_panic(expected = "got 1.2")]
    fn bogus_fading_parameter_rejected_with_value() {
        let _ = FadingConfig::bursty(1.2, 0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "got -0.1")]
    fn bogus_link_override_rejected_with_value() {
        let _ = ChannelModel::new().with_link(
            NodeId(0),
            NodeId(1),
            LinkOverride { loss: -0.1, ..LinkOverride::default() },
        );
    }
}
