//! Traffic accounting.
//!
//! The paper lists "the resource consumption that is related to the trust
//! system" as future work; these counters are what the ablation experiments
//! report for it (frames transmitted/delivered/lost per node and in total).

use crate::node::NodeId;

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Broadcast frames transmitted by this node.
    pub broadcasts_sent: u64,
    /// Unicast frames transmitted by this node.
    pub unicasts_sent: u64,
    /// Frames received (after range/loss/collision filtering).
    pub received: u64,
    /// Payload bytes transmitted (broadcast + unicast).
    pub bytes_sent: u64,
}

/// Simulation-wide traffic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    per_node: Vec<NodeStats>,
    /// Frames lost because the receiver was out of range (counted once per
    /// potential receiver).
    pub lost_range: u64,
    /// Frames lost to Bernoulli/fading loss.
    pub lost_random: u64,
    /// Frames lost to receiver-side collisions.
    pub lost_collision: u64,
}

impl TrafficStats {
    pub(crate) fn ensure_node(&mut self, id: NodeId) {
        if self.per_node.len() <= id.index() {
            self.per_node.resize(id.index() + 1, NodeStats::default());
        }
    }

    /// Reserves capacity for `n` node entries without materializing them
    /// (capacity only: observable state, including `Debug` output, is
    /// untouched).
    pub(crate) fn reserve_nodes(&mut self, n: usize) {
        self.per_node.reserve(n.saturating_sub(self.per_node.len()));
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut NodeStats {
        self.ensure_node(id);
        &mut self.per_node[id.index()]
    }

    /// Counters for one node (zeros if the node never appeared).
    pub fn node(&self, id: NodeId) -> NodeStats {
        self.per_node.get(id.index()).copied().unwrap_or_default()
    }

    /// Total frames transmitted (broadcast + unicast) across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.per_node.iter().map(|s| s.broadcasts_sent + s.unicasts_sent).sum()
    }

    /// Total frames received across all nodes.
    pub fn total_received(&self) -> u64 {
        self.per_node.iter().map(|s| s.received).sum()
    }

    /// Total payload bytes transmitted across all nodes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_node.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total frames lost for any reason.
    pub fn total_lost(&self) -> u64 {
        self.lost_range + self.lost_random + self.lost_collision
    }
}

/// Per-ring control-flood accounting for scoped dissemination schemes
/// (fisheye TC scoping), maintained by the application that owns the ring
/// schedule — the engine sees only opaque frames and cannot classify
/// them. Ring indexes are scheme-defined (classic flooding uses a single
/// ring 0); the vector grows on demand so one type serves any table size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FloodStats {
    /// Flood frames originated by this node, indexed by ring.
    pub originated_per_ring: Vec<u64>,
    /// Flood frames this node retransmitted on behalf of others.
    pub forwarded: u64,
}

impl FloodStats {
    /// Counts one originated flood frame in `ring`.
    pub fn record_originated(&mut self, ring: usize) {
        if self.originated_per_ring.len() <= ring {
            self.originated_per_ring.resize(ring + 1, 0);
        }
        self.originated_per_ring[ring] += 1;
    }

    /// Total originated flood frames across all rings.
    pub fn originated_total(&self) -> u64 {
        self.originated_per_ring.iter().sum()
    }

    /// Folds another node's counters into this one (benchmark aggregation).
    pub fn merge(&mut self, other: &FloodStats) {
        if self.originated_per_ring.len() < other.originated_per_ring.len() {
            self.originated_per_ring.resize(other.originated_per_ring.len(), 0);
        }
        for (mine, theirs) in self.originated_per_ring.iter_mut().zip(&other.originated_per_ring) {
            *mine += theirs;
        }
        self.forwarded += other.forwarded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut stats = TrafficStats::default();
        stats.node_mut(NodeId(2)).broadcasts_sent += 3;
        stats.node_mut(NodeId(2)).bytes_sent += 30;
        stats.node_mut(NodeId(0)).unicasts_sent += 1;
        stats.node_mut(NodeId(1)).received += 5;
        stats.lost_range += 2;
        stats.lost_random += 1;

        assert_eq!(stats.node(NodeId(2)).broadcasts_sent, 3);
        assert_eq!(stats.total_sent(), 4);
        assert_eq!(stats.total_received(), 5);
        assert_eq!(stats.total_bytes_sent(), 30);
        assert_eq!(stats.total_lost(), 3);
    }

    #[test]
    fn unknown_node_reads_as_zero() {
        let stats = TrafficStats::default();
        assert_eq!(stats.node(NodeId(9)), NodeStats::default());
        assert_eq!(stats.total_sent(), 0);
    }

    #[test]
    fn flood_stats_record_and_merge() {
        let mut a = FloodStats::default();
        a.record_originated(0);
        a.record_originated(2); // grows through the gap
        a.record_originated(2);
        a.forwarded += 5;
        assert_eq!(a.originated_per_ring, vec![1, 0, 2]);
        assert_eq!(a.originated_total(), 3);

        let mut b = FloodStats::default();
        b.record_originated(1);
        b.forwarded = 7;
        b.merge(&a);
        assert_eq!(b.originated_per_ring, vec![1, 1, 2]);
        assert_eq!(b.originated_total(), 4);
        assert_eq!(b.forwarded, 12);
    }
}
