//! The discrete-event engine.
//!
//! Events are processed in strict `(time, sequence)` order; the sequence
//! number breaks ties deterministically in scheduling order. All randomness
//! is drawn from a single seeded RNG, so a run is a pure function of
//! `(seed, configuration, applications)`.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::sync::mpsc;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::grid::SpatialGrid;
use crate::mobility::{Arena, MobilityModel, MobilityState, Position};
use crate::node::{
    Application, CallbackClass, Command, Context, FrameBatch, LogBuffer, NodeId, TimerToken,
};
use crate::radio::{ChannelModel, ChannelState, DeliveryOutcome, RadioConfig};
use crate::record::{FlightRecord, FlightRecorder};
use crate::stats::TrafficStats;
use crate::time::{SimDuration, SimTime};

/// How the radio finds candidate receivers for a transmission.
///
/// Both modes are pure functions of `(seed, config)` and produce
/// byte-identical logs and statistics for the same run — the grid only
/// changes *which slots are inspected*, never the order of RNG draws (see
/// [`crate::grid`]). `Linear` is kept as the reference oracle for the
/// equivalence suite and as the baseline for scaling benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Query the spatial grid index: O(neighborhood) per broadcast. The
    /// default.
    #[default]
    Grid,
    /// Scan every node slot: O(n) per broadcast. The pre-index behaviour.
    Linear,
}

/// How radio deliveries reach applications.
///
/// Both modes are byte-identical on logs, statistics and verdict streams
/// for the same seed — structurally, not probabilistically. Every event
/// (joined frames included) consumes a sequence number, so both modes
/// assign the same `(time, seq)` key to every event; a frame may join an
/// existing batch only when *nothing else* has been scheduled at that
/// exact instant in between (see [`Simulator::enqueue_delivery`]), so a
/// batch is always a run of globally *consecutive* same-instant events and
/// dispatching it as one callback reorders nothing an application can
/// observe. `tests/batch_equivalence.rs` pins this across the scenario
/// matrix, in the same oracle-pair pattern as [`ScanMode::Linear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Coalesce every frame arriving at one `(receiver, instant)` into a
    /// single pooled [`FrameBatch`] and invoke
    /// [`Application::on_receive_batch`] once. The default: slim 24-byte
    /// heap entries, one callback per burst, zero steady-state allocation.
    #[default]
    Batched,
    /// One heap event and one [`Application::on_receive`] callback per
    /// frame. The pre-batching behaviour, kept as the byte-identical
    /// oracle.
    PerFrame,
}

/// How the event loop executes.
///
/// Both modes produce byte-identical logs, statistics and verdict streams
/// for the same seed, at any worker count — structurally, not
/// probabilistically. `Sharded` partitions nodes across worker threads
/// along spatial-grid cells and runs RNG-free callbacks
/// ([`Application::rng_free`]) within a conservative lookahead window in
/// parallel; everything that can touch the global RNG stream — fan-outs,
/// mobility, RNG-drawing callbacks, command execution — replays on the
/// main thread at its exact serial `(time, seq)` position. `Serial` is the
/// reference loop, kept as the byte-identical oracle in the same pattern
/// as [`ScanMode::Linear`] and [`DeliveryMode::PerFrame`];
/// `tests/shard_equivalence.rs` pins the identity across the scenario
/// matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One thread processes every event in `(time, seq)` order. The
    /// reference oracle and the default.
    #[default]
    Serial,
    /// Grid-partitioned node shards run RNG-free callbacks on `workers`
    /// threads within each lookahead epoch; outcomes merge back in strict
    /// `(time, seq)` order.
    Sharded {
        /// Worker threads to spawn per [`Simulator::run_until`] call.
        /// Clamped to at least 1; `workers: 1` exercises the full loan /
        /// replay machinery on a single shard.
        workers: usize,
    },
}

/// What a scheduled event does when it fires.
#[derive(Debug)]
enum EventKind {
    /// Deliver `payload` (sent by `from`) to node `to`.
    Deliver { to: NodeId, from: NodeId, payload: Bytes },
    /// Fire an application timer on `node`.
    Timer { node: NodeId, token: TimerToken },
    /// Invoke `on_start` for a node.
    Start { node: NodeId },
    /// Advance all mobile nodes and reschedule.
    MobilityTick,
}

/// A pending batched delivery: the slim per-receiver entry on the frame
/// heap. 24 bytes against the ~48 of a payload-carrying [`ScheduledEvent`],
/// and — the real saving — one entry per `(receiver, instant)` instead of
/// one per frame. Ordered by `(time, seq)` like every other event; the
/// derive produces exactly that because the fields are declared in key
/// order and `to`/`batch` can never differ for equal `(time, seq)`.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct FrameEvent {
    time: SimTime,
    seq: u64,
    to: u32,
    batch: u32,
}

/// Bookkeeping for a future instant that has at least one open batch:
/// which sequence number was assigned to the *latest* event scheduled at
/// exactly this instant (frame or control), and how many open batches
/// reference it. A batch whose last frame *is* that latest event can
/// absorb the next same-instant frame without reordering anything; any
/// interleaved event breaks the run and forces a fresh batch.
struct InstantState {
    last_seq: u64,
    open_batches: u32,
}

/// A multiply-shift hasher for the engine's `SimTime`-keyed map. The map
/// is touched on every scheduled event, and its keys are single already-
/// uniform-enough `u64`s — SipHash's per-lookup setup cost dwarfs the work.
/// Not DoS-resistant, which is fine for keys the simulator itself mints.
#[derive(Default)]
struct InstantHasher(u64);

impl std::hash::Hasher for InstantHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-`u64` fragments (none today): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type InstantMap = HashMap<SimTime, InstantState, std::hash::BuildHasherDefault<InstantHasher>>;

struct ScheduledEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}
impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct NodeSlot {
    app: Box<dyn Application>,
    position: Position,
    mobility: MobilityState,
    log: LogBuffer,
    alive: bool,
    /// Arrival time of the last accepted frame, for the collision window.
    last_rx: Option<SimTime>,
    /// Open (not yet dispatched) frame batches addressed to this node, as
    /// `(arrival instant, slab index)`. A handful at most — one per
    /// distinct in-flight delivery instant — so join-or-create is a linear
    /// scan over a vector that stays warm for the life of the slot.
    pending_batches: Vec<(SimTime, u32)>,
}

/// Builder for a [`Simulator`].
///
/// ```
/// use trustlink_sim::prelude::*;
/// let sim = SimulatorBuilder::new(7)
///     .arena(Arena::new(500.0, 500.0))
///     .radio(RadioConfig::unit_disk(150.0))
///     .mobility_tick(SimDuration::from_millis(250))
///     .build();
/// assert_eq!(sim.now(), SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct SimulatorBuilder {
    seed: u64,
    arena: Arena,
    radio: RadioConfig,
    mobility_tick: SimDuration,
    scan_mode: ScanMode,
    delivery_mode: DeliveryMode,
    execution_mode: ExecutionMode,
    expected_nodes: usize,
    channel: Option<ChannelModel>,
}

/// Event-queue capacity reserved per expected node: a handful of pending
/// protocol timers plus the in-flight deliveries of a broadcast burst.
/// Purely a pre-allocation hint — the heap still grows past it when a
/// flood spikes, it just no longer doubles its way up from empty.
///
/// Under [`DeliveryMode::PerFrame`] this sizes the single heap that holds
/// both control events and per-frame deliveries. Under
/// [`DeliveryMode::Batched`] deliveries live on their own slim frame heap:
/// that heap takes this hint, while the main heap — now carrying only
/// timers, starts and mobility ticks — needs just
/// [`CONTROL_EVENTS_PER_NODE_HINT`].
const EVENTS_PER_NODE_HINT: usize = 16;

/// Main-heap capacity per expected node when deliveries are batched away
/// onto the frame heap: protocol timers plus the one-shot start event.
const CONTROL_EVENTS_PER_NODE_HINT: usize = 4;

/// Batch-slab capacity per expected node. In-flight batches per receiver
/// are bounded by the number of distinct delivery instants within the
/// propagation-delay window — a handful even under flood load.
const BATCHES_PER_NODE_HINT: usize = 4;

impl SimulatorBuilder {
    /// Starts a builder with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        SimulatorBuilder {
            seed,
            arena: Arena::default(),
            radio: RadioConfig::default(),
            mobility_tick: SimDuration::from_millis(500),
            scan_mode: ScanMode::default(),
            delivery_mode: DeliveryMode::default(),
            execution_mode: ExecutionMode::default(),
            expected_nodes: 0,
            channel: None,
        }
    }

    /// Sets the arena dimensions.
    pub fn arena(mut self, arena: Arena) -> Self {
        self.arena = arena;
        self
    }

    /// Sets the radio configuration.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the granularity at which mobile nodes are advanced.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn mobility_tick(mut self, tick: SimDuration) -> Self {
        assert!(!tick.is_zero(), "mobility tick must be positive");
        self.mobility_tick = tick;
        self
    }

    /// Selects how the radio finds candidate receivers. [`ScanMode::Grid`]
    /// (the default) is the indexed fast path; [`ScanMode::Linear`] is the
    /// O(n)-per-broadcast reference scan, byte-identical per seed.
    pub fn scan_mode(mut self, mode: ScanMode) -> Self {
        self.scan_mode = mode;
        self
    }

    /// Selects how deliveries reach applications.
    /// [`DeliveryMode::Batched`] (the default) coalesces every frame
    /// arriving at one `(receiver, instant)` into a single pooled batch;
    /// [`DeliveryMode::PerFrame`] is the one-event-per-frame oracle,
    /// byte-identical per seed.
    pub fn delivery_mode(mut self, mode: DeliveryMode) -> Self {
        self.delivery_mode = mode;
        self
    }

    /// Selects how the event loop executes. [`ExecutionMode::Serial`] (the
    /// default) processes everything on one thread;
    /// [`ExecutionMode::Sharded`] runs RNG-free callbacks on
    /// grid-partitioned worker shards inside conservative lookahead
    /// epochs — byte-identical per seed at any worker count.
    pub fn execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.execution_mode = mode;
        self
    }

    /// Attaches a per-link [`ChannelModel`] (edge overrides, Gilbert–Elliott
    /// fading). Without one — the default — the uniform [`RadioConfig`] is
    /// the whole medium, and runs are byte-identical to builds that predate
    /// the channel layer: the model's per-link RNG streams are the only new
    /// randomness, and they are derived from `(link, seed)`, never drawn
    /// from the simulator's global stream.
    pub fn channel_model(mut self, model: ChannelModel) -> Self {
        self.channel = Some(model);
        self
    }

    /// Declares how many nodes the scenario is about to add, so the event
    /// heap, node slots, traffic counters and per-callback scratch buffers
    /// are sized once up front and steady-state event scheduling never
    /// reallocates. Purely a capacity hint: it changes no behaviour, and
    /// adding more (or fewer) nodes than declared stays correct.
    pub fn expected_nodes(mut self, n: usize) -> Self {
        self.expected_nodes = n.min(u32::MAX as usize);
        self
    }

    /// Finalizes the configuration into an empty simulator.
    pub fn build(self) -> Simulator {
        let grid = SpatialGrid::new(&self.arena, self.radio.propagation.max_range());
        let channel = self.channel.map(|m| ChannelState::new(m, self.seed));
        let n = self.expected_nodes;
        let mut stats = TrafficStats::default();
        stats.reserve_nodes(n);
        // Capacity split follows the mode: per-frame keeps every event on
        // the main heap; batched moves deliveries to the frame heap, so the
        // main heap only needs room for control events.
        let (main_hint, frame_hint) = match self.delivery_mode {
            DeliveryMode::PerFrame => (EVENTS_PER_NODE_HINT, 0),
            DeliveryMode::Batched => (CONTROL_EVENTS_PER_NODE_HINT, EVENTS_PER_NODE_HINT),
        };
        Simulator {
            time: SimTime::ZERO,
            queue: BinaryHeap::with_capacity(n.saturating_mul(main_hint)),
            frame_queue: BinaryHeap::with_capacity(n.saturating_mul(frame_hint)),
            batches: Vec::with_capacity(n.saturating_mul(BATCHES_PER_NODE_HINT)),
            batch_last_seq: Vec::with_capacity(n.saturating_mul(BATCHES_PER_NODE_HINT)),
            free_batches: Vec::with_capacity(n.saturating_mul(BATCHES_PER_NODE_HINT)),
            open_instants: InstantMap::default(),
            seq: 0,
            slots: Vec::with_capacity(n),
            radio: self.radio,
            channel,
            arena: self.arena,
            rng: StdRng::seed_from_u64(self.seed),
            stats,
            mobility_tick: self.mobility_tick,
            mobility_scheduled: false,
            halted: false,
            grid,
            scan_mode: self.scan_mode,
            delivery_mode: self.delivery_mode,
            execution_mode: self.execution_mode,
            alive_count: 0,
            scratch_commands: Vec::with_capacity(if n > 0 { 64 } else { 0 }),
            scratch_candidates: Vec::with_capacity(if n > 0 { 256 } else { 0 }),
        }
    }
}

/// The deterministic discrete-event simulator.
///
/// See the [crate-level documentation](crate) for a full example.
pub struct Simulator {
    time: SimTime,
    queue: BinaryHeap<Reverse<ScheduledEvent>>,
    /// Slim per-`(receiver, instant)` delivery entries under
    /// [`DeliveryMode::Batched`]; empty under `PerFrame`. Popped in merged
    /// `(time, seq)` order with the main queue.
    frame_queue: BinaryHeap<Reverse<FrameEvent>>,
    /// Batch slab: frames coalesced per `(receiver, instant)`. Indexed by
    /// [`FrameEvent::batch`]; recycled through `free_batches` with
    /// capacity kept, so steady-state batching allocates nothing.
    batches: Vec<FrameBatch>,
    /// Sequence number of each open batch's last frame (parallel to
    /// `batches`); compared against [`InstantState::last_seq`] to decide
    /// whether a new same-instant frame may join.
    batch_last_seq: Vec<u64>,
    /// Slab indices free for reuse.
    free_batches: Vec<u32>,
    /// Future instants with open batches. Every `schedule` that lands on
    /// such an instant records itself here, which closes the instant's
    /// batches to further joins (strict consecutive-run coalescing).
    /// Entries die with their last open batch, so the map stays tiny and
    /// warm. Never iterated: determinism is untouched by hash order.
    open_instants: InstantMap,
    seq: u64,
    slots: Vec<NodeSlot>,
    radio: RadioConfig,
    channel: Option<ChannelState>,
    arena: Arena,
    rng: StdRng,
    stats: TrafficStats,
    mobility_tick: SimDuration,
    mobility_scheduled: bool,
    halted: bool,
    grid: SpatialGrid,
    scan_mode: ScanMode,
    delivery_mode: DeliveryMode,
    execution_mode: ExecutionMode,
    /// Number of alive slots, kept current so the grid path can account
    /// for out-of-range receivers it never visits (stats parity with the
    /// linear scan).
    alive_count: u64,
    /// Reused per-callback command buffer: the event hot path allocates
    /// nothing.
    scratch_commands: Vec<Command>,
    /// Reused broadcast fan-out candidate buffer.
    scratch_candidates: Vec<u32>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("time", &self.time)
            .field("nodes", &self.slots.len())
            .field("pending_events", &self.queue.len())
            .field("halted", &self.halted)
            .finish()
    }
}

impl Simulator {
    /// Adds a stationary node at `position`; returns its identity.
    pub fn add_node(&mut self, app: Box<dyn Application>, position: Position) -> NodeId {
        self.add_mobile_node(app, position, MobilityModel::Stationary)
    }

    /// Adds a node with an explicit mobility model.
    pub fn add_mobile_node(
        &mut self,
        app: Box<dyn Application>,
        position: Position,
        mobility: MobilityModel,
    ) -> NodeId {
        let id = NodeId(u32::try_from(self.slots.len()).expect("too many nodes"));
        self.stats.ensure_node(id);
        let position = self.arena.clamp(position);
        self.slots.push(NodeSlot {
            app,
            position,
            mobility: MobilityState::new(mobility),
            log: LogBuffer::default(),
            alive: true,
            last_rx: None,
            pending_batches: Vec::with_capacity(BATCHES_PER_NODE_HINT),
        });
        self.grid.register_slot(id.0);
        if self.scan_mode == ScanMode::Grid {
            // In linear mode nothing ever queries the index; never
            // inserting keeps every other grid call a no-op, so the
            // baseline pays no maintenance cost it did not have
            // pre-index.
            self.grid.insert(id.0, position);
        }
        self.alive_count += 1;
        self.schedule(SimDuration::ZERO, EventKind::Start { node: id });
        id
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Identities of all nodes, in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.slots.len()).map(|i| NodeId(i as u32))
    }

    /// The audit log of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn log(&self, id: NodeId) -> &LogBuffer {
        &self.slots[id.index()].log
    }

    /// Captures every node's audit log into one [`FlightRecorder`]: the
    /// whole run as a single attributed record stream in canonical
    /// `(time, node)` order, ready for rlog serialization or replay.
    pub fn flight_recorder(&self) -> FlightRecorder {
        let mut records = Vec::new();
        for id in self.node_ids().collect::<Vec<_>>() {
            for (at, record) in self.log(id).entries() {
                records.push(FlightRecord { at: *at, node: id, record: record.clone() });
            }
        }
        FlightRecorder::from_records(records)
    }

    /// Current position of `id`.
    pub fn position(&self, id: NodeId) -> Position {
        self.slots[id.index()].position
    }

    /// Teleports `id` to `position` (clamped to the arena). Useful for
    /// scripted topology changes in tests and scenarios.
    pub fn set_position(&mut self, id: NodeId, position: Position) {
        let position = self.arena.clamp(position);
        self.slots[id.index()].position = position;
        self.grid.update(id.0, position);
    }

    /// Immutable access to the application installed on `id`.
    pub fn app(&self, id: NodeId) -> &dyn Application {
        self.slots[id.index()].app.as_ref()
    }

    /// Mutable access to the application installed on `id`.
    pub fn app_mut(&mut self, id: NodeId) -> &mut dyn Application {
        self.slots[id.index()].app.as_mut()
    }

    /// Downcasts the application on `id` to its concrete type.
    pub fn app_as<T: Application>(&self, id: NodeId) -> Option<&T> {
        let any: &dyn std::any::Any = self.slots[id.index()].app.as_ref();
        any.downcast_ref::<T>()
    }

    /// Mutable downcast of the application on `id`.
    pub fn app_as_mut<T: Application>(&mut self, id: NodeId) -> Option<&mut T> {
        let any: &mut dyn std::any::Any = self.slots[id.index()].app.as_mut();
        any.downcast_mut::<T>()
    }

    /// Aggregated traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The radio configuration in force.
    pub fn radio(&self) -> &RadioConfig {
        &self.radio
    }

    /// The per-link channel state in force, if a model was attached.
    pub fn channel(&self) -> Option<&ChannelState> {
        self.channel.as_ref()
    }

    /// The receiver-scan mode in force.
    pub fn scan_mode(&self) -> ScanMode {
        self.scan_mode
    }

    /// The delivery mode in force.
    pub fn delivery_mode(&self) -> DeliveryMode {
        self.delivery_mode
    }

    /// The execution mode in force.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.execution_mode
    }

    /// Ground-truth neighbors of `id`: alive nodes within the propagation
    /// model's maximum range. (What an omniscient observer would call the
    /// 1-hop neighborhood; protocols must *discover* this.)
    pub fn neighbors_in_range(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_in_range_into(id, &mut out);
        out.into_iter().map(NodeId).collect()
    }

    /// Buffer-reusing variant of [`Simulator::neighbors_in_range`]: clears
    /// `out` and fills it with the ascending raw indices of the alive
    /// in-range nodes. Ground-truth sweeps (scenario health checks,
    /// benches) call this once per node per round; with a caller-kept
    /// buffer the sweep stops allocating once warm
    /// (`tests/alloc_regression.rs` pins this).
    pub fn neighbors_in_range_into(&self, id: NodeId, out: &mut Vec<u32>) {
        out.clear();
        let me_pos = self.slots[id.index()].position;
        let range = self.radio.propagation.max_range();
        match self.scan_mode {
            ScanMode::Linear => out.extend(
                self.slots
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| {
                        *i != id.index() && s.alive && me_pos.distance(&s.position) <= range
                    })
                    .map(|(i, _)| i as u32),
            ),
            ScanMode::Grid => {
                self.grid.gather_within(me_pos, range, out);
                out.sort_unstable();
                out.retain(|&i| i != id.0);
            }
        }
    }

    /// Marks `id` dead: it stops transmitting and receiving (crash / power
    /// off). Timers still fire but commands from dead nodes are discarded.
    pub fn kill(&mut self, id: NodeId) {
        let slot = &mut self.slots[id.index()];
        if slot.alive {
            slot.alive = false;
            self.alive_count -= 1;
            self.grid.remove(id.0);
        }
    }

    /// Brings a dead node back.
    pub fn revive(&mut self, id: NodeId) {
        let slot = &mut self.slots[id.index()];
        if !slot.alive {
            slot.alive = true;
            self.alive_count += 1;
            let pos = slot.position;
            if self.scan_mode == ScanMode::Grid {
                self.grid.insert(id.0, pos);
            }
        }
    }

    /// `true` if `id` is alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.slots[id.index()].alive
    }

    /// Injects a broadcast frame as if transmitted by `from` right now.
    /// Intended for tests and scripted scenarios.
    pub fn inject_broadcast(&mut self, from: NodeId, payload: Bytes) {
        self.fan_out_broadcast(from, payload);
    }

    fn schedule(&mut self, delay: SimDuration, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        let at = self.time + delay;
        // Landing on an instant that has open batches closes them to
        // further joins: a frame arriving after us at this instant is no
        // longer consecutive with the batch's last frame. Empty (always,
        // under per-frame delivery) skips the hash lookup.
        if !self.open_instants.is_empty() {
            if let Some(st) = self.open_instants.get_mut(&at) {
                st.last_seq = seq;
            }
        }
        self.queue.push(Reverse(ScheduledEvent { time: at, seq, kind }));
    }

    /// Routes one judged-deliverable frame according to the delivery mode:
    /// a classic per-frame event, or a join-or-create into the receiver's
    /// open batch for that arrival instant.
    ///
    /// Joining preserves the oracle's observable order *exactly*: every
    /// frame consumes a sequence number (so later events get the same seq
    /// in both modes), and a frame joins only when the batch's last frame
    /// is still the latest event scheduled at that instant. A batch is
    /// therefore a run of consecutive `(time, seq)` events; in per-frame
    /// mode those would dispatch back-to-back with nothing in between, so
    /// delivering them in one callback is indistinguishable. Anything
    /// interleaved — a timer on the same microsecond, a frame for another
    /// receiver — closes the batch and the next frame opens a fresh one
    /// at its own key.
    fn enqueue_delivery(&mut self, delay: SimDuration, to: NodeId, from: NodeId, payload: Bytes) {
        if self.delivery_mode == DeliveryMode::PerFrame {
            self.schedule(delay, EventKind::Deliver { to, from, payload });
            return;
        }
        let at = self.time + delay;
        let seq = self.seq;
        self.seq += 1;
        let slot = &mut self.slots[to.index()];
        match self.open_instants.get_mut(&at) {
            Some(st) => {
                // This receiver's batch at `at` may join only if its last
                // frame is the instant's latest event. At most one batch
                // can satisfy that, and only ours is allowed to.
                let join = slot
                    .pending_batches
                    .iter()
                    .find(|&&(t, idx)| t == at && self.batch_last_seq[idx as usize] == st.last_seq);
                st.last_seq = seq;
                if let Some(&(_, idx)) = join {
                    self.batch_last_seq[idx as usize] = seq;
                    self.batches[idx as usize].push(from, payload);
                    return;
                }
                st.open_batches += 1;
            }
            None => {
                self.open_instants.insert(at, InstantState { last_seq: seq, open_batches: 1 });
            }
        }
        let idx = match self.free_batches.pop() {
            Some(i) => i,
            None => {
                let i = u32::try_from(self.batches.len()).expect("batch slab exceeds u32 indices");
                self.batches.push(FrameBatch::default());
                self.batch_last_seq.push(0);
                i
            }
        };
        self.batch_last_seq[idx as usize] = seq;
        self.batches[idx as usize].push(from, payload);
        slot.pending_batches.push((at, idx));
        self.frame_queue.push(Reverse(FrameEvent { time: at, seq, to: to.0, batch: idx }));
    }

    /// Runs until the queues are exhausted, `deadline` is reached, or a
    /// node halts the simulation. The clock always ends at `deadline`
    /// unless halted earlier.
    ///
    /// Control events and batched frame deliveries live on separate heaps
    /// (the latter entries are slim and payload-free); they are merge-
    /// popped in strict global `(time, seq)` order, so splitting the heap
    /// changes no ordering an application can observe. Under
    /// [`ExecutionMode::Sharded`] the same order is produced by lookahead
    /// epochs whose RNG-free callbacks run on worker shards.
    pub fn run_until(&mut self, deadline: SimTime) {
        match self.execution_mode {
            ExecutionMode::Serial => self.run_until_serial(deadline),
            ExecutionMode::Sharded { workers } => self.run_until_sharded(deadline, workers.max(1)),
        }
    }

    /// The earliest pending `(time, seq)` key across both heaps, and
    /// whether it belongs to the frame heap.
    fn peek_key(&self) -> Option<((SimTime, u64), bool)> {
        let control = self.queue.peek().map(|Reverse(ev)| (ev.time, ev.seq));
        let frame = self.frame_queue.peek().map(|Reverse(fe)| (fe.time, fe.seq));
        match (control, frame) {
            (None, None) => None,
            (Some(c), None) => Some((c, false)),
            (None, Some(f)) => Some((f, true)),
            (Some(c), Some(f)) => {
                if f < c {
                    Some((f, true))
                } else {
                    Some((c, false))
                }
            }
        }
    }

    /// The reference event loop: one thread, strict `(time, seq)` order.
    fn run_until_serial(&mut self, deadline: SimTime) {
        self.ensure_mobility_tick();
        while !self.halted {
            let Some((key, take_frame)) = self.peek_key() else { break };
            if key.0 > deadline {
                break;
            }
            debug_assert!(key.0 >= self.time, "time went backwards");
            self.time = key.0;
            if take_frame {
                let Reverse(fe) = self.frame_queue.pop().expect("peeked frame event vanished");
                self.dispatch_batch(fe);
            } else {
                let Reverse(ev) = self.queue.pop().expect("peeked event vanished");
                self.dispatch(ev.kind);
            }
        }
        if !self.halted && self.time < deadline {
            self.time = deadline;
        }
    }

    /// The sharded event loop: conservative-lookahead epochs whose
    /// RNG-free callbacks run on `workers` grid-partitioned shards, with
    /// every outcome merged back at its exact serial position. See the
    /// module comment above [`run_unit`] for the full argument.
    fn run_until_sharded(&mut self, deadline: SimTime, workers: usize) {
        self.ensure_mobility_tick();
        // The lookahead guarantee: nothing transmitted at `T` arrives
        // before `T + base_delay` — jitter and channel-model extras only
        // ever add to the base ([`crate::radio`]). A zero base delay
        // leaves no window to run ahead in; fall back to the oracle.
        let lookahead = self.radio.base_delay;
        if lookahead.is_zero() {
            return self.run_until_serial(deadline);
        }
        std::thread::scope(|scope| {
            let (result_tx, result_rx) = mpsc::channel::<WorkResult>();
            let mut shards: Vec<mpsc::Sender<ShardPackage>> = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = mpsc::channel::<ShardPackage>();
                shards.push(tx);
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok(pkg) = rx.recv() {
                        let ShardPackage { units, epoch_base, cutoff, collision_window } = pkg;
                        for unit in units {
                            let r = run_unit(unit, epoch_base, cutoff, collision_window);
                            if result_tx.send(r).is_err() {
                                return;
                            }
                        }
                    }
                });
            }
            drop(result_tx);
            while !self.halted && self.run_epoch_sharded(deadline, lookahead, &shards, &result_rx) {
            }
            // Dropping the package senders ends every worker loop; the
            // scope joins them on exit.
        });
        if !self.halted && self.time < deadline {
            self.time = deadline;
        }
    }

    /// Runs one epoch of the sharded loop; `false` once nothing pending
    /// falls at or before `deadline`.
    fn run_epoch_sharded(
        &mut self,
        deadline: SimTime,
        lookahead: SimDuration,
        shards: &[mpsc::Sender<ShardPackage>],
        results: &mpsc::Receiver<WorkResult>,
    ) -> bool {
        let Some((first, first_is_frame)) = self.peek_key() else { return false };
        if first.0 > deadline {
            return false;
        }
        // A mobility tick advances every node through the global RNG
        // stream: it runs alone, as a serial barrier between epochs.
        if !first_is_frame
            && matches!(self.queue.peek(), Some(Reverse(ev)) if matches!(ev.kind, EventKind::MobilityTick))
        {
            let Reverse(ev) = self.queue.pop().expect("peeked event vanished");
            self.time = ev.time;
            self.dispatch(ev.kind);
            return true;
        }
        // The epoch window is `[first, first + lookahead)`, capped at the
        // deadline (inclusive bound, whole microseconds). Every delivery
        // inside it is already queued — transmissions during the epoch
        // land at least `lookahead` ahead — so the only events that can
        // still appear inside the window are timers armed during the walk.
        let epoch_last =
            (first.0 + SimDuration::from_micros(lookahead.as_micros() - 1)).min(deadline);
        // Exclusive upper bound of the epoch as a `(time, seq)` key: a
        // mobility tick inside the window barriers the epoch early.
        let mut cutoff = (epoch_last, u64::MAX);
        let mut epoch: Vec<EpochEvent> = Vec::new();
        while let Some((key, is_frame)) = self.peek_key() {
            if key.0 > epoch_last {
                break;
            }
            if is_frame {
                let Reverse(fe) = self.frame_queue.pop().expect("peeked frame event vanished");
                // The serial dispatcher's batch prologue, run at assembly:
                // close the batch to joins and detach its storage. (No
                // same-instant frame can still arrive — it would need to be
                // sent less than `lookahead` ago.) The slab index stays
                // reserved until the walk passes this event, so slabs are
                // reused at exactly the serial points.
                if let Some(st) = self.open_instants.get_mut(&fe.time) {
                    st.open_batches -= 1;
                    if st.open_batches == 0 {
                        self.open_instants.remove(&fe.time);
                    }
                }
                let batch = std::mem::take(&mut self.batches[fe.batch as usize]);
                let to = NodeId(fe.to);
                let slot = &mut self.slots[to.index()];
                let pos = slot
                    .pending_batches
                    .iter()
                    .position(|&(_, b)| b == fe.batch)
                    .expect("assembled batch not pending on its receiver");
                slot.pending_batches.swap_remove(pos);
                epoch.push(EpochEvent {
                    time: fe.time,
                    seq: fe.seq,
                    node: to,
                    content: Some(EpochContent::Batch { slab: fe.batch, batch }),
                });
            } else {
                if matches!(self.queue.peek(), Some(Reverse(ev)) if matches!(ev.kind, EventKind::MobilityTick))
                {
                    // The tick stays queued: it ends this epoch's intake
                    // and fences off any timer that would fire at or after
                    // it.
                    cutoff = key;
                    break;
                }
                let Reverse(ev) = self.queue.pop().expect("peeked event vanished");
                let node = match &ev.kind {
                    EventKind::Start { node } | EventKind::Timer { node, .. } => *node,
                    EventKind::Deliver { to, .. } => *to,
                    EventKind::MobilityTick => unreachable!("handled above"),
                };
                epoch.push(EpochEvent {
                    time: ev.time,
                    seq: ev.seq,
                    node,
                    content: Some(EpochContent::Kind(ev.kind)),
                });
            }
        }
        // Phase A: loan every eligible node — first callback RNG-free —
        // with its event slice to the shard workers. Small epochs skip the
        // round trip; the walk below then runs everything live, which *is*
        // the serial semantics.
        let epoch_base = self.seq;
        let mut replay: BTreeMap<u32, NodeReplay> = BTreeMap::new();
        if epoch.len() >= PARALLEL_EPOCH_THRESHOLD {
            // `None` marks a node checked and found ineligible.
            let mut units: BTreeMap<u32, Option<WorkUnit>> = BTreeMap::new();
            for ev in &mut epoch {
                let nid = ev.node.0;
                let slots = &mut self.slots;
                let entry = units.entry(nid).or_insert_with(|| {
                    let class = class_of(ev.content.as_ref().expect("content taken at assembly"));
                    let slot = &mut slots[nid as usize];
                    if !slot.app.rng_free(class) {
                        return None;
                    }
                    let app = std::mem::replace(&mut slot.app, Box::new(ParkedApp));
                    let log = std::mem::take(&mut slot.log);
                    Some(WorkUnit {
                        node: ev.node,
                        slot: WorkSlot { app, log, last_rx: slot.last_rx, alive: slot.alive },
                        events: VecDeque::new(),
                    })
                });
                if let Some(unit) = entry {
                    let kind = match ev.content.take().expect("epoch event loaned twice") {
                        EpochContent::Kind(EventKind::Start { .. }) => WorkKind::Start,
                        EpochContent::Kind(EventKind::Timer { token, .. }) => {
                            WorkKind::Timer(token)
                        }
                        EpochContent::Kind(EventKind::Deliver { from, payload, .. }) => {
                            WorkKind::Deliver { from, payload }
                        }
                        EpochContent::Kind(EventKind::MobilityTick) => {
                            unreachable!("mobility ticks never enter an epoch")
                        }
                        EpochContent::Batch { slab, batch } => WorkKind::Batch { slab, batch },
                    };
                    unit.events.push_back(WorkEvent { time: ev.time, seq: ev.seq, kind });
                }
            }
            // Partition along grid cells: co-located nodes land on one
            // worker, so a burst's receivers (decoding the same shared
            // payload bytes) stay together.
            let mut packages: Vec<Vec<WorkUnit>> = (0..shards.len()).map(|_| Vec::new()).collect();
            let mut sent_units = 0usize;
            for unit in units.into_values().flatten() {
                packages[self.grid.shard_of(unit.node.0, shards.len())].push(unit);
                sent_units += 1;
            }
            for (shard, units) in packages.into_iter().enumerate() {
                if units.is_empty() {
                    continue;
                }
                let pkg = ShardPackage {
                    units,
                    epoch_base,
                    cutoff,
                    collision_window: self.radio.collision_window,
                };
                shards[shard].send(pkg).expect("shard worker died");
            }
            for _ in 0..sent_units {
                let r = results.recv().expect("shard worker died");
                let slot = &mut self.slots[r.node.index()];
                slot.app = r.slot.app;
                slot.log = r.slot.log;
                slot.last_rx = r.slot.last_rx;
                self.stats.node_mut(r.node).received += r.received;
                self.stats.lost_collision += r.lost_collision;
                replay.insert(
                    r.node.0,
                    NodeReplay { outcomes: r.outcomes, unprocessed: r.unprocessed },
                );
            }
        }
        // Phase B: the serial spine. Walk the epoch merged with the timers
        // the walk itself creates, in strict global `(time, seq)` order.
        // Recorded outcomes execute at their exact position — sequence
        // numbers, fan-out randomness and statistics are produced in
        // precisely the serial order — and everything else dispatches
        // live.
        let mut next = 0usize;
        while !self.halted {
            let from_epoch = epoch.get(next).map(|e| (e.time, e.seq));
            let from_queue =
                self.queue.peek().map(|Reverse(ev)| (ev.time, ev.seq)).filter(|&k| k < cutoff);
            let take_queue = match (from_epoch, from_queue) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(e), Some(q)) => q < e,
            };
            if take_queue {
                let Reverse(ev) = self.queue.pop().expect("peeked event vanished");
                self.time = ev.time;
                let node = match &ev.kind {
                    EventKind::Start { node } | EventKind::Timer { node, .. } => *node,
                    EventKind::Deliver { to, .. } => *to,
                    EventKind::MobilityTick => unreachable!("ticks are fenced off by the cutoff"),
                };
                match replay.get_mut(&node.0) {
                    // A timer the worker already ran — it was armed and
                    // fired inside the epoch on the worker's stand-in
                    // queue. Its outcome replays here; the pop consumed
                    // the event.
                    Some(r) if !r.outcomes.is_empty() => {
                        let mut out = r.outcomes.pop_front().expect("checked non-empty");
                        debug_assert_eq!(out.time, ev.time);
                        debug_assert!(
                            out.seq >= epoch_base,
                            "replayed a created timer against an original event"
                        );
                        debug_assert!(out.batch.is_none());
                        self.execute(node, &mut out.commands);
                    }
                    _ => self.dispatch(ev.kind),
                }
            } else {
                let ev = &mut epoch[next];
                next += 1;
                let (time, seq, node) = (ev.time, ev.seq, ev.node);
                let content = ev.content.take();
                self.time = time;
                match content {
                    Some(EpochContent::Kind(kind)) => self.dispatch(kind),
                    Some(EpochContent::Batch { slab, batch }) => {
                        self.dispatch_batch_tail(node, slab, batch)
                    }
                    None => {
                        let r = replay.get_mut(&node.0).expect("loaned node lost its replay state");
                        if let Some(mut out) = r.outcomes.pop_front() {
                            debug_assert_eq!((out.time, out.seq), (time, seq));
                            let parked = out.batch.take();
                            self.execute(node, &mut out.commands);
                            // The slab recycles after the commands run —
                            // exactly where the serial dispatcher frees it.
                            if let Some((slab, mut batch)) = parked {
                                batch.clear();
                                self.batches[slab as usize] = batch;
                                self.free_batches.push(slab);
                            }
                        } else {
                            // The worker parked this node here; from this
                            // event on everything dispatches live.
                            let we = r.unprocessed.pop_front().expect("worker dropped an event");
                            debug_assert_eq!((we.time, we.seq), (time, seq));
                            match we.kind {
                                WorkKind::Start => self.dispatch(EventKind::Start { node }),
                                WorkKind::Timer(token) => {
                                    self.dispatch(EventKind::Timer { node, token })
                                }
                                WorkKind::Deliver { from, payload } => {
                                    self.dispatch(EventKind::Deliver { to: node, from, payload })
                                }
                                WorkKind::Batch { slab, batch } => {
                                    self.dispatch_batch_tail(node, slab, batch)
                                }
                            }
                        }
                    }
                }
            }
        }
        debug_assert!(
            self.halted
                || replay.values().all(|r| r.outcomes.is_empty() && r.unprocessed.is_empty()),
            "epoch walk left replay state unconsumed"
        );
        true
    }

    /// Runs for `span` of simulated time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.time + span;
        self.run_until(deadline);
    }

    /// `true` once a node has called [`Context::halt`].
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    fn ensure_mobility_tick(&mut self) {
        if self.mobility_scheduled {
            return;
        }
        let any_mobile =
            self.slots.iter().any(|s| !matches!(s.mobility.model, MobilityModel::Stationary));
        if any_mobile {
            self.mobility_scheduled = true;
            self.schedule(self.mobility_tick, EventKind::MobilityTick);
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start { node } => self.run_callback(node, |app, ctx| app.on_start(ctx)),
            EventKind::Timer { node, token } => {
                self.run_callback(node, |app, ctx| app.on_timer(ctx, token))
            }
            EventKind::Deliver { to, from, payload } => {
                let slot = &mut self.slots[to.index()];
                if !slot.alive {
                    return;
                }
                if let Some(window) = self.radio.collision_window {
                    if let Some(last) = slot.last_rx {
                        if self.time.saturating_since(last) < window {
                            self.stats.lost_collision += 1;
                            return;
                        }
                    }
                }
                slot.last_rx = Some(self.time);
                self.stats.node_mut(to).received += 1;
                self.run_callback(to, move |app, ctx| app.on_receive(ctx, from, payload));
            }
            EventKind::MobilityTick => {
                for i in 0..self.slots.len() {
                    let slot = &mut self.slots[i];
                    let next = slot.mobility.step(
                        slot.position,
                        self.mobility_tick,
                        &self.arena,
                        &mut self.rng,
                    );
                    slot.position = next;
                    if self.scan_mode == ScanMode::Grid {
                        self.grid.update(i as u32, next);
                    }
                }
                self.schedule(self.mobility_tick, EventKind::MobilityTick);
            }
        }
    }

    /// Dispatches one coalesced batch: applies the per-frame admission
    /// rules (liveness, collision window, traffic accounting) exactly as
    /// the per-frame dispatcher would — all frames in a batch share one
    /// arrival instant, so under a collision window the first admitted
    /// frame makes every later one collide, just as consecutive same-
    /// instant `Deliver` events do — then hands the survivors to the
    /// application in one callback. The batch storage is recycled.
    fn dispatch_batch(&mut self, fe: FrameEvent) {
        let to = NodeId(fe.to);
        // This batch is no longer open; the instant's entry dies with its
        // last batch.
        if let Some(st) = self.open_instants.get_mut(&fe.time) {
            st.open_batches -= 1;
            if st.open_batches == 0 {
                self.open_instants.remove(&fe.time);
            }
        }
        let batch = std::mem::take(&mut self.batches[fe.batch as usize]);
        let slot = &mut self.slots[to.index()];
        let pos = slot
            .pending_batches
            .iter()
            .position(|&(_, b)| b == fe.batch)
            .expect("dispatched batch not pending on its receiver");
        slot.pending_batches.swap_remove(pos);
        self.dispatch_batch_tail(to, fe.batch, batch);
    }

    /// Admission, callback and slab recycling for one detached batch: the
    /// tail of [`Simulator::dispatch_batch`], shared with the sharded walk
    /// (which runs the prologue at epoch assembly).
    fn dispatch_batch_tail(&mut self, to: NodeId, slab: u32, mut batch: FrameBatch) {
        let slot = &mut self.slots[to.index()];
        if !slot.alive {
            batch.clear();
        } else {
            let window = self.radio.collision_window;
            let stats = &mut self.stats;
            let time = self.time;
            batch.retain(|_| {
                if let Some(w) = window {
                    if let Some(last) = slot.last_rx {
                        if time.saturating_since(last) < w {
                            stats.lost_collision += 1;
                            return false;
                        }
                    }
                }
                slot.last_rx = Some(time);
                stats.node_mut(to).received += 1;
                true
            });
        }
        if !batch.is_empty() {
            self.run_callback(to, |app, ctx| app.on_receive_batch(ctx, &mut batch));
        }
        batch.clear();
        self.batches[slab as usize] = batch;
        self.free_batches.push(slab);
    }

    fn run_callback(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut Box<dyn Application>, &mut Context<'_>),
    ) {
        // Reuse the simulator-owned command buffer: steady-state event
        // dispatch performs no allocation. `mem::take` (rather than a
        // direct borrow) keeps `self` free for `execute`.
        let mut commands = std::mem::take(&mut self.scratch_commands);
        commands.clear();
        {
            let slot = &mut self.slots[node.index()];
            if !slot.alive {
                self.scratch_commands = commands;
                return;
            }
            let mut ctx =
                Context::new(node, self.time, &mut self.rng, &mut slot.log, &mut commands);
            f(&mut slot.app, &mut ctx);
        }
        self.execute(node, &mut commands);
        self.scratch_commands = commands;
    }

    fn execute(&mut self, node: NodeId, commands: &mut Vec<Command>) {
        for cmd in commands.drain(..) {
            if !self.slots[node.index()].alive {
                // A node killed mid-callback transmits nothing further.
                break;
            }
            match cmd {
                Command::Broadcast { payload } => self.fan_out_broadcast(node, payload),
                Command::Unicast { to, payload } => self.fan_out_unicast(node, to, payload),
                Command::SetTimer { delay, token } => {
                    self.schedule(delay, EventKind::Timer { node, token })
                }
                Command::Halt => self.halted = true,
            }
        }
    }

    fn fan_out_broadcast(&mut self, from: NodeId, payload: Bytes) {
        let tx_pos = self.slots[from.index()].position;
        {
            let s = self.stats.node_mut(from);
            s.broadcasts_sent += 1;
            s.bytes_sent += payload.len() as u64;
        }
        match self.scan_mode {
            ScanMode::Linear => {
                for i in 0..self.slots.len() {
                    if i == from.index() || !self.slots[i].alive {
                        continue;
                    }
                    self.judge_one(from, NodeId(i as u32), tx_pos, &payload);
                }
            }
            ScanMode::Grid => {
                // Candidates are every alive node within the maximum
                // radio range. Sorting ascending makes the visit order
                // (and therefore the RNG draw order: the radio draws only
                // for positive-probability receivers) the same as the
                // linear scan's.
                let range = self.radio.propagation.max_range();
                let mut candidates = std::mem::take(&mut self.scratch_candidates);
                candidates.clear();
                self.grid.gather_within(tx_pos, range, &mut candidates);
                candidates.sort_unstable();
                let mut visited: u64 = 0;
                for &i in &candidates {
                    if i == from.0 {
                        continue;
                    }
                    visited += 1;
                    self.judge_one(from, NodeId(i), tx_pos, &payload);
                }
                candidates.clear();
                self.scratch_candidates = candidates;
                // Every alive node the cull rejected is beyond the
                // maximum range; the linear scan would have judged (and
                // counted) each without drawing randomness.
                let alive_others = self.alive_count - u64::from(self.slots[from.index()].alive);
                debug_assert!(visited <= alive_others, "grid indexed more nodes than are alive");
                self.stats.lost_range += alive_others - visited;
            }
        }
    }

    /// Judges one broadcast receiver: schedules the delivery or books the
    /// loss. Shared verbatim by both scan modes so their RNG consumption
    /// and statistics cannot drift apart.
    fn judge_one(&mut self, from: NodeId, to: NodeId, tx_pos: Position, payload: &Bytes) {
        let rx_pos = self.slots[to.index()].position;
        let outcome = match self.channel.as_mut() {
            // Channel-model-off: the uniform radio judges alone, drawing
            // from the global stream exactly as it always has.
            None => self.radio.judge(tx_pos, rx_pos, &mut self.rng),
            Some(ch) => ch.judge(&self.radio, from, to, tx_pos, rx_pos, &mut self.rng),
        };
        match outcome {
            DeliveryOutcome::Deliver(delay) => {
                self.enqueue_delivery(delay, to, from, payload.clone())
            }
            DeliveryOutcome::OutOfRange => self.stats.lost_range += 1,
            DeliveryOutcome::Lost => self.stats.lost_random += 1,
        }
    }

    fn fan_out_unicast(&mut self, from: NodeId, to: NodeId, payload: Bytes) {
        if to.index() >= self.slots.len() || to == from {
            return; // addressed to nobody; silently dropped like a real NIC would
        }
        let tx_pos = self.slots[from.index()].position;
        {
            let s = self.stats.node_mut(from);
            s.unicasts_sent += 1;
            s.bytes_sent += payload.len() as u64;
        }
        if !self.slots[to.index()].alive {
            self.stats.lost_range += 1;
            return;
        }
        let rx_pos = self.slots[to.index()].position;
        let outcome = match self.channel.as_mut() {
            None => self.radio.judge(tx_pos, rx_pos, &mut self.rng),
            Some(ch) => ch.judge(&self.radio, from, to, tx_pos, rx_pos, &mut self.rng),
        };
        match outcome {
            DeliveryOutcome::Deliver(delay) => self.enqueue_delivery(delay, to, from, payload),
            DeliveryOutcome::OutOfRange => self.stats.lost_range += 1,
            DeliveryOutcome::Lost => self.stats.lost_random += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded execution: conservative-lookahead epochs over grid-partitioned
// node shards.
//
// The radio's minimum delivery delay (`RadioConfig::base_delay`; jitter and
// channel-model extras only ever add to it) is a lookahead guarantee: no
// frame transmitted at or after `T` can arrive before `T + base_delay`.
// Every delivery inside the window `[T, T + base_delay)` is therefore
// already queued when the window opens; the only events a callback can
// still create inside it are its own timers. That makes the window an
// *epoch* whose events may run ahead of the serial spine:
//
//   Phase A (parallel)  Eligible nodes are loaned — application, log,
//     admission state — to workers, partitioned along spatial-grid cells.
//     Each worker runs its nodes' callbacks with an RNG-less `Context`,
//     recording each callback's commands. A node stays eligible while its
//     `Application::rng_free` classification holds for the next event's
//     class; the first non-RNG-free event parks the node and the rest of
//     its slice returns unprocessed.
//   Phase B (serial)    The main thread walks the epoch in global
//     `(time, seq)` order, merged with timers the walk itself schedules.
//     Events the worker ran replay their recorded commands at the exact
//     serial position — sequence numbers, fan-out randomness, statistics
//     and slab reuse all happen in precisely the serial order — and
//     everything else dispatches live with full RNG access.
//
// Mobility ticks draw from the global stream for every node, so each runs
// alone as a serial barrier between epochs. `Halt` ends the walk at the
// halting event exactly like the serial loop; parked later work in the
// same epoch is dropped, observably identical because the run ends there.

/// Minimum epoch size (in events) worth a worker round trip. Below this
/// the sharded loop keeps the whole epoch on the main thread — which is
/// exactly the serial semantics.
const PARALLEL_EPOCH_THRESHOLD: usize = 8;

/// A node's engine-owned callback state, on loan to a worker for one
/// epoch.
struct WorkSlot {
    app: Box<dyn Application>,
    log: LogBuffer,
    last_rx: Option<SimTime>,
    alive: bool,
}

/// One epoch event, detached from the heaps and shipped to a worker.
struct WorkEvent {
    time: SimTime,
    seq: u64,
    kind: WorkKind,
}

enum WorkKind {
    Start,
    Timer(TimerToken),
    Deliver {
        from: NodeId,
        payload: Bytes,
    },
    /// A coalesced delivery; `slab` is the engine slab index the batch
    /// storage recycles into once the walk passes the event.
    Batch {
        slab: u32,
        batch: FrameBatch,
    },
}

impl PartialEq for WorkEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for WorkEvent {}
impl PartialOrd for WorkEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorkEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Everything one worker needs for one node's epoch slice.
struct WorkUnit {
    node: NodeId,
    slot: WorkSlot,
    events: VecDeque<WorkEvent>,
}

/// One shard's epoch of work.
struct ShardPackage {
    units: Vec<WorkUnit>,
    /// `Simulator::seq` at epoch start. Pseudo sequence numbers for timers
    /// created inside the epoch count up from here, which orders them
    /// after every already-queued event — the same relative position their
    /// real sequence numbers take when Phase B re-executes the `SetTimer`
    /// commands.
    epoch_base: u64,
    /// Exclusive `(time, seq)` upper bound of the epoch: the mobility-tick
    /// barrier when one falls inside the lookahead window, the window end
    /// with an unreachable sequence otherwise.
    cutoff: (SimTime, u64),
    collision_window: Option<SimDuration>,
}

/// What one processed event produced on a worker.
struct Outcome {
    time: SimTime,
    seq: u64,
    commands: Vec<Command>,
    /// The storage of a processed [`WorkKind::Batch`], returned for
    /// recycling into the engine slab.
    batch: Option<(u32, FrameBatch)>,
}

/// One node's state and outcomes coming back from a worker.
struct WorkResult {
    node: NodeId,
    slot: WorkSlot,
    /// Outcomes of the processed prefix, in the node's event order.
    outcomes: VecDeque<Outcome>,
    /// The unprocessed suffix, starting at the first event whose class the
    /// application does not declare RNG-free. Phase B dispatches these
    /// live.
    unprocessed: VecDeque<WorkEvent>,
    received: u64,
    lost_collision: u64,
}

/// Replay state for one loaned node during the Phase B walk.
struct NodeReplay {
    outcomes: VecDeque<Outcome>,
    unprocessed: VecDeque<WorkEvent>,
}

/// Placeholder parked in a slot while the real application is on loan.
/// Never invoked: every event for the node inside the epoch travels with
/// the loan, and the accessors cannot run while `run_until` holds
/// `&mut Simulator`.
struct ParkedApp;

impl Application for ParkedApp {}

/// One epoch event on the main thread.
struct EpochEvent {
    time: SimTime,
    seq: u64,
    node: NodeId,
    /// `None` once the content was loaned to a worker.
    content: Option<EpochContent>,
}

enum EpochContent {
    Kind(EventKind),
    Batch { slab: u32, batch: FrameBatch },
}

fn class_of(content: &EpochContent) -> CallbackClass {
    match content {
        EpochContent::Kind(EventKind::Start { .. }) => CallbackClass::Start,
        EpochContent::Kind(EventKind::Timer { .. }) => CallbackClass::Timer,
        EpochContent::Kind(EventKind::Deliver { .. }) | EpochContent::Batch { .. } => {
            CallbackClass::Receive
        }
        EpochContent::Kind(EventKind::MobilityTick) => {
            unreachable!("mobility ticks never enter an epoch")
        }
    }
}

/// Runs one node's epoch slice on a worker thread: the serial
/// dispatcher's admission rules and callbacks, verbatim, against the
/// node's loaned state — with an RNG-less context, so a misclassified
/// draw panics instead of silently desynchronizing the replay.
fn run_unit(
    unit: WorkUnit,
    epoch_base: u64,
    cutoff: (SimTime, u64),
    window: Option<SimDuration>,
) -> WorkResult {
    let WorkUnit { node, mut slot, mut events } = unit;
    let mut outcomes = VecDeque::new();
    // Timers armed inside the epoch fire inside it; this heap is the
    // worker's stand-in for the main event queue.
    let mut created: BinaryHeap<Reverse<WorkEvent>> = BinaryHeap::new();
    let mut pseudo_seq = epoch_base;
    let mut received = 0u64;
    let mut lost_collision = 0u64;
    loop {
        let take_created = match (events.front(), created.peek()) {
            (None, None) => break,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(e), Some(Reverse(c))) => (c.time, c.seq) < (e.time, e.seq),
        };
        let class = if take_created {
            CallbackClass::Timer
        } else {
            match &events.front().expect("checked non-empty").kind {
                WorkKind::Start => CallbackClass::Start,
                WorkKind::Timer(_) => CallbackClass::Timer,
                WorkKind::Deliver { .. } | WorkKind::Batch { .. } => CallbackClass::Receive,
            }
        };
        if !slot.app.rng_free(class) {
            // Park the node before touching anything: Phase B replays the
            // processed prefix, then dispatches everything from here on
            // live. Pending created timers are dropped — replaying the
            // commands that armed them re-schedules each at its real
            // global position.
            break;
        }
        let ev = if take_created {
            created.pop().expect("checked non-empty").0
        } else {
            events.pop_front().expect("checked non-empty")
        };
        let mut commands = Vec::new();
        let mut batch_storage = None;
        match ev.kind {
            WorkKind::Start => {
                if slot.alive {
                    let mut ctx =
                        Context::new_rng_free(node, ev.time, &mut slot.log, &mut commands);
                    slot.app.on_start(&mut ctx);
                }
            }
            WorkKind::Timer(token) => {
                if slot.alive {
                    let mut ctx =
                        Context::new_rng_free(node, ev.time, &mut slot.log, &mut commands);
                    slot.app.on_timer(&mut ctx, token);
                }
            }
            WorkKind::Deliver { from, payload } => 'deliver: {
                if !slot.alive {
                    break 'deliver;
                }
                if let Some(w) = window {
                    if let Some(last) = slot.last_rx {
                        if ev.time.saturating_since(last) < w {
                            lost_collision += 1;
                            break 'deliver;
                        }
                    }
                }
                slot.last_rx = Some(ev.time);
                received += 1;
                let mut ctx = Context::new_rng_free(node, ev.time, &mut slot.log, &mut commands);
                slot.app.on_receive(&mut ctx, from, payload);
            }
            WorkKind::Batch { slab, mut batch } => {
                if !slot.alive {
                    batch.clear();
                } else {
                    let time = ev.time;
                    let last_rx = &mut slot.last_rx;
                    batch.retain(|_| {
                        if let Some(w) = window {
                            if let Some(last) = *last_rx {
                                if time.saturating_since(last) < w {
                                    lost_collision += 1;
                                    return false;
                                }
                            }
                        }
                        *last_rx = Some(time);
                        received += 1;
                        true
                    });
                }
                if !batch.is_empty() {
                    let mut ctx =
                        Context::new_rng_free(node, ev.time, &mut slot.log, &mut commands);
                    slot.app.on_receive_batch(&mut ctx, &mut batch);
                }
                batch_storage = Some((slab, batch));
            }
        }
        for cmd in &commands {
            if let Command::SetTimer { delay, token } = cmd {
                let at = ev.time + *delay;
                if (at, pseudo_seq) < cutoff {
                    created.push(Reverse(WorkEvent {
                        time: at,
                        seq: pseudo_seq,
                        kind: WorkKind::Timer(*token),
                    }));
                }
                pseudo_seq += 1;
            }
        }
        outcomes.push_back(Outcome { time: ev.time, seq: ev.seq, commands, batch: batch_storage });
    }
    WorkResult { node, slot, outcomes, unprocessed: events, received, lost_collision }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;

    /// Counts receptions; broadcasts `n` times on start with 10 ms spacing.
    struct Chatter {
        to_send: u32,
        received: Vec<(SimTime, NodeId, Bytes)>,
    }

    impl Chatter {
        fn new(to_send: u32) -> Self {
            Chatter { to_send, received: Vec::new() }
        }
    }

    impl Application for Chatter {
        fn rng_free(&self, _class: CallbackClass) -> bool {
            true // set_timer / broadcast / log only — no draws anywhere
        }

        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.to_send {
                ctx.set_timer(SimDuration::from_millis(10 * (i as u64 + 1)), TimerToken(i as u64));
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, t: TimerToken) {
            ctx.broadcast(Bytes::from(format!("msg-{}", t.0)));
            ctx.log(LogRecord::TcTx { ansn: t.0 as u16, advertised: vec![] });
        }
        fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
            self.received.push((ctx.now(), from, payload));
        }
    }

    fn two_node_sim(distance: f64, range: f64) -> (Simulator, NodeId, NodeId) {
        let mut sim = SimulatorBuilder::new(1)
            .radio(RadioConfig::unit_disk(range))
            .arena(Arena::new(10_000.0, 10_000.0))
            .build();
        let a = sim.add_node(Box::new(Chatter::new(3)), Position::new(0.0, 0.0));
        let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(distance, 0.0));
        (sim, a, b)
    }

    #[test]
    fn broadcast_reaches_in_range_node() {
        let (mut sim, a, b) = two_node_sim(100.0, 250.0);
        sim.run_for(SimDuration::from_secs(1));
        let rx = &sim.app_as::<Chatter>(b).unwrap().received;
        assert_eq!(rx.len(), 3);
        assert!(rx.iter().all(|(_, from, _)| *from == a));
        // Delivery is delayed by at least base_delay.
        assert!(rx[0].0 >= SimTime::from_millis(11));
    }

    #[test]
    fn broadcast_misses_out_of_range_node() {
        let (mut sim, _a, b) = two_node_sim(300.0, 250.0);
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.app_as::<Chatter>(b).unwrap().received.is_empty());
        assert_eq!(sim.stats().lost_range, 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = SimulatorBuilder::new(seed)
                .radio(RadioConfig::unit_disk(250.0).with_loss(0.3))
                .build();
            let _a = sim.add_node(Box::new(Chatter::new(20)), Position::new(0.0, 0.0));
            let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(10.0, 0.0));
            sim.run_for(SimDuration::from_secs(2));
            sim.app_as::<Chatter>(b)
                .unwrap()
                .received
                .iter()
                .map(|(t, f, p)| (t.as_micros(), f.0, p.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        // And a different seed should (with 20 frames at 30% loss) differ.
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn unicast_only_reaches_target() {
        struct Uni;
        impl Application for Uni {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
                ctx.send(NodeId(1), Bytes::from_static(b"direct"));
            }
        }
        let mut sim = SimulatorBuilder::new(5).radio(RadioConfig::unit_disk(500.0)).build();
        let _a = sim.add_node(Box::new(Uni), Position::new(0.0, 0.0));
        let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(10.0, 0.0));
        let c = sim.add_node(Box::new(Chatter::new(0)), Position::new(20.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.app_as::<Chatter>(b).unwrap().received.len(), 1);
        assert!(sim.app_as::<Chatter>(c).unwrap().received.is_empty());
        assert_eq!(sim.stats().node(NodeId(0)).unicasts_sent, 1);
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive() {
        let (mut sim, a, b) = two_node_sim(50.0, 250.0);
        sim.kill(a);
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.app_as::<Chatter>(b).unwrap().received.is_empty());
        // on_timer of a dead node is suppressed entirely.
        assert_eq!(sim.log(a).len(), 0);
        sim.revive(a);
        assert!(sim.is_alive(a));
    }

    #[test]
    fn collision_window_drops_second_frame() {
        // Two senders firing at the same instant toward one receiver with
        // zero jitter: the second arrival collides.
        struct Once;
        impl Application for Once {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
                ctx.broadcast(Bytes::from_static(b"x"));
            }
        }
        let mut radio = RadioConfig::unit_disk(500.0);
        radio.jitter = SimDuration::ZERO;
        let mut sim = SimulatorBuilder::new(3)
            .radio(radio.with_collisions(SimDuration::from_millis(1)))
            .build();
        let _s1 = sim.add_node(Box::new(Once), Position::new(0.0, 0.0));
        let _s2 = sim.add_node(Box::new(Once), Position::new(100.0, 0.0));
        let r = sim.add_node(Box::new(Chatter::new(0)), Position::new(50.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.app_as::<Chatter>(r).unwrap().received.len(), 1);
        assert_eq!(sim.stats().lost_collision, 1);
    }

    #[test]
    fn neighbors_in_range_ground_truth() {
        let mut sim = SimulatorBuilder::new(1).radio(RadioConfig::unit_disk(100.0)).build();
        let a = sim.add_node(Box::new(Chatter::new(0)), Position::new(0.0, 0.0));
        let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(60.0, 0.0));
        let c = sim.add_node(Box::new(Chatter::new(0)), Position::new(130.0, 0.0));
        assert_eq!(sim.neighbors_in_range(a), vec![b]);
        assert_eq!(sim.neighbors_in_range(b), vec![a, c]);
        sim.kill(c);
        assert_eq!(sim.neighbors_in_range(b), vec![a]);
    }

    #[test]
    fn clock_advances_to_deadline_without_events() {
        let mut sim = SimulatorBuilder::new(1).build();
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn halt_stops_everything() {
        struct Halter;
        impl Application for Halter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
                ctx.halt();
            }
        }
        let mut sim = SimulatorBuilder::new(1).build();
        sim.add_node(Box::new(Halter), Position::new(0.0, 0.0));
        sim.run_until(SimTime::from_secs(100));
        assert!(sim.is_halted());
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn mobile_node_positions_update_over_time() {
        let mut sim = SimulatorBuilder::new(11)
            .arena(Arena::new(200.0, 200.0))
            .mobility_tick(SimDuration::from_millis(100))
            .build();
        let m = sim.add_mobile_node(
            Box::new(Chatter::new(0)),
            Position::new(100.0, 100.0),
            MobilityModel::RandomWalk { speed: 20.0 },
        );
        let p0 = sim.position(m);
        sim.run_for(SimDuration::from_secs(5));
        let p1 = sim.position(m);
        assert!(p0.distance(&p1) > 0.0, "mobile node never moved");
    }

    #[test]
    fn injected_broadcast_delivered() {
        let (mut sim, a, b) = two_node_sim(50.0, 250.0);
        sim.run_for(SimDuration::from_millis(1)); // consume Start events
        sim.inject_broadcast(a, Bytes::from_static(b"ghost"));
        sim.run_for(SimDuration::from_secs(1));
        let rx = &sim.app_as::<Chatter>(b).unwrap().received;
        assert!(rx.iter().any(|(_, _, p)| p.as_ref() == b"ghost"));
    }

    /// Runs `script` against two identically-configured simulators, one
    /// per scan mode, and asserts their logs and stats are byte-identical.
    fn assert_scan_modes_agree(seed: u64, script: impl Fn(&mut Simulator)) {
        let fingerprint = |mode: ScanMode| {
            let mut sim = SimulatorBuilder::new(seed)
                .arena(Arena::new(600.0, 600.0))
                .radio(RadioConfig::unit_disk(150.0).with_loss(0.2))
                .mobility_tick(SimDuration::from_millis(100))
                .scan_mode(mode)
                .build();
            script(&mut sim);
            let mut out = format!("{:?}\n", sim.stats());
            for id in sim.node_ids().collect::<Vec<_>>() {
                for (at, line) in sim.log(id).entries() {
                    out.push_str(&format!("{id} {at:?} {line}\n"));
                }
                out.push_str(&format!(
                    "{id} rx={:?}\n",
                    sim.app_as::<Chatter>(id).map(|c| c.received.len())
                ));
            }
            out
        };
        assert_eq!(fingerprint(ScanMode::Grid), fingerprint(ScanMode::Linear), "seed {seed}");
    }

    #[test]
    fn grid_matches_linear_for_stationary_mesh() {
        for seed in [1, 2, 3] {
            assert_scan_modes_agree(seed, |sim| {
                for i in 0..24 {
                    let x = f64::from(i % 6) * 90.0;
                    let y = f64::from(i / 6) * 90.0;
                    sim.add_node(Box::new(Chatter::new(4)), Position::new(x, y));
                }
                sim.run_for(SimDuration::from_secs(2));
            });
        }
    }

    #[test]
    fn grid_matches_linear_under_mobility_and_churn() {
        for seed in [7, 8] {
            assert_scan_modes_agree(seed, |sim| {
                for i in 0..16u32 {
                    sim.add_mobile_node(
                        Box::new(Chatter::new(6)),
                        Position::new(f64::from(i) * 35.0, f64::from(i % 4) * 120.0),
                        MobilityModel::RandomWaypoint {
                            speed_min: 20.0,
                            speed_max: 60.0,
                            pause: SimDuration::from_millis(200),
                        },
                    );
                }
                sim.run_for(SimDuration::from_millis(400));
                sim.kill(NodeId(3));
                sim.kill(NodeId(3)); // double-kill must be a no-op
                sim.run_for(SimDuration::from_millis(400));
                sim.revive(NodeId(3));
                sim.inject_broadcast(NodeId(3), Bytes::from_static(b"back"));
                sim.run_for(SimDuration::from_secs(2));
            });
        }
    }

    #[test]
    fn grid_tracks_mobile_nodes_across_cells() {
        // A walker that crosses many cell borders must keep appearing in
        // ground-truth neighborhoods computed through the grid.
        let mut sim = SimulatorBuilder::new(5)
            .arena(Arena::new(400.0, 400.0))
            .radio(RadioConfig::unit_disk(600.0)) // everyone always in range
            .mobility_tick(SimDuration::from_millis(50))
            .build();
        let w = sim.add_mobile_node(
            Box::new(Chatter::new(0)),
            Position::new(200.0, 200.0),
            MobilityModel::RandomWalk { speed: 80.0 },
        );
        let obs = sim.add_node(Box::new(Chatter::new(0)), Position::new(10.0, 10.0));
        for _ in 0..40 {
            sim.run_for(SimDuration::from_millis(100));
            assert_eq!(sim.neighbors_in_range(obs), vec![w]);
            assert_eq!(sim.neighbors_in_range(w), vec![obs]);
        }
    }

    #[test]
    fn set_position_reindexes_the_node() {
        let mut sim = SimulatorBuilder::new(1)
            .arena(Arena::new(1_000.0, 1_000.0))
            .radio(RadioConfig::unit_disk(100.0))
            .build();
        let a = sim.add_node(Box::new(Chatter::new(0)), Position::new(0.0, 0.0));
        let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(900.0, 900.0));
        assert!(sim.neighbors_in_range(a).is_empty());
        sim.set_position(b, Position::new(50.0, 0.0));
        assert_eq!(sim.neighbors_in_range(a), vec![b]);
        assert_eq!(sim.neighbors_in_range(b), vec![a]);
    }

    #[test]
    fn killed_nodes_leave_the_index_until_revived() {
        let (mut sim, a, b) = two_node_sim(50.0, 250.0);
        sim.kill(b);
        assert!(sim.neighbors_in_range(a).is_empty());
        sim.revive(b);
        assert_eq!(sim.neighbors_in_range(a), vec![b]);
    }

    #[test]
    fn expected_nodes_hint_changes_nothing_but_capacity() {
        let run = |hint: usize| {
            let mut builder = SimulatorBuilder::new(9)
                .arena(Arena::new(600.0, 600.0))
                .radio(RadioConfig::unit_disk(150.0).with_loss(0.2));
            if hint > 0 {
                builder = builder.expected_nodes(hint);
            }
            let mut sim = builder.build();
            for i in 0..12u32 {
                sim.add_node(
                    Box::new(Chatter::new(3)),
                    Position::new(f64::from(i % 4) * 90.0, f64::from(i / 4) * 90.0),
                );
            }
            sim.run_for(SimDuration::from_secs(2));
            let mut out = format!("{:?}\n", sim.stats());
            for id in sim.node_ids().collect::<Vec<_>>() {
                for (at, line) in sim.log(id).entries() {
                    out.push_str(&format!("{id} {at:?} {line}\n"));
                }
            }
            out
        };
        // Hinted exactly, over-hinted, under-hinted and unhinted runs are
        // byte-identical: the hint is capacity only.
        let baseline = run(0);
        assert_eq!(run(12), baseline);
        assert_eq!(run(500), baseline);
        assert_eq!(run(4), baseline);
    }

    #[test]
    fn expected_nodes_presizes_the_event_queue() {
        // Batched (default): deliveries live on the frame heap, which takes
        // the full per-node hint; the main heap only needs control events,
        // and the batch slab is reserved too.
        let sim = SimulatorBuilder::new(1).expected_nodes(100).build();
        assert!(sim.queue.capacity() >= 100 * CONTROL_EVENTS_PER_NODE_HINT);
        assert!(sim.frame_queue.capacity() >= 100 * EVENTS_PER_NODE_HINT);
        assert!(sim.batches.capacity() >= 100 * BATCHES_PER_NODE_HINT);
        assert!(sim.slots.capacity() >= 100);
        // Per-frame: everything on the main heap, as before batching.
        let sim = SimulatorBuilder::new(1)
            .expected_nodes(100)
            .delivery_mode(DeliveryMode::PerFrame)
            .build();
        assert!(sim.queue.capacity() >= 100 * EVENTS_PER_NODE_HINT);
        assert!(sim.slots.capacity() >= 100);
    }

    #[test]
    fn stats_track_bytes() {
        let (mut sim, a, _b) = two_node_sim(50.0, 250.0);
        sim.run_for(SimDuration::from_secs(1));
        // 3 broadcasts of "msg-N" (5 bytes each).
        assert_eq!(sim.stats().node(a).broadcasts_sent, 3);
        assert_eq!(sim.stats().node(a).bytes_sent, 15);
    }

    /// Runs `script` against identically-configured simulators — serial
    /// and sharded at several worker counts — and asserts logs, stats and
    /// reception traces are byte-identical. The sharded-engine analogue of
    /// [`assert_scan_modes_agree`].
    fn assert_execution_modes_agree(seed: u64, script: impl Fn(&mut Simulator)) {
        let fingerprint = |mode: ExecutionMode| {
            let mut sim = SimulatorBuilder::new(seed)
                .arena(Arena::new(600.0, 600.0))
                .radio(RadioConfig::unit_disk(150.0).with_loss(0.2))
                .mobility_tick(SimDuration::from_millis(100))
                .execution_mode(mode)
                .build();
            script(&mut sim);
            let mut out = format!("{:?}\n", sim.stats());
            for id in sim.node_ids().collect::<Vec<_>>() {
                for (at, line) in sim.log(id).entries() {
                    out.push_str(&format!("{id} {at:?} {line}\n"));
                }
                out.push_str(&format!(
                    "{id} rx={:?}\n",
                    sim.app_as::<Chatter>(id).map(|c| &c.received)
                ));
            }
            out
        };
        let serial = fingerprint(ExecutionMode::Serial);
        for workers in [1, 2, 4] {
            assert_eq!(
                serial,
                fingerprint(ExecutionMode::Sharded { workers }),
                "seed {seed} workers {workers}"
            );
        }
    }

    #[test]
    fn execution_mode_defaults_to_serial() {
        let sim = SimulatorBuilder::new(1).build();
        assert_eq!(sim.execution_mode(), ExecutionMode::Serial);
        let sim =
            SimulatorBuilder::new(1).execution_mode(ExecutionMode::Sharded { workers: 4 }).build();
        assert_eq!(sim.execution_mode(), ExecutionMode::Sharded { workers: 4 });
    }

    #[test]
    fn sharded_matches_serial_for_stationary_mesh() {
        for seed in [1, 2, 3] {
            assert_execution_modes_agree(seed, |sim| {
                for i in 0..24 {
                    let x = f64::from(i % 6) * 90.0;
                    let y = f64::from(i / 6) * 90.0;
                    sim.add_node(Box::new(Chatter::new(4)), Position::new(x, y));
                }
                sim.run_for(SimDuration::from_secs(2));
            });
        }
    }

    #[test]
    fn sharded_matches_serial_under_mobility_and_churn() {
        for seed in [7, 8] {
            assert_execution_modes_agree(seed, |sim| {
                for i in 0..16u32 {
                    sim.add_mobile_node(
                        Box::new(Chatter::new(6)),
                        Position::new(f64::from(i) * 35.0, f64::from(i % 4) * 120.0),
                        MobilityModel::RandomWaypoint {
                            speed_min: 20.0,
                            speed_max: 60.0,
                            pause: SimDuration::from_millis(200),
                        },
                    );
                }
                sim.run_for(SimDuration::from_millis(400));
                sim.kill(NodeId(3));
                sim.run_for(SimDuration::from_millis(400));
                sim.revive(NodeId(3));
                sim.inject_broadcast(NodeId(3), Bytes::from_static(b"back"));
                sim.run_for(SimDuration::from_secs(2));
            });
        }
    }

    /// Re-arms a timer shorter than the lookahead window, so epochs keep
    /// growing timers that were created *inside* them — the worker's
    /// stand-in queue and the Phase B merge both get exercised.
    struct Burster {
        fired: u64,
    }

    impl Application for Burster {
        fn rng_free(&self, _class: CallbackClass) -> bool {
            true
        }
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_micros(300), TimerToken(0));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
            self.fired += 1;
            ctx.log(LogRecord::TcTx { ansn: self.fired as u16, advertised: vec![] });
            if self.fired.is_multiple_of(3) {
                ctx.broadcast(Bytes::from_static(b"burst"));
            }
            if self.fired < 40 {
                ctx.set_timer(SimDuration::from_micros(300), TimerToken(0));
            }
        }
    }

    #[test]
    fn sharded_matches_serial_with_in_epoch_timers() {
        for seed in [11, 12] {
            assert_execution_modes_agree(seed, |sim| {
                for i in 0..12 {
                    let x = f64::from(i % 4) * 100.0;
                    let y = f64::from(i / 4) * 100.0;
                    sim.add_node(Box::new(Burster { fired: 0 }), Position::new(x, y));
                }
                sim.run_for(SimDuration::from_millis(50));
            });
        }
    }

    #[test]
    fn sharded_parks_rng_drawing_callbacks() {
        use rand::RngExt;

        /// Draws from the global stream on every reception; `rng_free`
        /// stays the default `false`, so the sharded walk must park the
        /// node and dispatch its deliveries live, in serial draw order.
        struct Roller {
            rolls: Vec<u64>,
        }

        impl Application for Roller {
            fn on_receive(&mut self, ctx: &mut Context<'_>, _from: NodeId, _payload: Bytes) {
                let v = ctx.rng().random_range(0..1_000_000u64);
                self.rolls.push(v);
                ctx.log(LogRecord::TcTx { ansn: (v % 1000) as u16, advertised: vec![] });
            }
        }

        let fingerprint = |mode: ExecutionMode| {
            let mut sim = SimulatorBuilder::new(21)
                .arena(Arena::new(600.0, 600.0))
                .radio(RadioConfig::unit_disk(200.0).with_loss(0.1))
                .execution_mode(mode)
                .build();
            for i in 0..12 {
                let x = f64::from(i % 4) * 90.0;
                let y = f64::from(i / 4) * 90.0;
                sim.add_node(Box::new(Chatter::new(5)), Position::new(x, y));
            }
            for i in 0..4 {
                sim.add_node(
                    Box::new(Roller { rolls: Vec::new() }),
                    Position::new(f64::from(i) * 90.0, 270.0),
                );
            }
            sim.run_for(SimDuration::from_secs(1));
            let mut out = format!("{:?}\n", sim.stats());
            for id in sim.node_ids().collect::<Vec<_>>() {
                if let Some(r) = sim.app_as::<Roller>(id) {
                    out.push_str(&format!("{id} rolls={:?}\n", r.rolls));
                }
                for (at, line) in sim.log(id).entries() {
                    out.push_str(&format!("{id} {at:?} {line}\n"));
                }
            }
            out
        };
        let serial = fingerprint(ExecutionMode::Serial);
        for workers in [1, 2, 4] {
            assert_eq!(
                serial,
                fingerprint(ExecutionMode::Sharded { workers }),
                "workers {workers}"
            );
        }
    }

    #[test]
    fn sharded_with_zero_base_delay_falls_back_to_serial() {
        let mut radio = RadioConfig::unit_disk(250.0);
        radio.base_delay = SimDuration::ZERO;
        radio.jitter = SimDuration::ZERO;
        let run = |mode: ExecutionMode| {
            let mut sim = SimulatorBuilder::new(2)
                .radio(radio.clone())
                .arena(Arena::new(10_000.0, 1_000.0))
                .execution_mode(mode)
                .build();
            let _a = sim.add_node(Box::new(Chatter::new(3)), Position::new(0.0, 0.0));
            let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(100.0, 0.0));
            sim.run_for(SimDuration::from_secs(1));
            sim.app_as::<Chatter>(b)
                .unwrap()
                .received
                .iter()
                .map(|(t, f, p)| (t.as_micros(), f.0, p.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(ExecutionMode::Serial), run(ExecutionMode::Sharded { workers: 4 }));
    }
}
