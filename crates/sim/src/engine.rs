//! The discrete-event engine.
//!
//! Events are processed in strict `(time, sequence)` order; the sequence
//! number breaks ties deterministically in scheduling order. All randomness
//! is drawn from a single seeded RNG, so a run is a pure function of
//! `(seed, configuration, applications)`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::mobility::{Arena, MobilityModel, MobilityState, Position};
use crate::node::{Application, Command, Context, LogBuffer, NodeId, TimerToken};
use crate::radio::{DeliveryOutcome, RadioConfig};
use crate::stats::TrafficStats;
use crate::time::{SimDuration, SimTime};

/// What a scheduled event does when it fires.
#[derive(Debug)]
enum EventKind {
    /// Deliver `payload` (sent by `from`) to node `to`.
    Deliver { to: NodeId, from: NodeId, payload: Bytes },
    /// Fire an application timer on `node`.
    Timer { node: NodeId, token: TimerToken },
    /// Invoke `on_start` for a node.
    Start { node: NodeId },
    /// Advance all mobile nodes and reschedule.
    MobilityTick,
}

struct ScheduledEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}
impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct NodeSlot {
    app: Box<dyn Application>,
    position: Position,
    mobility: MobilityState,
    log: LogBuffer,
    alive: bool,
    /// Arrival time of the last accepted frame, for the collision window.
    last_rx: Option<SimTime>,
}

/// Builder for a [`Simulator`].
///
/// ```
/// use trustlink_sim::prelude::*;
/// let sim = SimulatorBuilder::new(7)
///     .arena(Arena::new(500.0, 500.0))
///     .radio(RadioConfig::unit_disk(150.0))
///     .mobility_tick(SimDuration::from_millis(250))
///     .build();
/// assert_eq!(sim.now(), SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct SimulatorBuilder {
    seed: u64,
    arena: Arena,
    radio: RadioConfig,
    mobility_tick: SimDuration,
}

impl SimulatorBuilder {
    /// Starts a builder with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        SimulatorBuilder {
            seed,
            arena: Arena::default(),
            radio: RadioConfig::default(),
            mobility_tick: SimDuration::from_millis(500),
        }
    }

    /// Sets the arena dimensions.
    pub fn arena(mut self, arena: Arena) -> Self {
        self.arena = arena;
        self
    }

    /// Sets the radio configuration.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the granularity at which mobile nodes are advanced.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn mobility_tick(mut self, tick: SimDuration) -> Self {
        assert!(!tick.is_zero(), "mobility tick must be positive");
        self.mobility_tick = tick;
        self
    }

    /// Finalizes the configuration into an empty simulator.
    pub fn build(self) -> Simulator {
        Simulator {
            time: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            slots: Vec::new(),
            radio: self.radio,
            arena: self.arena,
            rng: StdRng::seed_from_u64(self.seed),
            stats: TrafficStats::default(),
            mobility_tick: self.mobility_tick,
            mobility_scheduled: false,
            halted: false,
        }
    }
}

/// The deterministic discrete-event simulator.
///
/// See the [crate-level documentation](crate) for a full example.
pub struct Simulator {
    time: SimTime,
    queue: BinaryHeap<Reverse<ScheduledEvent>>,
    seq: u64,
    slots: Vec<NodeSlot>,
    radio: RadioConfig,
    arena: Arena,
    rng: StdRng,
    stats: TrafficStats,
    mobility_tick: SimDuration,
    mobility_scheduled: bool,
    halted: bool,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("time", &self.time)
            .field("nodes", &self.slots.len())
            .field("pending_events", &self.queue.len())
            .field("halted", &self.halted)
            .finish()
    }
}

impl Simulator {
    /// Adds a stationary node at `position`; returns its identity.
    pub fn add_node(&mut self, app: Box<dyn Application>, position: Position) -> NodeId {
        self.add_mobile_node(app, position, MobilityModel::Stationary)
    }

    /// Adds a node with an explicit mobility model.
    pub fn add_mobile_node(
        &mut self,
        app: Box<dyn Application>,
        position: Position,
        mobility: MobilityModel,
    ) -> NodeId {
        let id = NodeId(u16::try_from(self.slots.len()).expect("too many nodes"));
        self.stats.ensure_node(id);
        self.slots.push(NodeSlot {
            app,
            position: self.arena.clamp(position),
            mobility: MobilityState::new(mobility),
            log: LogBuffer::default(),
            alive: true,
            last_rx: None,
        });
        self.schedule(SimDuration::ZERO, EventKind::Start { node: id });
        id
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Identities of all nodes, in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.slots.len()).map(|i| NodeId(i as u16))
    }

    /// The audit log of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn log(&self, id: NodeId) -> &LogBuffer {
        &self.slots[id.index()].log
    }

    /// Current position of `id`.
    pub fn position(&self, id: NodeId) -> Position {
        self.slots[id.index()].position
    }

    /// Teleports `id` to `position` (clamped to the arena). Useful for
    /// scripted topology changes in tests and scenarios.
    pub fn set_position(&mut self, id: NodeId, position: Position) {
        self.slots[id.index()].position = self.arena.clamp(position);
    }

    /// Immutable access to the application installed on `id`.
    pub fn app(&self, id: NodeId) -> &dyn Application {
        self.slots[id.index()].app.as_ref()
    }

    /// Mutable access to the application installed on `id`.
    pub fn app_mut(&mut self, id: NodeId) -> &mut dyn Application {
        self.slots[id.index()].app.as_mut()
    }

    /// Downcasts the application on `id` to its concrete type.
    pub fn app_as<T: Application>(&self, id: NodeId) -> Option<&T> {
        let any: &dyn std::any::Any = self.slots[id.index()].app.as_ref();
        any.downcast_ref::<T>()
    }

    /// Mutable downcast of the application on `id`.
    pub fn app_as_mut<T: Application>(&mut self, id: NodeId) -> Option<&mut T> {
        let any: &mut dyn std::any::Any = self.slots[id.index()].app.as_mut();
        any.downcast_mut::<T>()
    }

    /// Aggregated traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The radio configuration in force.
    pub fn radio(&self) -> &RadioConfig {
        &self.radio
    }

    /// Ground-truth neighbors of `id`: alive nodes within the propagation
    /// model's maximum range. (What an omniscient observer would call the
    /// 1-hop neighborhood; protocols must *discover* this.)
    pub fn neighbors_in_range(&self, id: NodeId) -> Vec<NodeId> {
        let me = &self.slots[id.index()];
        let range = self.radio.propagation.max_range();
        self.slots
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                *i != id.index() && s.alive && me.position.distance(&s.position) <= range
            })
            .map(|(i, _)| NodeId(i as u16))
            .collect()
    }

    /// Marks `id` dead: it stops transmitting and receiving (crash / power
    /// off). Timers still fire but commands from dead nodes are discarded.
    pub fn kill(&mut self, id: NodeId) {
        self.slots[id.index()].alive = false;
    }

    /// Brings a dead node back.
    pub fn revive(&mut self, id: NodeId) {
        self.slots[id.index()].alive = true;
    }

    /// `true` if `id` is alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.slots[id.index()].alive
    }

    /// Injects a broadcast frame as if transmitted by `from` right now.
    /// Intended for tests and scripted scenarios.
    pub fn inject_broadcast(&mut self, from: NodeId, payload: Bytes) {
        self.fan_out_broadcast(from, payload);
    }

    fn schedule(&mut self, delay: SimDuration, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(ScheduledEvent { time: self.time + delay, seq, kind }));
    }

    /// Runs until the queue is exhausted, `deadline` is reached, or a node
    /// halts the simulation. The clock always ends at `deadline` unless
    /// halted earlier.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_mobility_tick();
        while !self.halted {
            match self.queue.peek() {
                Some(Reverse(ev)) if ev.time <= deadline => {}
                _ => break,
            }
            let Reverse(ev) = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.time >= self.time, "time went backwards");
            self.time = ev.time;
            self.dispatch(ev.kind);
        }
        if !self.halted && self.time < deadline {
            self.time = deadline;
        }
    }

    /// Runs for `span` of simulated time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.time + span;
        self.run_until(deadline);
    }

    /// `true` once a node has called [`Context::halt`].
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    fn ensure_mobility_tick(&mut self) {
        if self.mobility_scheduled {
            return;
        }
        let any_mobile =
            self.slots.iter().any(|s| !matches!(s.mobility.model, MobilityModel::Stationary));
        if any_mobile {
            self.mobility_scheduled = true;
            self.schedule(self.mobility_tick, EventKind::MobilityTick);
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start { node } => self.run_callback(node, |app, ctx| app.on_start(ctx)),
            EventKind::Timer { node, token } => {
                self.run_callback(node, |app, ctx| app.on_timer(ctx, token))
            }
            EventKind::Deliver { to, from, payload } => {
                let slot = &mut self.slots[to.index()];
                if !slot.alive {
                    return;
                }
                if let Some(window) = self.radio.collision_window {
                    if let Some(last) = slot.last_rx {
                        if self.time.saturating_since(last) < window {
                            self.stats.lost_collision += 1;
                            return;
                        }
                    }
                }
                slot.last_rx = Some(self.time);
                self.stats.node_mut(to).received += 1;
                self.run_callback(to, move |app, ctx| app.on_receive(ctx, from, payload));
            }
            EventKind::MobilityTick => {
                for slot in &mut self.slots {
                    slot.position = slot.mobility.step(
                        slot.position,
                        self.mobility_tick,
                        &self.arena,
                        &mut self.rng,
                    );
                }
                self.schedule(self.mobility_tick, EventKind::MobilityTick);
            }
        }
    }

    fn run_callback(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut Box<dyn Application>, &mut Context<'_>),
    ) {
        let mut commands = Vec::new();
        {
            let slot = &mut self.slots[node.index()];
            if !slot.alive {
                return;
            }
            let mut ctx =
                Context::new(node, self.time, &mut self.rng, &mut slot.log, &mut commands);
            f(&mut slot.app, &mut ctx);
        }
        self.execute(node, commands);
    }

    fn execute(&mut self, node: NodeId, commands: Vec<Command>) {
        for cmd in commands {
            if !self.slots[node.index()].alive {
                // A node killed mid-callback transmits nothing further.
                break;
            }
            match cmd {
                Command::Broadcast { payload } => self.fan_out_broadcast(node, payload),
                Command::Unicast { to, payload } => self.fan_out_unicast(node, to, payload),
                Command::SetTimer { delay, token } => {
                    self.schedule(delay, EventKind::Timer { node, token })
                }
                Command::Halt => self.halted = true,
            }
        }
    }

    fn fan_out_broadcast(&mut self, from: NodeId, payload: Bytes) {
        let tx_pos = self.slots[from.index()].position;
        {
            let s = self.stats.node_mut(from);
            s.broadcasts_sent += 1;
            s.bytes_sent += payload.len() as u64;
        }
        for i in 0..self.slots.len() {
            if i == from.index() || !self.slots[i].alive {
                continue;
            }
            let rx_pos = self.slots[i].position;
            match self.radio.judge(tx_pos, rx_pos, &mut self.rng) {
                DeliveryOutcome::Deliver(delay) => self.schedule(
                    delay,
                    EventKind::Deliver { to: NodeId(i as u16), from, payload: payload.clone() },
                ),
                DeliveryOutcome::OutOfRange => self.stats.lost_range += 1,
                DeliveryOutcome::Lost => self.stats.lost_random += 1,
            }
        }
    }

    fn fan_out_unicast(&mut self, from: NodeId, to: NodeId, payload: Bytes) {
        if to.index() >= self.slots.len() || to == from {
            return; // addressed to nobody; silently dropped like a real NIC would
        }
        let tx_pos = self.slots[from.index()].position;
        {
            let s = self.stats.node_mut(from);
            s.unicasts_sent += 1;
            s.bytes_sent += payload.len() as u64;
        }
        if !self.slots[to.index()].alive {
            self.stats.lost_range += 1;
            return;
        }
        let rx_pos = self.slots[to.index()].position;
        match self.radio.judge(tx_pos, rx_pos, &mut self.rng) {
            DeliveryOutcome::Deliver(delay) => {
                self.schedule(delay, EventKind::Deliver { to, from, payload })
            }
            DeliveryOutcome::OutOfRange => self.stats.lost_range += 1,
            DeliveryOutcome::Lost => self.stats.lost_random += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts receptions; broadcasts `n` times on start with 10 ms spacing.
    struct Chatter {
        to_send: u32,
        received: Vec<(SimTime, NodeId, Bytes)>,
    }

    impl Chatter {
        fn new(to_send: u32) -> Self {
            Chatter { to_send, received: Vec::new() }
        }
    }

    impl Application for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.to_send {
                ctx.set_timer(SimDuration::from_millis(10 * (i as u64 + 1)), TimerToken(i as u64));
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, t: TimerToken) {
            ctx.broadcast(Bytes::from(format!("msg-{}", t.0)));
            ctx.log(format!("sent {}", t.0));
        }
        fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, payload: Bytes) {
            self.received.push((ctx.now(), from, payload));
        }
    }

    fn two_node_sim(distance: f64, range: f64) -> (Simulator, NodeId, NodeId) {
        let mut sim = SimulatorBuilder::new(1)
            .radio(RadioConfig::unit_disk(range))
            .arena(Arena::new(10_000.0, 10_000.0))
            .build();
        let a = sim.add_node(Box::new(Chatter::new(3)), Position::new(0.0, 0.0));
        let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(distance, 0.0));
        (sim, a, b)
    }

    #[test]
    fn broadcast_reaches_in_range_node() {
        let (mut sim, a, b) = two_node_sim(100.0, 250.0);
        sim.run_for(SimDuration::from_secs(1));
        let rx = &sim.app_as::<Chatter>(b).unwrap().received;
        assert_eq!(rx.len(), 3);
        assert!(rx.iter().all(|(_, from, _)| *from == a));
        // Delivery is delayed by at least base_delay.
        assert!(rx[0].0 >= SimTime::from_millis(11));
    }

    #[test]
    fn broadcast_misses_out_of_range_node() {
        let (mut sim, _a, b) = two_node_sim(300.0, 250.0);
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.app_as::<Chatter>(b).unwrap().received.is_empty());
        assert_eq!(sim.stats().lost_range, 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = SimulatorBuilder::new(seed)
                .radio(RadioConfig::unit_disk(250.0).with_loss(0.3))
                .build();
            let _a = sim.add_node(Box::new(Chatter::new(20)), Position::new(0.0, 0.0));
            let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(10.0, 0.0));
            sim.run_for(SimDuration::from_secs(2));
            sim.app_as::<Chatter>(b)
                .unwrap()
                .received
                .iter()
                .map(|(t, f, p)| (t.as_micros(), f.0, p.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        // And a different seed should (with 20 frames at 30% loss) differ.
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn unicast_only_reaches_target() {
        struct Uni;
        impl Application for Uni {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
                ctx.send(NodeId(1), Bytes::from_static(b"direct"));
            }
        }
        let mut sim = SimulatorBuilder::new(5).radio(RadioConfig::unit_disk(500.0)).build();
        let _a = sim.add_node(Box::new(Uni), Position::new(0.0, 0.0));
        let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(10.0, 0.0));
        let c = sim.add_node(Box::new(Chatter::new(0)), Position::new(20.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.app_as::<Chatter>(b).unwrap().received.len(), 1);
        assert!(sim.app_as::<Chatter>(c).unwrap().received.is_empty());
        assert_eq!(sim.stats().node(NodeId(0)).unicasts_sent, 1);
    }

    #[test]
    fn dead_nodes_neither_send_nor_receive() {
        let (mut sim, a, b) = two_node_sim(50.0, 250.0);
        sim.kill(a);
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.app_as::<Chatter>(b).unwrap().received.is_empty());
        // on_timer of a dead node is suppressed entirely.
        assert_eq!(sim.log(a).len(), 0);
        sim.revive(a);
        assert!(sim.is_alive(a));
    }

    #[test]
    fn collision_window_drops_second_frame() {
        // Two senders firing at the same instant toward one receiver with
        // zero jitter: the second arrival collides.
        struct Once;
        impl Application for Once {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(5), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
                ctx.broadcast(Bytes::from_static(b"x"));
            }
        }
        let mut radio = RadioConfig::unit_disk(500.0);
        radio.jitter = SimDuration::ZERO;
        let mut sim = SimulatorBuilder::new(3)
            .radio(radio.with_collisions(SimDuration::from_millis(1)))
            .build();
        let _s1 = sim.add_node(Box::new(Once), Position::new(0.0, 0.0));
        let _s2 = sim.add_node(Box::new(Once), Position::new(100.0, 0.0));
        let r = sim.add_node(Box::new(Chatter::new(0)), Position::new(50.0, 0.0));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.app_as::<Chatter>(r).unwrap().received.len(), 1);
        assert_eq!(sim.stats().lost_collision, 1);
    }

    #[test]
    fn neighbors_in_range_ground_truth() {
        let mut sim = SimulatorBuilder::new(1).radio(RadioConfig::unit_disk(100.0)).build();
        let a = sim.add_node(Box::new(Chatter::new(0)), Position::new(0.0, 0.0));
        let b = sim.add_node(Box::new(Chatter::new(0)), Position::new(60.0, 0.0));
        let c = sim.add_node(Box::new(Chatter::new(0)), Position::new(130.0, 0.0));
        assert_eq!(sim.neighbors_in_range(a), vec![b]);
        assert_eq!(sim.neighbors_in_range(b), vec![a, c]);
        sim.kill(c);
        assert_eq!(sim.neighbors_in_range(b), vec![a]);
    }

    #[test]
    fn clock_advances_to_deadline_without_events() {
        let mut sim = SimulatorBuilder::new(1).build();
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn halt_stops_everything() {
        struct Halter;
        impl Application for Halter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
                ctx.halt();
            }
        }
        let mut sim = SimulatorBuilder::new(1).build();
        sim.add_node(Box::new(Halter), Position::new(0.0, 0.0));
        sim.run_until(SimTime::from_secs(100));
        assert!(sim.is_halted());
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn mobile_node_positions_update_over_time() {
        let mut sim = SimulatorBuilder::new(11)
            .arena(Arena::new(200.0, 200.0))
            .mobility_tick(SimDuration::from_millis(100))
            .build();
        let m = sim.add_mobile_node(
            Box::new(Chatter::new(0)),
            Position::new(100.0, 100.0),
            MobilityModel::RandomWalk { speed: 20.0 },
        );
        let p0 = sim.position(m);
        sim.run_for(SimDuration::from_secs(5));
        let p1 = sim.position(m);
        assert!(p0.distance(&p1) > 0.0, "mobile node never moved");
    }

    #[test]
    fn injected_broadcast_delivered() {
        let (mut sim, a, b) = two_node_sim(50.0, 250.0);
        sim.run_for(SimDuration::from_millis(1)); // consume Start events
        sim.inject_broadcast(a, Bytes::from_static(b"ghost"));
        sim.run_for(SimDuration::from_secs(1));
        let rx = &sim.app_as::<Chatter>(b).unwrap().received;
        assert!(rx.iter().any(|(_, _, p)| p.as_ref() == b"ghost"));
    }

    #[test]
    fn stats_track_bytes() {
        let (mut sim, a, _b) = two_node_sim(50.0, 250.0);
        sim.run_for(SimDuration::from_secs(1));
        // 3 broadcasts of "msg-N" (5 bytes each).
        assert_eq!(sim.stats().node(a).broadcasts_sent, 3);
        assert_eq!(sim.stats().node(a).bytes_sent, 15);
    }
}
