//! Position generators for standard test topologies.
//!
//! These return only positions; feed them to [`crate::Simulator::add_node`].
//! The connectivity helpers use the unit-disk assumption (nodes closer than
//! `range` are neighbors), matching [`crate::radio::Propagation::UnitDisk`].

use rand::rngs::StdRng;

use crate::mobility::{Arena, Position};

/// Positions on a line, `spacing` metres apart, starting at the origin.
pub fn line(n: usize, spacing: f64) -> Vec<Position> {
    (0..n).map(|i| Position::new(i as f64 * spacing, 0.0)).collect()
}

/// Positions on a `cols`-wide grid, `spacing` metres apart.
pub fn grid(n: usize, cols: usize, spacing: f64) -> Vec<Position> {
    assert!(cols > 0, "grid needs at least one column");
    (0..n)
        .map(|i| Position::new((i % cols) as f64 * spacing, (i / cols) as f64 * spacing))
        .collect()
}

/// Positions evenly spaced on a circle of the given radius centred at
/// `(radius, radius)`.
pub fn ring(n: usize, radius: f64) -> Vec<Position> {
    (0..n)
        .map(|i| {
            let theta = std::f64::consts::TAU * i as f64 / n as f64;
            Position::new(radius + radius * theta.cos(), radius + radius * theta.sin())
        })
        .collect()
}

/// Uniformly random positions in `arena` — the classic random geometric
/// graph placement, with no connectivity guarantee.
///
/// This is the generator for *large* topologies (10³–10⁴ nodes), where
/// the O(n²) connectivity check of [`random_connected`] is unaffordable
/// and statistically unnecessary: pair it with [`arena_for_mean_degree`]
/// to size the arena so the network is dense enough to be connected with
/// overwhelming probability.
pub fn random_geometric(n: usize, arena: &Arena, rng: &mut StdRng) -> Vec<Position> {
    (0..n).map(|_| arena.random_position(rng)).collect()
}

/// A square arena sized so `n` nodes at radio range `range` have the
/// given mean 1-hop degree: area = `n · π · range² / mean_degree`.
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn arena_for_mean_degree(n: usize, range: f64, mean_degree: f64) -> Arena {
    assert!(n > 0 && range > 0.0 && mean_degree > 0.0, "all arguments must be positive");
    let area = n as f64 * std::f64::consts::PI * range * range / mean_degree;
    let side = area.sqrt();
    Arena::new(side, side)
}

/// Uniformly random positions in `arena` re-sampled until the unit-disk
/// graph at `range` is connected.
///
/// # Panics
///
/// Panics if no connected placement is found within `max_tries` attempts —
/// raise the range or shrink the arena if that happens.
pub fn random_connected(
    n: usize,
    arena: &Arena,
    range: f64,
    rng: &mut StdRng,
    max_tries: usize,
) -> Vec<Position> {
    for _ in 0..max_tries {
        let positions: Vec<Position> = (0..n).map(|_| arena.random_position(rng)).collect();
        if is_connected(&positions, range) {
            return positions;
        }
    }
    panic!("no connected placement of {n} nodes at range {range} found in {max_tries} tries");
}

/// `true` when the unit-disk graph over `positions` at `range` is connected.
pub fn is_connected(positions: &[Position], range: f64) -> bool {
    if positions.is_empty() {
        return true;
    }
    let n = positions.len();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(i) = stack.pop() {
        for j in 0..n {
            if !seen[j] && positions[i].distance(&positions[j]) <= range {
                seen[j] = true;
                count += 1;
                stack.push(j);
            }
        }
    }
    count == n
}

/// Adjacency list of the unit-disk graph over `positions` at `range`.
pub fn adjacency(positions: &[Position], range: f64) -> Vec<Vec<usize>> {
    let n = positions.len();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if positions[i].distance(&positions[j]) <= range {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn line_spacing() {
        let p = line(4, 10.0);
        assert_eq!(p.len(), 4);
        assert_eq!(p[3], Position::new(30.0, 0.0));
        // Consecutive nodes adjacent at range 10, skip-one not.
        assert!(is_connected(&p, 10.0));
        assert!(!is_connected(&p, 9.0));
    }

    #[test]
    fn grid_shape() {
        let p = grid(6, 3, 5.0);
        assert_eq!(p[0], Position::new(0.0, 0.0));
        assert_eq!(p[2], Position::new(10.0, 0.0));
        assert_eq!(p[3], Position::new(0.0, 5.0));
        assert_eq!(p[5], Position::new(10.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "column")]
    fn grid_zero_cols_rejected() {
        let _ = grid(4, 0, 5.0);
    }

    #[test]
    fn ring_is_equidistant_from_centre() {
        let p = ring(8, 100.0);
        for q in &p {
            let d = q.distance(&Position::new(100.0, 100.0));
            assert!((d - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn random_geometric_fills_the_arena() {
        let mut rng = StdRng::seed_from_u64(9);
        let arena = Arena::new(1_000.0, 500.0);
        let p = random_geometric(2_000, &arena, &mut rng);
        assert_eq!(p.len(), 2_000);
        assert!(p.iter().all(|q| arena.contains(*q)));
        // Uniform placement should hit all four quadrants.
        let quadrant = |q: &Position| (q.x > 500.0) as usize * 2 + (q.y > 250.0) as usize;
        let mut seen = [false; 4];
        for q in &p {
            seen[quadrant(q)] = true;
        }
        assert!(seen.iter().all(|s| *s), "quadrants covered: {seen:?}");
    }

    #[test]
    fn arena_for_mean_degree_hits_the_target_density() {
        let n = 1_000;
        let range = 150.0;
        let arena = arena_for_mean_degree(n, range, 12.0);
        // Empirical mean degree over a random placement should be close
        // to the target (border effects push it slightly low).
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_geometric(n, &arena, &mut rng);
        let adj = adjacency(&p, range);
        let mean = adj.iter().map(Vec::len).sum::<usize>() as f64 / n as f64;
        assert!((8.0..=13.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn arena_for_mean_degree_rejects_zero_range() {
        let _ = arena_for_mean_degree(10, 0.0, 8.0);
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(4);
        let arena = Arena::new(300.0, 300.0);
        let p = random_connected(16, &arena, 120.0, &mut rng, 1000);
        assert_eq!(p.len(), 16);
        assert!(is_connected(&p, 120.0));
        assert!(p.iter().all(|q| arena.contains(*q)));
    }

    #[test]
    #[should_panic(expected = "no connected placement")]
    fn random_connected_gives_up() {
        let mut rng = StdRng::seed_from_u64(4);
        // 16 nodes at laughably short range in a huge arena: impossible.
        let arena = Arena::new(100_000.0, 100_000.0);
        let _ = random_connected(16, &arena, 1.0, &mut rng, 5);
    }

    #[test]
    fn adjacency_symmetric() {
        let p = line(5, 10.0);
        let adj = adjacency(&p, 10.0);
        for (i, nbrs) in adj.iter().enumerate() {
            for &j in nbrs {
                assert!(adj[j].contains(&i), "asymmetric edge {i}-{j}");
            }
        }
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[2], vec![1, 3]);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&[], 10.0));
        assert!(is_connected(&[Position::new(0.0, 0.0)], 10.0));
    }
}
