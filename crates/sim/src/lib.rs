//! # trustlink-sim
//!
//! A deterministic discrete-event simulator for mobile ad hoc networks
//! (MANETs). This crate is the substrate on which the `trustlink` OLSR
//! implementation, the attacks and the trust-enabled intrusion detector run.
//!
//! The design goals, in order:
//!
//! 1. **Determinism** — a simulation is a pure function of its seed and
//!    configuration. Events are totally ordered by `(time, sequence)`; all
//!    randomness flows from one seeded [`rand::rngs::StdRng`].
//! 2. **Radio realism where it matters** — a broadcast wireless medium with
//!    configurable propagation ([`radio::Propagation`]), Bernoulli frame
//!    loss, propagation delay with jitter and an optional receiver-side
//!    collision window. The paper's evaluation depends on *who hears whom*
//!    and *which answers get lost*, which this models faithfully.
//! 3. **Log-based observability** — every node owns an append-only
//!    [`node::LogBuffer`] of typed [`record::LogRecord`] values. Protocols
//!    log records, not strings; the intrusion detector of the paper consumes
//!    *only* this audit log, never the protocol internals, and rendering to
//!    text happens at the edges ([`node::LogBuffer::render_lines`]). A whole
//!    run can be captured into a [`record::FlightRecorder`] and replayed
//!    from its rlog serialization.
//!
//! ## Quick example
//!
//! ```
//! use trustlink_sim::prelude::*;
//! use bytes::Bytes;
//!
//! /// An application that says hello once and echoes everything it hears.
//! struct Echo;
//! impl Application for Echo {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.set_timer(SimDuration::from_millis(10), TimerToken(1));
//!     }
//!     fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
//!         ctx.broadcast(Bytes::from_static(b"hello"));
//!     }
//!     fn on_receive(&mut self, ctx: &mut Context<'_>, from: NodeId, _p: Bytes) {
//!         ctx.log(LogRecord::DataRx { src: from });
//!     }
//! }
//!
//! let mut sim = SimulatorBuilder::new(42)
//!     .radio(RadioConfig::unit_disk(120.0))
//!     .build();
//! let a = sim.add_node(Box::new(Echo), Position::new(0.0, 0.0));
//! let b = sim.add_node(Box::new(Echo), Position::new(50.0, 0.0));
//! sim.run_for(SimDuration::from_secs(1));
//! assert!(sim.log(b).lines().any(|l| l.starts_with("DATA_RX")));
//! # let _ = a;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod grid;
pub mod mobility;
pub mod node;
pub mod radio;
pub mod record;
pub mod stats;
pub mod time;
pub mod topologies;

/// Convenient glob-import of the types needed to write and run applications.
pub mod prelude {
    pub use crate::engine::{DeliveryMode, ExecutionMode, ScanMode, Simulator, SimulatorBuilder};
    pub use crate::mobility::{Arena, MobilityModel, Position};
    pub use crate::node::{
        Application, CallbackClass, Context, FrameBatch, LogBuffer, NodeId, TimerToken,
    };
    pub use crate::radio::{
        ChannelModel, ChannelState, FadingConfig, LinkOverride, Propagation, RadioConfig,
    };
    pub use crate::record::{
        FlightRecord, FlightRecorder, LogRecord, MessageKind, SuppressReason, VerdictKind,
        Willingness,
    };
    pub use crate::stats::{FloodStats, TrafficStats};
    pub use crate::time::{SimDuration, SimTime};
}

pub use engine::{DeliveryMode, ExecutionMode, ScanMode, Simulator, SimulatorBuilder};
pub use grid::SpatialGrid;
pub use mobility::{Arena, MobilityModel, Position};
pub use node::{Application, CallbackClass, Context, FrameBatch, LogBuffer, NodeId, TimerToken};
pub use radio::{ChannelModel, ChannelState, FadingConfig, LinkOverride, Propagation, RadioConfig};
pub use record::{
    parse_line, FlightRecord, FlightRecorder, LogRecord, MessageKind, ParseLogError,
    SuppressReason, VerdictKind, Willingness,
};
pub use stats::{FloodStats, TrafficStats};
pub use time::{SimDuration, SimTime};
