//! Simulated time.
//!
//! Time is kept as an integer number of **microseconds** so that event
//! ordering is exact and platform independent (no floating-point drift).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the run.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`].
///
/// ```
/// use trustlink_sim::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(1500);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use trustlink_sim::time::SimDuration;
/// assert_eq!(SimDuration::from_secs(2) / 4, SimDuration::from_millis(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// The instant as microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span separating two instants.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future, which
    /// makes elapsed-time arithmetic total.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or non-finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// The span as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` when the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by a non-negative factor, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "scale factor must be finite and non-negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t, SimTime::from_millis(1500));
        assert_eq!(t.saturating_since(SimTime::from_secs(1)), SimDuration::from_millis(500));
        // saturating: asking for elapsed time since the future yields zero
        assert_eq!(t.saturating_since(SimTime::from_secs(10)), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs(4) / 2, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::from_micros(1) < SimTime::MAX);
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_micros(10).mul_f64(0.25),
            SimDuration::from_micros(3) // 2.5 rounds to 3 (round half away from zero)
        );
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(5).to_string(), "0.000005s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_micros(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
