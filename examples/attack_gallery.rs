//! A tour of the §II attack taxonomy: run each implemented attack on a
//! small network and show its observable effect.
//!
//! Run with: `cargo run --example attack_gallery`

use trustlink_attacks::drop::DropMode;
use trustlink_attacks::prelude::*;
use trustlink_olsr::prelude::*;
use trustlink_sim::prelude::*;

fn line_network(seed: u64) -> Simulator {
    let mut sim = SimulatorBuilder::new(seed)
        .radio(RadioConfig::unit_disk(150.0))
        .arena(Arena::new(10_000.0, 1_000.0))
        .build();
    for i in 0..5u16 {
        sim.add_node(
            Box::new(OlsrNode::new(OlsrConfig::fast())),
            Position::new(f64::from(i) * 100.0, 0.0),
        );
    }
    sim
}

fn main() {
    println!("=== 1. Link spoofing (the paper's focus) ===");
    {
        let mut sim = SimulatorBuilder::new(1).radio(RadioConfig::unit_disk(150.0)).build();
        sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(0.0, 0.0));
        sim.add_node(
            Box::new(link_spoofing_node(
                OlsrConfig::fast(),
                LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent {
                    fake: vec![NodeId(77)],
                }),
            )),
            Position::new(100.0, 0.0),
        );
        sim.run_for(SimDuration::from_secs(10));
        let victim = sim.app_as::<OlsrNode>(NodeId(0)).unwrap();
        println!("victim's MPR set after the phantom claim: {:?}", victim.mpr_set());
        println!(
            "victim routes to the phantom: {:?}\n",
            victim.routing_table().route_to(NodeId(77))
        );
    }

    println!("=== 2. Black hole (drop attack) ===");
    {
        let mut sim = SimulatorBuilder::new(2)
            .radio(RadioConfig::unit_disk(150.0))
            .arena(Arena::new(10_000.0, 1_000.0))
            .build();
        for i in 0..5u16 {
            if i == 2 {
                sim.add_node(
                    Box::new(drop_attack_node(
                        OlsrConfig::fast(),
                        DropAttack::new(DropMode::BlackHole, DropScope::All, 2),
                    )),
                    Position::new(f64::from(i) * 100.0, 0.0),
                );
            } else {
                sim.add_node(
                    Box::new(OlsrNode::new(OlsrConfig::fast())),
                    Position::new(f64::from(i) * 100.0, 0.0),
                );
            }
        }
        sim.run_for(SimDuration::from_secs(20));
        let end = sim.app_as::<OlsrNode>(NodeId(0)).unwrap();
        println!(
            "node N0's route to the far end through the black hole: {:?}",
            end.routing_table().route_to(NodeId(4))
        );
        let dropper = sim.app_as::<trustlink_attacks::drop::DropAttackNode>(NodeId(2)).unwrap();
        println!("frames swallowed by the black hole: {}\n", dropper.hooks().dropped);
    }

    println!("=== 3. Broadcast storm with masquerade ===");
    {
        let mut sim = line_network(3);
        let storm = BroadcastStorm::new(
            OlsrConfig::fast(),
            SimDuration::from_millis(100),
            4,
            Some(NodeId(42)),
        );
        sim.add_node(Box::new(storm), Position::new(200.0, 50.0));
        sim.run_for(SimDuration::from_secs(10));
        let victim_rx = sim.stats().node(NodeId(2)).received;
        println!("frames received by one victim in 10 s: {victim_rx}");
        let spoofed =
            sim.log(NodeId(2)).lines().filter(|l| l.starts_with("TC_RX orig=N42")).count();
        println!("forged TCs attributed to the masqueraded N42: {spoofed}\n");
    }

    println!("=== 4. Replay attack ===");
    {
        let mut sim = line_network(4);
        sim.add_node(
            Box::new(ReplayAttacker::new(OlsrConfig::fast(), SimDuration::from_secs(3), 128)),
            Position::new(200.0, 50.0),
        );
        sim.run_for(SimDuration::from_secs(15));
        let replayer = sim.app_as::<ReplayAttacker>(NodeId(5)).unwrap();
        println!("frames captured and replayed 3 s late: {}\n", replayer.replayed_total());
    }

    println!("=== 5. Wormhole ===");
    {
        let mut sim = SimulatorBuilder::new(5)
            .radio(RadioConfig::unit_disk(150.0))
            .arena(Arena::new(10_000.0, 1_000.0))
            .build();
        sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(0.0, 0.0));
        let (wa, wb) =
            wormhole_pair(OlsrConfig::fast(), OlsrConfig::fast(), SimDuration::from_millis(50));
        sim.add_node(Box::new(wa), Position::new(100.0, 0.0));
        sim.add_node(Box::new(wb), Position::new(5_000.0, 0.0));
        sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), Position::new(5_100.0, 0.0));
        sim.run_for(SimDuration::from_secs(15));
        let far = sim.app_as::<OlsrNode>(NodeId(3)).unwrap();
        println!(
            "node 5 km away believes N0 is nearby: 2-hop view contains N0 = {}",
            far.two_hop_set().two_hop_addrs(sim.now(), NodeId(3), &[]).contains(&NodeId(0))
        );
        let endpoint = sim.app_as::<WormholeEndpoint>(NodeId(1)).unwrap();
        println!("frames tunnelled out of region A: {}\n", endpoint.tunneled_out());
    }

    println!("=== 6. Willingness manipulation ===");
    {
        let mut sim = SimulatorBuilder::new(6)
            .radio(RadioConfig::unit_disk(150.0))
            .arena(Arena::new(10_000.0, 1_000.0))
            .build();
        for i in 0..5u16 {
            if i == 2 {
                sim.add_node(
                    Box::new(willingness_node(OlsrConfig::fast(), Willingness::Always)),
                    Position::new(f64::from(i) * 100.0, 0.0),
                );
            } else {
                sim.add_node(
                    Box::new(OlsrNode::new(OlsrConfig::fast())),
                    Position::new(f64::from(i) * 100.0, 0.0),
                );
            }
        }
        sim.run_for(SimDuration::from_secs(15));
        for observer in [NodeId(1), NodeId(3)] {
            let node = sim.app_as::<OlsrNode>(observer).unwrap();
            println!(
                "{observer} selected the WILL_ALWAYS attacker as MPR: {}",
                node.mpr_set().contains(&NodeId(2))
            );
        }
    }
}
