//! Quickstart: reproduce the paper's headline experiment in a few lines.
//!
//! 16 nodes, 1 link-spoofing attacker, 4 colluding liars, random initial
//! trust — watch the trust-weighted detection value `Detect(A, I)` fall
//! toward −1 as the liars lose their influence, then see the rule (10)
//! verdict flip to *intruder*.
//!
//! Run with: `cargo run --example quickstart`

use trustlink_core::prelude::*;

fn main() {
    // The paper's §V setting is the default configuration.
    let config = RoundConfig::default();
    println!(
        "{} nodes, 1 attacker, {} liars among {} witnesses, seed {}",
        config.n_nodes,
        config.n_liars,
        config.n_nodes - 2,
        config.seed
    );

    let trace = RoundEngine::new(config).run(25);

    println!("\nround   Detect(A,I)   margin   verdict");
    for (i, ((d, m), v)) in trace.detect.iter().zip(&trace.margins).zip(&trace.verdicts).enumerate()
    {
        println!("{:>5}   {:>+10.3}   {:>6.3}   {}", i + 1, d, m, v);
    }

    match trace.first_conviction() {
        Some(round) => println!(
            "\nThe attacker was convicted at round {} — despite {} liars covering for it.",
            round + 1,
            trace.liars().len()
        ),
        None => println!("\nNo conviction within the horizon — try more rounds."),
    }

    println!("\nFinal witness trust (liars should be deeply negative):");
    for w in &trace.witnesses {
        let role = match w.role {
            RoleKind::Liar => "liar  ",
            RoleKind::Honest => "honest",
        };
        println!(
            "  S{:<2} {role}  {:.2} -> {:+.2}",
            w.index,
            w.initial_trust,
            w.trust.last().unwrap()
        );
    }
}
