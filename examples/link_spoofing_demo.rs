//! End-to-end packet-level demo: a 3×3 OLSR grid where the centre node
//! spoofs a link to a phantom neighbor (Expression (1) of the paper), two
//! of its neighbors lie to cover for it, and the remaining detectors
//! convict it anyway — using nothing but their own audit logs and the
//! cooperative investigation.
//!
//! Run with: `cargo run --example link_spoofing_demo`

use trustlink_core::prelude::*;
use trustlink_core::DetectorConfig;
use trustlink_ids::investigation::InvestigationConfig;

fn main() {
    let attacker = 4usize; // grid centre: the natural MPR
    let phantom = NodeId(99);

    let detector = DetectorConfig {
        analysis_interval: SimDuration::from_millis(500),
        investigation: InvestigationConfig {
            timeout: SimDuration::from_secs(3),
            max_witnesses: 16,
        },
        warmup: SimDuration::from_secs(10),
        trust_slot_interval: SimDuration::from_secs(3),
        ..DetectorConfig::default()
    };

    println!("Topology: 3x3 grid, 100 m spacing, 150 m radio range");
    println!("Attacker: N{attacker} (centre), advertising phantom neighbor {phantom}");
    println!("Liars:    N1, N3 (cover for the attacker)\n");

    let report = ScenarioBuilder::new(2026, 9)
        .topology(Topology::Grid { cols: 3, spacing: 100.0 })
        .detector(detector)
        .attacker(
            attacker,
            LinkSpoofing::permanent(SpoofVariant::AdvertiseNonExistent { fake: vec![phantom] }),
        )
        .liar(1, LiarPolicy::CoverFor { accomplices: vec![NodeId(attacker as u32)] })
        .liar(3, LiarPolicy::CoverFor { accomplices: vec![NodeId(attacker as u32)] })
        .duration(SimDuration::from_secs(120))
        .run();

    // Show what one honest detector saw in its own log.
    let observer = NodeId(0);
    println!("--- excerpts from {observer}'s audit log ---");
    let mut shown = 0;
    for line in report.sim.log(observer).lines() {
        let interesting = line.contains("N99")
            || line.starts_with("MPR_SET")
            || line.starts_with("DATA_NO_ROUTE");
        if interesting && shown < 12 {
            println!("  {line}");
            shown += 1;
        }
    }

    println!("\n--- verdicts against the attacker ---");
    for (observer, record) in report.convictions_of(NodeId(attacker as u32)) {
        println!(
            "  {observer} condemned N{attacker}: Detect={:+.2} ± {:.2} after {} witnesses ({} answered) at {}",
            record.detect, record.margin, record.witnesses, record.answered, record.at
        );
    }

    let detected = report.detected(NodeId(attacker as u32));
    let fps = report.false_positives().len();
    println!("\nDetected: {detected}   False positives: {fps}");
    println!(
        "Traffic: {} frames, {} bytes over {}",
        report.total_sent(),
        report.total_bytes(),
        report.duration
    );
    assert!(detected, "the attacker should have been detected");
    assert_eq!(fps, 0, "no honest node should be condemned");
}
