//! Renders the paper's Figures 1 and 2 as ASCII charts: trust trajectories
//! under attack, and relaxation toward the default trust once the attack
//! ceases.
//!
//! Run with: `cargo run --example trust_dynamics`

use trustlink_core::chart;
use trustlink_core::prelude::*;

fn main() {
    // Figure 1: 25 rounds of active attack. To keep the chart legible we
    // plot a representative subset: two liars and two honest witnesses with
    // contrasting initial trust.
    let cfg = RoundConfig {
        initial_trust: InitialTrust::PerNode(vec![
            0.85, 0.25, // liars (high and low initial trust)
            0.55, 0.4, // more liars (defaults: first n_liars indices lie)
            0.8, 0.15, 0.6, 0.3, 0.7, 0.45, 0.5, 0.35, 0.65, 0.2, // honest
        ]),
        ..RoundConfig::default()
    };
    let full = fig1_trustworthiness(cfg.clone(), 25);
    let picks = [0usize, 1, 4, 5];
    let fig1 = Figure {
        title: full.title.clone(),
        x_label: full.x_label.clone(),
        y_label: full.y_label.clone(),
        series: picks.iter().map(|&i| full.series[i].clone()).collect(),
    };
    println!("{}", chart::render(&fig1, 64, 18));

    // Figure 2: the attack has ceased; everyone behaves well and the
    // forgetting factor pulls trust toward the default 0.4. Former liars
    // start deep in negative territory and climb back slowly.
    let cfg2 = RoundConfig {
        initial_trust: InitialTrust::PerNode(vec![
            -0.8, -0.4, // former liars, already punished
            0.2, 0.1, // more former liars
            0.9, 0.65, 0.15, 0.4, 0.75, 0.55, 0.3, 0.85, 0.5, 0.25, // honest
        ]),
        ..RoundConfig::default()
    };
    let full2 = fig2_forgetting(cfg2, 40);
    let picks2 = [0usize, 2, 4, 6];
    let fig2 = Figure {
        title: full2.title.clone(),
        x_label: full2.x_label.clone(),
        y_label: full2.y_label.clone(),
        series: picks2.iter().map(|&i| full2.series[i].clone()).collect(),
    };
    println!("{}", chart::render(&fig2, 64, 18));

    println!("Note the defensive asymmetry: decay from above reaches 0.4 within");
    println!("the horizon, while recovery from a negative value takes far longer —");
    println!("\"recovering from a negative trustworthiness requires that the node");
    println!("well-behave for long time\" (paper, §VII).");
}
