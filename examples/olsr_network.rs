//! Pure OLSR substrate demo (no attacks, no detection): bring up a random
//! connected MANET, let the protocol converge, then print each node's
//! neighborhood, MPR set and routing table.
//!
//! Run with: `cargo run --example olsr_network`

use trustlink_olsr::prelude::*;
use trustlink_sim::prelude::*;
use trustlink_sim::topologies;

fn main() {
    let n = 12;
    let range = 160.0;
    let seed = 7;

    let mut placement_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
    let arena = Arena::new(500.0, 500.0);
    let positions = topologies::random_connected(n, &arena, range, &mut placement_rng, 10_000);

    let mut sim = SimulatorBuilder::new(seed)
        .arena(arena)
        .radio(RadioConfig::unit_disk(range).with_loss(0.02))
        .build();
    for p in &positions {
        sim.add_node(Box::new(OlsrNode::new(OlsrConfig::fast())), *p);
    }

    sim.run_for(SimDuration::from_secs(30));
    let now = sim.now();

    println!("{n} nodes, {range} m range, 2% frame loss, 30 s simulated\n");
    for id in sim.node_ids().collect::<Vec<_>>() {
        let node = sim.app_as::<OlsrNode>(id).expect("plain OLSR node");
        let pos = sim.position(id);
        println!("{id} at ({:.0}, {:.0})", pos.x, pos.y);
        println!("  neighbors: {:?}", node.symmetric_neighbors(now));
        println!("  MPRs:      {:?}", node.mpr_set());
        let routes: Vec<String> = node
            .routing_table()
            .iter()
            .map(|r| format!("{}via{}({})", r.dest, r.next_hop, r.hops))
            .collect();
        println!("  routes:    {}", routes.join(" "));
    }

    // Every pair should be mutually reachable after convergence.
    let mut unreachable = 0;
    for a in sim.node_ids().collect::<Vec<_>>() {
        let node = sim.app_as::<OlsrNode>(a).unwrap();
        for b in sim.node_ids().collect::<Vec<_>>() {
            if a != b && node.routing_table().route_to(b).is_none() {
                unreachable += 1;
            }
        }
    }
    println!("\nunreachable pairs: {unreachable} (0 = fully converged)");
    println!(
        "traffic: {} frames sent, {} received, {} lost",
        sim.stats().total_sent(),
        sim.stats().total_received(),
        sim.stats().total_lost()
    );
}
