//! A small, self-contained stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, vendored so the workspace builds without network access.
//!
//! It implements exactly the surface the trustlink crates use:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! - [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion,
//! - [`RngExt::random_range`] / [`RngExt::random_bool`] — uniform sampling
//!   over integer and float ranges, Bernoulli draws.
//!
//! Determinism is the point: the simulator requires that a run be a pure
//! function of its seed, and this generator has no global state, no OS
//! entropy and no platform dependence.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.random_range(0..100u32), b.random_range(0..100u32));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// The bare random-word source every generator provides.
pub trait RngCore {
    /// Produce the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically expand `state` into a full generator state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` this is *stable across
    /// versions*: the stream for a given seed never changes, which the
    /// simulator's replay tests rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                // Check before the u128 cast: an inverted range would wrap
                // into a huge span and silently pass a `span > 0` check.
                assert!(
                    if inclusive { hi_w >= lo_w } else { hi_w > lo_w },
                    "cannot sample from an empty range"
                );
                let span = (hi_w - lo_w + if inclusive { 1 } else { 0 }) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw.
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample from an empty range"
                );
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = lo + unit * (hi - lo);
                if inclusive {
                    if v > hi { hi } else { v }
                } else if v >= hi {
                    // FP rounding of lo + unit*(hi-lo) can land exactly on
                    // `hi`; an exclusive range must stay below it.
                    <$t>::max(lo, hi.next_down())
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods, mirroring `rand`'s `Rng` extension trait.
pub trait RngExt: RngCore {
    /// Draw a value uniformly from `range`.
    ///
    /// Panics when the range is empty, like the real crate.
    fn random_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000u64), b.random_range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(5..10u32);
            assert!((5..10).contains(&v));
            let w = rng.random_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&w));
            let x = rng.random_range(7..=7usize);
            assert_eq!(x, 7);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    // The reversed range is the point of the test.
    #[allow(clippy::reversed_empty_ranges)]
    fn inverted_int_range_panics() {
        let _ = StdRng::seed_from_u64(1).random_range(10..5u32);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_exclusive_float_range_panics() {
        let _ = StdRng::seed_from_u64(1).random_range(1.0f64..1.0);
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
