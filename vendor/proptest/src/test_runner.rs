//! The case-running loop behind the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Default number of cases per property when `PROPTEST_CASES` is unset.
///
/// Deliberately modest so the full pyramid stays fast in CI; raise it
/// locally (`PROPTEST_CASES=1024 cargo test`) for deeper soak runs.
pub const DEFAULT_CASES: u32 = 64;

/// The deterministic RNG handed to strategies: the vendored
/// [`rand::rngs::StdRng`] stream, seeded per-test from the test's name —
/// or from `PROPTEST_SEED` verbatim when set, so a failure's printed seed
/// replays the exact stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed deterministically from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `[0, n)`; panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.below_u128(n as u128) as usize
    }

    /// A uniform value in `[0, n)` for spans up to `2^64`.
    pub fn below_u128(&mut self, n: u128) -> u128 {
        assert!(n > 0, "cannot sample below 0");
        ((self.next_u64() as u128).wrapping_mul(n)) >> 64
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is violated; the whole test fails.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; try another case.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-block configuration, accepted by
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property in the block must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: cases() }
    }
}

/// The number of cases to run per property: `PROPTEST_CASES` when set and
/// parseable, [`DEFAULT_CASES`] otherwise.
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_CASES)
}

fn base_seed(test_name: &str) -> u64 {
    // A set PROPTEST_SEED is the seed, verbatim, for every test — which is
    // exactly what a failure message prints, so replaying it reproduces the
    // failing stream.
    if let Some(seed) = std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()) {
        return seed;
    }
    // FNV-1a over the test name keeps streams independent across tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Drive one property: run `case` until `cases` inputs pass, panicking on
/// the first failure with the generated inputs and the seed to replay it.
pub fn run_cases<F>(cases_override: Option<u32>, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let target = cases_override.unwrap_or_else(cases).max(1);
    let seed = base_seed(test_name);
    let mut rng = TestRng::from_seed(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < target {
        match case(&mut rng) {
            (Ok(()), _) => passed += 1,
            (Err(TestCaseError::Reject(why)), _) => {
                rejected += 1;
                if rejected > target.saturating_mul(16).max(256) {
                    panic!(
                        "property `{test_name}` rejected {rejected} cases \
                         (last: {why}); the prop_assume! filter is too strict"
                    );
                }
            }
            (Err(TestCaseError::Fail(msg)), inputs) => {
                panic!(
                    "property `{test_name}` failed after {passed} passing case(s)\n\
                     replay with: PROPTEST_SEED={seed} cargo test {test_name}\n\
                     inputs: {inputs}\n{msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_to_target() {
        let mut runs = 0;
        run_cases(Some(10), "always_ok", |_| {
            runs += 1;
            (Ok(()), String::new())
        });
        assert_eq!(runs, 10);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics_with_inputs() {
        run_cases(Some(10), "always_bad", |_| (Err(TestCaseError::fail("nope")), "x = 1".into()));
    }

    #[test]
    fn rejects_do_not_count_as_passes() {
        let mut total = 0u32;
        run_cases(Some(5), "half_rejected", |rng| {
            total += 1;
            if rng.next_u64() & 1 == 0 {
                (Err(TestCaseError::reject("odd")), String::new())
            } else {
                (Ok(()), String::new())
            }
        });
        assert!(total >= 5);
    }

    #[test]
    fn streams_differ_by_test_name() {
        let mut a = TestRng::from_seed(base_seed("a"));
        let mut b = TestRng::from_seed(base_seed("b"));
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
