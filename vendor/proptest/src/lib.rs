//! A small, self-contained stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored so the
//! workspace builds without network access.
//!
//! It keeps proptest's *model* — strategies compose into generators, the
//! [`proptest!`] macro turns `fn f(x in strategy)` into a `#[test]` that
//! runs many random cases, `prop_assert!`/`prop_assume!` report failures
//! with the generated inputs — but drops shrinking and persistence files.
//! Failures print the exact inputs and the deterministic per-test seed, so
//! a failing case is reproducible by construction rather than by replay
//! file.
//!
//! Case counts are bounded for CI via the `PROPTEST_CASES` environment
//! variable (default [`test_runner::DEFAULT_CASES`]); the RNG seed can be
//! pinned with `PROPTEST_SEED`.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // Under `cargo test` this carries `#[test]`.
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every property-test file starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Turn `fn name(arg in strategy, ...) { body }` items into `#[test]`
/// functions that run [`test_runner::cases`] random cases each.
///
/// An optional leading `#![proptest_config(expr)]` overrides the case
/// count for the whole block via [`test_runner::ProptestConfig::cases`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = ::core::option::Option::Some(
                    $crate::test_runner::ProptestConfig::from($config).cases,
                );
                $crate::__proptest_body!(__cases, $name, ($($arg in $strat),*), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = ::core::option::Option::None;
                $crate::__proptest_body!(__cases, $name, ($($arg in $strat),*), $body);
            }
        )*
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cases:expr, $name:ident, ($($arg:ident in $strat:expr),*), $body:block) => {
        $crate::test_runner::run_cases($cases, stringify!($name), |__rng| {
            $(
                let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);
            )*
            let __inputs = {
                let mut __s = ::std::string::String::new();
                $(
                    __s.push_str(&::std::format!(
                        "{} = {:?}; ",
                        stringify!($arg),
                        &$arg
                    ));
                )*
                __s
            };
            let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
            (__outcome, __inputs)
        });
    };
}

/// Fail the current case (with the generated inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// [`prop_assert!`] for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// [`prop_assert!`] for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discard the current case (without failing) unless `cond` holds.
///
/// Rejected cases do not count toward the case target; a test that
/// rejects nearly everything eventually panics so the filter is noticed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
