//! Strategies for collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_all_size_forms() {
        let mut rng = TestRng::from_seed(14);
        for _ in 0..500 {
            assert_eq!(vec(0u8..5, 3).new_value(&mut rng).len(), 3);
            let l = vec(0u8..5, 1..4).new_value(&mut rng).len();
            assert!((1..4).contains(&l));
            let m = vec(0u8..5, 0..=2).new_value(&mut rng).len();
            assert!(m <= 2);
        }
    }
}
