//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: every representable value is possible.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Rejection-sample a scalar value; the loop terminates fast since
        // most of the range is valid.
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                return c;
            }
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning many magnitudes; NaN/inf are excluded on
        // purpose (the trust maths is documented on finite inputs).
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.next_u64() % 61) as i32 - 30;
        mantissa * (2.0f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domains() {
        let mut rng = TestRng::from_seed(12);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[bool::arbitrary(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn floats_are_finite() {
        let mut rng = TestRng::from_seed(13);
        for _ in 0..1_000 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }
}
