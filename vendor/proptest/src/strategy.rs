//! Composable value generators (no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// The `Value` associated type names what the strategy produces, so
/// signatures like `impl Strategy<Value = NodeId>` read exactly as they
/// do with the real crate.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-process every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// A type-erased strategy; see [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies; built by
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].new_value(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty => $below:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(
    u8 => below_u8, u16 => below_u16, u32 => below_u32, u64 => below_u64,
    usize => below_usize, i8 => below_i8, i16 => below_i16, i32 => below_i32,
    i64 => below_i64, isize => below_isize
);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let v = self.start() + rng.unit_f64() as $t * (self.end() - self.start());
                if v > *self.end() { *self.end() } else { v }
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..5_000 {
            let a = (3u16..9).new_value(&mut rng);
            assert!((3..9).contains(&a));
            let b = (-1.0f64..=1.0).new_value(&mut rng);
            assert!((-1.0..=1.0).contains(&b));
            let c = (5usize..=5).new_value(&mut rng);
            assert_eq!(c, 5);
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut rng = TestRng::from_seed(10);
        let s = crate::prop_oneof![Just(1u8), (10u8..20).prop_map(|v| v)];
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v == 1 || (10..20).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::from_seed(11);
        let (a, b, c) = (0u8..4, 100u16..200, Just("x")).new_value(&mut rng);
        assert!(a < 4);
        assert!((100..200).contains(&b));
        assert_eq!(c, "x");
    }
}
