//! A small, self-contained stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, vendored so the workspace builds without network access.
//!
//! [`Bytes`] is an immutable, cheaply cloneable, sliceable byte buffer
//! (an `Arc<[u8]>` plus a window); [`BytesMut`] is a growable buffer that
//! freezes into one. [`Buf`] / [`BufMut`] provide the big-endian cursor
//! reads and writes the OLSR wire codec uses. Semantics — including the
//! panic-on-underflow behaviour of `get_*` — match the real crate for the
//! covered surface.
//!
//! ```
//! use bytes::{Buf, BufMut, Bytes, BytesMut};
//!
//! let mut w = BytesMut::new();
//! w.put_u8(0x01);
//! w.put_u16(0xBEEF);
//! let mut b: Bytes = w.freeze();
//! assert_eq!(b.remaining(), 3);
//! assert_eq!(b.get_u8(), 0x01);
//! assert_eq!(b.get_u16(), 0xBEEF);
//! assert!(!b.has_remaining());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// A buffer borrowing nothing but a static slice (copied here; the
    /// real crate is zero-copy, which no caller observes).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a fresh buffer — one allocation, one copy. The
    /// idiom for freezing a reused scratch buffer into a frame.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Bytes { data, start: 0, end }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    ///
    /// Panics if `at > self.len()`, like the real crate.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds: {} > {}", at, self.len());
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// A sub-view of the given range (relative to this view).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with space for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.buf.clone()), f)
    }
}

/// Cursor-style big-endian reads that consume from the front of a buffer.
///
/// The `get_*` methods panic when fewer bytes remain than requested,
/// matching the real crate; total decoders must check [`Buf::remaining`]
/// first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "get_u16 underflow");
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `i16`.
    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }

    /// Read a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32 underflow");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64 underflow");
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Fill `dst` from the front of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds: {} > {}", cnt, self.len());
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds: {} > {}", cnt, self.len());
        *self = &self[cnt..];
    }
}

/// Big-endian appends to the back of a growable buffer.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);

    /// Append a slice verbatim.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }

    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_slice(b"xy");
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0102_0304_0506_0708);
        let mut rest = [0u8; 2];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert!(b.is_empty());
    }

    #[test]
    fn split_to_shares_storage() {
        let mut b = Bytes::from_static(b"hello world");
        let head = b.split_to(5);
        assert_eq!(head, b"hello"[..]);
        assert_eq!(b, b" world"[..]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn get_past_end_panics() {
        let mut b = Bytes::from_static(b"x");
        let _ = b.get_u16();
    }

    #[test]
    fn copy_from_slice_detaches_from_source() {
        let mut scratch = vec![1u8, 2, 3];
        let b = Bytes::copy_from_slice(&scratch);
        scratch.clear();
        assert_eq!(b, b"\x01\x02\x03"[..]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }
}
