//! A small, self-contained stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate, vendored so the
//! workspace builds without network access.
//!
//! It keeps criterion's authoring surface — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], the [`criterion_group!`] /
//! [`criterion_main!`] macros, `b.iter(..)` — and replaces the statistics
//! engine with a simple best-of-samples wall-clock timer printed to
//! stdout. Benches compile and run with `harness = false` exactly as with
//! the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// `true` when the bench binary was invoked with `--test` (as the real
/// criterion supports): every benchmark runs exactly once, untimed-ish,
/// so CI can smoke-test that heavy benches still *work* without paying
/// for statistics.
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// The benchmark driver handed to every target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        self.bench_with(samples, id, f);
        self
    }

    fn bench_with<F>(&mut self, samples: usize, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if test_mode() { 1 } else { samples };
        let mut b = Bencher { samples: Vec::with_capacity(samples) };
        for _ in 0..samples {
            f(&mut b);
        }
        b.report(&id.to_string());
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { c: self, name: name.into(), sample_size }
    }
}

/// A named group of benchmarks; see [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    /// The group's own sample count — like the real crate, overriding it
    /// is scoped to the group and never leaks into later targets.
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.c.bench_with(self.sample_size, full, f);
        self
    }

    /// Override the sample count for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Finish the group (a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures; handed to the function passed to `bench_function`.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one sample of `f` run in a loop.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // The warm-up call doubles as a calibration probe.
        let probe = Instant::now();
        black_box(f());
        let warm = probe.elapsed();
        if test_mode() {
            // `--test`: the warm-up already proved the bench runs; record
            // its duration and stop.
            self.samples.push(warm.max(Duration::from_nanos(1)));
            return;
        }
        // Scale the timed batch to the workload: fast primitives amortize
        // timer overhead over 16 iterations, slow whole-network scenario
        // sims are sampled once instead of sixteen times.
        const TARGET: Duration = Duration::from_millis(40);
        let iters = (TARGET.as_nanos() / warm.as_nanos().max(1)).clamp(1, 16) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push(start.elapsed() / iters);
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let best = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        println!("{id:<44} best {best:>12.3?}   median {median:>12.3?}");
        self.samples.clear();
    }
}

/// Declare a group function that runs each target against one
/// [`Criterion`]. Both the flat and the `name/config/targets` forms of
/// the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        #[doc = concat!("Run the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(2);
        targets = target
    }

    #[test]
    fn group_runs_all_targets() {
        smoke();
    }

    #[test]
    fn group_sample_size_does_not_leak() {
        let mut c = Criterion::default().sample_size(7);
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(1)));
        g.finish();
        assert_eq!(c.sample_size, 7, "group override leaked into the parent Criterion");
    }
}
